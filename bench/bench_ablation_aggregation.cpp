// Ablation (Section VI-A): flow-definition aggregation level.
//
// The paper reports that /24 aggregation cuts tracked flows by about an
// order of magnitude and suggests going further with "routable" prefixes
// from the forwarding table (/8, /16 mixes). This bench classifies one
// trace under five definitions and reports flow counts, mean durations,
// model inputs, and the shot power that matches the measured variance —
// showing how aggregation pushes the optimal shot toward the rectangle.
#include <cstdio>

#include "common.hpp"
#include "core/fitting.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "net/lpm.hpp"
#include "stats/descriptive.hpp"

namespace {

struct Row {
  const char* label;
  std::vector<fbm::flow::FlowRecord> flows;
};

}  // namespace

FBM_BENCH(ablation_aggregation) {
  using namespace fbm;
  bench::print_header(
      "Ablation: flow aggregation level (5-tuple .. routable prefixes)");

  const auto scale = bench::default_scale();
  const auto cfg = trace::make_config(4, scale);
  const auto packets = trace::generate_packets(cfg);
  const double horizon = cfg.duration_s;

  flow::ClassifierOptions opt;
  opt.timeout = 60.0 * scale.time_scale;
  opt.interval = horizon;  // single interval for this study
  opt.record_discards = true;

  // A synthetic FIB covering the generator's 10.0.0.0/8 destination space:
  // the most popular /24s get specific routes, the rest fall to the /8 —
  // roughly how a provider's table covers hot customer prefixes.
  net::RoutingTable fib;
  std::uint32_t route = 0;
  fib.insert(net::Prefix(net::Ipv4Address(10, 0, 0, 0), 8), route++);
  for (std::size_t rank = 0; rank < 48; ++rank) {
    fib.insert(trace::dst_prefix_for_rank(rank), route++);
  }

  std::vector<Row> rows;
  rows.push_back({"5-tuple",
                  flow::classify_all<flow::FiveTupleKey>(packets, opt)});
  rows.push_back({"/24 prefix",
                  flow::classify_all<flow::PrefixKey<24>>(packets, opt)});
  rows.push_back({"/16 prefix",
                  flow::classify_all<flow::PrefixKey<16>>(packets, opt)});
  rows.push_back({"/8 prefix",
                  flow::classify_all<flow::PrefixKey<8>>(packets, opt)});
  rows.push_back({"routable (FIB)",
                  flow::classify_all_with(flow::RoutableKey(&fib), packets,
                                          opt)});
  ctx.count_packets(packets.size() * rows.size());
  for (const auto& row : rows) ctx.count_flows(row.flows.size());

  // Measured variance is the same for every definition.
  const auto series =
      measure::measure_rate(packets, 0.0, horizon, measure::kPaperDelta);
  const auto mm = measure::rate_moments(series);

  std::printf("measured: mean %.2f Mbps, CoV %.1f%%\n\n", mm.mean_bps / 1e6,
              100.0 * mm.cov);
  std::printf("%-16s %10s %12s %12s %10s %10s\n", "definition", "flows",
              "vs 5-tuple", "mean D (s)", "lambda", "fitted b");
  const double base =
      static_cast<double>(rows.front().flows.size());
  for (const auto& row : rows) {
    const auto intervals =
        flow::group_by_interval(row.flows, horizon, horizon);
    const auto in = flow::estimate_inputs(intervals[0]);
    stats::RunningStats dur;
    for (const auto& f : row.flows) dur.add(f.duration());
    const auto b = core::fit_power_b(mm.variance_bps2, in);
    std::printf("%-16s %10zu %11.1fx %12.2f %10.1f %10.2f\n", row.label,
                row.flows.size(),
                base / std::max(1.0, static_cast<double>(row.flows.size())),
                dur.mean(), in.lambda, b.value_or(-1.0));
  }

  std::printf("\ncheck: flow state shrinks ~5-10x at /24 and FIB level and "
              "~100x at /16; at high aggregation (/16, /8) the aggregates "
              "are smooth enough that the rectangular shot (b=0) already "
              "matches the measured variance\n");
  return 0;
}
