// Ablation (Section VIII): how much does the Poisson arrival assumption
// matter?
//
// The model's variance formula assumes Poisson flow arrivals. This bench
// generates traffic with the same flow population under (a) Poisson and
// (b) increasingly bursty two-state Markov-modulated arrivals with the same
// average rate, and compares the realised variance against the model's
// prediction. The model should be exact for (a) and progressively
// under-estimate for (b) — quantifying the paper's closing remark about
// "more complex flow arrival processes than Poisson".
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/model.hpp"
#include "gen/traffic_gen.hpp"
#include "stats/descriptive.hpp"

FBM_BENCH(ablation_poisson) {
  using namespace fbm;
  bench::print_header(
      "Ablation: Poisson vs Markov-modulated flow arrivals (Section VIII)");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto model = core::ShotNoiseModel::from_interval(
      run.five_tuple[0].interval, core::triangular_shot());
  const double predicted_var = model.variance();

  auto base_cfg = gen::from_model(model, 900.0, 0.2);
  base_cfg.seed = 2024;

  struct Scenario {
    const char* label;
    gen::ArrivalModulation mod;
  };
  const Scenario scenarios[] = {
      {"Poisson", {}},
      {"MMPP mild (1.5x / 0.5x)", {1.5, 0.5, 5.0}},
      {"MMPP moderate (2x / 0.25x)", {2.0, 0.25, 5.0}},
      {"MMPP strong (3x / 0.05x)", {3.0, 0.05, 5.0}},
  };

  std::printf("model-predicted variance (Poisson assumption): %.4g\n\n",
              predicted_var);
  std::printf("%-30s %14s %12s %10s\n", "arrival process", "realised var",
              "vs model", "CoV");
  for (const auto& s : scenarios) {
    auto cfg = base_cfg;
    cfg.modulation = s.mod;
    const auto out = gen::generate(cfg);
    const double var = stats::population_variance(out.series.values);
    const double mean = stats::mean(out.series.values);
    std::printf("%-30s %14.4g %11.2fx %9.1f%%\n", s.label, var,
                var / predicted_var,
                mean > 0.0 ? 100.0 * std::sqrt(var) / mean : 0.0);
  }

  std::printf("\ncheck: the Poisson row sits near 1.0x (the model is exact "
              "for its own assumptions); modulated arrivals push realised "
              "variance above the prediction, growing with burstiness — the "
              "cost of Assumption 1 when it fails\n");
  return 0;
}
