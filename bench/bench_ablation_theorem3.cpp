// Ablation: Theorem 3 — the rectangular flow-rate function achieves the
// lowest total-rate variance among all shots, and the variance ordering of
// the power family matches (b+1)^2/(2b+1).
//
// Runs on a measured flow population (not just closed forms): variances are
// evaluated by ShotNoiseModel over the empirical (S, D) sample with several
// shot shapes, including a non-power custom shot.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/model.hpp"

FBM_BENCH(ablation_theorem3) {
  using namespace fbm;
  bench::print_header(
      "Ablation (Theorem 3): shot shape vs total-rate variance");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto& iv = run.five_tuple[0].interval;

  const auto rect = core::ShotNoiseModel::from_interval(
      iv, core::rectangular_shot());
  const double floor_var = rect.variance();
  const double measured_var = run.five_tuple[0].measured.variance_bps2;

  std::printf("%-28s %14s %12s %10s\n", "shot", "variance", "vs rect",
              "CoV");
  const auto report = [&](const core::ShotNoiseModel& m) {
    std::printf("%-28s %14.4g %11.3fx %9.1f%%\n", m.shot().name().c_str(),
                m.variance(), m.variance() / floor_var, 100.0 * m.cov());
  };
  report(rect);
  for (double b : {0.5, 1.0, 2.0, 4.0}) {
    report(rect.with_shot(core::power_shot(b)));
  }
  // A non-power shot: symmetric tent profile (ramp up then down).
  const auto tent = std::make_shared<core::CustomShot>(
      [](double x) { return x < 0.5 ? 4.0 * x : 4.0 * (1.0 - x); }, "tent");
  report(rect.with_shot(tent));

  std::printf("\nmeasured variance at Delta=200ms: %.4g (%.3fx rectangular "
              "bound)\n", measured_var, measured_var / floor_var);
  std::printf("check: every non-rectangular shot sits above 1.000x; power-"
              "family ratios equal (b+1)^2/(2b+1); measured variance >= "
              "bound (up to averaging loss)\n");
  return 0;
}
