// Section V-A substrate check: the number of active flows N(t) behaves as
// M/G/infinity occupancy — Poisson with mean lambda*E[D] — which is the
// backbone of Theorem 1's PGF argument.
//
// Measures N(t) from classified flows, compares its mean/variance with the
// MGInfinity prediction, checks the Poisson dispersion ratio, and compares
// the empirical occupancy histogram against the Poisson pmf.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/mg_infinity.hpp"
#include "flow/active_count.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

FBM_BENCH(active_flows) {
  using namespace fbm;
  bench::print_header(
      "Theorem 1 substrate: active-flow count vs M/G/infinity");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto& iv = run.five_tuple[0].interval;

  stats::RunningStats dur;
  for (const auto& f : iv.flows) dur.add(f.duration());
  const double lambda = run.five_tuple[0].inputs.lambda;
  const core::MGInfinity occupancy(lambda, dur.mean());

  // Sample N(t) away from the interval edges (warm-up).
  const auto n = flow::active_flow_series(iv.flows, iv.start + 3.0,
                                          iv.end(), 0.05);
  const auto s = flow::active_flow_stats(n);

  std::printf("lambda = %.1f /s, E[D] = %.3f s -> rho = %.1f\n\n", lambda,
              dur.mean(), occupancy.load());
  std::printf("%-26s %12s %12s\n", "", "measured", "M/G/inf");
  std::printf("%-26s %12.2f %12.2f\n", "mean active flows", s.mean,
              occupancy.mean_active());
  std::printf("%-26s %12.2f %12.2f\n", "variance", s.variance,
              occupancy.variance_active());
  std::printf("%-26s %12.2f %12.2f\n", "dispersion (var/mean)", s.dispersion,
              1.0);

  // Occupancy histogram vs Poisson pmf around the mean.
  const auto k0 = static_cast<std::uint64_t>(
      std::max(0.0, occupancy.mean_active() - 3.0 *
                         std::sqrt(occupancy.variance_active())));
  const auto k1 = static_cast<std::uint64_t>(
      occupancy.mean_active() + 3.0 * std::sqrt(occupancy.variance_active()));
  std::printf("\noccupancy distribution (k, empirical freq, Poisson pmf):\n");
  for (std::uint64_t k = k0; k <= k1;
       k += std::max<std::uint64_t>(1, (k1 - k0) / 10)) {
    std::size_t count = 0;
    for (double v : n.values) {
      if (static_cast<std::uint64_t>(v) == k) ++count;
    }
    std::printf("  %4llu %10.4f %10.4f\n",
                static_cast<unsigned long long>(k),
                static_cast<double>(count) /
                    static_cast<double>(n.values.size()),
                occupancy.pmf(k));
  }

  std::printf("\ncheck: mean matches lambda*E[D]; dispersion ~1 (Poisson); "
              "histogram tracks the pmf\n");
  return 0;
}
