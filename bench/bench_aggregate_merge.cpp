// Distributed aggregation cost: emit → fold → fit (fbm::agg).
//
// The deferred-fit pipeline trades one local fit for serialize + merge +
// one global fit. This bench measures both halves over a Table-I-class
// trace split into K flow-key shards: how fast K producers can flush their
// windows to PartialReport files, and how fast fbm_aggregate's Merger can
// fold the K files and fit every window once. The merged document is
// checked byte-identical to a single-machine run each repetition — a bench
// that drifts from the differential guarantee fails loudly rather than
// timing the wrong computation.
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "agg/agg.hpp"
#include "api/api.hpp"
#include "api/shard.hpp"
#include "common.hpp"

namespace {

std::filesystem::path partial_path(std::size_t shard) {
  return std::filesystem::temp_directory_path() /
         ("fbm_bench_aggregate_" + std::to_string(shard) + ".fbmp");
}

}  // namespace

FBM_BENCH(aggregate_merge) {
  using namespace fbm;
  bench::print_header("Distributed aggregation: emit + merge vs local fit");

  const auto scale = bench::default_scale();
  const auto cfg = trace::make_config(3, scale);
  const auto packets = trace::generate_packets(cfg);

  api::AnalysisConfig analysis;
  analysis.timeout_s(60.0 * scale.time_scale)
      .interval_s(cfg.duration_s / 4.0);

  // Single-machine reference (also the correctness pin below).
  std::string reference;
  {
    api::AnalysisPipeline pipeline(analysis);
    std::vector<api::AnalysisReport> reports;
    pipeline.set_report_sink(
        [&](api::AnalysisReport&& r) { reports.push_back(std::move(r)); });
    for (const auto& p : packets) pipeline.push(p);
    pipeline.finish();
    reference = api::to_json(pipeline.summary(), reports);
  }

  const std::size_t kShards = 4;
  const std::size_t reps = 3;
  std::uint64_t partial_bytes = 0;
  std::uint64_t windows = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Emit: K producers, each classifying its flow-key shard and flushing
    // raw windows (this is the per-POP half of the pipeline).
    for (std::size_t i = 0; i < kShards; ++i) {
      api::AnalysisPipeline pipeline(analysis);
      agg::PartialWriter writer(partial_path(i),
                                agg::PartialMeta::from_batch(analysis));
      pipeline.set_partial_sink([&](api::ShardInterval&& iv) {
        writer.add(0, live::WindowPartial{iv.index, 0, 0, 0,
                                          std::move(iv.flows),
                                          std::move(iv.bins)});
      });
      for (const auto& p : packets) {
        if (api::flow_shard_of(p, analysis.flow_definition(), kShards) == i) {
          pipeline.push(p);
        }
      }
      pipeline.finish();
      writer.finish({pipeline.summary(), {}});
    }

    // Merge: fold the K files, fit once, render (the aggregator half).
    agg::Merger merger;
    for (std::size_t i = 0; i < kShards; ++i) {
      partial_bytes += std::filesystem::file_size(partial_path(i));
      merger.add_file(partial_path(i));
    }
    agg::MergeResult merged = merger.finish();
    windows += merged.windows;
    if (merged.document != reference) {
      throw std::runtime_error(
          "aggregate_merge: merged document drifted from the "
          "single-machine reference");
    }
    ctx.count_packets(packets.size());  // one full logical pass per rep
  }
  for (std::size_t i = 0; i < kShards; ++i) {
    std::filesystem::remove(partial_path(i));
  }

  std::printf("trace: %zu packets over %.0f s, %zu shards, %zu reps\n",
              packets.size(), cfg.duration_s, kShards, reps);
  std::printf("partials: %.1f KiB per rep across %zu files\n",
              static_cast<double>(partial_bytes) / reps / 1024.0, kShards);
  std::printf("windows fitted post-merge: %llu per rep\n",
              static_cast<unsigned long long>(windows / reps));
  std::printf("merged document: %zu bytes, byte-identical to the "
              "single-machine run on every rep\n",
              reference.size());
  return 0;
}
