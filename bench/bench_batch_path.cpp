// Batched hot path: packets/sec through api::AnalysisPipeline fed per
// packet (push) vs per SoA batch (push_batch) at several batch sizes.
//
// The batched path hoists per-packet overheads — virtual source dispatch,
// flow-key hashing (computed for the whole batch up front, with the flow
// table slot prefetched ahead), interval-index checks (one bisection per
// interval-homogeneous run) and classifier drains (once per batch) — so
// throughput should rise with batch size and saturate around a few hundred
// packets. Results are bit-for-bit identical at every batch size (the
// differential tests in tests/api/test_batch_differential.cpp prove it);
// this bench records the speedup, batch_speedup_1024 being the headline.
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "api/api.hpp"
#include "common.hpp"
#include "net/packet_batch.hpp"
#include "trace/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] fbm::api::AnalysisConfig analysis_config() {
  fbm::api::AnalysisConfig cfg;
  cfg.interval_s(15.0).timeout_s(1.0).min_flows(0);
  return cfg;
}

}  // namespace

FBM_BENCH(batch_path) {
  using namespace fbm;
  bench::print_header("Batched SoA hot path (push vs push_batch)");

  trace::SyntheticConfig cfg;
  cfg.duration_s = ctx.quick() ? 60.0 : 120.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  cfg.seed = 20026;
  const auto packets = trace::generate_packets(cfg);
  std::printf("trace: %zu packets over %.0f s (~8 Mbps synthetic)\n\n",
              packets.size(), cfg.duration_s);
  std::printf("%-24s %10s %14s %10s\n", "path", "reports", "packets/s",
              "speedup");

  // Reference: the per-packet path.
  double pps_push = 0.0;
  std::size_t reports_push = 0;
  {
    api::AnalysisPipeline pipeline(analysis_config());
    const auto t0 = Clock::now();
    for (const auto& p : packets) pipeline.push(p);
    pipeline.finish();
    pps_push = static_cast<double>(packets.size()) / seconds_since(t0);
    reports_push = pipeline.take_reports().size();
    std::printf("%-24s %10zu %14.0f %10s\n", "push (per packet)",
                reports_push, pps_push, "-");
    ctx.report().set_metric("packets_per_s_push", pps_push);
  }

  for (const std::size_t batch_size : {std::size_t{64}, std::size_t{1024}}) {
    api::AnalysisPipeline pipeline(analysis_config());
    net::PacketBatch batch;
    batch.reserve(batch_size);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < packets.size(); i += batch_size) {
      batch.assign(std::span(packets).subspan(
          i, std::min(batch_size, packets.size() - i)));
      pipeline.push_batch(batch);
    }
    pipeline.finish();
    const double pps =
        static_cast<double>(packets.size()) / seconds_since(t0);
    const std::size_t reports = pipeline.take_reports().size();
    const double speedup = pps_push > 0.0 ? pps / pps_push : 0.0;

    char label[32];
    std::snprintf(label, sizeof label, "push_batch(%zu)", batch_size);
    std::printf("%-24s %10zu %14.0f %9.2fx\n", label, reports, pps,
                speedup);
    char metric[48];
    std::snprintf(metric, sizeof metric, "packets_per_s_batch_%zu",
                  batch_size);
    ctx.report().set_metric(metric, pps);
    std::snprintf(metric, sizeof metric, "batch_speedup_%zu", batch_size);
    ctx.report().set_metric(metric, speedup);
    ctx.count_packets(packets.size());
    ctx.count_intervals(reports);

    if (reports != reports_push) {
      std::printf("MISMATCH: %zu reports batched vs %zu per-packet\n",
                  reports, reports_push);
      return 1;
    }
  }

  std::printf("\ncheck: identical report counts; speedup grows with batch "
              "size (differential tests pin bit-for-bit equality)\n");
  return 0;
}
