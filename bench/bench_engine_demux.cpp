// Multi-link engine demux throughput: packets/sec through fbm::engine at
// 1, 4 and 16 links, against the plain single-link AnalysisPipeline on the
// same trace.
//
// At 1 match-all link the engine does the pipeline's per-packet work plus
// the demux (a routing-table miss-free lookup it skips entirely with no
// prefix links, the session scan, and one counter update), so its
// packets/sec should stay within 10% of the pipeline's — the ISSUE 5
// acceptance bar, recorded as demux_ratio_1link. With N disjoint prefix
// links every packet still feeds exactly one session, so the work per
// packet is one LPM lookup + one classify; the 4- and 16-link rows document
// how the scan over attached links scales.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "common.hpp"
#include "trace/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] fbm::api::AnalysisConfig analysis_config() {
  fbm::api::AnalysisConfig cfg;
  cfg.interval_s(15.0).timeout_s(1.0).min_flows(0);
  return cfg;
}

/// N disjoint prefix links covering the synthetic 10.x destination space.
[[nodiscard]] std::vector<fbm::engine::LinkSpec> disjoint_links(
    std::size_t n) {
  using namespace fbm;
  std::vector<engine::LinkSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    engine::LinkSpec spec;
    spec.name = "link" + std::to_string(i);
    // 8 /15 blocks cover 10.0.0.0-10.7.255.255; split each into halves
    // again (/16, /17, ...) as n grows.
    int extra = 0;
    std::size_t blocks = n;
    while (blocks > 8) {
      blocks /= 2;
      ++extra;
    }
    const auto block = static_cast<std::uint32_t>(i);
    const int len = 15 + extra;
    const std::uint32_t base =
        (10u << 24) | (block << (32 - static_cast<std::uint32_t>(len)));
    spec.rule = engine::MatchPrefixes{
        {net::Prefix(net::Ipv4Address(base), len)}};
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

FBM_BENCH(engine_demux) {
  using namespace fbm;
  bench::print_header("Multi-link engine demux (packets/sec vs pipeline)");

  trace::SyntheticConfig cfg;
  cfg.duration_s = ctx.quick() ? 60.0 : 120.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  cfg.seed = 20025;
  const auto packets = trace::generate_packets(cfg);

  std::printf("trace: %zu packets over %.0f s (~8 Mbps synthetic)\n\n",
              packets.size(), cfg.duration_s);
  std::printf("%-24s %10s %14s %10s\n", "configuration", "reports",
              "packets/s", "ratio");

  // Plain streaming pipeline: the reference rate.
  const auto t0 = Clock::now();
  const auto reference = api::analyze(packets, analysis_config());
  const double pipeline_pps =
      static_cast<double>(packets.size()) / seconds_since(t0);
  std::printf("%-24s %10zu %14.0f %10s\n", "pipeline (reference)",
              reference.size(), pipeline_pps, "-");
  ctx.count_packets(packets.size());
  ctx.count_intervals(reference.size());

  double ratio_1link = 0.0;
  struct Shape {
    const char* label;
    std::size_t links;  ///< 0 = one match-all link
  };
  const Shape shapes[] = {{"engine 1 link (all)", 0},
                          {"engine 4 links", 4},
                          {"engine 16 links", 16}};
  for (const auto& shape : shapes) {
    engine::EngineConfig config;
    config.mode = engine::EngineMode::batch;
    config.analysis = analysis_config();

    const auto t1 = Clock::now();
    engine::Engine eng(config);
    std::size_t reports = 0;
    eng.set_report_sink([&](engine::LinkReport&&) { ++reports; });
    if (shape.links == 0) {
      (void)eng.attach(engine::parse_link_spec("tap=all"));
    } else {
      for (auto& spec : disjoint_links(shape.links)) {
        (void)eng.attach(std::move(spec));
      }
    }
    // Chunk the trace through the batched demux path, as consume() would.
    net::PacketBatch batch;
    const std::size_t cap = config.batch_packets;
    for (std::size_t i = 0; i < packets.size(); i += cap) {
      batch.assign(std::span(packets).subspan(
          i, std::min(cap, packets.size() - i)));
      eng.push_batch(batch);
    }
    eng.finish();
    const double pps =
        static_cast<double>(packets.size()) / seconds_since(t1);
    const double ratio = pipeline_pps > 0.0 ? pps / pipeline_pps : 0.0;
    if (shape.links == 0) ratio_1link = ratio;

    std::printf("%-24s %10zu %14.0f %9.2fx\n", shape.label, reports, pps,
                ratio);
    char metric[48];
    std::snprintf(metric, sizeof metric, "packets_per_s_%zulink",
                  shape.links == 0 ? std::size_t{1} : shape.links);
    ctx.report().set_metric(metric, pps);
    ctx.count_packets(packets.size());
    ctx.count_intervals(reports);
  }

  ctx.report().set_metric("demux_ratio_1link", ratio_1link);
  std::printf("\nengine 1 match-all link vs pipeline: %.2fx (acceptance: "
              ">= 0.90)\n",
              ratio_1link);
  return 0;
}
