// Figure 1: cumulative number of flows during one analysis interval, with a
// zoom on the first instants showing the extra "arrivals" contributed by
// flows split at the interval boundary (/24 prefix definition).
//
// Paper: ~15,000 continued flows out of ~680,000 arrivals in 30 minutes; the
// arrival rate is constant after the initial step.
#include <cstdio>

#include "common.hpp"

FBM_BENCH(fig01_arrivals) {
  using namespace fbm;
  bench::print_header(
      "Figure 1: cumulative flow arrivals in one interval (/24 flows)");

  // Use the second interval of the busiest profile (index 2, 262 Mbps paper
  // scale) so that boundary splitting from interval 1 is visible.
  const auto run = bench::run_profile(2, bench::default_scale());
  if (run.prefix24.size() < 2) {
    std::printf("not enough intervals generated\n");
    return 1;
  }
  const auto& iv = run.prefix24[1].interval;

  const std::size_t total = iv.flows.size();
  const std::size_t continued = flow::continued_count(iv);
  std::printf("interval [%.0fs, %.0fs): %zu flow arrivals, %zu continued "
              "from previous interval (%.1f%%)\n\n",
              iv.start, iv.end(), total, continued,
              100.0 * static_cast<double>(continued) /
                  static_cast<double>(total));

  std::printf("cumulative arrivals (full interval, 1 s steps):\n");
  const auto cum = flow::cumulative_arrivals(iv, 1.0);
  for (std::size_t i = 0; i < cum.size(); i += 3) {
    std::printf("  t=%4zus  %6zu\n", i, cum[i]);
  }

  std::printf("\nzoom on the first second (20 ms steps):\n");
  const auto zoom = flow::cumulative_arrivals(iv, 0.02);
  for (std::size_t i = 0; i <= 50 && i < zoom.size(); i += 5) {
    std::printf("  t=%5.2fs  %6zu\n", 0.02 * static_cast<double>(i), zoom[i]);
  }

  std::printf("\ncheck: early step contains the %zu continued flows, then "
              "the slope is constant (Poisson arrivals)\n", continued);
  return 0;
}
