// Figures 3 and 4: distribution and auto-correlation of flow inter-arrival
// times for 5-tuple flows (Fig 3) and /24 prefix flows (Fig 4).
//
// Paper: the qq-plot against the exponential distribution is close to the
// diagonal and the ACF is near zero for lags 1-20, supporting Assumption 1
// (Poisson arrivals).
#include <cstdio>

#include "common.hpp"
#include "flow/flow_stats.hpp"

namespace {

void report(const char* title, const fbm::flow::IntervalData& iv) {
  using namespace fbm;
  std::printf("\n--- %s: %zu flows ---\n", title, iv.flows.size());
  const auto d = flow::diagnose_population(iv.flows, 20, 20);

  std::printf("qq-plot vs exponential (normalised axes):\n");
  std::printf("  %10s %12s\n", "measured", "exponential");
  for (std::size_t i = 0; i < d.interarrival_qq.size(); i += 2) {
    std::printf("  %10.3f %12.3f\n", d.interarrival_qq[i].sample,
                d.interarrival_qq[i].theoretical);
  }
  std::printf("  rms deviation from diagonal: %.3f  (KS stat %.4f)\n",
              stats::qq_rms_deviation(d.interarrival_qq),
              d.interarrival_ks.statistic);

  std::printf("auto-correlation of inter-arrival times (lags 1..20):\n  ");
  for (std::size_t lag = 1; lag <= 20; ++lag) {
    std::printf("%5.2f", d.interarrival_acf[lag]);
  }
  std::printf("\n  white-noise band: +-%.3f\n", d.white_noise_band);
}

}  // namespace

FBM_BENCH(fig03_04_interarrivals) {
  using namespace fbm;
  bench::print_header(
      "Figures 3-4: inter-arrival times vs exponential, both flow "
      "definitions");

  // Mid-utilization profile (136 Mbps paper scale), first full interval.
  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty() || run.prefix24.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  report("Figure 3: 5-tuple flows", run.five_tuple[0].interval);
  report("Figure 4: /24 prefix flows", run.prefix24[0].interval);

  std::printf("\ncheck: qq close to diagonal and |acf| << 1 for both "
              "definitions (Poisson arrivals hold)\n");
  return 0;
}
