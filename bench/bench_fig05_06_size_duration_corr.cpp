// Figures 5 and 6: auto-correlation of the flow-size sequence {S_n} and the
// flow-duration sequence {D_n}, for 5-tuple (Fig 5) and /24 (Fig 6) flows.
//
// Paper: the correlation drops to ~0 immediately after lag 0, supporting
// Assumption 2 (iid flow-rate functions).
#include <cstdio>

#include "common.hpp"
#include "flow/flow_stats.hpp"

namespace {

void report(const char* title, const fbm::flow::IntervalData& iv) {
  using namespace fbm;
  const auto d = flow::diagnose_population(iv.flows, 10, 20);
  std::printf("\n--- %s: %zu flows (band +-%.3f) ---\n", title,
              iv.flows.size(), d.white_noise_band);
  std::printf("  lag:       ");
  for (std::size_t lag = 0; lag <= 20; lag += 2) std::printf("%6zu", lag);
  std::printf("\n  durations: ");
  for (std::size_t lag = 0; lag <= 20; lag += 2) {
    std::printf("%6.2f", d.duration_acf[lag]);
  }
  std::printf("\n  sizes:     ");
  for (std::size_t lag = 0; lag <= 20; lag += 2) {
    std::printf("%6.2f", d.size_acf[lag]);
  }
  std::printf("\n");
}

}  // namespace

FBM_BENCH(fig05_06_size_duration_corr) {
  using namespace fbm;
  bench::print_header(
      "Figures 5-6: serial correlation of flow sizes and durations");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty() || run.prefix24.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  report("Figure 5: 5-tuple flows", run.five_tuple[0].interval);
  report("Figure 6: /24 prefix flows", run.prefix24[0].interval);

  std::printf("\ncheck: acf ~ 1 at lag 0 and ~0 beyond, for both sequences "
              "and both definitions (iid assumption holds)\n");
  return 0;
}
