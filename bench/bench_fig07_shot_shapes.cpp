// Figure 7: the simple shot models — rectangular (b=0), triangular (b=1),
// sublinear (b<1) and superlinear (b>1) flow-rate functions.
//
// Prints each shot's profile X(u) for a unit flow (S=1, D=1) plus the
// variance factor (b+1)^2/(2b+1) that multiplies lambda*E[S^2/D] in
// Corollary 2.
#include <cstdio>

#include "common.hpp"
#include "core/shot.hpp"

FBM_BENCH(fig07_shot_shapes) {
  using namespace fbm;
  bench::print_header("Figure 7: shot shapes (unit flow, S=1, D=1)");

  const double bs[] = {0.0, 0.5, 1.0, 2.0};
  const char* labels[] = {"(a) rectangular b=0", "(c) sublinear b=0.5",
                          "(b) triangular b=1", "(d) superlinear b=2"};

  std::printf("%-8s", "u");
  for (const char* l : labels) std::printf(" %20s", l);
  std::printf("\n");
  for (double u = 0.0; u <= 1.0001; u += 0.1) {
    std::printf("%-8.1f", u);
    for (double b : bs) {
      std::printf(" %20.3f", core::PowerShot(b).value(u, 1.0, 1.0));
    }
    std::printf("\n");
  }

  std::printf("\nvariance factor (b+1)^2/(2b+1) relative to rectangular:\n");
  for (double b : bs) {
    std::printf("  b=%.1f  factor %.3f\n", b,
                core::PowerShot(b).variance_factor());
  }
  std::printf("\ncheck: every profile integrates to S; factor is 1, 4/3, 9/5 "
              "for b=0,1,2 (Section V-C/D)\n");
  return 0;
}
