// Figure 8: auto-correlation coefficient of the total rate r(tau)/r(0) for
// tau in [0, 400] ms, computed by Theorem 2 for b = 0, 1, 2, for both flow
// definitions.
//
// Paper: the coefficient decreases slowly over [0, 400] ms — especially for
// /24 prefix flows whose durations are longer — which justifies using the
// instantaneous variance as a stand-in for the 200 ms-averaged variance.
// A second section evaluates eq. (7) directly: sigma_Delta^2 / sigma^2.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/model.hpp"

namespace {

void report(const char* title, const fbm::flow::IntervalData& iv) {
  using namespace fbm;
  std::printf("\n--- %s ---\n", title);
  std::printf("%8s", "tau(ms)");
  for (double b : {0.0, 1.0, 2.0}) std::printf("      b=%.0f", b);
  std::printf("\n");

  std::vector<double> taus;
  for (double t = 0.0; t <= 0.4001; t += 0.05) taus.push_back(t);

  std::vector<std::vector<double>> rows(taus.size());
  for (double b : {0.0, 1.0, 2.0}) {
    const auto model =
        core::ShotNoiseModel::from_interval(iv, core::power_shot(b));
    const auto rho = model.autocorrelation(taus);
    for (std::size_t i = 0; i < taus.size(); ++i) rows[i].push_back(rho[i]);
  }
  for (std::size_t i = 0; i < taus.size(); ++i) {
    std::printf("%8.0f", taus[i] * 1e3);
    for (double v : rows[i]) std::printf("%9.3f", v);
    std::printf("\n");
  }

  // Section V-F, eq. (7): averaging-interval effect on the variance.
  std::printf("  averaged-variance ratio sigma_Delta^2/sigma^2 (b=1): ");
  const auto model = core::ShotNoiseModel::from_interval(iv, core::triangular_shot());
  const double var = model.variance();
  for (double delta : {0.05, 0.2, 1.0}) {
    std::printf(" Delta=%.2fs: %.3f ", delta,
                model.averaged_variance(delta) / var);
  }
  std::printf("\n");
}

}  // namespace

FBM_BENCH(fig08_rate_acf) {
  using namespace fbm;
  bench::print_header(
      "Figure 8: auto-correlation of the total rate (Theorem 2)");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty() || run.prefix24.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  report("5-tuple flows", run.five_tuple[0].interval);
  report("/24 prefix flows", run.prefix24[0].interval);

  std::printf("\ncheck: rho decreases slowly on [0, 400] ms; /24 flows decay "
              "slower (longer durations); larger b decays faster at small "
              "tau\n");
  return 0;
}
