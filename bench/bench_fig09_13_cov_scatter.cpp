// Figures 9, 10, 12, 13: measured vs model coefficient of variation of the
// total rate, per analysis interval, across all seven traces.
//
//   Fig  9: 5-tuple flows, triangular shots (b=1)
//   Fig 10: 5-tuple flows, parabolic shots (b=2)
//   Fig 12: /24 prefix flows, rectangular shots (b=0)
//   Fig 13: /24 prefix flows, triangular shots (b=1)
//
// Paper findings reproduced as checks:
//  - points cluster by utilization (crosses <50, triangles 50-125, dots
//    >125 Mbps paper-scale), with low-utilization links showing the highest
//    CoV (~30%) and high-utilization links the lowest;
//  - for 5-tuple flows the parabolic shot fits best and the triangular shot
//    under-estimates; for /24 flows rectangular shots already capture the
//    variability;
//  - most points fall within the +-20% error band.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/moments.hpp"

namespace {

using fbm::bench::IntervalResult;
using fbm::bench::ProfileRun;

struct Point {
  double measured_cov;
  double model_cov;
  int cluster;
};

const char* marker(int cluster) {
  switch (cluster) {
    case 0: return "x";  // < 50 Mbps paper scale
    case 1: return "^";  // 50-125
    default: return "o"; // > 125
  }
}

void figure(const char* title, const std::vector<ProfileRun>& runs,
            bool prefix24, double b) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%3s %8s %12s %12s %9s\n", "", "cluster", "measured CoV",
              "model CoV", "error");
  std::vector<Point> points;
  for (const auto& run : runs) {
    const auto& results = prefix24 ? run.prefix24 : run.five_tuple;
    for (const auto& r : results) {
      Point p;
      p.measured_cov = r.measured.cov;
      p.model_cov = fbm::core::power_shot_cov(r.inputs, b);
      p.cluster = run.profile.cluster();
      points.push_back(p);
    }
  }
  std::size_t within20 = 0;
  std::size_t under = 0;
  double cluster_sum[3] = {0, 0, 0};
  std::size_t cluster_n[3] = {0, 0, 0};
  for (const auto& p : points) {
    const double err = p.measured_cov > 0.0
                           ? (p.model_cov - p.measured_cov) / p.measured_cov
                           : 0.0;
    if (std::abs(err) <= 0.2) ++within20;
    if (err < 0.0) ++under;
    cluster_sum[p.cluster] += p.measured_cov;
    ++cluster_n[p.cluster];
    std::printf("%3s %8d %11.1f%% %11.1f%% %+8.1f%%\n", marker(p.cluster),
                p.cluster, 100.0 * p.measured_cov, 100.0 * p.model_cov,
                100.0 * err);
  }
  std::printf("summary: %zu/%zu points within +-20%% band; %zu/%zu "
              "under-estimates\n",
              within20, points.size(), under, points.size());
  for (int c = 0; c < 3; ++c) {
    if (cluster_n[c] > 0) {
      std::printf("  cluster %d (%s): mean measured CoV %.1f%% over %zu "
                  "intervals\n",
                  c, c == 0 ? "<50 Mbps" : (c == 1 ? "50-125" : ">125"),
                  100.0 * cluster_sum[c] / static_cast<double>(cluster_n[c]),
                  cluster_n[c]);
    }
  }
}

}  // namespace

FBM_BENCH(fig09_13_cov_scatter) {
  using namespace fbm;
  bench::print_header(
      "Figures 9/10/12/13: measured vs model coefficient of variation");

  const auto runs = bench::run_all_profiles(bench::default_scale());

  figure("Figure 9: 5-tuple flows, triangular shots (b=1)", runs, false, 1.0);
  figure("Figure 10: 5-tuple flows, parabolic shots (b=2)", runs, false, 2.0);
  figure("Figure 12: /24 prefix flows, rectangular shots (b=0)", runs, true,
         0.0);
  figure("Figure 13: /24 prefix flows, triangular shots (b=1)", runs, true,
         1.0);

  std::printf("\ncheck: CoV decreases from cluster 0 to cluster 2 (smoothing "
              "with utilization); for 5-tuple flows b=1 mostly "
              "under-estimates while b=2 over-corrects (fitted b sits "
              "between, paper: ~2); /24 aggregates need a smaller b than "
              "5-tuple flows\n");
  return 0;
}
