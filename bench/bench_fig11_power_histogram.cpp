// Figure 11: histogram of the fitted shot power b across all analysis
// intervals (5-tuple flows).
//
// Paper: the distribution of b spans roughly 0..8 with an average around 2,
// i.e. parabolic shots are the best single choice for 5-tuple flows.
#include <cstdio>

#include "common.hpp"
#include "core/fitting.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

FBM_BENCH(fig11_power_histogram) {
  using namespace fbm;
  bench::print_header(
      "Figure 11: fitted shot power b across intervals (5-tuple flows)");

  const auto runs = bench::run_all_profiles(bench::default_scale());

  stats::Histogram hist(0.0, 8.0, 16);
  stats::RunningStats bs;
  std::size_t skipped = 0;
  for (const auto& run : runs) {
    for (const auto& r : run.five_tuple) {
      const auto b = core::fit_power_b(r.measured.variance_bps2, r.inputs);
      if (!b) {
        ++skipped;
        continue;
      }
      hist.add(*b);
      bs.add(*b);
    }
  }

  std::printf("intervals fitted: %zu (skipped %zu degenerate)\n\n",
              bs.count(), skipped);
  std::printf("%s\n", hist.ascii(40).c_str());
  std::printf("mean b = %.2f, median-ish mode bin center = %.2f, "
              "range [%.2f, %.2f]\n",
              bs.mean(), hist.bin_center(hist.mode_bin()), bs.min(), bs.max());
  std::printf("\ncheck: b spans ~0..7 with a mean around 1.5 (paper: mean 2 "
              "on the real OC-12 traces) — superlinear shots dominate, i.e. "
              "TCP's ramp-up is visible in the variance\n");
  return 0;
}
