// Figure 14: predicted vs measured total rate along the trace, for the
// model-driven predictor (top panel of the paper's figure) and the
// measurement-driven predictor (bottom panel).
//
// Paper: iota = 10 s on a 30-min trace; both predictors track the measured
// rate closely. Scaled run: iota = 2 s on a 240 s trace.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/model.hpp"
#include "measure/rate_meter.hpp"
#include "predict/predictor.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"

FBM_BENCH(fig14_prediction_series) {
  using namespace fbm;
  bench::print_header("Figure 14: predicted vs measured total rate");

  // Same higher-rate regime as the Table II bench (CoV comparable to the
  // paper's ~130 Mbps trace).
  auto scale = bench::default_scale();
  scale.rate_scale = 1.0;
  const auto run = bench::run_profile(1, scale);
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto model = core::ShotNoiseModel::from_interval(
      run.five_tuple[0].interval, core::triangular_shot());
  const auto base = measure::measure_rate(run.packets, 0.0, run.horizon, 0.2);
  const auto series = stats::resample(base, 10);  // iota = 2 s
  const double mean = stats::mean(series.values);
  const std::size_t max_order = 6;

  std::vector<double> taus;
  for (std::size_t k = 0; k <= max_order; ++k) {
    taus.push_back(k * series.delta);
  }
  const auto model_acf = model.autocorrelation(taus);
  const auto m1 = predict::select_order(model_acf, series.values, max_order);
  const auto rep_model = predict::evaluate_predictor(
      predict::MovingAveragePredictor(model_acf, m1, mean), series.values);

  const auto data_acf =
      stats::autocorrelation_series(series.values, max_order);
  const auto m2 = predict::select_order(data_acf, series.values, max_order);
  const auto rep_data = predict::evaluate_predictor(
      predict::MovingAveragePredictor(data_acf, m2, mean), series.values);

  std::printf("%8s %14s   model pred (M=%zu)   data pred (M=%zu)\n", "t (s)",
              "measured Mbps", m1, m2);
  for (std::size_t i = std::max(m1, m2); i < series.size(); i += 4) {
    std::printf("%8.1f %14.2f %20.2f %20.2f\n", series.time_at(i),
                series.values[i] / 1e6, rep_model.predictions[i] / 1e6,
                rep_data.predictions[i] / 1e6);
  }
  std::printf("\nerrors: model-driven %.2f%%, data-driven %.2f%%\n",
              100.0 * rep_model.relative_error,
              100.0 * rep_data.relative_error);
  std::printf("check: both predictions hug the measured series (paper "
              "Figure 14)\n");
  return 0;
}
