// Live sliding-window monitor throughput: windows/sec and packets/sec of
// live::WindowedEstimator at several window widths (and one overlapping
// configuration), against the plain streaming AnalysisPipeline on the same
// trace.
//
// With tiling windows the estimator does the same per-packet work as the
// pipeline — one classifier add, one rate-bin add — plus the window
// bookkeeping, so its packets/sec should stay within a few percent of the
// pipeline's (the ISSUE 4 acceptance bar is >= 90% at the default width).
// Overlapping windows multiply the per-packet work by ceil(window/stride);
// the overlap row documents that cost honestly.
#include <chrono>
#include <cstdio>
#include <vector>

#include "api/api.hpp"
#include "common.hpp"
#include "live/live.hpp"
#include "trace/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

FBM_BENCH(live_monitor) {
  using namespace fbm;
  bench::print_header("Live sliding-window monitor (windows/sec, packets/sec)");

  trace::SyntheticConfig cfg;
  cfg.duration_s = ctx.quick() ? 60.0 : 120.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  cfg.seed = 20021;
  const auto packets = trace::generate_packets(cfg);
  const double default_width = 15.0;

  std::printf("trace: %zu packets over %.0f s (~8 Mbps synthetic)\n\n",
              packets.size(), cfg.duration_s);
  std::printf("%-22s %12s %14s %12s\n", "configuration", "windows",
              "packets/s", "windows/s");

  // Plain streaming pipeline at the default width: the reference rate.
  api::AnalysisConfig pipe_cfg;
  pipe_cfg.interval_s(default_width).timeout_s(1.0).min_flows(0);
  const auto t0 = Clock::now();
  const auto reference = api::analyze(packets, pipe_cfg);
  const double pipeline_s = seconds_since(t0);
  const double pipeline_pps =
      static_cast<double>(packets.size()) / pipeline_s;
  std::printf("%-22s %12zu %14.0f %12s\n", "pipeline (reference)",
              reference.size(), pipeline_pps, "-");
  ctx.count_packets(packets.size());
  ctx.count_intervals(reference.size());

  double default_pps = 0.0;
  struct Shape {
    double width;
    double stride;
  };
  const Shape shapes[] = {{5.0, 0.0},
                          {default_width, 0.0},
                          {30.0, 0.0},
                          {default_width, 5.0}};  // 3x overlap
  for (const auto& shape : shapes) {
    live::LiveConfig config;
    config.window_s = shape.width;
    config.stride_s = shape.stride;
    config.analysis.timeout_s(1.0);

    const auto t1 = Clock::now();
    live::WindowedEstimator estimator(config);
    for (const auto& p : packets) estimator.push(p);
    estimator.finish();
    const double elapsed = seconds_since(t1);
    const auto& c = estimator.counters();
    const double pps = static_cast<double>(packets.size()) / elapsed;
    const double wps = static_cast<double>(c.windows) / elapsed;
    if (shape.width == default_width && shape.stride == 0.0) {
      default_pps = pps;
    }

    char label[48];
    if (shape.stride > 0.0) {
      std::snprintf(label, sizeof label, "live w=%.0fs stride=%.0fs",
                    shape.width, shape.stride);
    } else {
      std::snprintf(label, sizeof label, "live w=%.0fs", shape.width);
    }
    std::printf("%-22s %12llu %14.0f %12.1f\n", label,
                static_cast<unsigned long long>(c.windows), pps, wps);
    char metric[64];
    std::snprintf(metric, sizeof metric, "packets_per_s_%s", label + 5);
    for (char* ch = metric; *ch != '\0'; ++ch) {
      if (*ch == '=' || *ch == '.' || *ch == ' ') *ch = '_';
    }
    ctx.report().set_metric(metric, pps);
    ctx.count_packets(packets.size());
    ctx.report().counters.windows += c.windows;
    ctx.count_flows(c.flows);
  }

  const double ratio = pipeline_pps > 0.0 ? default_pps / pipeline_pps : 0.0;
  ctx.report().set_metric("pipeline_ratio", ratio);
  std::printf("\nlive w=%.0fs vs pipeline: %.2fx (acceptance: >= 0.90)\n",
              default_width, ratio);
  return 0;
}
