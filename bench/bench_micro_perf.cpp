// Micro-benchmarks (google-benchmark): throughput of the pipeline stages an
// operator would run online — packet classification, parameter estimation,
// model evaluation, prediction, and traffic generation.
#include <benchmark/benchmark.h>

#include "core/fitting.hpp"
#include "core/model.hpp"
#include "flow/classifier.hpp"
#include "gen/traffic_gen.hpp"
#include "measure/rate_meter.hpp"
#include "predict/predictor.hpp"
#include "predict/toeplitz.hpp"
#include "stats/autocorrelation.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace fbm;

const std::vector<net::PacketRecord>& shared_packets() {
  static const auto packets = [] {
    trace::SyntheticConfig cfg;
    cfg.duration_s = 30.0;
    cfg.apply_defaults();
    cfg.target_utilization_bps(10e6);
    return trace::generate_packets(cfg);
  }();
  return packets;
}

const std::vector<flow::FlowRecord>& shared_flows() {
  static const auto flows =
      flow::classify_all<flow::FiveTupleKey>(shared_packets());
  return flows;
}

void BM_Classify5Tuple(benchmark::State& state) {
  const auto& packets = shared_packets();
  for (auto _ : state) {
    flow::FiveTupleClassifier c;
    for (const auto& p : packets) c.add(p);
    c.flush();
    benchmark::DoNotOptimize(c.flows().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_Classify5Tuple)->Unit(benchmark::kMillisecond);

void BM_ClassifyPrefix24(benchmark::State& state) {
  const auto& packets = shared_packets();
  for (auto _ : state) {
    flow::Prefix24Classifier c;
    for (const auto& p : packets) c.add(p);
    c.flush();
    benchmark::DoNotOptimize(c.flows().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_ClassifyPrefix24)->Unit(benchmark::kMillisecond);

void BM_RateBinning(benchmark::State& state) {
  const auto& packets = shared_packets();
  for (auto _ : state) {
    const auto series = measure::measure_rate(packets, 0.0, 30.0, 0.2);
    benchmark::DoNotOptimize(series.values.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_RateBinning)->Unit(benchmark::kMillisecond);

void BM_OnlineEstimator(benchmark::State& state) {
  const auto& flows = shared_flows();
  for (auto _ : state) {
    core::OnlineEstimator est(0.05);
    for (const auto& f : flows) est.observe(f);
    benchmark::DoNotOptimize(est.inputs().lambda);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows.size()));
}
BENCHMARK(BM_OnlineEstimator)->Unit(benchmark::kMicrosecond);

void BM_ModelVariance(benchmark::State& state) {
  const auto samples = core::to_samples(shared_flows());
  const core::ShotNoiseModel model(100.0, samples,
                                   core::power_shot(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.variance());
  }
}
BENCHMARK(BM_ModelVariance)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_ModelAutocovariance(benchmark::State& state) {
  const auto samples = core::to_samples(shared_flows());
  const core::ShotNoiseModel model(100.0, samples, core::triangular_shot());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.autocovariance(0.2));
  }
}
BENCHMARK(BM_ModelAutocovariance)->Unit(benchmark::kMicrosecond);

void BM_LevinsonDurbin(benchmark::State& state) {
  const std::size_t order = static_cast<std::size_t>(state.range(0));
  std::vector<double> acf(order + 1);
  for (std::size_t k = 0; k <= order; ++k) {
    acf[k] = std::pow(0.85, static_cast<double>(k));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::levinson_durbin(acf, order));
  }
}
BENCHMARK(BM_LevinsonDurbin)->Arg(4)->Arg(16)->Arg(64);

void BM_TrafficGeneration(benchmark::State& state) {
  gen::GeneratorConfig cfg;
  cfg.duration_s = 30.0;
  cfg.lambda = 200.0;
  cfg.shot = core::triangular_shot();
  cfg.resample_pool = core::to_samples(shared_flows());
  for (auto _ : state) {
    const auto out = gen::generate(cfg);
    benchmark::DoNotOptimize(out.series.values.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 150 *
                          30);
}
BENCHMARK(BM_TrafficGeneration)->Unit(benchmark::kMillisecond);

void BM_SyntheticTraceGeneration(benchmark::State& state) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 10.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  for (auto _ : state) {
    trace::GenerationReport rep;
    const auto packets = trace::generate_packets(cfg, &rep);
    benchmark::DoNotOptimize(packets.size());
  }
}
BENCHMARK(BM_SyntheticTraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
