// Micro-benchmarks: throughput of the pipeline stages an operator would run
// online — packet classification, parameter estimation, model evaluation,
// prediction, and traffic generation — timed with the fbm::perf stopwatch
// (no external benchmark framework needed).
//
// The headline measurement is the flow-classification A/B: the production
// core::FlatHashMap active-flow table against a std::unordered_map build of
// the same classifier, on the same packets in the same process. Both rates
// land in BENCH_micro_perf.json (classify_*_flat_pps / classify_*_std_pps),
// so any PR can prove the flat table is still the faster choice. The
// bench's packets_per_s — the number the CI baseline gates — counts every
// packet the fixed-wall-time classification loops get through, so it drops
// in proportion when classification slows down.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "api/api.hpp"
#include "common.hpp"
#include "core/fitting.hpp"
#include "core/model.hpp"
#include "flow/classifier.hpp"
#include "gen/traffic_gen.hpp"
#include "measure/rate_meter.hpp"
#include "predict/predictor.hpp"
#include "predict/toeplitz.hpp"
#include "stats/autocorrelation.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace fbm;

template <typename K, typename V, typename H>
using StdUnorderedMap = std::unordered_map<K, V, H>;

std::vector<net::PacketRecord> make_packets(bool quick) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = quick ? 10.0 : 30.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  return trace::generate_packets(cfg);
}

/// Repeats `body` until it has run for at least `min_s` (and at least three
/// times), returning executions per second.
template <typename Body>
double rate_per_s(double min_s, Body&& body) {
  perf::Stopwatch watch;
  std::uint64_t reps = 0;
  do {
    body();
    ++reps;
  } while (watch.elapsed_s() < min_s || reps < 3);
  return static_cast<double>(reps) / watch.elapsed_s();
}

/// Classification packets/sec with the given active-flow table type. Both
/// tables get the same reserve-ahead the production pipeline configures
/// (AnalysisConfig::reserve_flows), so the A/B measures steady classification
/// rather than allocator ramp-up; best-of-three trials squeezes out
/// scheduler noise so the flat-vs-std comparison is stable run to run.
template <typename Key, template <typename, typename, typename> class Map>
double classify_rate(bench::Context& ctx,
                     const std::vector<net::PacketRecord>& packets,
                     double min_s, std::uint64_t* flows_out) {
  flow::ClassifierOptions options;
  options.reserve_flows = api::AnalysisConfig{}.reserve_flows();
  // One long-lived classifier, as in a production monitor: each pass
  // replays the trace and flush() ends the capture, so the timed loop
  // measures steady classification, not table construction.
  flow::FlowClassifier<Key, Map> classifier(options);
  std::uint64_t flows = 0;
  const auto one_pass = [&] {
    for (const auto& p : packets) classifier.add(p);
    classifier.flush();
    flows += classifier.take_flows().size();
    // Credit every classified packet, so the report's wall-normalized
    // packets_per_s (the number the CI baseline gates) scales with the
    // classification rate: the timed loops run for fixed wall time, so a
    // slower classifier completes fewer passes and counts fewer packets.
    ctx.count_packets(packets.size());
  };
  one_pass();  // warm-up: fault in the table and train the branch predictor
  double best_runs_per_s = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    best_runs_per_s = std::max(best_runs_per_s, rate_per_s(min_s, one_pass));
  }
  if (flows_out != nullptr) *flows_out = flows;
  return best_runs_per_s * static_cast<double>(packets.size());
}

}  // namespace

FBM_BENCH(micro_perf) {
  bench::print_header("Micro-benchmarks: per-stage throughput");

  const bool quick = ctx.quick();
  const double min_s = quick ? 0.2 : 0.5;
  const auto packets = make_packets(quick);
  const auto flows = flow::classify_all<flow::FiveTupleKey>(packets);
  std::printf("workload: %zu packets, %zu 5-tuple flows\n\n", packets.size(),
              flows.size());

  // --- classification A/B: FlatHashMap (production) vs unordered_map ---
  struct ClassifyRow {
    const char* label;
    const char* metric_flat;
    const char* metric_std;
    double flat_pps;
    double std_pps;
  };
  std::uint64_t flows_flat = 0;
  std::uint64_t flows_std = 0;
  ClassifyRow rows[] = {
      {"5-tuple", "classify_5tuple_flat_pps", "classify_5tuple_std_pps",
       classify_rate<flow::FiveTupleKey, core::FlatHashMap>(ctx, packets,
                                                            min_s,
                                                            &flows_flat),
       classify_rate<flow::FiveTupleKey, StdUnorderedMap>(ctx, packets,
                                                          min_s,
                                                          &flows_std)},
      {"/24 prefix", "classify_prefix24_flat_pps",
       "classify_prefix24_std_pps",
       classify_rate<flow::PrefixKey<24>, core::FlatHashMap>(ctx, packets,
                                                             min_s, nullptr),
       classify_rate<flow::PrefixKey<24>, StdUnorderedMap>(ctx, packets,
                                                           min_s, nullptr)},
  };

  std::printf("%-12s %16s %16s %9s\n", "classifier", "flat (pkts/s)",
              "std (pkts/s)", "speedup");
  for (const auto& row : rows) {
    std::printf("%-12s %16.0f %16.0f %8.2fx\n", row.label, row.flat_pps,
                row.std_pps, row.flat_pps / row.std_pps);
    ctx.report().set_metric(row.metric_flat, row.flat_pps);
    ctx.report().set_metric(row.metric_std, row.std_pps);
  }
  // The headline comparison is the 5-tuple definition — the paper's flow
  // definition 1 and the table the pipeline actually stresses (thousands of
  // concurrent flows). The /24 table holds only ~100 aggregates, so both
  // maps run at the classifier's per-packet floor there.
  const bool flat_wins = rows[0].flat_pps >= rows[0].std_pps;
  if (flows_flat == 0 || flows_std == 0) {
    std::printf("classification produced no flows\n");
    return 1;
  }
  ctx.report().set_metric("classify_flat_vs_std_speedup",
                          rows[0].flat_pps / rows[0].std_pps);

  // --- the remaining online stages ---
  const double binning_runs = rate_per_s(min_s, [&] {
    const auto series = measure::measure_rate(packets, 0.0, 30.0, 0.2);
    if (series.values.empty()) std::printf("empty rate series\n");
  });
  const double binning_pps =
      binning_runs * static_cast<double>(packets.size());
  ctx.report().set_metric("rate_binning_pps", binning_pps);

  double lambda_sink = 0.0;
  const double estimator_runs = rate_per_s(min_s, [&] {
    core::OnlineEstimator est(0.05);
    for (const auto& f : flows) est.observe(f);
    lambda_sink += est.inputs().lambda;
  });
  const double estimator_fps =
      estimator_runs * static_cast<double>(flows.size());
  ctx.report().set_metric("online_estimator_flows_per_s", estimator_fps);

  const auto samples = core::to_samples(flows);
  const core::ShotNoiseModel model(100.0, samples, core::triangular_shot());
  double variance_sink = 0.0;
  const double variance_calls = rate_per_s(min_s, [&] {
    variance_sink += model.variance();
  });
  ctx.report().set_metric("model_variance_calls_per_s", variance_calls);

  double acov_sink = 0.0;
  const double acov_calls = rate_per_s(min_s, [&] {
    acov_sink += model.autocovariance(0.2);
  });
  ctx.report().set_metric("model_autocovariance_calls_per_s", acov_calls);

  std::vector<double> acf(65);
  for (std::size_t k = 0; k < acf.size(); ++k) {
    acf[k] = std::pow(0.85, static_cast<double>(k));
  }
  double coeff_sink = 0.0;
  const double levinson_calls = rate_per_s(min_s, [&] {
    coeff_sink += predict::levinson_durbin(acf, 64).coefficients[0];
  });
  ctx.report().set_metric("levinson_durbin_64_calls_per_s", levinson_calls);

  gen::GeneratorConfig gen_cfg;
  gen_cfg.duration_s = quick ? 10.0 : 30.0;
  gen_cfg.lambda = 200.0;
  gen_cfg.shot = core::triangular_shot();
  gen_cfg.resample_pool = samples;
  const double gen_runs = rate_per_s(min_s, [&] {
    const auto out = gen::generate(gen_cfg);
    if (out.series.values.empty()) std::printf("empty generated series\n");
  });
  ctx.report().set_metric("traffic_gen_runs_per_s", gen_runs);

  std::printf("\n%-34s %16.0f\n", "rate binning (pkts/s)", binning_pps);
  std::printf("%-34s %16.0f\n", "online estimator (flows/s)", estimator_fps);
  std::printf("%-34s %16.0f\n", "model variance (calls/s)", variance_calls);
  std::printf("%-34s %16.0f\n", "model autocov (calls/s)", acov_calls);
  std::printf("%-34s %16.0f\n", "levinson-durbin p=64 (calls/s)",
              levinson_calls);
  std::printf("%-34s %16.2f\n", "traffic generation (runs/s)", gen_runs);
  std::printf("(sinks: %g %g %g %g)\n", lambda_sink, variance_sink,
              acov_sink, coeff_sink);

  std::printf("\ncheck: flat-hash 5-tuple classification at least matches "
              "the unordered_map baseline measured in this run — %s\n",
              flat_wins ? "yes" : "NO (investigate!)");
  return 0;
}
