// Ablation (Section VIII): one shot for everyone vs one shot per class.
//
// Assumption 2 forces a single shot distribution; the paper's proposed
// refinement is classes with a different shot each. This bench compares,
// on the same interval:
//   (1) the best single-class power shot (fitted b),
//   (2) a two-class mice/elephants model with per-class fitted shape
//       (rectangular for mice below the TCP window ramp, fitted power for
//       elephants),
// and reports each model's CoV against the measured one, plus the per-class
// contribution shares that only the multi-class model can provide.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "core/multiclass.hpp"

FBM_BENCH(multiclass) {
  using namespace fbm;
  bench::print_header(
      "Ablation: single-class vs mice/elephants multi-class model");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto& r = run.five_tuple[0];
  const double measured_cov = r.measured.cov;

  // (1) single class, fitted b.
  const auto b_single = core::fit_power_b(r.measured.variance_bps2, r.inputs);
  const double cov_single =
      core::power_shot_cov(r.inputs, b_single.value_or(1.0));

  // (2) two classes split at 30 kB; sweep the elephant b for the best match
  // while mice stay rectangular (their few packets carry no ramp).
  const double threshold = 30e3;
  double best_b = 0.0;
  double best_err = 1e18;
  for (double b = 0.0; b <= 6.0; b += 0.25) {
    const auto mc = core::split_by_size(r.interval, threshold,
                                        core::rectangular_shot(),
                                        core::power_shot(b));
    const double err = std::abs(mc.cov() - measured_cov);
    if (err < best_err) {
      best_err = err;
      best_b = b;
    }
  }
  const auto mc = core::split_by_size(r.interval, threshold,
                                      core::rectangular_shot(),
                                      core::power_shot(best_b));

  std::printf("measured CoV: %.1f%%\n\n", 100.0 * measured_cov);
  std::printf("%-34s %10s %12s\n", "model", "CoV", "error");
  std::printf("%-34s %9.1f%% %+11.1f%%\n", "single class (fitted b)",
              100.0 * cov_single,
              100.0 * (cov_single - measured_cov) / measured_cov);
  std::printf("%-34s %9.1f%% %+11.1f%%\n",
              "two-class (rect mice + power eleph.)", 100.0 * mc.cov(),
              100.0 * (mc.cov() - measured_cov) / measured_cov);

  std::printf("\nsingle-class fitted b: %.2f; elephant-class fitted b: %.2f\n",
              b_single.value_or(-1.0), best_b);
  std::printf("\nper-class attribution (multi-class only):\n");
  for (std::size_t i = 0; i < mc.classes(); ++i) {
    std::printf("  %-10s lambda %8.1f /s  mean share %5.1f%%  variance "
                "share %5.1f%%\n",
                mc.class_name(i).c_str(), mc.class_model(i).lambda(),
                100.0 * mc.mean_share(i), 100.0 * mc.variance_share(i));
  }
  std::printf("\ncheck: both models can match the CoV, but the multi-class "
              "model attributes the variance (elephants dominate) and does "
              "it with an interpretable per-class shape\n");
  return 0;
}
