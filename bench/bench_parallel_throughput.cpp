// Sharded-pipeline throughput: packets/sec of ParallelAnalysisPipeline at
// 1, 2, 4 and 8 worker shards on a synthetic 8 Mbps backbone trace, against
// the serial AnalysisPipeline baseline.
//
// The sharded pipeline's merge is deterministic (flow-key-hashed shards,
// ByStart re-sort, exact integral bin sums), so besides timing each run this
// bench verifies that every shard count reproduces the serial reports bit
// for bit — a throughput number that silently changed the answers would be
// worthless. Speedup tracks the physical core count: on a single-core
// container every configuration runs at roughly the serial rate (the extra
// shards just time-slice), while on a 4-core machine the 4-shard row is the
// one the ISSUE's >= 2x criterion refers to.
#include <chrono>
#include <cstdio>
#include <vector>

#include "api/api.hpp"
#include "common.hpp"
#include "trace/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] bool reports_identical(
    const std::vector<fbm::api::AnalysisReport>& a,
    const std::vector<fbm::api::AnalysisReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.interval_index != y.interval_index || x.start_s != y.start_s ||
        x.inputs.flows != y.inputs.flows ||
        x.inputs.lambda != y.inputs.lambda ||
        x.inputs.mean_size_bits != y.inputs.mean_size_bits ||
        x.inputs.mean_s2_over_d != y.inputs.mean_s2_over_d ||
        x.measured.mean_bps != y.measured.mean_bps ||
        x.measured.variance_bps2 != y.measured.variance_bps2 ||
        x.shot_b != y.shot_b || x.shot_b_used != y.shot_b_used ||
        x.plan.capacity_bps != y.plan.capacity_bps) {
      return false;
    }
  }
  return true;
}

}  // namespace

FBM_BENCH(parallel_throughput) {
  using namespace fbm;
  bench::print_header("Sharded pipeline throughput (packets/sec)");

  // Synthetic 8 Mbps trace, long enough that per-run timing noise is small.
  trace::SyntheticConfig cfg;
  cfg.duration_s = 120.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  cfg.seed = 20020;
  const auto packets = trace::generate_packets(cfg);

  api::AnalysisConfig base;
  base.interval_s(15.0).timeout_s(1.0).min_flows(0);

  std::printf("trace: %zu packets over %.0f s (~8 Mbps synthetic)\n\n",
              packets.size(), cfg.duration_s);
  std::printf("%-14s %14s %12s %10s %10s\n", "pipeline", "packets/s",
              "elapsed s", "speedup", "identical");

  // Serial baseline (also the reference output).
  const auto t0 = Clock::now();
  const auto reference = api::analyze(packets, base);
  const double serial_s = seconds_since(t0);
  const double serial_pps = static_cast<double>(packets.size()) / serial_s;
  std::printf("%-14s %14.0f %12.3f %10s %10s\n", "serial", serial_pps,
              serial_s, "1.00x", "-");

  bool all_identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto config = base;
    config.threads(threads);
    // Construct the sharded pipeline directly: api::analyze would fall back
    // to the serial path at threads == 1, and the single-shard row is the
    // honest baseline for the hand-off + merge overhead.
    const auto t1 = Clock::now();
    api::ParallelAnalysisPipeline pipeline(config);
    for (const auto& p : packets) pipeline.push(p);
    pipeline.finish();
    const auto reports = pipeline.take_reports();
    const double elapsed = seconds_since(t1);
    const double pps = static_cast<double>(packets.size()) / elapsed;
    const bool same = reports_identical(reference, reports);
    all_identical = all_identical && same;
    char label[32];
    std::snprintf(label, sizeof label, "%zu shard%s", threads,
                  threads == 1 ? "" : "s");
    std::printf("%-14s %14.0f %12.3f %9.2fx %10s\n", label, pps, elapsed,
                serial_s / elapsed, same ? "yes" : "NO");
  }

  // Serial reference plus the four shard configurations each classify the
  // whole trace.
  ctx.count_packets(5 * packets.size());

  std::printf("\nall shard counts bit-for-bit identical to serial: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}
