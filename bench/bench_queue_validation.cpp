// Section V-E application check: does the Gaussian dimensioning rule hold up
// when the dimensioned link is actually simulated?
//
// For each target congestion probability eps, size the link with
// C = E[R] + q(1-eps)*sigma (triangular shots), then play model-generated
// traffic through a fluid queue of capacity C and compare the realised
// fraction of congested time against eps, with and without a buffer
// absorbing the overshoot (the paper's "short-term congestion is absorbed
// by the buffers" remark).
#include <cstdio>

#include "common.hpp"
#include "core/model.hpp"
#include "dimension/provisioning.hpp"
#include "gen/traffic_gen.hpp"
#include "measure/fluid_queue.hpp"

FBM_BENCH(queue_validation) {
  using namespace fbm;
  bench::print_header(
      "Dimensioning validation: Gaussian rule vs simulated fluid queue");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto model = core::ShotNoiseModel::from_interval(
      run.five_tuple[0].interval, core::triangular_shot());

  // Long synthetic sample of the modeled process.
  auto gen_cfg = gen::from_model(model, 600.0, 0.2);
  gen_cfg.seed = 777;
  const auto traffic = gen::generate(gen_cfg);

  std::printf("traffic: mean %.2f Mbps, model mean %.2f Mbps\n\n",
              stats::series_mean(traffic.series) / 1e6,
              model.mean_rate() / 1e6);

  std::printf("%8s %14s | %22s | %22s\n", "eps", "capacity",
              "bufferless", "20 ms buffer");
  std::printf("%8s %14s | %10s %11s | %10s %11s\n", "", "", "congested",
              "loss", "congested", "loss");
  for (double eps : {0.2, 0.1, 0.05, 0.01}) {
    const auto plan = dimension::plan_link(model.inputs(), 1.0, eps);
    const measure::FluidQueueConfig no_buffer{plan.capacity_bps, 0.0};
    const measure::FluidQueueConfig buffered{
        plan.capacity_bps, plan.capacity_bps * 0.020};  // 20 ms drain time
    const auto a = run_fluid_queue(traffic.series, no_buffer);
    const auto b = run_fluid_queue(traffic.series, buffered);
    std::printf("%8.2f %11.2f Mbps | %9.3f%% %10.4f%% | %9.3f%% %10.4f%%\n",
                eps, plan.capacity_bps / 1e6, 100.0 * a.congested_fraction,
                100.0 * a.loss_fraction, 100.0 * b.congested_fraction,
                100.0 * b.loss_fraction);
  }

  std::printf("\ncheck: realised congestion tracks eps at moderate targets "
              "but exceeds it for small eps — the same right-skew the "
              "rate-distribution bench quantifies (Gaussian tails are "
              "optimistic); buffering trims the loss below the congested "
              "fraction\n");
  return 0;
}
