// Section V-E: first-order distribution of the total rate.
//
// The paper derives the LST of R(t) (Theorem 1), approximates its law by a
// Gaussian for dimensioning, and notes that better tail estimates need the
// full distribution (or large deviations). This bench inverts the
// characteristic function numerically and compares the exact pdf, its
// quantiles, and the capacity choices against the Gaussian approximation —
// plus the empirical histogram of a measured trace as ground truth.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/distribution.hpp"
#include "core/model.hpp"
#include "stats/quantile.hpp"

FBM_BENCH(rate_distribution) {
  using namespace fbm;
  bench::print_header(
      "Section V-E: exact rate distribution vs Gaussian approximation");

  const auto run = bench::run_profile(4, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto& r = run.five_tuple[0];
  const auto model =
      core::ShotNoiseModel::from_interval(r.interval, core::triangular_shot());
  const auto g = model.gaussian();
  const auto pdf = core::rate_distribution(model);

  std::printf("model: mean %.2f Mbps, stddev %.2f Mbps (CoV %.1f%%)\n",
              model.mean_rate() / 1e6, model.stddev() / 1e6,
              100.0 * model.cov());
  std::printf("inverted pdf: mean %.2f Mbps, stddev %.2f Mbps\n\n",
              pdf.mean() / 1e6, pdf.stddev() / 1e6);

  std::printf("exceedance P(R > mean + k sigma):\n");
  std::printf("%6s %14s %14s %12s\n", "k", "exact (inv)", "Gaussian",
              "ratio");
  for (double k : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    const double level = g.mean() + k * g.stddev();
    const double exact = pdf.exceedance(level);
    const double gauss = g.exceedance(level);
    std::printf("%6.1f %14.5f %14.5f %12.2f\n", k, exact, gauss,
                gauss > 0.0 ? exact / gauss : 0.0);
  }

  std::printf("\ncapacity for congestion probability eps:\n");
  std::printf("%8s %16s %16s\n", "eps", "Gaussian C", "exact C");
  for (double eps : {0.1, 0.05, 0.01}) {
    // Invert the exact exceedance by scanning the grid.
    double exact_c = pdf.x.back();
    for (std::size_t i = 0; i < pdf.x.size(); ++i) {
      if (pdf.exceedance(pdf.x[i]) <= eps) {
        exact_c = pdf.x[i];
        break;
      }
    }
    std::printf("%8.2f %13.2f Mbps %13.2f Mbps\n", eps,
                g.capacity_for_exceedance(eps) / 1e6, exact_c / 1e6);
  }

  std::printf("\nskewness of R from cumulants (Corollary 3): %.3f "
              "(Gaussian: 0)\n", model.skewness());
  std::printf("check: exact and Gaussian agree near the mean; the exact law "
              "is right-skewed, so the Gaussian under-provisions slightly at "
              "small eps\n");
  return 0;
}
