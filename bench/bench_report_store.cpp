// Report-store cost: append throughput and range-scan throughput
// (fbm::store).
//
// The durable-operations story adds one flushed frame per closed window to
// the hot path; this bench pins what that costs and how fast the on-disk
// log scans back. A multi-link month-at-a-glance store is appended record
// by record (each append is an fwrite + flush, the crash-durability
// contract), then range-scanned with dedup and rendered to JSONL. Each
// repetition checks the scan round-trips the appended records
// byte-identically (rendered-line comparison) — a bench that drifts from
// the codec's round-trip guarantee fails loudly rather than timing the
// wrong computation.
#include <cstdio>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "store/report_store.hpp"

namespace {

std::filesystem::path store_path() {
  return std::filesystem::temp_directory_path() / "fbm_bench_store.fbms";
}

/// Deterministic synthetic report stream: kLinks links closing one window
/// per stride, every schema field populated.
fbm::store::StoredReport make_record(std::uint32_t link, std::size_t index,
                                     std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.1, 100.0);
  fbm::store::StoredReport r;
  r.link_id = link;
  r.link_tagged = true;
  r.link_name = "link" + std::to_string(link);
  auto& w = r.report;
  w.window_index = index;
  w.start_s = static_cast<double>(index) * 4.0;
  w.width_s = 4.0;
  w.stride_s = 4.0;
  w.packets = 1000 + index;
  w.bytes = 150000 + index * 7;
  w.inputs.lambda = u(rng);
  w.inputs.mean_size_bits = u(rng) * 1e4;
  w.inputs.mean_s2_over_d = u(rng) * 1e8;
  w.inputs.flows = 50 + index % 17;
  w.measured.mean_bps = u(rng) * 1e6;
  w.measured.variance_bps2 = u(rng) * 1e10;
  w.measured.cov = u(rng) / 100.0;
  w.measured.samples = 20;
  w.shot_b = u(rng);
  w.shot_b_used = *w.shot_b;
  w.plan.mean_bps = w.measured.mean_bps;
  w.plan.capacity_bps = w.measured.mean_bps * 1.4;
  w.plan.headroom = 1.4;
  w.plan.eps = 0.01;
  w.forecast.available = true;
  w.forecast.predicted_mean_bps = u(rng) * 1e6;
  w.forecast.order = 2;
  return r;
}

}  // namespace

FBM_BENCH(report_store) {
  using namespace fbm;
  bench::print_header("Report store: append + range-scan throughput");

  const std::size_t kLinks = 4;
  const std::size_t windows_per_link = ctx.quick() ? 600 : 2500;
  const std::size_t reps = 3;

  std::uint64_t store_bytes = 0;
  std::uint64_t scanned = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    std::filesystem::remove(store_path());
    std::mt19937_64 rng(rep + 1);
    std::vector<std::string> appended_lines;

    // Append half: one flushed frame per record, stream order.
    {
      store::StoreWriter writer(store_path());
      for (std::size_t i = 0; i < windows_per_link; ++i) {
        for (std::uint32_t link = 0; link < kLinks; ++link) {
          const auto r = make_record(link, i, rng);
          appended_lines.push_back(r.jsonl());
          writer.append(r);
        }
      }
    }
    store_bytes += std::filesystem::file_size(store_path());

    // Scan half: full-range dedup scan back to rendered lines.
    store::StoreReader reader(store_path());
    const auto records = reader.scan({});
    scanned += records.size();
    if (records.size() != appended_lines.size()) {
      throw std::runtime_error("report_store: scan lost records");
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].jsonl() != appended_lines[i]) {
        throw std::runtime_error(
            "report_store: scan drifted from the appended stream");
      }
    }
    // Each record plays the role of a packet in the packets/s metric: one
    // append plus one scan-and-render per rep.
    ctx.count_packets(records.size());
  }
  std::filesystem::remove(store_path());

  std::printf("%zu links x %zu windows per rep, %zu reps\n", kLinks,
              windows_per_link, reps);
  std::printf("store: %.1f KiB per rep (%.1f bytes/record)\n",
              static_cast<double>(store_bytes) / reps / 1024.0,
              static_cast<double>(store_bytes) / scanned);
  std::printf("scan round-trip: byte-identical rendered lines on every "
              "rep\n");
  return 0;
}
