// Section VII-A: network dimensioning and the smoothing law.
//
// Paper: with C = E[R] + q(1-eps)*sigma, the mean grows like lambda while
// the standard deviation grows like sqrt(lambda); the CoV therefore decays
// as 1/sqrt(lambda) and the ISP "does not need to scale the bandwidth of its
// links linearly with lambda".
//
// This bench sweeps lambda multipliers on a measured interval and verifies
// the 1/sqrt(lambda) law both analytically (Corollaries 1-2) and against a
// re-measured synthetic trace at the higher arrival rate. It also compares
// with the constant-rate M/G/infinity baseline of [3].
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/mg_infinity.hpp"
#include "core/moments.hpp"
#include "dimension/provisioning.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

FBM_BENCH(sec7a_dimensioning) {
  using namespace fbm;
  bench::print_header(
      "Section VII-A: dimensioning and the sqrt-lambda smoothing law");

  const auto run = bench::run_profile(6, bench::default_scale());
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }
  const auto base = run.five_tuple[0].inputs;
  const double eps = 0.01;

  std::printf("analytical sweep (triangular shots, eps=%.2f):\n", eps);
  std::printf("%9s %12s %10s %10s %13s %10s\n", "lambda x", "mean Mbps",
              "CoV", "pred CoV", "capacity", "cap/mean");
  const auto base_plan = dimension::plan_link(base, 1.0, eps);
  for (double f : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const auto plan = dimension::plan_link(core::scale_lambda(base, f), 1.0,
                                           eps);
    std::printf("%9.0f %12.2f %9.1f%% %9.1f%% %10.2f Mbps %9.2fx\n", f,
                plan.mean_bps / 1e6, 100.0 * plan.cov,
                100.0 * base_plan.cov / std::sqrt(f),
                plan.capacity_bps / 1e6, plan.headroom);
  }

  // Empirical confirmation: regenerate traffic at 4x the arrival rate and
  // re-measure the CoV.
  std::printf("\nempirical check (regenerated traces):\n");
  double prev_cov = -1.0;
  for (double f : {1.0, 4.0, 16.0}) {
    trace::SyntheticConfig cfg;
    cfg.duration_s = 60.0;
    cfg.apply_defaults();
    cfg.flow_rate = base.lambda * f;
    cfg.seed = 1000 + static_cast<std::uint64_t>(f);
    const auto packets = trace::generate_packets(cfg);
    const auto series = measure::measure_rate(packets, 0.0, 60.0, 0.2);
    const auto mm = measure::rate_moments(series);
    std::printf("  lambda x%-4.0f measured CoV %.1f%%  (expect ~%.1f%%)\n", f,
                100.0 * mm.cov, 100.0 * base_plan.cov / std::sqrt(f));
    if (prev_cov > 0.0) {
      std::printf("    ratio to previous: %.2f (expect ~0.5)\n",
                  mm.cov / prev_cov);
    }
    prev_cov = mm.cov;
  }

  // Constant-rate baseline of [3]: same mean, all flows at the mean rate.
  const double mean_duration = [&] {
    stats::RunningStats s;
    for (const auto& f : run.five_tuple[0].interval.flows) s.add(f.duration());
    return s.mean();
  }();
  const double common_rate =
      base.mean_size_bits / std::max(mean_duration, 1e-3);
  const core::ConstantRateBaseline baseline(common_rate, base.lambda,
                                            mean_duration);
  std::printf("\nbaseline (M/G/inf, identical flow rates, ref [3]): CoV "
              "%.1f%% vs shot-noise rectangular %.1f%% vs measured %.1f%%\n",
              100.0 * baseline.cov(), 100.0 * core::power_shot_cov(base, 0.0),
              100.0 * run.five_tuple[0].measured.cov);
  std::printf("check: capacity grows sublinearly; CoV halves per 4x lambda; "
              "identical-rate baseline under-estimates variability\n");
  return 0;
}
