// Theorem 2, spectral form: Gamma(omega) = lambda/(2 pi) E|X_hat(omega)|^2.
//
// The paper states the spectral density alongside the auto-covariance but
// validates only the latter. This bench closes the loop: it estimates the
// spectrum of the measured 200 ms rate series with a Welch periodogram and
// compares it with the model's spectral density for b = 0, 1, 2 at matching
// frequencies. The model rides on flow statistics only — no rate samples.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/model.hpp"
#include "stats/spectrum.hpp"

FBM_BENCH(spectrum) {
  using namespace fbm;
  bench::print_header(
      "Theorem 2 (spectral form): measured periodogram vs model density");

  auto scale = bench::default_scale();
  scale.max_length_s = 240.0;
  const auto run = bench::run_profile(2, scale);
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }

  const auto series =
      measure::measure_rate(run.packets, 0.0, run.horizon, 0.2);
  stats::PeriodogramOptions popt;
  popt.segment = 128;
  const auto spectrum = stats::welch_periodogram(series.values, 0.2, popt);

  const auto& iv = run.five_tuple[0].interval;
  std::printf("%10s %14s | %12s %12s %12s | %8s\n", "omega", "measured",
              "model b=0", "model b=1", "model b=2", "ratio b1");
  for (std::size_t i = 0; i < spectrum.size(); i += 6) {
    const double omega = spectrum[i].omega;
    double model_density[3];
    int j = 0;
    for (double b : {0.0, 1.0, 2.0}) {
      const auto model =
          core::ShotNoiseModel::from_interval(iv, core::power_shot(b));
      model_density[j++] = model.spectral_density(omega);
    }
    std::printf("%10.3f %14.4g | %12.4g %12.4g %12.4g | %8.2f\n", omega,
                spectrum[i].density, model_density[0], model_density[1],
                model_density[2],
                model_density[1] > 0.0
                    ? spectrum[i].density / model_density[1]
                    : 0.0);
  }

  std::printf("\ncheck: measured and model densities share the low-pass "
              "shape (flow-duration knee) and agree within a small factor at "
              "low omega; the 200 ms sampling filters the measured spectrum "
              "near the Nyquist frequency\n");
  return 0;
}
