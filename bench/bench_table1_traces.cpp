// Table I: summary of the seven (scaled) OC-12 link traces.
//
// Paper: lengths 6h-39h30m, average utilizations 26-262 Mbps. We regenerate
// each trace at 1/60 time scale and 1/10 rate scale and report what the
// measurement pipeline actually saw, next to the paper's original values.
#include <cstdio>

#include "common.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"

FBM_BENCH(table1_traces) {
  using namespace fbm;
  bench::print_header(
      "Table I: summary of OC-12 link traces (scaled reproduction)");

  const auto scale = bench::default_scale();
  std::printf("%-16s %12s %14s | %12s %14s %10s\n", "Date", "paper len",
              "paper util", "scaled len", "measured util", "packets");

  for (std::size_t i = 0; i < trace::sprint_table1().size(); ++i) {
    const auto& row = trace::sprint_table1()[i];
    const auto cfg = trace::make_config(i, scale);
    trace::GenerationReport rep;
    const auto packets = trace::generate_packets(cfg, &rep);
    const auto summary = trace::summarize(packets);
    ctx.count_packets(summary.packets);
    ctx.count_bytes(summary.total_bytes);
    std::printf("%-16s %12s %11.0f Mbps | %11s %11.1f Mbps %10llu\n",
                row.date.c_str(), trace::format_duration(row.length_s).c_str(),
                row.utilization_bps / 1e6,
                trace::format_duration(cfg.duration_s).c_str(),
                summary.mean_rate_mbps(),
                static_cast<unsigned long long>(summary.packets));
  }

  std::printf("\ncheck: measured utilization tracks the scaled target "
              "(paper util / %g)\n", 1.0 / scale.rate_scale);
  return 0;
}
