// Table II: performance of the Moving-Average predictor for different
// prediction intervals iota, comparing coefficients derived from the
// measured rate samples {R_k} against coefficients derived from the model's
// auto-correlation (Theorem 2, triangular shots).
//
// Paper (iota = 2, 5, 10, 30, 60 s): both predictors achieve ~4-6% error;
// the model-driven predictor degrades more slowly as iota grows because its
// ACF comes from flow statistics rather than the shrinking sample set.
// Scaled run: the analysis window is 240 s instead of 30 min, so we use
// iota = 0.4..8 s (same iota/window ratios).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/model.hpp"
#include "measure/rate_meter.hpp"
#include "predict/predictor.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"

FBM_BENCH(table2_prediction) {
  using namespace fbm;
  bench::print_header(
      "Table II: Moving-Average prediction of the total rate");

  // One long trace (profile 1: 180 Mbps paper scale) as in the paper.
  // Prediction error is relative to the mean, so it scales with the CoV;
  // run this bench at a higher rate scale (less lambda down-scaling) to be
  // in the paper's low-CoV regime.
  auto scale = bench::default_scale();
  scale.rate_scale = 1.0;
  scale.max_length_s = 240.0;
  const auto run = bench::run_profile(1, scale);
  if (run.five_tuple.empty()) {
    std::printf("no intervals generated\n");
    return 1;
  }

  // Model over the first interval's flows; rate series over the whole trace.
  const auto model = core::ShotNoiseModel::from_interval(
      run.five_tuple[0].interval, core::triangular_shot());
  const auto base = measure::measure_rate(run.packets, 0.0, run.horizon, 0.2);

  std::printf("%10s | %18s | %18s\n", "iota (s)", "measured {R_k} ACF",
              "model ACF (Thm 2)");
  std::printf("%10s | %4s %12s | %4s %12s\n", "", "M", "error (%)", "M",
              "error (%)");

  for (std::size_t factor : {2u, 5u, 10u, 20u, 40u}) {
    const auto series = stats::resample(base, factor);
    if (series.values.size() < 12) continue;
    const double iota = series.delta;
    const double mean = stats::mean(series.values);
    const std::size_t max_order =
        std::min<std::size_t>(8, series.values.size() / 4);

    const auto data_acf =
        stats::autocorrelation_series(series.values, max_order);
    const auto m_data =
        predict::select_order(data_acf, series.values, max_order);
    const auto rep_data = predict::evaluate_predictor(
        predict::MovingAveragePredictor(data_acf, m_data, mean),
        series.values);

    std::vector<double> taus;
    for (std::size_t k = 0; k <= max_order; ++k) taus.push_back(k * iota);
    const auto model_acf = model.autocorrelation(taus);
    const auto m_model =
        predict::select_order(model_acf, series.values, max_order);
    const auto rep_model = predict::evaluate_predictor(
        predict::MovingAveragePredictor(model_acf, m_model, mean),
        series.values);

    std::printf("%10.1f | %4zu %12.2f | %4zu %12.2f\n", iota, m_data,
                100.0 * rep_data.relative_error, m_model,
                100.0 * rep_model.relative_error);
  }

  std::printf("\ncheck: errors in the paper's ballpark (single digits to "
              "low teens) for both methods, with the model-driven ACF "
              "competitive throughout; at large iota {R_k} has few samples, "
              "which is where flow-derived coefficients are most useful\n");
  return 0;
}
