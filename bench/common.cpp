#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "api/api.hpp"
#include "obs/catalog.hpp"
#include "obs/export.hpp"
#include "trace/synthetic.hpp"

namespace fbm::bench {

namespace {

/// Telemetry sink for the bench currently executing (run_registered sets
/// it); run_profile counts its work here so individual benches don't have
/// to. Null outside a registered run (e.g. library use in tests).
Context* g_active_context = nullptr;

/// Quick mode for the bench currently executing; default_scale() shortens
/// the trace cap when set.
bool g_quick = false;

}  // namespace

std::size_t bench_threads() {
  // Resolved once per process: the satellite fix for re-reading the
  // environment on every call. The cached value is logged into every
  // BenchReport's config by run_registered.
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("FBM_BENCH_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{1};
  }();
  return cached;
}

trace::ScaleOptions default_scale() {
  trace::ScaleOptions scale;
  scale.time_scale = 1.0 / 60.0;  // 30-min interval -> 30 s
  scale.rate_scale = 1.0 / 10.0;  // 26-262 Mbps -> 2.6-26.2 Mbps
  // Quick (CI smoke) keeps three full analysis intervals per trace; the
  // default keeps the laptop-scale 240 s documented above.
  scale.max_length_s = g_quick ? 90.0 : 240.0;
  return scale;
}

namespace {

/// Classify + fit stage-histogram seconds so far — the analyze-only clock.
/// CPU seconds, strictly: with FBM_BENCH_THREADS > 1 shard spans overlap.
double analyze_stage_seconds() {
  static obs::Histogram& classify_h = obs::stage_seconds(obs::kStageClassify);
  static obs::Histogram& fit_h = obs::stage_seconds(obs::kStageFit);
  return classify_h.sum() + fit_h.sum();
}

std::vector<IntervalResult> analyse(api::FlowDefinition flow_def,
                                    const std::vector<net::PacketRecord>& packets,
                                    double interval_s, double timeout_s) {
  api::AnalysisConfig config;
  config.flow_definition(flow_def)
      .interval_s(interval_s)
      .timeout_s(timeout_s)
      .delta_s(measure::kPaperDelta)
      .min_flows(20)  // skip ragged tail intervals
      .keep_flows(true)
      .threads(bench_threads());

  const double analyze_before = analyze_stage_seconds();
  std::vector<IntervalResult> out;
  for (auto& report : api::analyze(packets, config)) {
    IntervalResult r;
    r.inputs = report.inputs;
    r.measured = report.measured;
    r.interval = std::move(report.interval);
    out.push_back(std::move(r));
  }

  if (g_active_context != nullptr) {
    g_active_context->count_analyze(
        flow_def == api::FlowDefinition::prefix24 ? "prefix24" : "five_tuple",
        packets.size(), analyze_stage_seconds() - analyze_before);
    g_active_context->count_packets(packets.size());
    std::uint64_t bytes = 0;
    for (const auto& p : packets) bytes += p.size_bytes;
    g_active_context->count_bytes(bytes);
    g_active_context->count_intervals(out.size());
    for (const auto& r : out) {
      g_active_context->count_flows(r.interval.flows.size());
    }
  }
  return out;
}

}  // namespace

ProfileRun run_profile(std::size_t index, const trace::ScaleOptions& scale) {
  ProfileRun run;
  run.profile_index = index;
  run.profile = trace::sprint_table1()[index];
  const auto cfg = trace::make_config(index, scale);
  run.packets = trace::generate_packets(cfg);
  run.horizon = cfg.duration_s;
  run.interval_s = trace::scaled_interval_s(scale);
  // The paper's 60 s idle timeout scales with the interval (60 s : 30 min
  // becomes 1 s : 30 s) so gap structure relative to the analysis window is
  // preserved.
  const double timeout_s = 60.0 * scale.time_scale;
  run.five_tuple = analyse(api::FlowDefinition::five_tuple, run.packets,
                           run.interval_s, timeout_s);
  run.prefix24 = analyse(api::FlowDefinition::prefix24, run.packets,
                         run.interval_s, timeout_s);
  return run;
}

std::vector<ProfileRun> run_all_profiles(const trace::ScaleOptions& scale) {
  std::vector<ProfileRun> out;
  out.reserve(trace::sprint_table1().size());
  for (std::size_t i = 0; i < trace::sprint_table1().size(); ++i) {
    out.push_back(run_profile(i, scale));
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("==================================================="
              "=========================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================="
              "=========================\n");
}

// --------------------------------------------------------------- registry ---

namespace {

std::vector<BenchInfo>& registry() {
  static std::vector<BenchInfo> benches;
  return benches;
}

}  // namespace

int register_bench(const char* name, BenchFn fn) {
  registry().push_back({name, fn});
  return static_cast<int>(registry().size());
}

const std::vector<BenchInfo>& registered_benches() { return registry(); }

int run_registered(const BenchInfo& info, bool quick,
                   perf::BenchReport& report) {
  report.bench = info.name;
  report.git_sha = perf::current_git_sha();

  Context context(report, quick);
  g_active_context = &context;
  g_quick = quick;
  const auto scale = default_scale();
  report.set_config("threads", static_cast<std::uint64_t>(bench_threads()));
  report.set_config("quick", quick);
  report.set_config("time_scale", scale.time_scale);
  report.set_config("rate_scale", scale.rate_scale);
  report.set_config("max_length_s", scale.max_length_s);

  // The obs registry delta of this run rides along in the report's "obs"
  // section, and the classify+fit stage timers give the analyze-only
  // throughput (generation and reporting excluded) — the number the
  // "<bench>.analyze" baseline entries gate.
  const obs::Snapshot obs_before = obs::Registry::global().snapshot();
  const double analyze_before = analyze_stage_seconds();

  perf::Stopwatch watch;
  int rc = 1;
  try {
    rc = info.fn(context);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench %s threw: %s\n", info.name, e.what());
  }
  report.wall_s = watch.elapsed_s();
  report.packets_per_s =
      report.wall_s > 0.0
          ? static_cast<double>(report.counters.packets) / report.wall_s
          : 0.0;
  const double analyze_s = analyze_stage_seconds() - analyze_before;
  report.analyze_packets_per_s =
      analyze_s > 0.0
          ? static_cast<double>(report.counters.packets) / analyze_s
          : 0.0;
  for (const auto& [def, cell] : context.analyze_by_def()) {
    if (cell.second > 0.0) {
      report.set_metric("analyze_packets_per_s_" + def,
                        static_cast<double>(cell.first) / cell.second);
    }
  }
  const obs::Snapshot obs_after = obs::Registry::global().snapshot();
  const obs::Snapshot obs_delta = obs::delta(obs_before, obs_after);
  if (!obs_delta.metrics.empty()) {
    report.obs_json = obs::to_json_metrics(obs_delta);
  }
  report.peak_rss_kb = perf::peak_rss_kb();

  g_active_context = nullptr;
  g_quick = false;
  return rc;
}

bool write_report_json(const std::string& dir,
                       const perf::BenchReport& report) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + report.bench + ".json");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return false;
  }
  out << report.to_json() << "\n";
  return static_cast<bool>(out);
}

int standalone_main(const char* name, int argc, char** argv) {
  bool quick = false;
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json DIR]\n", argv[0]);
      return 2;
    }
  }

  for (const auto& info : registered_benches()) {
    if (std::strcmp(info.name, name) != 0) continue;
    perf::BenchReport report;
    const int rc = run_registered(info, quick, report);
    if (!json_dir.empty() && !write_report_json(json_dir, report)) return 1;
    return rc;
  }
  std::fprintf(stderr, "bench %s is not registered\n", name);
  return 2;
}

}  // namespace fbm::bench
