#include "common.hpp"

#include <cstdio>

#include "trace/synthetic.hpp"

namespace fbm::bench {

trace::ScaleOptions default_scale() {
  trace::ScaleOptions scale;
  scale.time_scale = 1.0 / 60.0;  // 30-min interval -> 30 s
  scale.rate_scale = 1.0 / 10.0;  // 26-262 Mbps -> 2.6-26.2 Mbps
  scale.max_length_s = 240.0;
  return scale;
}

namespace {

template <typename Key>
std::vector<IntervalResult> analyse(
    const std::vector<net::PacketRecord>& packets, double horizon,
    double interval_s, double timeout_s) {
  flow::ClassifierOptions opt;
  opt.timeout = timeout_s;
  opt.interval = interval_s;
  opt.record_discards = true;
  flow::FlowClassifier<Key> classifier(opt);
  for (const auto& p : packets) classifier.add(p);
  classifier.flush();
  const auto discards = classifier.discards();
  const auto flows = classifier.take_flows();

  std::vector<flow::FlowRecord> sorted(flows.begin(), flows.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  auto intervals = flow::group_by_interval(sorted, interval_s, horizon);

  std::vector<IntervalResult> out;
  for (auto& iv : intervals) {
    if (iv.flows.size() < 20) continue;  // skip ragged tail intervals
    IntervalResult r;
    r.inputs = flow::estimate_inputs(iv);
    const auto series = measure::measure_rate(
        packets, iv.start, iv.end(), measure::kPaperDelta, discards);
    r.measured = measure::rate_moments(series);
    r.interval = std::move(iv);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

ProfileRun run_profile(std::size_t index, const trace::ScaleOptions& scale) {
  ProfileRun run;
  run.profile_index = index;
  run.profile = trace::sprint_table1()[index];
  const auto cfg = trace::make_config(index, scale);
  run.packets = trace::generate_packets(cfg);
  run.horizon = cfg.duration_s;
  run.interval_s = trace::scaled_interval_s(scale);
  // The paper's 60 s idle timeout scales with the interval (60 s : 30 min
  // becomes 1 s : 30 s) so gap structure relative to the analysis window is
  // preserved.
  const double timeout_s = 60.0 * scale.time_scale;
  run.five_tuple = analyse<flow::FiveTupleKey>(run.packets, run.horizon,
                                               run.interval_s, timeout_s);
  run.prefix24 = analyse<flow::PrefixKey<24>>(run.packets, run.horizon,
                                              run.interval_s, timeout_s);
  return run;
}

std::vector<ProfileRun> run_all_profiles(const trace::ScaleOptions& scale) {
  std::vector<ProfileRun> out;
  out.reserve(trace::sprint_table1().size());
  for (std::size_t i = 0; i < trace::sprint_table1().size(); ++i) {
    out.push_back(run_profile(i, scale));
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("==================================================="
              "=========================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================="
              "=========================\n");
}

}  // namespace fbm::bench
