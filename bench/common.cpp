#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "api/api.hpp"
#include "trace/synthetic.hpp"

namespace fbm::bench {

std::size_t bench_threads() {
  if (const char* env = std::getenv("FBM_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

trace::ScaleOptions default_scale() {
  trace::ScaleOptions scale;
  scale.time_scale = 1.0 / 60.0;  // 30-min interval -> 30 s
  scale.rate_scale = 1.0 / 10.0;  // 26-262 Mbps -> 2.6-26.2 Mbps
  scale.max_length_s = 240.0;
  return scale;
}

namespace {

std::vector<IntervalResult> analyse(api::FlowDefinition flow_def,
                                    const std::vector<net::PacketRecord>& packets,
                                    double interval_s, double timeout_s) {
  api::AnalysisConfig config;
  config.flow_definition(flow_def)
      .interval_s(interval_s)
      .timeout_s(timeout_s)
      .delta_s(measure::kPaperDelta)
      .min_flows(20)  // skip ragged tail intervals
      .keep_flows(true)
      .threads(bench_threads());

  std::vector<IntervalResult> out;
  for (auto& report : api::analyze(packets, config)) {
    IntervalResult r;
    r.inputs = report.inputs;
    r.measured = report.measured;
    r.interval = std::move(report.interval);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

ProfileRun run_profile(std::size_t index, const trace::ScaleOptions& scale) {
  ProfileRun run;
  run.profile_index = index;
  run.profile = trace::sprint_table1()[index];
  const auto cfg = trace::make_config(index, scale);
  run.packets = trace::generate_packets(cfg);
  run.horizon = cfg.duration_s;
  run.interval_s = trace::scaled_interval_s(scale);
  // The paper's 60 s idle timeout scales with the interval (60 s : 30 min
  // becomes 1 s : 30 s) so gap structure relative to the analysis window is
  // preserved.
  const double timeout_s = 60.0 * scale.time_scale;
  run.five_tuple = analyse(api::FlowDefinition::five_tuple, run.packets,
                           run.interval_s, timeout_s);
  run.prefix24 = analyse(api::FlowDefinition::prefix24, run.packets,
                         run.interval_s, timeout_s);
  return run;
}

std::vector<ProfileRun> run_all_profiles(const trace::ScaleOptions& scale) {
  std::vector<ProfileRun> out;
  out.reserve(trace::sprint_table1().size());
  for (std::size_t i = 0; i < trace::sprint_table1().size(); ++i) {
    out.push_back(run_profile(i, scale));
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("==================================================="
              "=========================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================="
              "=========================\n");
}

}  // namespace fbm::bench
