// Shared machinery for the paper-reproduction benches.
//
// Each bench regenerates one table or figure. They share the scaled Sprint
// profiles (trace/sprint_profiles) and the api::AnalysisPipeline: synthetic
// trace -> 5-tuple and /24 classification (60 s timeout, interval
// splitting) -> per-interval model inputs + measured rate moments at
// Delta = 200 ms, all in one streaming pass.
//
// Scaling relative to the paper (documented in EXPERIMENTS.md): the 30-min
// analysis interval becomes 30 s (time_scale = 1/60), trace lengths are
// capped at 240 s, and utilizations are divided by 10 (26-262 Mbps ->
// 2.6-26.2 Mbps) so every bench finishes in seconds on a laptop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "net/packet.hpp"
#include "trace/sprint_profiles.hpp"

namespace fbm::bench {

/// Default scaling for all benches.
[[nodiscard]] trace::ScaleOptions default_scale();

/// Worker shards the benches analyze with: FBM_BENCH_THREADS from the
/// environment, default 1 (serial). Any value yields bit-for-bit identical
/// results — the parallel pipeline's merge is deterministic — so bench
/// numbers stay reproducible while the classification work spreads over
/// cores.
[[nodiscard]] std::size_t bench_threads();

/// One analysis interval, fully measured, for one flow definition.
struct IntervalResult {
  flow::ModelInputs inputs;
  measure::RateMoments measured;       ///< Delta = 200 ms moments
  flow::IntervalData interval;         ///< the flows themselves
};

/// One generated + analysed trace.
struct ProfileRun {
  std::size_t profile_index = 0;
  trace::SprintProfile profile;        ///< paper-scale metadata
  std::vector<net::PacketRecord> packets;
  double horizon = 0.0;
  double interval_s = 0.0;
  std::vector<IntervalResult> five_tuple;
  std::vector<IntervalResult> prefix24;
};

/// Generates and analyses one Table-I profile.
[[nodiscard]] ProfileRun run_profile(std::size_t index,
                                     const trace::ScaleOptions& scale);

/// All seven profiles (the full evaluation corpus).
[[nodiscard]] std::vector<ProfileRun> run_all_profiles(
    const trace::ScaleOptions& scale);

/// Pretty header for bench output.
void print_header(const std::string& title);

}  // namespace fbm::bench
