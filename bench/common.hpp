// Shared machinery for the paper-reproduction benches.
//
// Each bench regenerates one table or figure. They share the scaled Sprint
// profiles (trace/sprint_profiles) and the api::AnalysisPipeline: synthetic
// trace -> 5-tuple and /24 classification (60 s timeout, interval
// splitting) -> per-interval model inputs + measured rate moments at
// Delta = 200 ms, all in one streaming pass.
//
// Scaling relative to the paper (documented in EXPERIMENTS.md): the 30-min
// analysis interval becomes 30 s (time_scale = 1/60), trace lengths are
// capped at 240 s, and utilizations are divided by 10 (26-262 Mbps ->
// 2.6-26.2 Mbps) so every bench finishes in seconds on a laptop.
//
// Registry: every bench defines its body with FBM_BENCH(name) instead of a
// bare main(). That registers the body so the fbm_bench runner can execute
// any subset with JSON telemetry (--filter, --quick, --json DIR), while the
// same source compiled with FBM_BENCH_STANDALONE keeps producing the
// standalone binary (which accepts --quick / --json DIR too). Every run is
// wrapped in a perf::BenchReport: wall time, packets/s, peak RSS, resolved
// config, git sha.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "net/packet.hpp"
#include "perf/bench_report.hpp"
#include "perf/counters.hpp"
#include "perf/stopwatch.hpp"
#include "trace/sprint_profiles.hpp"

namespace fbm::bench {

/// Default scaling for all benches; quick mode (fbm_bench --quick) shortens
/// the trace cap so the whole suite smoke-runs in CI.
[[nodiscard]] trace::ScaleOptions default_scale();

/// Worker shards the benches analyze with: FBM_BENCH_THREADS from the
/// environment, read once and cached (the resolved value is logged into
/// every BenchReport's config). Default 1 (serial). Any value yields
/// bit-for-bit identical results — the parallel pipeline's merge is
/// deterministic — so bench numbers stay reproducible while the
/// classification work spreads over cores.
[[nodiscard]] std::size_t bench_threads();

/// One analysis interval, fully measured, for one flow definition.
struct IntervalResult {
  flow::ModelInputs inputs;
  measure::RateMoments measured;       ///< Delta = 200 ms moments
  flow::IntervalData interval;         ///< the flows themselves
};

/// One generated + analysed trace.
struct ProfileRun {
  std::size_t profile_index = 0;
  trace::SprintProfile profile;        ///< paper-scale metadata
  std::vector<net::PacketRecord> packets;
  double horizon = 0.0;
  double interval_s = 0.0;
  std::vector<IntervalResult> five_tuple;
  std::vector<IntervalResult> prefix24;
};

/// Generates and analyses one Table-I profile. Work done here is counted
/// into the active bench's telemetry automatically.
[[nodiscard]] ProfileRun run_profile(std::size_t index,
                                     const trace::ScaleOptions& scale);

/// All seven profiles (the full evaluation corpus).
[[nodiscard]] std::vector<ProfileRun> run_all_profiles(
    const trace::ScaleOptions& scale);

/// Pretty header for bench output.
void print_header(const std::string& title);

// --------------------------------------------------------------- registry ---

/// Handed to each bench body: quick-mode flag plus the report the bench may
/// enrich with bench-specific config and metrics.
class Context {
 public:
  Context(perf::BenchReport& report, bool quick)
      : report_(report), quick_(quick) {}

  [[nodiscard]] bool quick() const { return quick_; }
  [[nodiscard]] perf::BenchReport& report() { return report_; }

  void count_packets(std::uint64_t n) { report_.counters.packets += n; }
  void count_flows(std::uint64_t n) { report_.counters.flows += n; }
  void count_intervals(std::uint64_t n) { report_.counters.intervals += n; }
  void count_bytes(std::uint64_t n) {
    report_.counters.bytes_classified += n;
  }

  /// Analyze-only accounting per flow definition ("five_tuple"/"prefix24"):
  /// packets pushed and classify+fit stage seconds spent on them. Filled by
  /// analyse() from the obs stage timers; run_registered turns each entry
  /// into an "analyze_packets_per_s_<def>" metric.
  void count_analyze(const std::string& flow_def, std::uint64_t packets,
                     double seconds) {
    auto& cell = analyze_by_def_[flow_def];
    cell.first += packets;
    cell.second += seconds;
  }
  [[nodiscard]] const std::map<std::string,
                               std::pair<std::uint64_t, double>>&
  analyze_by_def() const {
    return analyze_by_def_;
  }

 private:
  perf::BenchReport& report_;
  bool quick_;
  std::map<std::string, std::pair<std::uint64_t, double>> analyze_by_def_;
};

using BenchFn = int (*)(Context&);

struct BenchInfo {
  const char* name;
  BenchFn fn;
};

/// Called by the FBM_BENCH macro at static-initialization time.
int register_bench(const char* name, BenchFn fn);

/// Every bench linked into this binary, in registration order.
[[nodiscard]] const std::vector<BenchInfo>& registered_benches();

/// Runs one bench with telemetry: wall time, packets/s, peak RSS, resolved
/// config (threads, quick, scaling), git sha. Returns the bench's exit
/// code; the report is valid either way.
int run_registered(const BenchInfo& info, bool quick,
                   perf::BenchReport& report);

/// Writes `<dir>/BENCH_<name>.json` (creating dir); returns false on I/O
/// failure.
bool write_report_json(const std::string& dir,
                       const perf::BenchReport& report);

/// CLI shared by the standalone bench binaries: [--quick] [--json DIR].
int standalone_main(const char* name, int argc, char** argv);

}  // namespace fbm::bench

#ifdef FBM_BENCH_STANDALONE
#define FBM_BENCH_STANDALONE_MAIN(name)                      \
  int main(int argc, char** argv) {                          \
    return ::fbm::bench::standalone_main(#name, argc, argv); \
  }
#else
#define FBM_BENCH_STANDALONE_MAIN(name)
#endif

/// Defines a bench body and registers it under `name` (also the standalone
/// binary's main when FBM_BENCH_STANDALONE is defined):
///
///   FBM_BENCH(fig01_arrivals) {
///     ...                       // `ctx` is the bench::Context
///     return 0;
///   }
#define FBM_BENCH(name)                                            \
  static int fbm_bench_body_##name(::fbm::bench::Context&);        \
  [[maybe_unused]] static const int fbm_bench_reg_##name =         \
      ::fbm::bench::register_bench(#name, &fbm_bench_body_##name); \
  FBM_BENCH_STANDALONE_MAIN(name)                                  \
  static int fbm_bench_body_##name(                                \
      [[maybe_unused]] ::fbm::bench::Context& ctx)
