// Model-driven traffic generation (paper Section VII-C).
//
// Fits the shot-noise model to a "real" (synthetic) trace, then re-generates
// traffic from the fitted model and verifies the clone matches the original
// in mean, variance, and correlation — the paper's proposed use in network
// simulation tools. Also shows why the shot matters: a rectangular-shot
// clone of the same flows underestimates the variance.
//
// Run:  ./examples/backbone_generator
#include <cstdio>

#include "core/fitting.hpp"
#include "core/model.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "gen/traffic_gen.hpp"
#include "measure/rate_meter.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"

#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  // "Real" traffic to imitate.
  const double horizon = 90.0;
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  const auto packets = trace::generate_packets(cfg);
  const auto flows = flow::classify_all<flow::FiveTupleKey>(packets);
  const auto intervals = flow::group_by_interval(flows, horizon, horizon);
  const auto in = flow::estimate_inputs(intervals[0]);

  const auto real = measure::measure_rate(packets, 0.0, horizon, 0.2);
  const auto real_m = measure::rate_moments(real);

  // Fit the shot power to the measured variance, build the model.
  const auto b = core::fit_power_b(real_m.variance, in).value_or(1.0);
  const auto model = core::ShotNoiseModel::from_interval(
      intervals[0], core::power_shot(b));

  std::printf("fitted model: lambda=%.1f /s, b=%.2f\n", model.lambda(), b);

  // Clone the traffic from the model (empirical (S,D) resampling).
  auto gen_cfg = gen::from_model(model, horizon, 0.2);
  gen_cfg.seed = 4242;
  const auto clone = gen::generate(gen_cfg);
  const double clone_mean = stats::mean(clone.series.values);
  const double clone_var = stats::population_variance(clone.series.values);

  // Rectangular-shot ablation on the same flows.
  auto rect_cfg = gen_cfg;
  rect_cfg.shot = core::rectangular_shot();
  const auto rect = gen::generate(rect_cfg);
  const double rect_var = stats::population_variance(rect.series.values);

  std::printf("\n%-26s %12s %14s %12s\n", "", "mean Mbps", "stddev Mbps",
              "lag-1 acf");
  const auto lag1 = [](const std::vector<double>& v) {
    return stats::autocorrelation(v, 1);
  };
  std::printf("%-26s %9.2f %14.2f %12.2f\n", "original trace",
              real_m.mean_bps / 1e6, std::sqrt(real_m.variance) / 1e6,
              lag1(real.values));
  std::printf("%-26s %9.2f %14.2f %12.2f\n", "model clone (fitted b)",
              clone_mean / 1e6, std::sqrt(clone_var) / 1e6,
              lag1(clone.series.values));
  std::printf("%-26s %9.2f %14.2f %12.2f\n", "ablation: rectangular b=0",
              stats::mean(rect.series.values) / 1e6, std::sqrt(rect_var) / 1e6,
              lag1(rect.series.values));

  std::printf("\nrectangular clone variance deficit: %.0f%% of original\n",
              100.0 * rect_var / real_m.variance);
  return 0;
}
