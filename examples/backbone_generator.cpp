// Model-driven traffic generation (paper Section VII-C).
//
// Fits the shot-noise model to a "real" (synthetic) trace via the fbm::api
// pipeline, then re-generates traffic from the fitted model and verifies
// the clone matches the original in mean and variance — the paper's
// proposed use in network simulation tools. Two clones are built:
// the fluid gen:: process and an api::ModelTraceSource *packet* stream that
// is pushed back through the same analysis pipeline. A rectangular-shot
// ablation shows why the shot matters.
//
// Run:  ./examples/backbone_generator
#include <cmath>
#include <cstdio>

#include "api/api.hpp"
#include "core/model.hpp"
#include "gen/traffic_gen.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace fbm;

  // "Real" traffic to imitate, analyzed in one pass; keep_flows retains the
  // (S, D) population the model resamples from.
  const double horizon = 90.0;
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  api::SyntheticTraceSource source(cfg);

  api::AnalysisConfig config;
  config.interval_s(horizon).timeout_s(60.0).keep_flows(true);
  const auto reports = api::analyze(source, config);
  const api::AnalysisReport& real = reports.at(0);
  const double b = real.shot_b_used;

  const auto model =
      core::ShotNoiseModel::from_interval(real.interval, core::power_shot(b));
  std::printf("fitted model: lambda=%.1f /s, b=%.2f\n", model.lambda(), b);

  // Clone 1: the fluid rate process (gen::), fitted shot.
  auto gen_cfg = gen::from_model(model, horizon, 0.2);
  gen_cfg.seed = 4242;
  const auto clone = gen::generate(gen_cfg);
  const double clone_mean = stats::mean(clone.series.values);
  const double clone_var = stats::population_variance(clone.series.values);

  // Clone 2: an actual packet stream from the model, analyzed by the same
  // pipeline that measured the original — the full loop trace -> model ->
  // trace -> model.
  api::ModelTraceSource packet_clone(model, horizon, b);
  const auto clone_reports = api::analyze(packet_clone, config);
  const api::AnalysisReport& re = clone_reports.at(0);

  // Ablation: rectangular shots on the same flows.
  auto rect_cfg = gen_cfg;
  rect_cfg.shot = core::rectangular_shot();
  const auto rect = gen::generate(rect_cfg);
  const double rect_var = stats::population_variance(rect.series.values);

  std::printf("\n%-26s %12s %14s\n", "", "mean Mbps", "stddev Mbps");
  std::printf("%-26s %9.2f %14.2f\n", "original trace",
              real.measured.mean_bps / 1e6,
              std::sqrt(real.measured.variance_bps2) / 1e6);
  std::printf("%-26s %9.2f %14.2f\n", "fluid clone (fitted b)",
              clone_mean / 1e6, std::sqrt(clone_var) / 1e6);
  std::printf("%-26s %9.2f %14.2f\n", "packet clone (fitted b)",
              re.measured.mean_bps / 1e6,
              std::sqrt(re.measured.variance_bps2) / 1e6);
  std::printf("%-26s %9.2f %14.2f\n", "ablation: rectangular b=0",
              stats::mean(rect.series.values) / 1e6,
              std::sqrt(rect_var) / 1e6);

  std::printf("\npacket clone refit: b=%.2f (original fit %.2f)\n",
              re.shot_b_used, b);
  std::printf("rectangular clone variance deficit: %.0f%% of original\n",
              100.0 * rect_var / real.measured.variance_bps2);
  return 0;
}
