// Link dimensioning and what-if analysis (paper Section VII-A).
//
// An operator collects flow statistics (here: from a synthetic trace via
// the fbm::api pipeline) and asks: how much bandwidth does this link need
// so that congestion occurs less than eps of the time? What happens if a
// new customer doubles the flow arrival rate, or a new application doubles
// transfer sizes?
//
// Run:  ./examples/link_dimensioning
#include <cstdio>

#include "api/api.hpp"

namespace {

void print_plan(const char* label, const fbm::dimension::ProvisioningPlan& p) {
  std::printf("%-34s %8.2f Mbps %7.2f Mbps %6.1f%% %9.2f Mbps %7.2fx\n",
              label, p.mean_bps / 1e6, p.stddev_bps / 1e6, 100.0 * p.cov,
              p.capacity_bps / 1e6, p.headroom);
}

}  // namespace

int main() {
  using namespace fbm;

  trace::SyntheticConfig cfg;
  cfg.duration_s = 45.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(12e6);
  api::SyntheticTraceSource source(cfg);

  const double b = 1.0;     // triangular shots
  const double eps = 0.01;  // tolerate congestion 1% of the time

  api::AnalysisConfig config;
  config.interval_s(45.0).timeout_s(60.0).fixed_shot_b(b).epsilon(eps);
  const auto reports = api::analyze(source, config);
  const auto& in = reports.at(0).inputs;

  std::printf("dimensioning for eps = %.2f, triangular shots\n\n", eps);
  std::printf("%-34s %13s %12s %7s %14s %8s\n", "scenario", "mean", "stddev",
              "CoV", "capacity", "headroom");

  // "Today" is the pipeline's own capacity recommendation; the what-ifs
  // re-plan around perturbed inputs.
  print_plan("today", reports.at(0).plan);

  dimension::WhatIf more_flows;
  more_flows.lambda_factor = 2.0;
  print_plan("new customer: 2x flow arrivals",
             dimension::plan_link(apply_scenario(in, more_flows), b, eps));

  dimension::WhatIf bigger;
  bigger.size_factor = 2.0;
  print_plan("new application: 2x flow sizes",
             dimension::plan_link(apply_scenario(in, bigger), b, eps));

  dimension::WhatIf slower;
  slower.duration_factor = 2.0;
  print_plan("congested access: 2x durations",
             dimension::plan_link(apply_scenario(in, slower), b, eps));

  // The smoothing law: capacity grows sublinearly in lambda.
  std::printf("\nsmoothing law (CoV ~ 1/sqrt(lambda)):\n");
  std::printf("%8s %10s %10s %12s\n", "lambda x", "CoV", "headroom",
              "capacity");
  const double base_mean = reports.at(0).plan.mean_bps;
  for (const auto& plan : dimension::capacity_sweep(
           in, b, eps, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})) {
    std::printf("%8.0f %9.1f%% %9.2fx %9.1f Mbps\n",
                plan.mean_bps / base_mean, 100.0 * plan.cov, plan.headroom,
                plan.capacity_bps / 1e6);
  }
  return 0;
}
