// Multi-link live monitor with online estimation and anomaly alerting.
//
// The fbm::engine rebuild of the "NetFlow" demo: one tapped stream, three
// monitored links — the victim's /16 customer link, the rest of the
// backbone (a covering /8 that longest-match carves the victim out of),
// and a match-all aggregate. Each link runs its own live::WindowedEstimator
// session behind the engine's demux: per 5-second window the paper's flow
// parameters, a rolling next-window forecast band, and spike/drop alerts.
// A simulated denial-of-service burst injected mid-trace must be caught on
// the victim link — and only there: the backbone link never sees the
// victim's traffic, so its forecast band stays calm.
//
// Run:  ./examples/netflow_monitor
#include <algorithm>
#include <cstdio>
#include <map>

#include "api/api.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  const double horizon = 90.0;
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  auto packets = trace::generate_packets(cfg);

  // Inject a DoS-like constant blast from t=60 to t=63 (small packets, one
  // destination inside the victim /16).
  {
    net::FiveTuple attack;
    attack.src = net::Ipv4Address(66, 6, 6, 6);
    attack.dst = net::Ipv4Address(10, 0, 0, 80);
    attack.dst_port = 80;
    attack.protocol = 17;
    for (double t = 60.0; t < 63.0; t += 0.0002) {  // ~5000 pps x 1200 B ~ 48 Mbps
      attack.src_port = static_cast<std::uint16_t>(
          1024 + static_cast<int>(t * 10) % 1000);
      packets.push_back({t, attack, 1200});
    }
    std::sort(packets.begin(), packets.end(), net::ByTimestamp{});
  }

  // 5-second windows, short idle timeout (the trace is seconds-scale), a
  // 4-sigma band shared by every session: the forecasters warm up on the
  // clean traffic, then the burst windows leave the victim link's band.
  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live.window_s = 5.0;
  config.live.band_k_sigma = 4.0;
  config.live.analysis.timeout_s(5.0);

  engine::Engine monitor(config);
  (void)monitor.attach(engine::parse_link_spec("victim=10.0.0.0/16"));
  (void)monitor.attach(engine::parse_link_spec("backbone=10.0.0.0/8"));
  (void)monitor.attach(engine::parse_link_spec("tap=all"));

  std::printf("%-9s %6s %8s %8s %10s | %s\n", "link", "window", "t0",
              "flows", "lambda", "measured vs forecast band (Mbps)");

  std::map<std::string, std::size_t> alerts;
  monitor.set_report_sink([&](engine::LinkReport&& r) {
    const auto& w = *r.window;
    if (w.forecast.available) {
      const char* mark = "";
      if (w.anomaly.alert) {
        ++alerts[r.name];
        mark = w.anomaly.kind == live::AlertKind::spike ? "  << SPIKE"
                                                        : "  << DROP";
      }
      std::printf("%-9s %6zu %8.1f %8zu %10.1f | %6.2f in [%5.2f, %5.2f]%s\n",
                  r.name.c_str(), w.window_index, w.start_s, w.inputs.flows,
                  w.inputs.lambda, w.measured.mean_bps / 1e6,
                  w.forecast.band_low_bps / 1e6,
                  w.forecast.band_high_bps / 1e6, mark);
    } else {
      std::printf("%-9s %6zu %8.1f %8zu %10.1f | %6.2f (warming up)\n",
                  r.name.c_str(), w.window_index, w.start_s, w.inputs.flows,
                  w.inputs.lambda, w.measured.mean_bps / 1e6);
    }
  });

  auto source = api::make_vector_source(std::move(packets));
  monitor.consume(*source);

  std::printf("\n%llu packets over %zu links\n",
              static_cast<unsigned long long>(monitor.summary().packets),
              monitor.links().size());
  for (const auto& link : monitor.links()) {
    std::printf("  %-9s %llu packets, %llu windows, %zu alert(s)\n",
                link.name.c_str(),
                static_cast<unsigned long long>(link.counters.packets),
                static_cast<unsigned long long>(link.counters.reports),
                alerts[link.name]);
  }
  // The injected burst must be caught on the victim link; the backbone link
  // (which longest-match shields from the victim's traffic) must stay calm.
  return alerts["victim"] > 0 && alerts["backbone"] == 0 ? 0 : 1;
}
