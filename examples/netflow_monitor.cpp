// Live sliding-window monitor with online estimation and anomaly alerting.
//
// The fbm::live rebuild of the original "NetFlow" demo: instead of one
// hand-rolled EWMA envelope trained offline, a live::WindowedEstimator
// re-derives the paper's flow parameters per 5-second window, rolls a
// next-window forecast with a confidence band, and flags a simulated
// denial-of-service burst injected mid-trace — the anomaly-detection
// application from the paper's introduction, running the way an operator
// would actually run it: continuously, in one pass.
//
// Run:  ./examples/netflow_monitor
#include <algorithm>
#include <cstdio>

#include "api/api.hpp"
#include "live/live.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  const double horizon = 90.0;
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  auto packets = trace::generate_packets(cfg);

  // Inject a DoS-like constant blast from t=60 to t=63 (small packets, one
  // destination).
  {
    net::FiveTuple attack;
    attack.src = net::Ipv4Address(66, 6, 6, 6);
    attack.dst = net::Ipv4Address(10, 0, 0, 80);
    attack.dst_port = 80;
    attack.protocol = 17;
    for (double t = 60.0; t < 63.0; t += 0.0002) {  // ~5000 pps x 1200 B ~ 48 Mbps
      attack.src_port = static_cast<std::uint16_t>(
          1024 + static_cast<int>(t * 10) % 1000);
      packets.push_back({t, attack, 1200});
    }
    std::sort(packets.begin(), packets.end(), net::ByTimestamp{});
  }

  // 5-second windows, short idle timeout (the trace is seconds-scale), a
  // 4-sigma band: the forecaster warms up on the clean traffic, then the
  // burst windows leave the band.
  live::LiveConfig config;
  config.window_s = 5.0;
  config.band_k_sigma = 4.0;
  config.analysis.timeout_s(5.0);

  std::printf("%6s %8s %8s %10s | %s\n", "window", "t0", "flows", "lambda",
              "measured vs forecast band (Mbps)");

  std::size_t alerts = 0;
  live::WindowedEstimator monitor(config);
  monitor.set_window_sink([&](live::WindowReport&& w) {
    if (w.forecast.available) {
      const char* mark = "";
      if (w.anomaly.alert) {
        ++alerts;
        mark = w.anomaly.kind == live::AlertKind::spike ? "  << SPIKE"
                                                        : "  << DROP";
      }
      std::printf("%6zu %8.1f %8zu %10.1f | %6.2f in [%5.2f, %5.2f]%s\n",
                  w.window_index, w.start_s, w.inputs.flows, w.inputs.lambda,
                  w.measured.mean_bps / 1e6, w.forecast.band_low_bps / 1e6,
                  w.forecast.band_high_bps / 1e6, mark);
    } else {
      std::printf("%6zu %8.1f %8zu %10.1f | %6.2f (warming up)\n",
                  w.window_index, w.start_s, w.inputs.flows, w.inputs.lambda,
                  w.measured.mean_bps / 1e6);
    }
  });

  auto source = api::make_vector_source(std::move(packets));
  monitor.consume(*source);

  const auto& c = monitor.counters();
  std::printf("\n%llu windows, %llu packets, %llu flows, %zu alert(s)\n",
              static_cast<unsigned long long>(c.windows),
              static_cast<unsigned long long>(c.packets),
              static_cast<unsigned long long>(c.flows), alerts);
  return alerts > 0 ? 0 : 1;  // the injected burst must be caught
}
