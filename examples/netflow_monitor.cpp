// Streaming "NetFlow" monitor with online estimation and anomaly detection.
//
// Demonstrates Section V-G (EWMA parameter estimation as flows complete) and
// the anomaly-detection application from the paper's introduction: the model
// envelope flags a simulated denial-of-service burst injected mid-trace.
//
// Run:  ./examples/netflow_monitor
#include <algorithm>
#include <cstdio>

#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "dimension/anomaly.hpp"
#include "flow/classifier.hpp"
#include "measure/rate_meter.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  const double horizon = 90.0;
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  auto packets = trace::generate_packets(cfg);

  // Inject a DoS-like constant blast from t=60 to t=63 (small packets, one
  // destination).
  {
    net::FiveTuple attack;
    attack.src = net::Ipv4Address(66, 6, 6, 6);
    attack.dst = net::Ipv4Address(10, 0, 0, 80);
    attack.dst_port = 80;
    attack.protocol = 17;
    for (double t = 60.0; t < 63.0; t += 0.0002) {  // ~5000 pps x 1200 B ~ 48 Mbps
      attack.src_port = static_cast<std::uint16_t>(
          1024 + static_cast<int>(t * 10) % 1000);
      packets.push_back({t, attack, 1200});
    }
    std::sort(packets.begin(), packets.end(), net::ByTimestamp{});
  }

  // Online estimation over the clean warm-up window [0, 50): the operator
  // trains the envelope on known-good traffic. A short idle timeout (the
  // trace is seconds-scale, not hours-scale) lets flows complete while the
  // stream is running instead of piling up until the final flush.
  flow::ClassifierOptions copt;
  copt.timeout = 5.0;
  flow::FiveTupleClassifier classifier(copt);
  core::OnlineEstimator estimator(0.005);
  std::size_t seen = 0;
  double next_sweep = 1.0;
  for (const auto& p : packets) {
    if (p.timestamp >= 50.0) break;
    classifier.add(p);
    ++seen;
    if (p.timestamp >= next_sweep) {
      classifier.expire_idle(p.timestamp);  // NetFlow inactive timer
      next_sweep += 1.0;
    }
    // Consume flows as they complete (streaming, like a NetFlow export).
    for (const auto& f : classifier.take_flows()) estimator.observe(f);
  }
  classifier.flush();
  for (const auto& f : classifier.take_flows()) estimator.observe(f);

  const auto in = estimator.inputs();
  std::printf("online estimates after %zu packets / %zu flows:\n", seen,
              estimator.flows_seen());
  std::printf("  lambda = %.1f flows/s, E[S] = %.1f kbit, E[S^2/D] = %.3g\n",
              in.lambda, in.mean_size_bits / 1e3, in.mean_s2_over_d);

  const double mean = core::mean_rate(in);
  const double stddev =
      std::sqrt(core::power_shot_variance(in, 1.0));  // triangular envelope
  std::printf("  model envelope: %.2f Mbps +- %.2f Mbps\n", mean / 1e6,
              stddev / 1e6);

  // Scan the full trace (including the attack) against the envelope.
  const auto series = measure::measure_rate(packets, 0.0, horizon, 0.2);
  dimension::AnomalyOptions opt;
  opt.k_sigma = 4.0;
  opt.min_consecutive = 4;
  const auto events = dimension::detect_anomalies(series, mean, stddev, opt);

  std::printf("\nanomaly scan (k=%.0f sigma, >=%zu consecutive samples):\n",
              opt.k_sigma, opt.min_consecutive);
  if (events.empty()) {
    std::printf("  no anomalies found\n");
  }
  for (const auto& e : events) {
    std::printf("  %s at t=%.1f..%.1fs, peak %.1f sigma\n",
                e.kind == dimension::AnomalyKind::spike ? "SPIKE" : "DROP",
                series.time_at(e.start_index),
                series.time_at(e.start_index + e.length),
                e.peak_deviation_sigma);
  }
  return 0;
}
