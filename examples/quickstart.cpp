// Quickstart: the full model pipeline through fbm::api.
//
// 1. Stream a synthetic backbone trace (stand-in for an OC-12 capture).
// 2. AnalysisPipeline classifies flows (5-tuple, 60 s timeout), estimates
//    the model's three parameters, measures the rate at Delta = 200 ms,
//    and fits the shot power b — all in one pass.
// 3. Print model vs measured mean and CoV from the report.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "api/api.hpp"

int main() {
  using namespace fbm;

  // A 60-second link at ~10 Mbps average utilization.
  trace::SyntheticConfig cfg;
  cfg.duration_s = 60.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  api::SyntheticTraceSource source(cfg);

  // One analysis interval covering the whole trace (paper Section III/V-G).
  // threads(4) shards classification over four workers; the reports are
  // bit-for-bit identical to a serial run — drop the call to stay serial.
  api::AnalysisConfig config;
  config.interval_s(60.0).timeout_s(60.0).threads(4);
  const auto reports = api::analyze(source, config);
  const api::AnalysisReport& r = reports.at(0);

  std::printf("trace: %llu packets, %.1f Mbps average\n",
              static_cast<unsigned long long>(source.report().packets),
              source.report().mean_rate_bps() / 1e6);
  std::printf("parameters: lambda=%.1f flows/s, E[S]=%.1f kbit, "
              "E[S^2/D]=%.3g bit^2/s\n",
              r.inputs.lambda, r.inputs.mean_size_bits / 1e3,
              r.inputs.mean_s2_over_d);

  std::printf("\n%-28s %12s %12s\n", "", "model", "measured");
  std::printf("%-28s %9.2f Mbps %9.2f Mbps\n", "mean rate (Corollary 1)",
              r.plan.mean_bps / 1e6, r.measured.mean_bps / 1e6);
  std::printf("%-28s %11.1f%% %11.1f%%\n", "CoV, fitted power shot",
              100.0 * r.model_cov, 100.0 * r.measured.cov);
  if (r.shot_b) {
    std::printf("\nfitted shot power b = %.2f  (rectangle=0, triangle=1, "
                "parabola=2)\n", *r.shot_b);
  }
  return 0;
}
