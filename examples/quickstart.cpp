// Quickstart: the full model pipeline in ~60 lines.
//
// 1. Generate a synthetic backbone trace (stand-in for an OC-12 capture).
// 2. Classify packets into 5-tuple flows with a 60 s timeout.
// 3. Estimate the model's three parameters and compare model vs measured
//    mean and coefficient of variation, then fit the shot power b.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  // 1. A 60-second link at ~10 Mbps average utilization.
  trace::SyntheticConfig cfg;
  cfg.duration_s = 60.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  trace::GenerationReport rep;
  const auto packets = trace::generate_packets(cfg, &rep);
  std::printf("trace: %llu packets, %llu flows, %.1f Mbps average\n",
              static_cast<unsigned long long>(rep.packets),
              static_cast<unsigned long long>(rep.flows),
              rep.mean_rate_bps() / 1e6);

  // 2. Flow classification (5-tuple, 60 s timeout, paper Section III).
  flow::ClassifierOptions opt;
  opt.record_discards = true;
  flow::FiveTupleClassifier classifier(opt);
  for (const auto& p : packets) classifier.add(p);
  classifier.flush();
  const auto flows = classifier.take_flows();
  std::printf("flows: %zu completed (%llu single-packet discarded)\n",
              flows.size(),
              static_cast<unsigned long long>(
                  classifier.counters().single_packet_discards));

  // 3. Model parameters from the flows (Section V-G: just three numbers).
  const auto intervals = flow::group_by_interval(flows, 60.0, 60.0);
  const auto in = flow::estimate_inputs(intervals[0]);
  std::printf("parameters: lambda=%.1f flows/s, E[S]=%.1f kbit, "
              "E[S^2/D]=%.3g bit^2/s\n",
              in.lambda, in.mean_size_bits / 1e3, in.mean_s2_over_d);

  // Measured moments at the paper's 200 ms averaging interval.
  const auto series = measure::measure_rate(packets, 0.0, 60.0, measure::kPaperDelta,
                                   classifier.discards());
  const auto mm = measure::rate_moments(series);

  std::printf("\n%-28s %12s %12s\n", "", "model", "measured");
  std::printf("%-28s %9.2f Mbps %9.2f Mbps\n", "mean rate (Corollary 1)",
              core::mean_rate(in) / 1e6, mm.mean_bps / 1e6);
  std::printf("%-28s %11.1f%% %11.1f%%\n",
              "CoV, triangular shot (b=1)",
              100.0 * core::power_shot_cov(in, 1.0), 100.0 * mm.cov);

  // Fit the shot power so the model matches the measured variance exactly.
  if (const auto b = core::fit_power_b(mm.variance, in)) {
    std::printf("\nfitted shot power b = %.2f  (rectangle=0, triangle=1, "
                "parabola=2)\n", *b);
  }
  return 0;
}
