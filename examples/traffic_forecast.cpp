// Rolling short-term rate prediction (paper Section VII-B, live edition).
//
// Streams a synthetic backbone trace through live::WindowedEstimator with
// 2-second windows: every closed window carries the forecast that was made
// for it one window earlier (data-driven ACF over the rolling history,
// order chosen the paper's way), plus its confidence band. The walk-forward
// error of those live forecasts is then compared against the offline
// model-driven predictor of the original demo — Theorem 2's ACF computed
// from the fitted shot-noise model — on the same sampled rate series.
//
// Run:  ./examples/traffic_forecast
#include <cmath>
#include <cstdio>
#include <vector>

#include "api/api.hpp"
#include "core/model.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "live/live.hpp"
#include "measure/rate_meter.hpp"
#include "predict/predictor.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  const double horizon = 120.0;
  const double iota = 2.0;  // window width == prediction interval
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  const auto packets = trace::generate_packets(cfg);

  // Live rolling forecast: window rate history only, nothing precomputed.
  live::LiveConfig config;
  config.window_s = iota;
  config.analysis.timeout_s(10.0);
  live::WindowedEstimator monitor(config);
  for (const auto& p : packets) monitor.push(p);
  monitor.finish();
  const auto reports = monitor.take_reports();

  std::printf("live rolling forecast (iota = %.0f s windows):\n", iota);
  std::printf("%8s %12s %12s %18s\n", "t0", "actual", "predicted", "band");
  double sq = 0.0;
  double mean_actual = 0.0;
  std::size_t evaluated = 0;
  for (const auto& w : reports) {
    if (!w.forecast.available) continue;
    const double err = w.forecast.predicted_mean_bps - w.measured.mean_bps;
    sq += err * err;
    mean_actual += w.measured.mean_bps;
    ++evaluated;
    if (w.window_index >= 20 && w.window_index < 30) {
      std::printf("%8.1f %9.2f M %9.2f M [%6.2f, %6.2f] M\n", w.start_s,
                  w.measured.mean_bps / 1e6,
                  w.forecast.predicted_mean_bps / 1e6,
                  w.forecast.band_low_bps / 1e6,
                  w.forecast.band_high_bps / 1e6);
    }
  }
  if (evaluated > 0) {
    const double rmse = std::sqrt(sq / static_cast<double>(evaluated));
    mean_actual /= static_cast<double>(evaluated);
    std::printf("  %zu windows forecast, rmse %.2f Mbps (%.1f%% of mean)\n",
                evaluated, rmse / 1e6, 100.0 * rmse / mean_actual);
  }

  // Offline reference: the model-driven ACF (Theorem 2) from a whole-trace
  // fit, the original Table-II comparison, on the same iota-sampled series.
  const auto flows = flow::classify_all<flow::FiveTupleKey>(packets);
  const auto intervals = flow::group_by_interval(flows, horizon, horizon);
  const auto model =
      core::ShotNoiseModel::from_interval(intervals[0], core::triangular_shot());
  const auto base = measure::measure_rate(packets, 0.0, horizon, 0.2);
  const auto series = stats::resample(base, static_cast<std::size_t>(iota / 0.2));
  const double mean = stats::mean(series.values);
  const std::size_t max_order =
      std::min<std::size_t>(8, series.values.size() / 4);
  std::vector<double> taus;
  for (std::size_t k = 0; k <= max_order; ++k) taus.push_back(k * iota);
  const auto model_acf = model.autocorrelation(taus);
  const auto order = predict::select_order(model_acf, series.values, max_order);
  const predict::MovingAveragePredictor offline(model_acf, order, mean);
  const auto rep = predict::evaluate_predictor(offline, series.values);

  std::printf("\noffline model-driven predictor (Theorem 2 ACF, M = %zu):\n",
              order);
  std::printf("  %zu samples evaluated, rmse %.2f Mbps (%.1f%% of mean)\n",
              rep.evaluated, rep.rmse / 1e6, 100.0 * rep.relative_error);
  std::printf("\nthe live forecaster needs no model and no past capture — "
              "only the rolling window-rate history.\n");
  return 0;
}
