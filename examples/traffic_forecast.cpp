// Short-term rate prediction (paper Section VII-B, Table II / Figure 14).
//
// Builds two Moving-Average predictors for the sampled total rate — one whose
// auto-correlation comes from the shot-noise model (Theorem 2), one estimated
// directly from past rate samples — and compares their walk-forward errors
// for several prediction intervals.
//
// Run:  ./examples/traffic_forecast
#include <cstdio>
#include <vector>

#include "core/model.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "predict/predictor.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace fbm;

  const double horizon = 120.0;
  trace::SyntheticConfig cfg;
  cfg.duration_s = horizon;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  const auto packets = trace::generate_packets(cfg);
  const auto flows = flow::classify_all<flow::FiveTupleKey>(packets);
  const auto intervals = flow::group_by_interval(flows, horizon, horizon);
  const auto model =
      core::ShotNoiseModel::from_interval(intervals[0], core::triangular_shot());
  const auto base = measure::measure_rate(packets, 0.0, horizon, 0.2);

  std::printf("%6s | %22s | %22s\n", "iota", "model-driven ACF",
              "measured ACF");
  std::printf("%6s | %4s %8s %8s | %4s %8s %8s\n", "(s)", "M", "rmse",
              "err%", "M", "rmse", "err%");

  for (std::size_t factor : {5u, 10u, 25u}) {  // iota = 1, 2, 5 s
    const auto series = stats::resample(base, factor);
    const double iota = series.delta;
    const double mean = stats::mean(series.values);
    const std::size_t max_order =
        std::min<std::size_t>(8, series.values.size() / 4);

    // Model-driven ACF: rho(k * iota) from Theorem 2.
    std::vector<double> taus;
    for (std::size_t k = 0; k <= max_order; ++k) taus.push_back(k * iota);
    const auto model_acf = model.autocorrelation(taus);
    const auto m1 = predict::select_order(model_acf, series.values, max_order);
    const predict::MovingAveragePredictor p1(model_acf, m1, mean);
    const auto r1 = predict::evaluate_predictor(p1, series.values);

    // Data-driven ACF from the samples themselves.
    const auto data_acf =
        stats::autocorrelation_series(series.values, max_order);
    const auto m2 = predict::select_order(data_acf, series.values, max_order);
    const predict::MovingAveragePredictor p2(data_acf, m2, mean);
    const auto r2 = predict::evaluate_predictor(p2, series.values);

    std::printf("%6.1f | %4zu %7.2fM %7.1f%% | %4zu %7.2fM %7.1f%%\n", iota,
                m1, r1.rmse / 1e6, 100.0 * r1.relative_error, m2,
                r2.rmse / 1e6, 100.0 * r2.relative_error);
  }

  std::printf("\nsample forecast trace (iota = 2 s, model-driven):\n");
  const auto series = stats::resample(base, 10);
  std::vector<double> taus;
  for (std::size_t k = 0; k <= 4; ++k) taus.push_back(k * series.delta);
  const predict::MovingAveragePredictor p(model.autocorrelation(taus), 2,
                                          stats::mean(series.values));
  const auto rep = predict::evaluate_predictor(p, series.values);
  for (std::size_t i = 10; i < std::min<std::size_t>(20, series.size()); ++i) {
    std::printf("  t=%5.1fs  actual %6.2f Mbps   predicted %6.2f Mbps\n",
                series.time_at(i), series.values[i] / 1e6,
                rep.predictions[i] / 1e6);
  }
  return 0;
}
