// Shared scaffolding for the libFuzzer targets (built under -DFBM_FUZZ=ON).
//
// Each fuzz_*.cpp defines LLVMFuzzerTestOneInput over raw bytes. With a
// fuzzer-capable compiler (clang) CMake links -fsanitize=fuzzer and the
// sanitizer runtime supplies main(). Other compilers get
// FBM_FUZZ_STANDALONE instead: the fallback main() below replays each
// argv path through the target once — enough for gcc to compile-check the
// targets and for CI to run them over the seed corpus without clang.
//
// All three readers under test parse from files, so write_temp_input()
// spills the fuzz payload to a per-process scratch file and hands back its
// path. Reuse of one path per process keeps the fuzzer's iteration cost at
// a single open/truncate, and the file lives in the OS tmpdir so crashed
// runs leave nothing behind in the corpus directory.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace fbm::fuzz {

/// Writes the payload to this process's scratch file and returns the path.
inline const std::filesystem::path& write_temp_input(
    const std::uint8_t* data, std::size_t size, const char* tag) {
  static const std::filesystem::path path = [&] {
    auto p = std::filesystem::temp_directory_path() /
             (std::string("fbm_fuzz_") + tag + "_" +
              std::to_string(static_cast<unsigned long>(getpid())));
    return p;
  }();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  return path;
}

}  // namespace fbm::fuzz

#ifdef FBM_FUZZ_STANDALONE
// Non-clang fallback: run each argv file through the target once.
int main(int argc, char** argv) {
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    std::printf("fuzz: %s ok (%zu bytes)\n", argv[i], bytes.size());
  }
  return failures == 0 ? 0 : 1;
}
#endif
