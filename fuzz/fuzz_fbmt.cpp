// Fuzz target: the native .fbmt trace reader. Any byte stream must either
// parse or throw a typed exception — never crash, hang, or overflow.
#include <exception>

#include "fuzz_driver.hpp"
#include "trace/trace_format.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = fbm::fuzz::write_temp_input(data, size, "fbmt");
  try {
    fbm::trace::TraceReader reader(path);
    // Exercise both read paths: records until EOF, then a batched replay
    // would need reopening — one pass is enough per input.
    while (reader.next()) {
    }
  } catch (const std::exception&) {
    // Malformed input rejected with a typed error: exactly the contract.
  }
  return 0;
}
