// Fuzz target: the distributed-aggregation partial-report codec (.fbmp).
#include <exception>

#include "agg/partial_codec.hpp"
#include "fuzz_driver.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = fbm::fuzz::write_temp_input(data, size, "fbmp");
  try {
    (void)fbm::agg::read_partial_file(path);
  } catch (const std::exception&) {
    // Malformed input rejected with a typed error: exactly the contract.
  }
  return 0;
}
