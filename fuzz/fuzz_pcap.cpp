// Fuzz target: the pcap importer, including the 802.1Q/QinQ decap walk.
#include <exception>

#include "fuzz_driver.hpp"
#include "trace/pcap.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = fbm::fuzz::write_temp_input(data, size, "pcap");
  try {
    fbm::trace::PcapReader reader(path);
    while (reader.next()) {
    }
  } catch (const std::exception&) {
    // Malformed input rejected with a typed error: exactly the contract.
  }
  return 0;
}
