// fbm::agg — distributed aggregation: serialize sufficient statistics,
// merge across shards/processes/hosts, fit once.
//
//   fbm_analyze --emit-partial ──► part0.fbmp ─┐
//   fbm_analyze --emit-partial ──► part1.fbmp ─┼─► fbm_aggregate ──► JSON
//   fbm_analyze --emit-partial ──► part2.fbmp ─┘   (agg::Merger)
//
// Typical use:
//
//   fbm::agg::Merger merger;
//   for (const auto& path : partial_paths) merger.add_file(path);
//   fbm::agg::MergeResult merged = merger.finish();
//   std::puts(merged.document.c_str());   // batch: one JSON document
//
// The contract (tests/agg/): splitting a trace by flow key across K
// producers, emitting K partial files and merging them reproduces —
// byte for byte — the JSON a single fbm_analyze/fbm_live run over the whole
// trace prints. Corrupt, truncated or incompatible partials are rejected
// with a one-line diagnostic, never silently merged.
#pragma once

#include "agg/merger.hpp"         // IWYU pragma: export
#include "agg/partial_codec.hpp"  // IWYU pragma: export
