#include "agg/merger.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/shard.hpp"
#include "engine/report.hpp"
#include "live/window_report.hpp"
#include "obs/catalog.hpp"

namespace fbm::agg {

void Merger::add_file(const std::filesystem::path& path) {
  add(read_partial_file(path));
}

void Merger::add(PartialFile&& file) {
  if (files_ == 0) {
    meta_ = std::move(file.meta);
  } else {
    check_compatible(meta_, file.meta);
  }
  ++files_;
  if (obs::enabled()) obs::agg_partials_read().add(1);

  // Trace totals: u64 sums are exact; first/last only count producers that
  // actually saw packets (an idle shard's zeroed timestamps must not win
  // the min).
  const auto& s = file.totals.summary;
  if (s.packets > 0) {
    if (summary_.packets == 0 || s.first_ts < summary_.first_ts) {
      summary_.first_ts = s.first_ts;
    }
    if (summary_.packets == 0 || s.last_ts > summary_.last_ts) {
      summary_.last_ts = s.last_ts;
    }
  }
  summary_.packets += s.packets;
  summary_.total_bytes += s.total_bytes;

  for (const auto& lt : file.totals.links) {
    auto& total = link_totals_[lt.id];
    total.id = lt.id;
    total.packets += lt.packets;
    total.bytes += lt.bytes;
  }

  for (auto& w : file.windows) fold_window(std::move(w));
}

void Merger::fold_window(PartialWindow&& w) {
  if (obs::enabled()) obs::agg_windows_merged().add(1);
  auto& cell = by_link_[w.link_id];
  auto it = cell.find(w.window.index);
  if (it == cell.end()) {
    cell.emplace(w.window.index, std::move(w.window));
    return;
  }
  // Concatenation order is irrelevant: fitting re-sorts with flow::ByStart,
  // and the bins sum integral byte counts (exact in any order) — the same
  // argument api::ParallelAnalysisPipeline::merge_front relies on.
  live::WindowPartial& into = it->second;
  into.packets += w.window.packets;
  into.bytes += w.window.bytes;
  into.discards += w.window.discards;
  into.flows.insert(into.flows.end(),
                    std::make_move_iterator(w.window.flows.begin()),
                    std::make_move_iterator(w.window.flows.end()));
  try {
    into.bins.merge(w.window.bins);
  } catch (const std::invalid_argument&) {
    throw std::runtime_error(
        "partial files disagree on the bin grid of window " +
        std::to_string(w.window.index) + " and cannot be merged");
  }
}

MergeResult Merger::finish() {
  if (files_ == 0) {
    throw std::runtime_error("no partial files to merge");
  }
  if (summary_.packets == 0) {
    throw std::runtime_error("merged partials contain no packets");
  }

  MergeResult result;
  result.kind = meta_.kind;
  result.engine = meta_.engine;
  result.files = files_;
  result.summary = summary_;

  // Per-link window coverage: every producer emits contiguous indices from
  // 0, so the merged span is 0..max-seen; indices some producers never
  // touched fold with empty material on the configuration's grid.
  const auto max_index = [&](std::uint32_t link) {
    const auto it = by_link_.find(link);
    if (it == by_link_.end() || it->second.empty()) return std::int64_t{-1};
    return it->second.rbegin()->first;
  };
  const auto take = [&](std::uint32_t link, std::int64_t index, double start,
                        double end, double delta) {
    auto& cell = by_link_[link];
    if (const auto it = cell.find(index); it != cell.end()) {
      live::WindowPartial w = std::move(it->second);
      return w;
    }
    return live::WindowPartial{
        index, 0, 0, 0, {}, stats::RateBinner(start, end, delta)};
  };

  if (meta_.kind == PartialKind::batch) {
    const api::AnalysisConfig config = meta_.analysis_config();
    const auto fit_link = [&](std::uint32_t link) {
      std::vector<api::AnalysisReport> reports;
      for (std::int64_t k = 0; k <= max_index(link); ++k) {
        const double start = static_cast<double>(k) * config.interval_s();
        live::WindowPartial w = take(link, k, start,
                                     start + config.interval_s(),
                                     config.delta_s());
        ++result.windows;
        api::AnalysisReport report = api::finalize_interval(
            config, k, std::move(w.flows), std::move(w.bins));
        // min_flows deferred with the fit: applied here, exactly once.
        if (report.inputs.flows >= config.min_flows()) {
          reports.push_back(std::move(report));
        }
      }
      return reports;
    };

    if (!meta_.engine) {
      const std::vector<api::AnalysisReport> reports = fit_link(0);
      result.document = api::to_json(summary_, reports);
      return result;
    }
    std::vector<engine::LinkBatchResult> links;
    links.reserve(meta_.links.size());
    for (const auto& decl : meta_.links) {
      engine::LinkCounters counters;
      if (const auto it = link_totals_.find(decl.id);
          it != link_totals_.end()) {
        counters.packets = it->second.packets;
        counters.bytes = it->second.bytes;
      }
      std::vector<api::AnalysisReport> reports = fit_link(decl.id);
      counters.reports = reports.size();
      links.push_back({decl.name, counters, std::move(reports)});
    }
    result.document = engine::to_json(summary_, links);
    return result;
  }

  // Live: replay the per-link forecaster/monitor state in window order —
  // the forecast for window k is a function of windows < k, so the merge
  // must fit them in exactly the order the producer's estimator would have.
  const live::LiveConfig config = meta_.live_config();
  struct LinkState {
    std::uint32_t id;
    std::string name;
    std::int64_t max;
    live::RollingForecaster forecaster;
    live::AnomalyMonitor monitor;
  };
  std::vector<LinkState> states;
  const auto make_state = [&](std::uint32_t id, std::string name) {
    return LinkState{id, std::move(name), max_index(id),
                     live::RollingForecaster(
                         config.forecast_max_order, config.forecast_history,
                         config.band_k_sigma),
                     live::AnomalyMonitor(config)};
  };
  if (!meta_.engine) {
    states.push_back(make_state(0, ""));
  } else {
    for (const auto& decl : meta_.links) {
      states.push_back(make_state(decl.id, decl.name));
    }
  }
  std::int64_t global_max = -1;
  for (const auto& st : states) global_max = std::max(global_max, st.max);

  for (std::int64_t k = 0; k <= global_max; ++k) {
    for (auto& st : states) {
      if (k > st.max) continue;
      const double start = static_cast<double>(k) * config.stride();
      live::WindowPartial w =
          take(st.id, k, start, start + config.window_s,
               config.analysis.delta_s());
      ++result.windows;
      live::WindowReport report = live::fit_window_report(
          config, std::move(w), st.forecaster, st.monitor);
      result.lines.push_back(meta_.engine
                                 ? live::to_jsonl(report, st.name)
                                 : live::to_jsonl(report));
    }
  }
  return result;
}

}  // namespace fbm::agg
