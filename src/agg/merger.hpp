// agg::Merger — fold partial reports, fit once.
//
// Any number of PartialReport files — written by shard processes of one
// host, or by collectors at many POPs — fold window-by-window, link-by-link:
// flow records concatenate, exact byte bins sum, trace totals add. After the
// final fold the merger runs the exact same fitting code the producing tool
// would have run locally (api::finalize_interval per batch interval;
// live::fit_window_report per sliding window, forecaster and monitor
// replayed in window order), then renders the standard output document.
//
// Because flows are re-sorted with flow::ByStart (a total order) and bins
// hold integral byte counts (double addition is exact on integers), the
// result is bit-for-bit identical to a single-machine run over the union of
// the producers' packets — the property
// tests/agg/test_aggregate_differential.cpp pins for key-sharded producers.
// One caveat: a *streaming* multi-link run interleaves its JSONL lines by
// packet arrival, so engine-live merges guarantee byte-identical per-link
// subsequences and the same line set, emitted in the canonical
// (window index, attach order) interleave; every other mode (batch
// single-link, batch engine, live single-link) is byte-identical outright.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "agg/partial_codec.hpp"

namespace fbm::agg {

/// A finished merge, rendered exactly as the producing tool would have:
/// one JSON document for batch runs (fbm_analyze --json shape, engine shape
/// when the producers ran multi-link), one JSONL line per window for live
/// runs (fbm_live --json shape), in window order — engine-mode lines
/// ordered by (window index, link attach order).
struct MergeResult {
  PartialKind kind = PartialKind::batch;
  bool engine = false;
  std::string document;            ///< batch modes
  std::vector<std::string> lines;  ///< live modes
  std::uint64_t files = 0;    ///< partial files folded
  std::uint64_t windows = 0;  ///< windows fitted (post-merge, all links)
  trace::TraceSummary summary;
};

class Merger {
 public:
  /// Reads, verifies and folds one partial file. Throws std::runtime_error
  /// (diagnostic names the file) when the file is unreadable, corrupt,
  /// truncated, or incompatible with the files already folded.
  void add_file(const std::filesystem::path& path);

  /// Folds an already-parsed file (the in-memory path used by tests).
  void add(PartialFile&& file);

  [[nodiscard]] std::uint64_t files() const { return files_; }

  /// Fits everything and renders. Throws std::runtime_error when no file
  /// was added or the merged partials contain no packets.
  [[nodiscard]] MergeResult finish();

 private:
  /// Merged raw material of one (link, window) cell.
  using WindowMap = std::map<std::int64_t, live::WindowPartial>;

  void fold_window(PartialWindow&& w);

  PartialMeta meta_;
  std::map<std::uint32_t, WindowMap> by_link_;
  std::map<std::uint32_t, LinkTotals> link_totals_;
  trace::TraceSummary summary_;
  std::uint64_t files_ = 0;
};

}  // namespace fbm::agg
