#include "agg/partial_codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fbm::agg {

namespace {

using core::ByteBuffer;
using core::ByteCursor;

constexpr std::uint32_t kFrameMeta = 1;
constexpr std::uint32_t kFrameWindow = 2;
constexpr std::uint32_t kFrameEnd = 3;

// ------------------------------------------------------------- serializing ---

[[nodiscard]] ByteBuffer encode_window(std::uint32_t link_id,
                                       const live::WindowPartial& w) {
  ByteBuffer b;
  b.put(link_id);
  b.put(std::uint32_t{0});
  b.put(w.index);
  b.put(w.packets);
  b.put(w.bytes);
  b.put(w.discards);
  b.put(w.bins.grid_start());
  b.put(w.bins.grid_end());
  b.put(w.bins.grid_delta());
  b.put(static_cast<std::uint64_t>(w.bins.dropped()));
  b.put(w.bins.total_bytes());
  const auto bins = w.bins.bin_bytes();
  b.put(static_cast<std::uint64_t>(bins.size()));
  for (const double v : bins) b.put(v);
  b.put(static_cast<std::uint64_t>(w.flows.size()));
  for (const auto& f : w.flows) {
    b.put(f.start);
    b.put(f.end);
    b.put(f.size_bytes);
    b.put(f.packets);
    b.put(static_cast<std::uint64_t>(f.continued ? 1 : 0));
  }
  return b;
}

[[nodiscard]] ByteBuffer encode_end(std::uint64_t windows,
                                    const PartialTotals& t) {
  ByteBuffer b;
  b.put(windows);
  b.put(t.summary.packets);
  b.put(t.summary.total_bytes);
  b.put(t.summary.first_ts);
  b.put(t.summary.last_ts);
  b.put(static_cast<std::uint32_t>(t.links.size()));
  b.put(std::uint32_t{0});
  for (const auto& link : t.links) {
    b.put(link.id);
    b.put(std::uint32_t{0});
    b.put(link.packets);
    b.put(link.bytes);
  }
  return b;
}

// --------------------------------------------------------------- deserializing

[[nodiscard]] PartialWindow decode_window(ByteCursor& c) {
  const auto link_id = c.get<std::uint32_t>();
  (void)c.get<std::uint32_t>();  // reserved
  const auto index = c.get<std::int64_t>();
  const auto packets = c.get<std::uint64_t>();
  const auto bytes = c.get<std::uint64_t>();
  const auto discards = c.get<std::uint64_t>();
  const double grid_start = c.get<double>();
  const double grid_end = c.get<double>();
  const double grid_delta = c.get<double>();
  const auto dropped = c.get<std::uint64_t>();
  const double total_bytes = c.get<double>();
  const auto bin_count = c.get<std::uint64_t>();
  if (bin_count > (c.size - c.at) / sizeof(double)) {
    throw std::runtime_error(c.where + ": malformed frame payload");
  }
  std::vector<double> bins;
  bins.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) bins.push_back(c.get<double>());

  stats::RateBinner binner = [&] {
    try {
      return stats::RateBinner(grid_start, grid_end, grid_delta,
                               std::move(bins),
                               static_cast<std::size_t>(dropped), total_bytes);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error(c.where + ": window bins do not match grid");
    }
  }();

  const auto flow_count = c.get<std::uint64_t>();
  if (flow_count > (c.size - c.at) / 40) {  // 5 x 8 bytes per flow record
    throw std::runtime_error(c.where + ": malformed frame payload");
  }
  std::vector<flow::FlowRecord> flows;
  flows.reserve(flow_count);
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    flow::FlowRecord f;
    f.start = c.get<double>();
    f.end = c.get<double>();
    f.size_bytes = c.get<std::uint64_t>();
    f.packets = c.get<std::uint64_t>();
    f.continued = c.get<std::uint64_t>() != 0;
    flows.push_back(f);
  }
  c.expect_done();
  return PartialWindow{
      link_id, live::WindowPartial{index, packets, bytes, discards,
                                   std::move(flows), std::move(binner)}};
}

[[nodiscard]] std::pair<std::uint64_t, PartialTotals> decode_end(
    ByteCursor& c) {
  const auto windows = c.get<std::uint64_t>();
  PartialTotals t;
  t.summary.packets = c.get<std::uint64_t>();
  t.summary.total_bytes = c.get<std::uint64_t>();
  t.summary.first_ts = c.get<double>();
  t.summary.last_ts = c.get<double>();
  const auto nlinks = c.get<std::uint32_t>();
  (void)c.get<std::uint32_t>();  // reserved
  t.links.reserve(nlinks);
  for (std::uint32_t i = 0; i < nlinks; ++i) {
    LinkTotals link;
    link.id = c.get<std::uint32_t>();
    (void)c.get<std::uint32_t>();
    link.packets = c.get<std::uint64_t>();
    link.bytes = c.get<std::uint64_t>();
    t.links.push_back(link);
  }
  c.expect_done();
  return {windows, std::move(t)};
}

}  // namespace

// ----------------------------------------------------------- meta codec ---

void encode_meta(core::ByteBuffer& b, const PartialMeta& m) {
  b.put(static_cast<std::uint32_t>(m.kind));
  b.put(static_cast<std::uint32_t>(m.flow_def));
  b.put(m.timeout_s);
  b.put(m.interval_s);
  b.put(m.delta_s);
  b.put(m.eps);
  b.put(m.min_flows);
  b.put(m.fixed_b);
  b.put(m.fallback_b);
  b.put(m.window_s);
  b.put(m.stride_s);
  b.put(m.forecast_max_order);
  b.put(m.forecast_history);
  b.put(m.band_k_sigma);
  b.put(m.alert_min_consecutive);
  b.put(m.bin_k_sigma);
  b.put(m.bin_min_consecutive);
  b.put(static_cast<std::uint32_t>(m.engine ? 1 : 0));
  b.put(static_cast<std::uint32_t>(m.links.size()));
  for (const auto& link : m.links) {
    b.put(link.id);
    b.put_string(link.name);
  }
}

PartialMeta decode_meta(core::ByteCursor& c) {
  PartialMeta m;
  const auto kind = c.get<std::uint32_t>();
  if (kind != static_cast<std::uint32_t>(PartialKind::batch) &&
      kind != static_cast<std::uint32_t>(PartialKind::live)) {
    throw std::runtime_error(c.where + ": unknown partial kind");
  }
  m.kind = static_cast<PartialKind>(kind);
  const auto def = c.get<std::uint32_t>();
  if (def > 1) {
    throw std::runtime_error(c.where + ": unknown flow definition");
  }
  m.flow_def = def == 0 ? api::FlowDefinition::five_tuple
                        : api::FlowDefinition::prefix24;
  m.timeout_s = c.get<double>();
  m.interval_s = c.get<double>();
  m.delta_s = c.get<double>();
  m.eps = c.get<double>();
  m.min_flows = c.get<std::uint64_t>();
  m.fixed_b = c.get<double>();
  m.fallback_b = c.get<double>();
  m.window_s = c.get<double>();
  m.stride_s = c.get<double>();
  m.forecast_max_order = c.get<std::uint64_t>();
  m.forecast_history = c.get<std::uint64_t>();
  m.band_k_sigma = c.get<double>();
  m.alert_min_consecutive = c.get<std::uint64_t>();
  m.bin_k_sigma = c.get<double>();
  m.bin_min_consecutive = c.get<std::uint64_t>();
  m.engine = c.get<std::uint32_t>() != 0;
  const auto nlinks = c.get<std::uint32_t>();
  m.links.reserve(nlinks);
  for (std::uint32_t i = 0; i < nlinks; ++i) {
    LinkDecl link;
    link.id = c.get<std::uint32_t>();
    link.name = c.get_string();
    m.links.push_back(std::move(link));
  }
  if (m.engine != !m.links.empty()) {
    throw std::runtime_error(c.where + ": inconsistent link declarations");
  }
  return m;
}

// ------------------------------------------------------------ PartialMeta ---

PartialMeta PartialMeta::from_batch(const api::AnalysisConfig& cfg) {
  PartialMeta m;
  m.kind = PartialKind::batch;
  m.flow_def = cfg.flow_definition();
  m.timeout_s = cfg.timeout_s();
  m.interval_s = cfg.interval_s();
  m.delta_s = cfg.delta_s();
  m.eps = cfg.epsilon();
  m.min_flows = cfg.min_flows();
  m.fixed_b = cfg.has_fixed_shot_b() ? cfg.fixed_shot_b() : -1.0;
  m.fallback_b = cfg.fallback_shot_b();
  return m;
}

PartialMeta PartialMeta::from_live(const live::LiveConfig& cfg) {
  PartialMeta m = from_batch(cfg.analysis);
  m.kind = PartialKind::live;
  m.interval_s = 0.0;  // the window is the analysis interval
  m.window_s = cfg.window_s;
  m.stride_s = cfg.stride_s;
  m.forecast_max_order = cfg.forecast_max_order;
  m.forecast_history = cfg.forecast_history;
  m.band_k_sigma = cfg.band_k_sigma;
  m.alert_min_consecutive = cfg.alert_min_consecutive;
  m.bin_k_sigma = cfg.bin_k_sigma;
  m.bin_min_consecutive = cfg.bin_min_consecutive;
  return m;
}

api::AnalysisConfig PartialMeta::analysis_config() const {
  api::AnalysisConfig cfg;
  cfg.flow_definition(flow_def)
      .timeout_s(timeout_s)
      .delta_s(delta_s)
      .epsilon(eps)
      .min_flows(static_cast<std::size_t>(min_flows))
      .fallback_shot_b(fallback_b)
      .threads(1);
  if (kind == PartialKind::batch) cfg.interval_s(interval_s);
  if (fixed_b >= 0.0) cfg.fixed_shot_b(fixed_b);
  return cfg;
}

live::LiveConfig PartialMeta::live_config() const {
  live::LiveConfig cfg;
  cfg.analysis = analysis_config();
  cfg.window_s = window_s;
  cfg.stride_s = stride_s;
  cfg.forecast_max_order = static_cast<std::size_t>(forecast_max_order);
  cfg.forecast_history = static_cast<std::size_t>(forecast_history);
  cfg.band_k_sigma = band_k_sigma;
  cfg.alert_min_consecutive = static_cast<std::size_t>(alert_min_consecutive);
  cfg.bin_k_sigma = bin_k_sigma;
  cfg.bin_min_consecutive = static_cast<std::size_t>(bin_min_consecutive);
  return cfg;
}

void check_compatible(const PartialMeta& a, const PartialMeta& b) {
  const auto fail = [](const char* what) {
    throw std::runtime_error(std::string("partial files disagree on ") +
                             what + " and cannot be merged");
  };
  if (a.kind != b.kind) fail("kind (batch vs live)");
  if (a.flow_def != b.flow_def) fail("flow definition");
  if (a.timeout_s != b.timeout_s) fail("timeout");
  if (a.interval_s != b.interval_s) fail("analysis interval");
  if (a.delta_s != b.delta_s) fail("delta");
  if (a.eps != b.eps) fail("epsilon");
  if (a.min_flows != b.min_flows) fail("min-flows");
  if (a.fixed_b != b.fixed_b) fail("fixed shot b");
  if (a.fallback_b != b.fallback_b) fail("fallback shot b");
  if (a.window_s != b.window_s) fail("window");
  if (a.stride_s != b.stride_s) fail("stride");
  if (a.forecast_max_order != b.forecast_max_order) fail("forecast order");
  if (a.forecast_history != b.forecast_history) fail("forecast history");
  if (a.band_k_sigma != b.band_k_sigma) fail("band k-sigma");
  if (a.alert_min_consecutive != b.alert_min_consecutive) {
    fail("alert consecutive-window threshold");
  }
  if (a.bin_k_sigma != b.bin_k_sigma) fail("bin k-sigma");
  if (a.bin_min_consecutive != b.bin_min_consecutive) {
    fail("bin consecutive threshold");
  }
  if (a.engine != b.engine) fail("engine mode");
  if (a.links.size() != b.links.size()) fail("link set");
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    if (a.links[i].id != b.links[i].id ||
        a.links[i].name != b.links[i].name) {
      fail("link set");
    }
  }
}

// ----------------------------------------------------------- PartialWriter ---

PartialWriter::PartialWriter(const std::filesystem::path& path,
                             PartialMeta meta)
    : out_(path, kPartialMagic, kPartialVersion, "PartialWriter") {
  ByteBuffer b;
  encode_meta(b, meta);
  out_.write_frame(kFrameMeta, b);
}

PartialWriter::~PartialWriter() = default;

void PartialWriter::add(std::uint32_t link_id,
                        const live::WindowPartial& window) {
  if (finished_) {
    throw std::logic_error("PartialWriter: add after finish");
  }
  out_.write_frame(kFrameWindow, encode_window(link_id, window));
  ++windows_;
}

void PartialWriter::finish(const PartialTotals& totals) {
  if (finished_) return;
  finished_ = true;
  out_.write_frame(kFrameEnd, encode_end(windows_, totals));
  out_.close();
}

// ------------------------------------------------------- read_partial_file ---

PartialFile read_partial_file(const std::filesystem::path& path) {
  const std::string where = "partial file " + path.string();
  core::FrameReader reader(
      path, {kPartialMagic, kPartialVersion, "a partial report", where,
             /*tolerate_torn_tail=*/false});

  PartialFile file;
  bool have_meta = false;
  bool have_end = false;
  std::uint64_t declared_windows = 0;

  while (!have_end) {
    auto frame = reader.next();
    if (!frame) {
      throw std::runtime_error(where + ": truncated (missing end frame)");
    }
    ByteCursor c{frame->payload.data(), frame->payload.size(), 0, where};
    if (!have_meta) {
      if (frame->type != kFrameMeta) {
        throw std::runtime_error(where + ": first frame is not a meta frame");
      }
      file.meta = decode_meta(c);
      c.expect_done();
      have_meta = true;
      continue;
    }
    switch (frame->type) {
      case kFrameMeta:
        throw std::runtime_error(where + ": duplicate meta frame");
      case kFrameWindow:
        file.windows.push_back(decode_window(c));
        break;
      case kFrameEnd: {
        auto [windows, totals] = decode_end(c);
        declared_windows = windows;
        file.totals = std::move(totals);
        have_end = true;
        break;
      }
      default:
        throw std::runtime_error(where + ": unknown frame type " +
                                 std::to_string(frame->type));
    }
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error(where + ": trailing data after end frame");
  }
  if (declared_windows != file.windows.size()) {
    throw std::runtime_error(
        where + ": window count mismatch (end frame says " +
        std::to_string(declared_windows) + ", file holds " +
        std::to_string(file.windows.size()) + ")");
  }
  for (const auto& w : file.windows) {
    const bool known =
        !file.meta.engine
            ? w.link_id == 0
            : std::any_of(file.meta.links.begin(), file.meta.links.end(),
                          [&](const LinkDecl& l) { return l.id == w.link_id; });
    if (!known) {
      throw std::runtime_error(where + ": window frame for undeclared link");
    }
  }
  return file;
}

}  // namespace fbm::agg
