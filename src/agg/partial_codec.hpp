// PartialReport codec (fbm::agg) — sufficient statistics on the wire.
//
// The paper's three model inputs and the exact Delta rate bins are additive:
// a fit over the union of two packet sets is a pure function of the
// concatenated flow records and the summed byte bins. That makes the fit
// deferrable — K shard processes (or M remote POPs) can each classify their
// own key-disjoint slice of the traffic, serialize the raw pre-fit material
// per analysis window, and a later fbm_aggregate run folds the partials and
// fits once, reproducing a single-machine run bit for bit (see agg::Merger).
//
// File layout (all little-endian, like trace/trace_format.hpp):
//
//   header  : u32 magic "FBMP" | u32 version | u64 reserved
//   frames  : u32 type | u32 reserved | u64 payload_len
//             | payload | u64 fnv1a64(payload)
//
// Exactly one meta frame (first), then any number of window frames, then
// exactly one end frame. The end frame carries the window-frame count and
// the producer's trace totals, so a truncated file — no end frame, or a
// frame cut mid-payload — is always detected, never silently merged. Every
// payload is checksummed; a flipped bit fails loudly. Bins travel as exact
// integral byte counts (never derived bits/s) and flows as full records, so
// the merged material is indistinguishable from locally accumulated state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "core/framed_file.hpp"
#include "live/live_config.hpp"
#include "live/windowed_estimator.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::agg {

inline constexpr std::uint32_t kPartialMagic = 0x504D4246;  // "FBMP"
inline constexpr std::uint32_t kPartialVersion = 1;

/// What kind of run produced the file: batch analysis intervals
/// (api::AnalysisPipeline) or live sliding windows (live::WindowedEstimator).
enum class PartialKind : std::uint32_t { batch = 1, live = 2 };

/// One link declared by an engine-mode producer (attach order preserved).
struct LinkDecl {
  std::uint32_t id = 0;
  std::string name;
};

/// The producing run's identity: every result-affecting knob. Two partial
/// files fold only if their metas agree exactly (throughput knobs — threads,
/// batching, reserves — are deliberately absent: serial and sharded
/// producers yield identical partials and must merge).
struct PartialMeta {
  PartialKind kind = PartialKind::batch;
  api::FlowDefinition flow_def = api::FlowDefinition::five_tuple;

  // Shared analysis knobs (api::AnalysisConfig).
  double timeout_s = 60.0;
  double interval_s = 60.0;  ///< batch analysis interval (ignored for live)
  double delta_s = 0.2;
  double eps = 0.01;
  std::uint64_t min_flows = 0;  ///< applied once, after the final fold
  double fixed_b = -1.0;        ///< < 0 means "fit per interval"
  double fallback_b = 1.0;

  // Live knobs (live::LiveConfig); zero-initialized for batch files.
  double window_s = 0.0;
  double stride_s = 0.0;
  std::uint64_t forecast_max_order = 0;
  std::uint64_t forecast_history = 0;
  double band_k_sigma = 0.0;
  std::uint64_t alert_min_consecutive = 0;
  double bin_k_sigma = 0.0;
  std::uint64_t bin_min_consecutive = 0;

  /// Engine mode: the producer's attached links, in attach order. Empty
  /// means a single-link run (window frames then carry link id 0).
  bool engine = false;
  std::vector<LinkDecl> links;

  [[nodiscard]] static PartialMeta from_batch(const api::AnalysisConfig& cfg);
  [[nodiscard]] static PartialMeta from_live(const live::LiveConfig& cfg);

  /// Rebuilds the configs the merger fits with (threads forced to 1; the
  /// merger itself is single-threaded and deterministic).
  [[nodiscard]] api::AnalysisConfig analysis_config() const;
  [[nodiscard]] live::LiveConfig live_config() const;
};

/// Throws std::runtime_error naming the first mismatching field when two
/// metas cannot fold (different kind, flow definition, knob, or link set).
void check_compatible(const PartialMeta& a, const PartialMeta& b);

/// Serializes / parses a PartialMeta as a frame payload. Shared with the
/// checkpoint codec (ckpt::), which reuses the meta frame as its config
/// identity so restore can refuse a checkpoint taken under different knobs
/// with the same field-naming diagnostics as a partial merge.
void encode_meta(core::ByteBuffer& out, const PartialMeta& m);
[[nodiscard]] PartialMeta decode_meta(core::ByteCursor& c);

/// Per-link packet/byte totals of an engine-mode producer (for the merged
/// "packets routed" counters; summed across files).
struct LinkTotals {
  std::uint32_t id = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Producer totals, carried by the end frame. Summaries sum exactly across
/// key-disjoint or tap-disjoint producers (u64 sums, min/max timestamps).
struct PartialTotals {
  trace::TraceSummary summary;
  std::vector<LinkTotals> links;  ///< engine mode only
};

/// One serialized window: the raw pre-fit material of one analysis interval
/// (batch; counters zero) or sliding window (live), tagged with its link.
struct PartialWindow {
  std::uint32_t link_id = 0;
  live::WindowPartial window;
};

/// A fully parsed, checksum-verified partial file.
struct PartialFile {
  PartialMeta meta;
  std::vector<PartialWindow> windows;
  PartialTotals totals;
};

/// Streaming writer: header + meta at construction, one frame per add(),
/// end frame at finish(). A file abandoned before finish() (crash, thrown
/// exception) has no end frame and is rejected by the reader — partials are
/// valid only once complete.
class PartialWriter {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  PartialWriter(const std::filesystem::path& path, PartialMeta meta);
  ~PartialWriter();
  PartialWriter(const PartialWriter&) = delete;
  PartialWriter& operator=(const PartialWriter&) = delete;

  /// Appends one window frame. Frames may arrive in any order across links
  /// and indices — the merger folds by (link, index), order-insensitively.
  void add(std::uint32_t link_id, const live::WindowPartial& window);

  /// Writes the end frame and flushes. Throws std::runtime_error on I/O
  /// failure. add() must not be called afterwards.
  void finish(const PartialTotals& totals);

  [[nodiscard]] std::uint64_t windows_written() const { return windows_; }

 private:
  core::FrameWriter out_;
  std::uint64_t windows_ = 0;
  bool finished_ = false;
};

/// Parses and verifies one partial file. Throws std::runtime_error with a
/// one-line diagnostic naming the file for every defect: unreadable, bad
/// magic, future version, truncated frame, missing end frame, checksum
/// mismatch, malformed payload, or trailing garbage.
[[nodiscard]] PartialFile read_partial_file(
    const std::filesystem::path& path);

}  // namespace fbm::agg
