// fbm::api — the library's public entry point.
//
// Single link (one pipeline per stream):
//
//   TraceSource  ──►  AnalysisPipeline  ──►  AnalysisReport
//   (packets,         (classify + measure     (model inputs, fitted shot,
//    streamed)         + fit, one pass,        Gaussian approximation,
//                      window-bounded memory)  capacity plan, JSON)
//
// Many links, one process (the documented front door for monitoring
// deployments — fbm::engine, re-exported below):
//
//                     ┌► session "transit"  (batch or live)  ─┐
//   TraceSource ──► Engine demux ─► session "peering"        ─┼─► ReportSink
//                     │  (RoutingTable LPM, 5-tuple           │   (LinkReport:
//                     │   predicates, match-all)              │    link name +
//                     └► session "tap" ───────────────────────┘    report)
//                        sessions share one worker pool;
//                        per-link config layered over a base
//
// AnalysisConfig::threads(N) with N > 1 routes analyze() through
// ParallelAnalysisPipeline: N flow-key-hashed shards with a deterministic
// merge, bit-for-bit identical output (see api/parallel_pipeline.hpp).
// Engine output is likewise proven bit-for-bit equal to running each link's
// pre-filtered packets through the single-link pipeline (tests/engine/).
//
// Typical single-link use:
//
//   auto source = fbm::api::open_trace("capture.fbmt");
//   fbm::api::AnalysisConfig config;
//   config.interval_s(1800.0).timeout_s(60.0).epsilon(0.01);
//   for (const auto& report : fbm::api::analyze(*source, config)) {
//     std::puts(fbm::api::to_json(report).c_str());
//   }
//
// Multi-link use: see engine/engine_api.hpp (or README "Multi-link
// analysis").
//
// The lower-level namespaces (flow::, measure::, core::, dimension::) stay
// available for research code that needs the pieces individually.
#pragma once

#include "api/parallel_pipeline.hpp"  // IWYU pragma: export
#include "api/pipeline.hpp"    // IWYU pragma: export
#include "api/report.hpp"      // IWYU pragma: export
#include "api/trace_source.hpp"  // IWYU pragma: export
#include "engine/engine_api.hpp"  // IWYU pragma: export
