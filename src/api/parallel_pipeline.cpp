#include "api/parallel_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/shard.hpp"

namespace fbm::api {

namespace {

/// One unit of work for a shard worker, processed strictly in queue order.
struct Command {
  enum class Kind { batch, sweep, finish, stop };
  Kind kind = Kind::batch;
  net::PacketBatch batch;           ///< batch (SoA, already shard-routed)
  double now = 0.0;                 ///< sweep: expiry clock
  std::int64_t close_through = -1;  ///< sweep/finish: last index
};

/// Backpressure bound: a caller that outruns a worker blocks once this many
/// commands are queued, keeping memory window-bounded like the serial
/// pipeline (workers always drain, so the caller can never deadlock).
constexpr std::size_t kMaxQueuedCommands = 256;

}  // namespace

/// Worker shard: a thread, its command queue, and its output of closed
/// intervals. `shard` is mutated only while `state_mu` is held (by the
/// worker inside commands, by the caller for counters()/active_flows()).
struct ParallelAnalysisPipeline::Worker {
  explicit Worker(const AnalysisConfig& config) : shard(config) {}

  // Command queue (caller -> worker).
  std::mutex queue_mu;
  std::condition_variable queue_cv;  ///< worker waits for work
  std::condition_variable space_cv;  ///< caller waits for queue space
  std::deque<Command> queue;

  // Shard state, shared only for observability reads.
  mutable std::mutex state_mu;
  PipelineShard shard;

  // Closed intervals (worker -> caller), contiguous indices from 0.
  std::mutex out_mu;
  std::deque<ShardInterval> out;
  std::exception_ptr error;  ///< guarded by out_mu

  std::atomic<bool> failed{false};
  std::thread thread;

  // obs: this worker's queue-depth gauge and the pool's backpressure
  // counter, resolved once at spawn (null until then).
  obs::Gauge* queue_gauge = nullptr;
  obs::Counter* bp_counter = nullptr;

  void run() {
    for (;;) {
      Command cmd;
      {
        std::unique_lock lock(queue_mu);
        queue_cv.wait(lock, [&] { return !queue.empty(); });
        cmd = std::move(queue.front());
        queue.pop_front();
        if (queue_gauge != nullptr && obs::enabled()) {
          queue_gauge->set(static_cast<double>(queue.size()));
        }
      }
      space_cv.notify_one();
      if (cmd.kind == Command::Kind::stop) return;
      try {
        std::vector<ShardInterval> closed;
        {
          std::lock_guard lock(state_mu);
          switch (cmd.kind) {
            case Command::Kind::batch:
              shard.add_batch(cmd.batch);
              break;
            case Command::Kind::sweep:
              shard.close_through(cmd.now, cmd.close_through, closed);
              break;
            case Command::Kind::finish:
              shard.finish(cmd.close_through, closed);
              break;
            case Command::Kind::stop:
              break;
          }
        }
        if (!closed.empty()) {
          std::lock_guard lock(out_mu);
          for (auto& iv : closed) out.push_back(std::move(iv));
        }
      } catch (...) {
        {
          std::lock_guard lock(out_mu);
          error = std::current_exception();
        }
        {
          // failed is set under queue_mu so a caller between enqueue's
          // predicate check and its wait cannot miss the notification.
          std::lock_guard lock(queue_mu);
          failed.store(true, std::memory_order_release);
        }
        space_cv.notify_all();  // release any caller blocked on backpressure
        return;
      }
      if (cmd.kind == Command::Kind::finish) return;
    }
  }

  void enqueue(Command cmd) {
    {
      std::unique_lock lock(queue_mu);
      const auto has_space = [&] {
        return queue.size() < kMaxQueuedCommands ||
               failed.load(std::memory_order_acquire) || !thread.joinable();
      };
      if (!has_space() && bp_counter != nullptr && obs::enabled()) {
        bp_counter->add(1);  // the producer is about to block
      }
      // A dead worker stops draining; don't block forever on its queue
      // (the caller notices `failed` and rethrows at the next sweep).
      space_cv.wait(lock, has_space);
      queue.push_back(std::move(cmd));
      if (queue_gauge != nullptr && obs::enabled()) {
        queue_gauge->set(static_cast<double>(queue.size()));
      }
    }
    queue_cv.notify_one();
  }
};

ParallelAnalysisPipeline::ParallelAnalysisPipeline(AnalysisConfig config)
    : config_(config) {
  // threads == 0 means "use every core" — resolve before the shard count,
  // the per-shard reserve split and the worker spawn all read it.
  config_.threads(resolve_threads(config_.threads()));
  validate_config(config_);
  const std::size_t n = config_.threads();
  workers_.reserve(n);
  pending_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    workers_.push_back(std::make_unique<Worker>(config_));
    workers_[s]->queue_gauge = &obs::worker_queue_depth("pipeline", s);
    workers_[s]->bp_counter = &obs::backpressure_waits("pipeline");
  }
  // Spawn after the vector is fully built so a throwing allocation never
  // leaves a thread pointing at a moved-from Worker.
  for (auto& w : workers_) {
    w->thread = std::thread([worker = w.get()] { worker->run(); });
  }
}

ParallelAnalysisPipeline::~ParallelAnalysisPipeline() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->enqueue({Command::Kind::stop, {}, 0.0, -1});
      w->thread.join();
    }
  }
}

void ParallelAnalysisPipeline::flush_pending(std::size_t shard) {
  if (pending_[shard].empty()) return;
  Command cmd;
  cmd.kind = Command::Kind::batch;
  cmd.batch = std::exchange(pending_[shard], {});
  workers_[shard]->enqueue(std::move(cmd));
}

void ParallelAnalysisPipeline::rethrow_worker_error() {
  for (auto& w : workers_) {
    if (!w->failed.load(std::memory_order_acquire)) continue;
    std::exception_ptr err;
    {
      std::lock_guard lock(w->out_mu);
      err = w->error;
    }
    finished_ = true;  // the failed worker is gone; no more pushes
    if (err) std::rethrow_exception(err);
  }
}

void ParallelAnalysisPipeline::push(const net::PacketRecord& packet) {
  if (finished_) {
    throw std::logic_error("ParallelAnalysisPipeline: push after finish");
  }
  if (packet.timestamp < last_ts_) {
    throw std::invalid_argument(
        "ParallelAnalysisPipeline: out-of-order packet");
  }
  last_ts_ = packet.timestamp;

  if (summary_.packets == 0) {
    summary_.first_ts = packet.timestamp;
    next_sweep_ = packet.timestamp + config_.expire_every_s();
  }
  ++summary_.packets;
  summary_.total_bytes += packet.size_bytes;
  summary_.last_ts = packet.timestamp;

  max_index_ = std::max(
      max_index_, interval_index_of(packet.timestamp, config_.interval_s()));

  const std::size_t s = flow_shard_of(packet, config_.flow_definition(),
                                      workers_.size());
  pending_[s].push_back(packet);
  if (pending_[s].size() >= config_.batch_packets()) flush_pending(s);

  if (packet.timestamp >= next_sweep_) {
    broadcast_sweep(packet.timestamp);
    while (next_sweep_ <= packet.timestamp) {
      next_sweep_ += config_.expire_every_s();
    }
    rethrow_worker_error();
    try_merge();
  }
}

void ParallelAnalysisPipeline::push_batch(const net::PacketBatch& batch) {
  if (batch.empty()) return;
  if (finished_) {
    throw std::logic_error("ParallelAnalysisPipeline: push after finish");
  }
  const std::size_t n = batch.size();
  const double* ts = batch.timestamps.data();
  if (ts[0] < last_ts_) {
    throw std::invalid_argument(
        "ParallelAnalysisPipeline: out-of-order packet");
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (ts[i] < ts[i - 1]) {
      throw std::invalid_argument(
          "ParallelAnalysisPipeline: out-of-order packet");
    }
  }

  if (summary_.packets == 0) {
    summary_.first_ts = ts[0];
    next_sweep_ = ts[0] + config_.expire_every_s();
  }
  summary_.packets += n;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) bytes += batch.sizes[i];
  summary_.total_bytes += bytes;
  const double last_ts = ts[n - 1];
  summary_.last_ts = last_ts;
  last_ts_ = last_ts;

  max_index_ =
      std::max(max_index_, interval_index_of(last_ts, config_.interval_s()));

  // Route into the per-shard staging batches (SoA stays SoA end to end).
  const FlowDefinition def = config_.flow_definition();
  const std::size_t nshards = workers_.size();
  const std::size_t cap = config_.batch_packets();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = flow_shard_of(batch.tuples[i], def, nshards);
    pending_[s].emplace_back(ts[i], batch.tuples[i], batch.sizes[i]);
    if (pending_[s].size() >= cap) flush_pending(s);
  }

  // Sweep once at batch end: result-neutral, see AnalysisPipeline.
  if (last_ts >= next_sweep_) {
    broadcast_sweep(last_ts);
    while (next_sweep_ <= last_ts) next_sweep_ += config_.expire_every_s();
    rethrow_worker_error();
    try_merge();
  }
}

void ParallelAnalysisPipeline::broadcast_sweep(double now) {
  // Same closing watermark as AnalysisPipeline::sweep: interval k is safe
  // once the clock passes its end by more than the flow timeout, because
  // every flow starting in k has then been terminated by timeout or split.
  std::int64_t last = close_bcast_ - 1;
  while (last + 1 <= max_index_ &&
         now - static_cast<double>(last + 2) * config_.interval_s() >
             config_.timeout_s()) {
    ++last;
  }
  for (std::size_t s = 0; s < workers_.size(); ++s) flush_pending(s);
  for (auto& w : workers_) {
    Command cmd;
    cmd.kind = Command::Kind::sweep;
    cmd.now = now;
    cmd.close_through = last;
    w->enqueue(std::move(cmd));
  }
  close_bcast_ = std::max(close_bcast_, last + 1);
}

void ParallelAnalysisPipeline::try_merge() {
  for (;;) {
    bool all_ready = true;
    for (auto& w : workers_) {
      std::lock_guard lock(w->out_mu);
      if (w->out.empty() || w->out.front().index != next_merge_) {
        all_ready = false;
        break;
      }
    }
    if (!all_ready) return;
    merge_front();
  }
}

void ParallelAnalysisPipeline::merge_front() {
  std::vector<ShardInterval> parts;
  parts.reserve(workers_.size());
  for (auto& w : workers_) {
    std::lock_guard lock(w->out_mu);
    parts.push_back(std::move(w->out.front()));
    w->out.pop_front();
  }

  // Concatenation order is irrelevant: finalize_interval re-sorts with
  // flow::ByStart (a total order over every record field), and the rate
  // bins hold exact integral byte counts, so summation commutes.
  std::vector<flow::FlowRecord> flows = std::move(parts.front().flows);
  stats::RateBinner bins = std::move(parts.front().bins);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    flows.insert(flows.end(),
                 std::make_move_iterator(parts[i].flows.begin()),
                 std::make_move_iterator(parts[i].flows.end()));
    bins.merge(parts[i].bins);
  }

  if (partial_sink_) {
    // Distributed mode: the worker-merged raw material leaves for
    // agg::Merger, which fits once after the final (cross-process) fold.
    partial_sink_({next_merge_, std::move(flows), std::move(bins)});
    ++next_merge_;
    return;
  }

  AnalysisReport report = finalize_interval(config_, next_merge_,
                                            std::move(flows),
                                            std::move(bins));
  if (report.inputs.flows >= config_.min_flows()) {
    if (sink_) {
      sink_(std::move(report));
    } else {
      ready_.push_back(std::move(report));
    }
  }
  ++next_merge_;
}

void ParallelAnalysisPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::size_t s = 0; s < workers_.size(); ++s) flush_pending(s);
  for (auto& w : workers_) {
    Command cmd;
    cmd.kind = Command::Kind::finish;
    cmd.close_through = max_index_;
    w->enqueue(std::move(cmd));
  }
  for (auto& w : workers_) w->thread.join();
  for (auto& w : workers_) {
    std::lock_guard lock(w->out_mu);
    if (w->error) std::rethrow_exception(w->error);
  }
  next_sweep_ = 0.0;
  try_merge();
}

void ParallelAnalysisPipeline::consume(TraceSource& source) {
  net::PacketBatch batch;
  const std::size_t cap = config_.batch_packets();
  batch.reserve(cap);
  obs::Histogram& read_seconds =
      obs::stage_seconds(obs::kStageSourceRead);
  for (;;) {
    std::size_t n;
    {
      obs::StageSpan span(read_seconds);
      n = source.next_batch(batch, cap);
    }
    if (n == 0) break;
    if (obs::enabled()) {
      obs::source_packets().add(n);
      obs::source_batches().add(1);
    }
    push_batch(batch);
  }
  finish();
}

AnalysisReport ParallelAnalysisPipeline::pop_report() {
  try_merge();
  if (ready_.empty()) {
    throw std::logic_error("ParallelAnalysisPipeline: no report ready");
  }
  AnalysisReport r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

std::vector<AnalysisReport> ParallelAnalysisPipeline::take_reports() {
  try_merge();
  std::vector<AnalysisReport> out(std::make_move_iterator(ready_.begin()),
                                  std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

flow::ClassifierCounters ParallelAnalysisPipeline::counters() const {
  flow::ClassifierCounters total;
  for (const auto& w : workers_) {
    std::lock_guard lock(w->state_mu);
    const auto& c = w->shard.counters();
    total.packets += c.packets;
    total.flows_emitted += c.flows_emitted;
    total.single_packet_discards += c.single_packet_discards;
    total.boundary_splits += c.boundary_splits;
  }
  return total;
}

std::size_t ParallelAnalysisPipeline::shard_count() const {
  return workers_.size();
}

std::size_t ParallelAnalysisPipeline::active_flows() const {
  std::size_t total = 0;
  for (const auto& w : workers_) {
    std::lock_guard lock(w->state_mu);
    total += w->shard.active_flows();
  }
  return total;
}

std::size_t ParallelAnalysisPipeline::open_intervals() const {
  std::size_t widest = 0;
  for (const auto& w : workers_) {
    std::lock_guard lock(w->state_mu);
    widest = std::max(widest, w->shard.open_intervals());
  }
  return widest;
}

}  // namespace fbm::api
