// Sharded multi-threaded streaming analysis (fbm::api).
//
// ParallelAnalysisPipeline is the drop-in multi-core counterpart of
// AnalysisPipeline: N worker shards, each owning the flow keys that hash to
// it (stable FNV-1a over the 5-tuple or /24 prefix), classify and rate-bin
// their share of the packet stream; a deterministic merge stage re-sorts
// each interval's flows by flow::ByStart and sums the shards' rate bins as
// exact integral byte counts. Per-interval AnalysisReports are therefore
// bit-for-bit identical to the serial pipeline — for any thread count and
// any packet batching — which the differential tests in
// tests/api/test_parallel_pipeline.cpp prove on seeded traces.
//
// Threading model: the caller's thread validates ordering, keeps the trace
// summary, routes packets into per-shard batches and broadcasts expiry
// sweeps; each worker thread drains its command queue in order (batches,
// sweeps, finish). Workers emit closed ShardIntervals as contiguous index
// sequences, so the merge simply waits until every shard has delivered
// interval k before finalizing it. All merge work happens on the caller's
// thread — reports stream out in interval order, a little later than the
// serial pipeline would emit them, never in a different order.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "api/pipeline.hpp"
#include "api/report.hpp"
#include "api/trace_source.hpp"
#include "flow/classifier.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::api {

/// Sharded pipeline: push packets (timestamp order) from one thread, poll
/// reports from the same thread. config.threads() selects the shard count
/// (>= 1); config.batch_packets() the hand-off granularity. The public
/// surface mirrors AnalysisPipeline so call sites can switch with one line.
class ParallelAnalysisPipeline {
 public:
  /// Throws std::invalid_argument on bad parameters (same rules as
  /// AnalysisPipeline, plus threads/batch_packets >= 1). Spawns
  /// config.threads() worker threads.
  explicit ParallelAnalysisPipeline(AnalysisConfig config);
  ~ParallelAnalysisPipeline();
  ParallelAnalysisPipeline(const ParallelAnalysisPipeline&) = delete;
  ParallelAnalysisPipeline& operator=(const ParallelAnalysisPipeline&) =
      delete;

  /// Feed the next packet; timestamps must be non-decreasing (throws
  /// std::invalid_argument otherwise).
  void push(const net::PacketRecord& packet);

  /// Feed a whole batch; reports are bit-for-bit identical to push() per
  /// packet at every batch size (routing, sharding and merge are unchanged —
  /// only per-packet overheads are hoisted).
  void push_batch(const net::PacketBatch& batch);

  /// End of stream: flush every shard, join the workers, merge everything.
  /// push() must not be called afterwards. Rethrows any worker failure.
  void finish();

  /// Convenience: drain an entire source through the pipeline and finish.
  void consume(TraceSource& source);

  /// Merged reports ready so far, oldest interval first. Merging lags the
  /// workers slightly, so a report may become visible a few pushes after
  /// the serial pipeline would have emitted it — the sequence is identical.
  [[nodiscard]] bool has_report() const { return !ready_.empty(); }
  [[nodiscard]] AnalysisReport pop_report();
  [[nodiscard]] std::vector<AnalysisReport> take_reports();

  /// Per-window flush hook, same contract as AnalysisPipeline: reports go to
  /// `sink` in interval order as the merge finalizes them. Set before the
  /// first push.
  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }

  /// Diverts merged intervals to `sink` as raw pre-fit material (see
  /// api/pipeline.hpp PartialSink). The in-process shard merge still runs —
  /// one ShardInterval per interval leaves, already folded across this
  /// process's workers — but fitting defers to agg::Merger. Set before the
  /// first push; runs on the caller's thread.
  void set_partial_sink(PartialSink sink) {
    partial_sink_ = std::move(sink);
  }

  /// Running totals over everything pushed so far (caller-side, exact).
  [[nodiscard]] const trace::TraceSummary& summary() const { return summary_; }
  /// Classifier counters summed over shards. Counts packets the workers
  /// have processed: exact once finish() has returned, a lower bound while
  /// the stream is still being pushed.
  [[nodiscard]] flow::ClassifierCounters counters() const;
  [[nodiscard]] const AnalysisConfig& config() const { return config_; }
  [[nodiscard]] std::size_t shard_count() const;

  /// Observability: flows currently tracked across all shards, and the
  /// widest per-shard window of intervals held open.
  [[nodiscard]] std::size_t active_flows() const;
  [[nodiscard]] std::size_t open_intervals() const;

 private:
  struct Worker;

  void flush_pending(std::size_t shard);
  void broadcast_sweep(double now);
  void rethrow_worker_error();
  void try_merge();
  void merge_front();  ///< all shards have next_merge_ at their front

  AnalysisConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<net::PacketBatch> pending_;  ///< per-shard staging batches
  std::deque<AnalysisReport> ready_;
  ReportSink sink_;
  PartialSink partial_sink_;
  trace::TraceSummary summary_;
  double last_ts_ = -std::numeric_limits<double>::infinity();
  double next_sweep_ = 0.0;
  std::int64_t close_bcast_ = 0;  ///< lowest interval index not yet broadcast
  std::int64_t next_merge_ = 0;   ///< lowest interval index not yet merged
  std::int64_t max_index_ = -1;   ///< highest interval index seen
  bool finished_ = false;
};

}  // namespace fbm::api
