#include "api/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/parallel_pipeline.hpp"
#include "api/shard.hpp"

namespace fbm::api {

// -------------------------------------------------------- AnalysisPipeline ---
//
// A thin driver over a single PipelineShard: the shard owns the classifier
// and all per-interval accumulation, this class owns the clock (sweep
// cadence, close watermark), the trace summary, and report finalization.
// The parallel pipeline runs N of the same shards, so serial and sharded
// analysis share every line of accumulation code.

AnalysisPipeline::AnalysisPipeline(AnalysisConfig config)
    : config_(config) {
  validate_config(config_);
  shard_ = std::make_unique<PipelineShard>(config_);
}

AnalysisPipeline::~AnalysisPipeline() = default;
AnalysisPipeline::AnalysisPipeline(AnalysisPipeline&&) noexcept = default;
AnalysisPipeline& AnalysisPipeline::operator=(AnalysisPipeline&&) noexcept =
    default;

void AnalysisPipeline::push(const net::PacketRecord& packet) {
  if (finished_) {
    throw std::logic_error("AnalysisPipeline: push after finish");
  }
  shard_->add(packet);  // validates timestamp ordering, classifies, bins

  if (summary_.packets == 0) {
    summary_.first_ts = packet.timestamp;
    next_sweep_ = packet.timestamp + config_.expire_every_s();
  }
  ++summary_.packets;
  summary_.total_bytes += packet.size_bytes;
  summary_.last_ts = packet.timestamp;

  max_index_ = std::max(
      max_index_, interval_index_of(packet.timestamp, config_.interval_s()));

  if (packet.timestamp >= next_sweep_) sweep(packet.timestamp);
}

void AnalysisPipeline::push_batch(const net::PacketBatch& batch) {
  if (batch.empty()) return;
  if (finished_) {
    throw std::logic_error("AnalysisPipeline: push after finish");
  }
  shard_->add_batch(batch);  // validates timestamp ordering, classifies, bins

  if (summary_.packets == 0) {
    summary_.first_ts = batch.timestamps.front();
    next_sweep_ = batch.timestamps.front() + config_.expire_every_s();
  }
  const std::size_t n = batch.size();
  summary_.packets += n;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) bytes += batch.sizes[i];
  summary_.total_bytes += bytes;
  const double last_ts = batch.timestamps.back();
  summary_.last_ts = last_ts;

  // Timestamps are non-decreasing, so the batch's max interval index is the
  // last packet's.
  max_index_ =
      std::max(max_index_, interval_index_of(last_ts, config_.interval_s()));

  // Sweeping once at batch end instead of at each crossing inside the batch
  // is result-neutral: an interval's content depends only on which flows and
  // bytes land in it, never on when the close watermark passes it.
  if (last_ts >= next_sweep_) sweep(last_ts);
}

void AnalysisPipeline::sweep(double now) {
  // After the shard's expiry pass, every flow contained in interval k has
  // been emitted once now - interval_end > timeout, so k can be closed.
  std::int64_t last = next_close_ - 1;
  while (last + 1 <= max_index_ &&
         now - static_cast<double>(last + 2) * config_.interval_s() >
             config_.timeout_s()) {
    ++last;
  }
  std::vector<ShardInterval> closed;
  shard_->close_through(now, last, closed);
  next_close_ = std::max(next_close_, last + 1);
  absorb(std::move(closed));
  while (next_sweep_ <= now) next_sweep_ += config_.expire_every_s();
}

void AnalysisPipeline::absorb(std::vector<ShardInterval>&& closed) {
  for (auto& iv : closed) {
    if (partial_sink_) {
      // Distributed mode: the raw material leaves for agg::Merger, which
      // fits once after the final fold. Nothing is fitted here.
      partial_sink_(std::move(iv));
      continue;
    }
    AnalysisReport report = finalize_interval(config_, iv.index,
                                              std::move(iv.flows),
                                              std::move(iv.bins));
    if (report.inputs.flows >= config_.min_flows()) {
      if (sink_) {
        sink_(std::move(report));
      } else {
        ready_.push_back(std::move(report));
      }
    }
  }
}

void AnalysisPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  std::vector<ShardInterval> closed;
  shard_->finish(max_index_, closed);
  next_close_ = std::max(next_close_, max_index_ + 1);
  absorb(std::move(closed));
}

void AnalysisPipeline::consume(TraceSource& source) {
  net::PacketBatch batch;
  const std::size_t cap = config_.batch_packets();
  batch.reserve(cap);
  obs::Histogram& read_seconds =
      obs::stage_seconds(obs::kStageSourceRead);
  for (;;) {
    std::size_t n;
    {
      obs::StageSpan span(read_seconds);
      n = source.next_batch(batch, cap);
    }
    if (n == 0) break;
    if (obs::enabled()) {
      obs::source_packets().add(n);
      obs::source_batches().add(1);
    }
    push_batch(batch);
  }
  finish();
}

AnalysisReport AnalysisPipeline::pop_report() {
  if (ready_.empty()) {
    throw std::logic_error("AnalysisPipeline: no report ready");
  }
  AnalysisReport r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

std::vector<AnalysisReport> AnalysisPipeline::take_reports() {
  std::vector<AnalysisReport> out(std::make_move_iterator(ready_.begin()),
                                  std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

const flow::ClassifierCounters& AnalysisPipeline::counters() const {
  return shard_->counters();
}

std::size_t AnalysisPipeline::active_flows() const {
  return shard_->active_flows();
}

std::size_t AnalysisPipeline::open_intervals() const {
  return shard_->open_intervals();
}

// ------------------------------------------------------------ convenience ---

std::vector<AnalysisReport> analyze(TraceSource& source,
                                    const AnalysisConfig& config) {
  // threads != 1 includes 0 ("auto"): both go through the sharded pipeline,
  // which resolves 0 to the core count. Results are identical either way.
  if (config.threads() != 1) {
    ParallelAnalysisPipeline pipeline(config);
    pipeline.consume(source);
    return pipeline.take_reports();
  }
  AnalysisPipeline pipeline(config);
  pipeline.consume(source);
  return pipeline.take_reports();
}

std::vector<AnalysisReport> analyze(std::span<const net::PacketRecord> packets,
                                    const AnalysisConfig& config) {
  // Chunk the span through the batched path (AoS -> SoA transpose per
  // chunk); results are identical to pushing packet by packet.
  net::PacketBatch batch;
  const std::size_t cap = std::max<std::size_t>(1, config.batch_packets());
  if (config.threads() != 1) {
    ParallelAnalysisPipeline pipeline(config);
    for (std::size_t i = 0; i < packets.size(); i += cap) {
      batch.assign(packets.subspan(i, std::min(cap, packets.size() - i)));
      pipeline.push_batch(batch);
    }
    pipeline.finish();
    return pipeline.take_reports();
  }
  AnalysisPipeline pipeline(config);
  for (std::size_t i = 0; i < packets.size(); i += cap) {
    batch.assign(packets.subspan(i, std::min(cap, packets.size() - i)));
    pipeline.push_batch(batch);
  }
  pipeline.finish();
  return pipeline.take_reports();
}

}  // namespace fbm::api
