#include "api/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/parallel_pipeline.hpp"
#include "api/shard.hpp"

namespace fbm::api {

// -------------------------------------------------------- AnalysisPipeline ---
//
// A thin driver over a single PipelineShard: the shard owns the classifier
// and all per-interval accumulation, this class owns the clock (sweep
// cadence, close watermark), the trace summary, and report finalization.
// The parallel pipeline runs N of the same shards, so serial and sharded
// analysis share every line of accumulation code.

AnalysisPipeline::AnalysisPipeline(AnalysisConfig config)
    : config_(config) {
  validate_config(config_);
  shard_ = std::make_unique<PipelineShard>(config_);
}

AnalysisPipeline::~AnalysisPipeline() = default;
AnalysisPipeline::AnalysisPipeline(AnalysisPipeline&&) noexcept = default;
AnalysisPipeline& AnalysisPipeline::operator=(AnalysisPipeline&&) noexcept =
    default;

void AnalysisPipeline::push(const net::PacketRecord& packet) {
  if (finished_) {
    throw std::logic_error("AnalysisPipeline: push after finish");
  }
  shard_->add(packet);  // validates timestamp ordering, classifies, bins

  if (summary_.packets == 0) {
    summary_.first_ts = packet.timestamp;
    next_sweep_ = packet.timestamp + config_.expire_every_s();
  }
  ++summary_.packets;
  summary_.total_bytes += packet.size_bytes;
  summary_.last_ts = packet.timestamp;

  max_index_ = std::max(
      max_index_, interval_index_of(packet.timestamp, config_.interval_s()));

  if (packet.timestamp >= next_sweep_) sweep(packet.timestamp);
}

void AnalysisPipeline::sweep(double now) {
  // After the shard's expiry pass, every flow contained in interval k has
  // been emitted once now - interval_end > timeout, so k can be closed.
  std::int64_t last = next_close_ - 1;
  while (last + 1 <= max_index_ &&
         now - static_cast<double>(last + 2) * config_.interval_s() >
             config_.timeout_s()) {
    ++last;
  }
  std::vector<ShardInterval> closed;
  shard_->close_through(now, last, closed);
  next_close_ = std::max(next_close_, last + 1);
  absorb(std::move(closed));
  while (next_sweep_ <= now) next_sweep_ += config_.expire_every_s();
}

void AnalysisPipeline::absorb(std::vector<ShardInterval>&& closed) {
  for (auto& iv : closed) {
    if (partial_sink_) {
      // Distributed mode: the raw material leaves for agg::Merger, which
      // fits once after the final fold. Nothing is fitted here.
      partial_sink_(std::move(iv));
      continue;
    }
    AnalysisReport report = finalize_interval(config_, iv.index,
                                              std::move(iv.flows),
                                              std::move(iv.bins));
    if (report.inputs.flows >= config_.min_flows()) {
      if (sink_) {
        sink_(std::move(report));
      } else {
        ready_.push_back(std::move(report));
      }
    }
  }
}

void AnalysisPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  std::vector<ShardInterval> closed;
  shard_->finish(max_index_, closed);
  next_close_ = std::max(next_close_, max_index_ + 1);
  absorb(std::move(closed));
}

void AnalysisPipeline::consume(TraceSource& source) {
  source.for_each([this](const net::PacketRecord& p) { push(p); });
  finish();
}

AnalysisReport AnalysisPipeline::pop_report() {
  if (ready_.empty()) {
    throw std::logic_error("AnalysisPipeline: no report ready");
  }
  AnalysisReport r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

std::vector<AnalysisReport> AnalysisPipeline::take_reports() {
  std::vector<AnalysisReport> out(std::make_move_iterator(ready_.begin()),
                                  std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

const flow::ClassifierCounters& AnalysisPipeline::counters() const {
  return shard_->counters();
}

std::size_t AnalysisPipeline::active_flows() const {
  return shard_->active_flows();
}

std::size_t AnalysisPipeline::open_intervals() const {
  return shard_->open_intervals();
}

// ------------------------------------------------------------ convenience ---

std::vector<AnalysisReport> analyze(TraceSource& source,
                                    const AnalysisConfig& config) {
  // threads != 1 includes 0 ("auto"): both go through the sharded pipeline,
  // which resolves 0 to the core count. Results are identical either way.
  if (config.threads() != 1) {
    ParallelAnalysisPipeline pipeline(config);
    pipeline.consume(source);
    return pipeline.take_reports();
  }
  AnalysisPipeline pipeline(config);
  pipeline.consume(source);
  return pipeline.take_reports();
}

std::vector<AnalysisReport> analyze(std::span<const net::PacketRecord> packets,
                                    const AnalysisConfig& config) {
  if (config.threads() != 1) {
    ParallelAnalysisPipeline pipeline(config);
    for (const auto& p : packets) pipeline.push(p);
    pipeline.finish();
    return pipeline.take_reports();
  }
  AnalysisPipeline pipeline(config);
  for (const auto& p : packets) pipeline.push(p);
  pipeline.finish();
  return pipeline.take_reports();
}

}  // namespace fbm::api
