#include "api/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "dimension/provisioning.hpp"
#include "stats/timeseries.hpp"

namespace fbm::api {

// -------------------------------------------------------- ClassifierHandle ---

/// Type erasure over FlowClassifier<Key>: the flow definition is a runtime
/// choice, the classifier a compile-time template.
class AnalysisPipeline::ClassifierHandle {
 public:
  virtual ~ClassifierHandle() = default;
  virtual void add(const net::PacketRecord& packet) = 0;
  virtual void expire_idle(double now) = 0;
  virtual void flush() = 0;
  [[nodiscard]] virtual std::vector<flow::FlowRecord> take_flows() = 0;
  [[nodiscard]] virtual std::vector<flow::DiscardedPacket> take_discards() = 0;
  [[nodiscard]] virtual const flow::ClassifierCounters& counters() const = 0;
  [[nodiscard]] virtual std::size_t active_flows() const = 0;
};

namespace {

template <typename Key>
class ClassifierImpl final : public AnalysisPipeline::ClassifierHandle {
 public:
  explicit ClassifierImpl(const flow::ClassifierOptions& options)
      : classifier_(options) {}

  void add(const net::PacketRecord& packet) override {
    classifier_.add(packet);
  }
  void expire_idle(double now) override { classifier_.expire_idle(now); }
  void flush() override { classifier_.flush(); }
  [[nodiscard]] std::vector<flow::FlowRecord> take_flows() override {
    return classifier_.take_flows();
  }
  [[nodiscard]] std::vector<flow::DiscardedPacket> take_discards() override {
    return classifier_.take_discards();
  }
  [[nodiscard]] const flow::ClassifierCounters& counters() const override {
    return classifier_.counters();
  }
  [[nodiscard]] std::size_t active_flows() const override {
    return classifier_.active_flows();
  }

 private:
  flow::FlowClassifier<Key> classifier_;
};

[[nodiscard]] std::unique_ptr<AnalysisPipeline::ClassifierHandle>
make_classifier(const AnalysisConfig& config) {
  flow::ClassifierOptions options;
  options.timeout = config.timeout_s();
  options.interval = config.interval_s();
  options.record_discards = true;
  switch (config.flow_definition()) {
    case FlowDefinition::prefix24:
      return std::make_unique<ClassifierImpl<flow::PrefixKey<24>>>(options);
    case FlowDefinition::five_tuple:
      break;
  }
  return std::make_unique<ClassifierImpl<flow::FiveTupleKey>>(options);
}

}  // namespace

// -------------------------------------------------------- AnalysisPipeline ---

AnalysisPipeline::AnalysisPipeline(AnalysisConfig config)
    : config_(config) {
  if (!(config_.timeout_s() > 0.0)) {
    throw std::invalid_argument("AnalysisPipeline: timeout <= 0");
  }
  if (!(config_.interval_s() > 0.0) ||
      !std::isfinite(config_.interval_s())) {
    throw std::invalid_argument("AnalysisPipeline: interval must be finite");
  }
  if (!(config_.delta_s() > 0.0)) {
    throw std::invalid_argument("AnalysisPipeline: delta <= 0");
  }
  if (!(config_.epsilon() > 0.0 && config_.epsilon() < 1.0)) {
    throw std::invalid_argument("AnalysisPipeline: eps outside (0,1)");
  }
  if (!(config_.expire_every_s() > 0.0)) {
    throw std::invalid_argument("AnalysisPipeline: expire cadence <= 0");
  }
  classifier_ = make_classifier(config_);
}

AnalysisPipeline::~AnalysisPipeline() = default;
AnalysisPipeline::AnalysisPipeline(AnalysisPipeline&&) noexcept = default;
AnalysisPipeline& AnalysisPipeline::operator=(AnalysisPipeline&&) noexcept =
    default;

std::int64_t AnalysisPipeline::interval_index(double ts) const {
  return static_cast<std::int64_t>(std::floor(ts / config_.interval_s()));
}

void AnalysisPipeline::push(const net::PacketRecord& packet) {
  if (finished_) {
    throw std::logic_error("AnalysisPipeline: push after finish");
  }
  classifier_->add(packet);  // validates timestamp ordering

  if (summary_.packets == 0) {
    summary_.first_ts = packet.timestamp;
    next_sweep_ = packet.timestamp + config_.expire_every_s();
  }
  ++summary_.packets;
  summary_.total_bytes += packet.size_bytes;
  summary_.last_ts = packet.timestamp;

  const std::int64_t idx = interval_index(packet.timestamp);
  max_index_ = std::max(max_index_, idx);
  open_[idx].events.push_back({packet.timestamp, packet.size_bytes});

  if (packet.timestamp >= next_sweep_) sweep(packet.timestamp);
  drain_classifier();
}

void AnalysisPipeline::sweep(double now) {
  classifier_->expire_idle(now);
  drain_classifier();
  // After the expiry pass, every flow contained in interval k has been
  // emitted once now - interval_end > timeout, so k can be closed.
  std::int64_t last = next_close_ - 1;
  while (last + 1 <= max_index_ &&
         now - static_cast<double>(last + 2) * config_.interval_s() >
             config_.timeout_s()) {
    ++last;
  }
  close_through(last);
  while (next_sweep_ <= now) next_sweep_ += config_.expire_every_s();
}

void AnalysisPipeline::drain_classifier() {
  for (auto& f : classifier_->take_flows()) {
    const std::int64_t idx = interval_index(f.start);
    if (idx < next_close_) continue;  // unreachable by the close invariant
    open_[idx].flows.push_back(std::move(f));
  }
  for (const auto& d : classifier_->take_discards()) {
    const std::int64_t idx = interval_index(d.timestamp);
    if (idx < next_close_) continue;
    open_[idx].discards.push_back(d);
  }
}

void AnalysisPipeline::close_through(std::int64_t last_index) {
  for (; next_close_ <= last_index; ++next_close_) {
    OpenInterval iv;
    if (const auto it = open_.find(next_close_); it != open_.end()) {
      iv = std::move(it->second);
      open_.erase(it);
    }
    close_one(next_close_, std::move(iv));
  }
}

void AnalysisPipeline::close_one(std::int64_t index, OpenInterval&& iv) {
  AnalysisReport report;
  report.interval_index = static_cast<std::size_t>(index);
  report.start_s = static_cast<double>(index) * config_.interval_s();
  report.length_s = config_.interval_s();

  // Identical to the batch path: flows sorted by start time (deterministic
  // tie-break), then flow::estimate_inputs over the interval.
  std::sort(iv.flows.begin(), iv.flows.end(), flow::ByStart{});
  flow::IntervalData data;
  data.start = report.start_s;
  data.length = report.length_s;
  data.flows = std::move(iv.flows);
  report.inputs = flow::estimate_inputs(data);
  report.continued_flows = flow::continued_count(data);

  // Identical to measure::measure_rate: packets binned in arrival order,
  // discarded single-packet flows subtracted. Byte counts are integers, so
  // the bin sums are exact regardless of accumulation order.
  stats::RateBinner binner(report.start_s, report.start_s + report.length_s,
                           config_.delta_s());
  for (const auto& e : iv.events) {
    binner.add(e.timestamp, static_cast<double>(e.size_bytes));
  }
  for (const auto& d : iv.discards) {
    binner.add(d.timestamp, -static_cast<double>(d.size_bytes));
  }
  report.measured = measure::rate_moments(binner.series());

  if (config_.has_fixed_shot_b()) {
    report.shot_b_used = config_.fixed_shot_b();
  } else {
    report.shot_b =
        core::fit_power_b(report.measured.variance_bps2, report.inputs);
    report.shot_b_used = report.shot_b.value_or(config_.fallback_shot_b());
  }
  report.model_cov = core::power_shot_cov(report.inputs, report.shot_b_used);
  report.plan =
      dimension::plan_link(report.inputs, report.shot_b_used,
                           config_.epsilon());

  if (config_.keep_flows()) report.interval = std::move(data);

  if (report.inputs.flows >= config_.min_flows()) {
    ready_.push_back(std::move(report));
  }
}

void AnalysisPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  classifier_->flush();
  drain_classifier();
  close_through(max_index_);
}

void AnalysisPipeline::consume(TraceSource& source) {
  source.for_each([this](const net::PacketRecord& p) { push(p); });
  finish();
}

AnalysisReport AnalysisPipeline::pop_report() {
  if (ready_.empty()) {
    throw std::logic_error("AnalysisPipeline: no report ready");
  }
  AnalysisReport r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

std::vector<AnalysisReport> AnalysisPipeline::take_reports() {
  std::vector<AnalysisReport> out(std::make_move_iterator(ready_.begin()),
                                  std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

const flow::ClassifierCounters& AnalysisPipeline::counters() const {
  return classifier_->counters();
}

std::size_t AnalysisPipeline::active_flows() const {
  return classifier_->active_flows();
}

// ------------------------------------------------------------ convenience ---

std::vector<AnalysisReport> analyze(TraceSource& source,
                                    const AnalysisConfig& config) {
  AnalysisPipeline pipeline(config);
  pipeline.consume(source);
  return pipeline.take_reports();
}

std::vector<AnalysisReport> analyze(std::span<const net::PacketRecord> packets,
                                    const AnalysisConfig& config) {
  AnalysisPipeline pipeline(config);
  for (const auto& p : packets) pipeline.push(p);
  pipeline.finish();
  return pipeline.take_reports();
}

}  // namespace fbm::api
