// Single-pass streaming analysis (fbm::api, stage 2).
//
// AnalysisPipeline pushes each packet through flow classification, rate
// measurement, and analysis-interval bookkeeping concurrently, in one pass.
// An interval is closed — its flows sorted, model inputs estimated, shot
// power fitted, capacity planned — as soon as the stream's clock passes its
// end by more than the flow timeout, so memory is bounded by the analysis
// window (plus the active-flow table), never by the trace length. This is
// exactly the paper's online monitoring story (Section V-G): multi-GB
// captures analyzed with a fixed-size footprint.
//
// The per-interval numbers are bit-for-bit identical to the batch path
// (classify_all + group_by_interval + estimate_inputs + measure_rate): the
// same classifier runs underneath, flows are re-sorted by start time with a
// deterministic tie-break, and rate bins accumulate integral byte counts,
// which double-precision addition sums exactly in any order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "api/report.hpp"
#include "api/trace_source.hpp"
#include "flow/classifier.hpp"
#include "measure/rate_meter.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::api {

/// Flow definition (paper Section III): the 5-tuple itself, or the
/// destination /24 prefix.
enum class FlowDefinition { five_tuple, prefix24 };

/// Builder-style configuration for AnalysisPipeline.
class AnalysisConfig {
 public:
  AnalysisConfig& flow_definition(FlowDefinition v) { flow_def_ = v; return *this; }
  /// Idle gap that terminates a flow (paper: 60 s).
  AnalysisConfig& timeout_s(double v) { timeout_s_ = v; return *this; }
  /// Analysis-interval length (paper: 30 minutes).
  AnalysisConfig& interval_s(double v) { interval_s_ = v; return *this; }
  /// Rate-averaging window Delta (paper: 200 ms).
  AnalysisConfig& delta_s(double v) { delta_s_ = v; return *this; }
  /// Target congestion probability for dimensioning (Section VII-A).
  AnalysisConfig& epsilon(double v) { eps_ = v; return *this; }
  /// Suppress reports for intervals with fewer flows than this.
  AnalysisConfig& min_flows(std::size_t v) { min_flows_ = v; return *this; }
  /// Skip fitting and force this power-shot b everywhere.
  AnalysisConfig& fixed_shot_b(double v) { fixed_b_ = v; return *this; }
  /// Shot power used when the fit is unavailable (default: triangular).
  AnalysisConfig& fallback_shot_b(double v) { fallback_b_ = v; return *this; }
  /// Carry each interval's FlowRecords in its report (costs memory).
  AnalysisConfig& keep_flows(bool v) { keep_flows_ = v; return *this; }
  /// How often (in trace time) idle flows are expired and intervals closed.
  AnalysisConfig& expire_every_s(double v) { expire_every_s_ = v; return *this; }
  /// Worker shards for the parallel pipeline; 1 (the default) selects the
  /// serial AnalysisPipeline in analyze(); 0 auto-detects the machine's
  /// core count (std::thread::hardware_concurrency). Output is bit-for-bit
  /// identical at every value.
  AnalysisConfig& threads(std::size_t v) { threads_ = v; return *this; }
  /// Packets handed to a worker shard per enqueue (parallel path only;
  /// purely a throughput knob — results do not depend on it).
  AnalysisConfig& batch_packets(std::size_t v) { batch_packets_ = v; return *this; }
  /// Active-flow table slots reserved ahead per classifier (a throughput
  /// knob: skips rehash cascades during ramp-up; results do not depend on
  /// it). 0 grows on demand.
  AnalysisConfig& reserve_flows(std::size_t v) { reserve_flows_ = v; return *this; }

  [[nodiscard]] FlowDefinition flow_definition() const { return flow_def_; }
  [[nodiscard]] double timeout_s() const { return timeout_s_; }
  [[nodiscard]] double interval_s() const { return interval_s_; }
  [[nodiscard]] double delta_s() const { return delta_s_; }
  [[nodiscard]] double epsilon() const { return eps_; }
  [[nodiscard]] std::size_t min_flows() const { return min_flows_; }
  [[nodiscard]] double fixed_shot_b() const { return fixed_b_; }
  [[nodiscard]] bool has_fixed_shot_b() const { return fixed_b_ >= 0.0; }
  [[nodiscard]] double fallback_shot_b() const { return fallback_b_; }
  [[nodiscard]] bool keep_flows() const { return keep_flows_; }
  [[nodiscard]] double expire_every_s() const { return expire_every_s_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] std::size_t batch_packets() const { return batch_packets_; }
  [[nodiscard]] std::size_t reserve_flows() const { return reserve_flows_; }

 private:
  FlowDefinition flow_def_ = FlowDefinition::five_tuple;
  double timeout_s_ = 60.0;
  double interval_s_ = 60.0;
  double delta_s_ = measure::kPaperDelta;
  double eps_ = 0.01;
  std::size_t min_flows_ = 0;
  double fixed_b_ = -1.0;  ///< < 0 means "fit per interval"
  double fallback_b_ = 1.0;
  bool keep_flows_ = false;
  double expire_every_s_ = 1.0;
  std::size_t threads_ = 1;
  std::size_t batch_packets_ = 1024;
  std::size_t reserve_flows_ = 4096;
};

/// Streaming pipeline: push packets (timestamp order), poll reports.
/// Reports are emitted in interval order; every interval index up to the
/// last packet's interval gets exactly one report (unless filtered by
/// min_flows), so indices line up with wall-clock windows as in the batch
/// group_by_interval.
class PipelineShard;    // api/shard.hpp
struct ShardInterval;   // api/shard.hpp

/// Pre-fit flush hook for distributed aggregation: when set, every closed
/// analysis interval is handed over as raw sufficient statistics (flows in
/// any order + exact integral byte bins, see api/shard.hpp) instead of
/// being fitted locally — agg::Merger runs api::fit_window exactly once
/// after the final fold, so K processes x M hosts reproduce a
/// single-machine run bit for bit. min_flows filtering defers with the
/// fit. Mutually exclusive with ReportSink-queued reports: while a partial
/// sink is set, no AnalysisReports are produced at all.
using PartialSink = std::function<void(ShardInterval&&)>;

/// Per-window flush hook: invoked exactly once per closed analysis interval,
/// in interval order, as soon as the interval is finalized (min_flows
/// filtering already applied). Serial and sharded pipelines share the same
/// contract, so a sink never needs to know which one is underneath.
using ReportSink = std::function<void(AnalysisReport&&)>;

class AnalysisPipeline {
 public:
  /// Throws std::invalid_argument on non-positive timeout/interval/delta.
  explicit AnalysisPipeline(AnalysisConfig config);
  ~AnalysisPipeline();
  AnalysisPipeline(AnalysisPipeline&&) noexcept;
  AnalysisPipeline& operator=(AnalysisPipeline&&) noexcept;

  /// Feed the next packet; timestamps must be non-decreasing (throws
  /// std::invalid_argument otherwise).
  void push(const net::PacketRecord& packet);

  /// Feed a whole batch; reports are bit-for-bit identical to push() per
  /// packet at every batch size — batching only hoists per-packet work
  /// (ordering checks, summary updates, sweep-clock checks) to per-batch.
  void push_batch(const net::PacketBatch& batch);

  /// End of stream: flush the classifier and close all pending intervals.
  /// push() must not be called afterwards.
  void finish();

  /// Convenience: drain an entire source through the pipeline and finish.
  void consume(TraceSource& source);

  /// Closed-interval reports ready so far, oldest first.
  [[nodiscard]] bool has_report() const { return !ready_.empty(); }
  [[nodiscard]] AnalysisReport pop_report();
  /// All pending reports at once (clears the queue).
  [[nodiscard]] std::vector<AnalysisReport> take_reports();

  /// Streams reports into `sink` the moment each interval closes instead of
  /// queueing them (pop_report/take_reports then never see them). Set before
  /// the first push.
  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }

  /// Diverts closed intervals to `sink` as raw pre-fit material (see
  /// PartialSink): no fitting, no min_flows filtering, no reports. Set
  /// before the first push.
  void set_partial_sink(PartialSink sink) {
    partial_sink_ = std::move(sink);
  }

  /// Running totals over everything pushed so far.
  [[nodiscard]] const trace::TraceSummary& summary() const { return summary_; }
  [[nodiscard]] const flow::ClassifierCounters& counters() const;
  [[nodiscard]] const AnalysisConfig& config() const { return config_; }

  /// Observability for the bounded-memory story: intervals currently held
  /// open and flows currently tracked by the classifier.
  [[nodiscard]] std::size_t open_intervals() const;
  [[nodiscard]] std::size_t active_flows() const;

 private:
  void sweep(double now);
  /// Finalizes closed shard intervals into reports (min_flows applied).
  void absorb(std::vector<ShardInterval>&& closed);

  AnalysisConfig config_;
  /// All accumulation (classifier, per-interval flows and rate bins) lives
  /// in one PipelineShard — the same class the parallel pipeline runs N of,
  /// so the two paths cannot drift apart.
  std::unique_ptr<PipelineShard> shard_;
  std::deque<AnalysisReport> ready_;
  ReportSink sink_;
  PartialSink partial_sink_;
  trace::TraceSummary summary_;
  double next_sweep_ = 0.0;
  std::int64_t next_close_ = 0;  ///< lowest interval index not yet closed
  std::int64_t max_index_ = -1;  ///< highest interval index seen
  bool finished_ = false;
};

/// One-shot convenience: run a whole source through a fresh pipeline and
/// return every report.
[[nodiscard]] std::vector<AnalysisReport> analyze(TraceSource& source,
                                                  const AnalysisConfig& config);
[[nodiscard]] std::vector<AnalysisReport> analyze(
    std::span<const net::PacketRecord> packets, const AnalysisConfig& config);

}  // namespace fbm::api
