#include "api/report.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace fbm::api {

namespace detail {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lg", &parsed);
  if (parsed == v) {
    // Try shorter forms first for readability.
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      std::sscanf(shorter, "%lg", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

}  // namespace detail

namespace {

[[nodiscard]] std::string number(double v) { return detail::json_number(v); }

[[nodiscard]] std::string number(std::uint64_t v) { return std::to_string(v); }

class Writer {
 public:
  explicit Writer(int indent) : indent_(indent) {}

  void open(const char* key = nullptr) { line(key, "{"); ++depth_; }
  void close(bool last = true) {
    --depth_;
    line(nullptr, last ? "}" : "},");
  }
  template <typename T>
  void field(const char* key, const T& value, bool last = false) {
    line(key, number(value) + (last ? "" : ","));
  }
  void raw(const char* key, std::string value, bool last = false) {
    line(key, value + (last ? "" : ","));
  }

  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void line(const char* key, const std::string& value) {
    if (!out_.empty()) out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) + 2 * depth_, ' ');
    if (key) {
      out_ += '"';
      out_ += key;
      out_ += "\": ";
    }
    out_ += value;
  }

  std::string out_;
  int indent_;
  std::size_t depth_ = 0;
};

void write_report(Writer& w, const AnalysisReport& r) {
  w.field("interval_index", r.interval_index);
  w.field("start_s", r.start_s);
  w.field("length_s", r.length_s);

  w.open("inputs");
  w.field("flows", r.inputs.flows);
  w.field("continued_flows", r.continued_flows);
  w.field("lambda_per_s", r.inputs.lambda);
  w.field("mean_size_bits", r.inputs.mean_size_bits);
  w.field("mean_s2_over_d_bits2_per_s", r.inputs.mean_s2_over_d, true);
  w.close(false);

  w.open("measured");
  w.field("samples", r.measured.samples);
  w.field("mean_bps", r.measured.mean_bps);
  w.field("variance_bps2", r.measured.variance_bps2);
  w.field("cov", r.measured.cov, true);
  w.close(false);

  w.open("model");
  w.raw("shot_b_fitted",
        r.shot_b ? number(*r.shot_b) : std::string("null"));
  w.field("shot_b_used", r.shot_b_used);
  w.field("mean_bps", r.plan.mean_bps);
  w.field("stddev_bps", r.plan.stddev_bps);
  w.field("cov", r.model_cov, true);
  w.close(false);

  w.open("provisioning");
  w.field("eps", r.plan.eps);
  w.field("capacity_bps", r.plan.capacity_bps);
  w.field("headroom", r.plan.headroom, true);
  w.close();
}

}  // namespace

std::string to_json(const AnalysisReport& report, int indent) {
  Writer w(indent);
  w.open();
  write_report(w, report);
  w.close();
  return std::move(w).str();
}

std::string to_json(const trace::TraceSummary& summary,
                    std::span<const AnalysisReport> reports) {
  Writer w(0);
  w.open();
  w.open("trace");
  w.field("packets", summary.packets);
  w.field("total_bytes", summary.total_bytes);
  w.field("duration_s", summary.duration_s());
  w.field("mean_rate_bps", summary.mean_rate_bps(), true);
  w.close(false);
  std::string out = std::move(w).str();
  out += "\n  \"intervals\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += to_json(reports[i], 4);
  }
  out += reports.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

}  // namespace fbm::api
