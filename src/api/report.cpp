#include "api/report.hpp"

#include <utility>

#include "core/json_writer.hpp"

namespace fbm::api {

namespace {

void write_report(core::JsonWriter& w, const AnalysisReport& r) {
  w.field("interval_index", static_cast<std::uint64_t>(r.interval_index));
  w.field("start_s", r.start_s);
  w.field("length_s", r.length_s);

  w.begin_object("inputs");
  w.field("flows", static_cast<std::uint64_t>(r.inputs.flows));
  w.field("continued_flows", static_cast<std::uint64_t>(r.continued_flows));
  w.field("lambda_per_s", r.inputs.lambda);
  w.field("mean_size_bits", r.inputs.mean_size_bits);
  w.field("mean_s2_over_d_bits2_per_s", r.inputs.mean_s2_over_d);
  w.end_object();

  w.begin_object("measured");
  w.field("samples", static_cast<std::uint64_t>(r.measured.samples));
  w.field("mean_bps", r.measured.mean_bps);
  w.field("variance_bps2", r.measured.variance_bps2);
  w.field("cov", r.measured.cov);
  w.end_object();

  w.begin_object("model");
  if (r.shot_b) {
    w.field("shot_b_fitted", *r.shot_b);
  } else {
    w.null_field("shot_b_fitted");
  }
  w.field("shot_b_used", r.shot_b_used);
  w.field("mean_bps", r.plan.mean_bps);
  w.field("stddev_bps", r.plan.stddev_bps);
  w.field("cov", r.model_cov);
  w.end_object();

  w.begin_object("provisioning");
  w.field("eps", r.plan.eps);
  w.field("capacity_bps", r.plan.capacity_bps);
  w.field("headroom", r.plan.headroom);
  w.end_object();
}

}  // namespace

std::string to_json(const AnalysisReport& report, int indent) {
  core::JsonWriter w(core::JsonWriter::Style::pretty, indent);
  w.begin_object();
  write_report(w, report);
  w.end_object();
  return std::move(w).str();
}

std::string to_json(const trace::TraceSummary& summary,
                    std::span<const AnalysisReport> reports) {
  core::JsonWriter w(core::JsonWriter::Style::pretty, 0);
  w.begin_object();
  w.begin_object("trace");
  w.field("packets", summary.packets);
  w.field("total_bytes", summary.total_bytes);
  w.field("duration_s", summary.duration_s());
  w.field("mean_rate_bps", summary.mean_rate_bps());
  w.end_object();
  w.begin_array("intervals");
  for (const auto& report : reports) {
    w.raw_element(to_json(report, 4));
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace fbm::api
