// Structured per-interval analysis results (fbm::api, stage 3).
//
// One AnalysisReport summarizes one analysis interval the way the paper's
// operator would consume it: the three model inputs (Section V-G), the
// measured Delta-averaged rate moments, the fitted shot power b (eq. 5-6),
// the Gaussian approximation of the total rate (Section V-E), and the
// capacity recommendation C = E[R] + q(1-eps) sigma (Section VII-A).
//
// to_json() renders reports for dashboards and external tooling through the
// shared core::JsonWriter (no JSON dependency in the container; number
// rendering and string escaping live in exactly one place).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/gaussian.hpp"
#include "dimension/provisioning.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::api {

struct AnalysisReport {
  std::size_t interval_index = 0;
  double start_s = 0.0;
  double length_s = 0.0;

  flow::ModelInputs inputs;       ///< lambda, E[S], E[S^2/D], flow count
  measure::RateMoments measured;  ///< Delta-averaged moments, bits/s
  std::size_t continued_flows = 0;  ///< pieces split at the boundary

  /// Fitted power-shot b (eq. 5-6); nullopt when the interval is too thin
  /// to fit (no flows, or zero lambda * E[S^2/D]).
  std::optional<double> shot_b;
  /// b actually used downstream: the fit when available, otherwise the
  /// configured fallback (triangular by default).
  double shot_b_used = 1.0;
  double model_cov = 0.0;  ///< CoV of the power shot at shot_b_used

  dimension::ProvisioningPlan plan;  ///< capacity recommendation

  /// The flows themselves; populated only under AnalysisConfig::keep_flows.
  flow::IntervalData interval;

  /// Section V-E Gaussian approximation of the total rate.
  [[nodiscard]] core::GaussianApproximation gaussian() const {
    return {plan.mean_bps, plan.stddev_bps * plan.stddev_bps};
  }
};

/// One report as a JSON object. `indent` spaces of leading indentation are
/// applied to every line; the result has no trailing newline.
[[nodiscard]] std::string to_json(const AnalysisReport& report,
                                  int indent = 0);

/// A whole run: trace totals plus the per-interval reports, as one object.
/// (Number rendering and escaping live in core/json_writer.hpp, shared by
/// every JSON emitter in the tree.)
[[nodiscard]] std::string to_json(const trace::TraceSummary& summary,
                                  std::span<const AnalysisReport> reports);

}  // namespace fbm::api
