#include "api/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "dimension/provisioning.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "net/ip.hpp"

namespace fbm::api {

namespace {

// Canonical-key conversions for ClassifierState (see shard.hpp): a prefix
// key travels as a FiveTuple with the network address in dst and the prefix
// length in src_port.
[[nodiscard]] net::FiveTuple canonical_key(const net::FiveTuple& key) {
  return key;
}
[[nodiscard]] net::FiveTuple canonical_key(const net::Prefix& key) {
  net::FiveTuple t;
  t.dst = key.network();
  t.src_port = static_cast<std::uint16_t>(key.length());
  return t;
}
void key_from_canonical(const net::FiveTuple& t, net::FiveTuple& out) {
  out = t;
}
void key_from_canonical(const net::FiveTuple& t, net::Prefix& out) {
  if (t.src_port > 32) {
    throw std::invalid_argument("ClassifierState: invalid prefix length");
  }
  out = net::Prefix(t.dst, static_cast<int>(t.src_port));
}

template <typename Key>
class ClassifierImpl final : public FlowClassifierHandle {
 public:
  explicit ClassifierImpl(const flow::ClassifierOptions& options)
      : classifier_(options) {}

  void add(const net::PacketRecord& packet) override {
    classifier_.add(packet);
  }
  void add_batch(const net::PacketBatch& batch, std::size_t begin,
                 std::size_t end) override {
    classifier_.add_batch(batch, begin, end);
  }
  void expire_idle(double now) override { classifier_.expire_idle(now); }
  void flush() override { classifier_.flush(); }
  [[nodiscard]] std::vector<flow::FlowRecord> take_flows() override {
    return classifier_.take_flows();
  }
  [[nodiscard]] std::vector<flow::DiscardedPacket> take_discards() override {
    return classifier_.take_discards();
  }
  [[nodiscard]] const flow::ClassifierCounters& counters() const override {
    return classifier_.counters();
  }
  [[nodiscard]] std::size_t active_flows() const override {
    return classifier_.active_flows();
  }
  [[nodiscard]] double table_load_factor() const override {
    return classifier_.table_load_factor();
  }
  [[nodiscard]] double table_mean_probe() const override {
    return classifier_.table_mean_probe();
  }

  [[nodiscard]] ClassifierState save_state() const override {
    ClassifierState st;
    st.capacity = classifier_.active_capacity();
    st.active.reserve(classifier_.active_flows());
    classifier_.visit_active([&](std::size_t slot, const auto& key,
                                 const flow::FlowRecord& record,
                                 std::int64_t start_index) {
      st.active.push_back(
          {slot, canonical_key(key), record, start_index});
    });
    st.flows = classifier_.flows();
    st.discards = classifier_.discards();
    st.counters = classifier_.counters();
    st.last_ts = classifier_.stream_clock();
    return st;
  }

  void restore_state(const ClassifierState& state) override {
    classifier_.begin_restore_active(
        static_cast<std::size_t>(state.capacity));
    for (const auto& a : state.active) {
      typename Key::key_type key;
      key_from_canonical(a.key, key);
      classifier_.restore_active_flow(static_cast<std::size_t>(a.slot), key,
                                      a.record, a.start_index);
    }
    classifier_.restore_streams(state.flows, state.discards, state.counters,
                                state.last_ts);
  }

 private:
  flow::FlowClassifier<Key> classifier_;
};

}  // namespace

std::unique_ptr<FlowClassifierHandle> make_flow_classifier(
    const AnalysisConfig& config) {
  flow::ClassifierOptions options;
  options.timeout = config.timeout_s();
  options.interval = config.interval_s();
  options.record_discards = true;
  // Reserve ahead, split across shards: each worker only ever owns the flow
  // keys that hash to it, so the per-classifier share shrinks with the
  // thread count (floor of 64 keeps tiny configs from degenerate tables).
  // threads() is already resolved by the parallel pipeline; the max guards
  // a serial pipeline handed a still-unresolved "auto" (0) config.
  const std::size_t shards = std::max<std::size_t>(1, config.threads());
  options.reserve_flows =
      config.reserve_flows() == 0
          ? 0
          : std::max<std::size_t>(64, config.reserve_flows() / shards);
  return make_flow_classifier(config.flow_definition(), options);
}

std::unique_ptr<FlowClassifierHandle> make_flow_classifier(
    FlowDefinition def, const flow::ClassifierOptions& options) {
  switch (def) {
    case FlowDefinition::prefix24:
      return std::make_unique<ClassifierImpl<flow::PrefixKey<24>>>(options);
    case FlowDefinition::five_tuple:
      break;
  }
  return std::make_unique<ClassifierImpl<flow::FiveTupleKey>>(options);
}

void validate_config(const AnalysisConfig& config) {
  if (!(config.timeout_s() > 0.0)) {
    throw std::invalid_argument("AnalysisPipeline: timeout <= 0");
  }
  if (!(config.interval_s() > 0.0) || !std::isfinite(config.interval_s())) {
    throw std::invalid_argument("AnalysisPipeline: interval must be finite");
  }
  if (!(config.delta_s() > 0.0)) {
    throw std::invalid_argument("AnalysisPipeline: delta <= 0");
  }
  if (!(config.epsilon() > 0.0 && config.epsilon() < 1.0)) {
    throw std::invalid_argument("AnalysisPipeline: eps outside (0,1)");
  }
  if (!(config.expire_every_s() > 0.0)) {
    throw std::invalid_argument("AnalysisPipeline: expire cadence <= 0");
  }
  // threads == 0 is valid: "auto-detect", resolved by resolve_threads().
  if (config.batch_packets() == 0) {
    throw std::invalid_argument("AnalysisPipeline: batch_packets == 0");
  }
}

std::size_t resolve_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t flow_shard_of(const net::FiveTuple& tuple, FlowDefinition def,
                          std::size_t nshards) {
  if (nshards <= 1) return 0;
  std::size_t h = 0;
  switch (def) {
    case FlowDefinition::five_tuple:
      h = net::FiveTupleHash{}(tuple);
      break;
    case FlowDefinition::prefix24:
      h = net::PrefixHash{}(net::Prefix(tuple.dst, 24));
      break;
  }
  return h % nshards;
}

// ----------------------------------------------------------- PipelineShard ---

PipelineShard::PipelineShard(const AnalysisConfig& config) : config_(config) {
  validate_config(config_);
  classifier_ = make_flow_classifier(config_);
  // Resolve the obs instruments once (mutex-guarded registry lookups);
  // after this the shard only ever does relaxed adds on its own cells.
  obs_packets_ = obs::classify_packets().local();
  obs_flows_ = obs::flows_emitted().local();
  obs_discards_ = obs::flows_discarded().local();
  obs_splits_ = obs::flow_boundary_splits().local();
  obs_classify_seconds_ = &obs::stage_seconds(obs::kStageClassify);
}

stats::RateBinner PipelineShard::make_bins(std::int64_t index) const {
  const double start = static_cast<double>(index) * config_.interval_s();
  return stats::RateBinner(start, start + config_.interval_s(),
                           config_.delta_s());
}

PipelineShard::Open& PipelineShard::open_at(std::int64_t index) {
  auto it = open_.find(index);
  if (it == open_.end()) {
    it = open_.emplace(index, Open{{}, make_bins(index)}).first;
  }
  return it->second;
}

void PipelineShard::add(const net::PacketRecord& packet) {
  classifier_->add(packet);  // validates timestamp ordering
  const std::int64_t idx =
      interval_index_of(packet.timestamp, config_.interval_s());
  open_at(idx).bins.add(packet.timestamp,
                        static_cast<double>(packet.size_bytes));
  drain_classifier();
}

namespace {

/// First index in (i, end) of `ts` whose interval index differs from `idx`,
/// or `end` when the whole range shares it. Timestamps are non-decreasing,
/// so the crossing bisects — and only the canonical interval_index_of
/// expression is ever evaluated, so run splitting cannot disagree with the
/// per-packet path.
std::size_t interval_run_end(const double* ts, std::size_t i, std::size_t end,
                             double interval_s, std::int64_t idx) {
  if (interval_index_of(ts[end - 1], interval_s) == idx) return end;
  std::size_t lo = i + 1;
  std::size_t hi = end - 1;  // known: interval_index_of(ts[hi]) != idx
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (interval_index_of(ts[mid], interval_s) == idx) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void PipelineShard::add_batch(const net::PacketBatch& batch) {
  if (batch.empty()) return;
  obs::StageSpan span(*obs_classify_seconds_);  // batch granularity
  classifier_->add_batch(batch);  // validates timestamp ordering
  const double interval_s = config_.interval_s();
  const double* ts = batch.timestamps.data();
  const std::uint32_t* sizes = batch.sizes.data();
  const std::size_t n = batch.size();
  std::size_t i = 0;
  while (i < n) {
    const std::int64_t idx = interval_index_of(ts[i], interval_s);
    const std::size_t run = interval_run_end(ts, i, n, interval_s, idx);
    stats::RateBinner& bins = open_at(idx).bins;
    for (std::size_t k = i; k < run; ++k) {
      bins.add(ts[k], static_cast<double>(sizes[k]));
    }
    i = run;
  }
  drain_classifier();
  sync_obs(/*sample_table=*/false);
}

void PipelineShard::sync_obs(bool sample_table) {
  if (!obs::enabled()) return;
  const flow::ClassifierCounters& c = classifier_->counters();
  // Deltas saturate at 0: a restored classifier can rewind the counters
  // below what was already folded in (checkpoint restore), and a huge
  // unsigned wrap must never reach the registry.
  const auto fold = [](obs::ShardedCounter::Local& local, std::uint64_t cur,
                       std::uint64_t prev) {
    if (cur > prev) local.add(cur - prev);
  };
  fold(obs_packets_, c.packets, obs_synced_.packets);
  fold(obs_flows_, c.flows_emitted, obs_synced_.flows_emitted);
  fold(obs_discards_, c.single_packet_discards,
       obs_synced_.single_packet_discards);
  fold(obs_splits_, c.boundary_splits, obs_synced_.boundary_splits);
  obs_synced_ = c;
  if (sample_table) {
    // Sampled, last-writer-wins across shards: keys hash uniformly, so any
    // shard's table geometry is representative of all of them.
    obs::flow_table_active("pipeline")
        .set(static_cast<double>(classifier_->active_flows()));
    obs::flow_table_load_factor("pipeline")
        .set(classifier_->table_load_factor());
    obs::flow_table_avg_probe("pipeline")
        .set(classifier_->table_mean_probe());
  }
}

void PipelineShard::drain_classifier() {
  for (auto& f : classifier_->take_flows()) {
    const std::int64_t idx = interval_index_of(f.start, config_.interval_s());
    if (idx < next_close_) continue;  // unreachable by the close invariant
    open_at(idx).flows.push_back(std::move(f));
  }
  for (const auto& d : classifier_->take_discards()) {
    const std::int64_t idx =
        interval_index_of(d.timestamp, config_.interval_s());
    if (idx < next_close_) continue;
    open_at(idx).bins.add(d.timestamp, -static_cast<double>(d.size_bytes));
  }
}

void PipelineShard::emit_through(std::int64_t last_index,
                                 std::vector<ShardInterval>& out) {
  for (; next_close_ <= last_index; ++next_close_) {
    if (const auto it = open_.find(next_close_); it != open_.end()) {
      out.push_back({next_close_, std::move(it->second.flows),
                     std::move(it->second.bins)});
      open_.erase(it);
    } else {
      out.push_back({next_close_, {}, make_bins(next_close_)});
    }
  }
}

void PipelineShard::close_through(double now, std::int64_t last_index,
                                  std::vector<ShardInterval>& out) {
  classifier_->expire_idle(now);
  drain_classifier();
  sync_obs(/*sample_table=*/true);  // sweep cadence: sample table geometry
  emit_through(last_index, out);
}

void PipelineShard::finish(std::int64_t last_index,
                           std::vector<ShardInterval>& out) {
  classifier_->flush();
  drain_classifier();
  sync_obs(/*sample_table=*/true);
  emit_through(last_index, out);
}

// -------------------------------------------------------------- fit_window ---

WindowFit fit_window(const AnalysisConfig& config, double start_s,
                     double length_s, std::vector<flow::FlowRecord> flows,
                     const stats::RateBinner& bins) {
  static obs::Histogram& fit_seconds = obs::stage_seconds(obs::kStageFit);
  obs::StageSpan span(fit_seconds);
  if (obs::enabled()) obs::windows_fitted().add(1);
  WindowFit fit;

  // Flows sorted by start time: flow::ByStart compares every field, so the
  // sorted sequence is unique no matter how the input was ordered — the key
  // to the serial/parallel/live bit-for-bit agreement.
  std::sort(flows.begin(), flows.end(), flow::ByStart{});
  fit.interval.start = start_s;
  fit.interval.length = length_s;
  fit.interval.flows = std::move(flows);
  fit.inputs = flow::estimate_inputs(fit.interval);
  fit.continued_flows = flow::continued_count(fit.interval);

  fit.series = bins.series();
  fit.measured = measure::rate_moments(fit.series);

  if (config.has_fixed_shot_b()) {
    fit.shot_b_used = config.fixed_shot_b();
  } else {
    fit.shot_b = core::fit_power_b(fit.measured.variance_bps2, fit.inputs);
    fit.shot_b_used = fit.shot_b.value_or(config.fallback_shot_b());
  }
  fit.model_cov = core::power_shot_cov(fit.inputs, fit.shot_b_used);
  fit.plan = dimension::plan_link(fit.inputs, fit.shot_b_used,
                                  config.epsilon());
  return fit;
}

// ------------------------------------------------------- finalize_interval ---

AnalysisReport finalize_interval(const AnalysisConfig& config,
                                 std::int64_t index,
                                 std::vector<flow::FlowRecord> flows,
                                 stats::RateBinner bins) {
  const double start_s = static_cast<double>(index) * config.interval_s();
  WindowFit fit = fit_window(config, start_s, config.interval_s(),
                             std::move(flows), bins);

  AnalysisReport report;
  report.interval_index = static_cast<std::size_t>(index);
  report.start_s = start_s;
  report.length_s = config.interval_s();
  report.inputs = fit.inputs;
  report.measured = fit.measured;
  report.continued_flows = fit.continued_flows;
  report.shot_b = fit.shot_b;
  report.shot_b_used = fit.shot_b_used;
  report.model_cov = fit.model_cov;
  report.plan = fit.plan;
  if (config.keep_flows()) report.interval = std::move(fit.interval);
  return report;
}

}  // namespace fbm::api
