// Sharded flow analysis building blocks (fbm::api).
//
// Flow classification over millions of 5-tuples is embarrassingly shardable:
// every packet of a flow key lands on the shard that owns the key, so each
// shard's classifier sees exactly the per-key packet subsequence it would
// have seen in a single-threaded run — timeouts and interval splits depend
// only on that subsequence, never on other keys. PipelineShard is the
// single-threaded worker state (classifier + per-interval flow and rate-bin
// accumulation); ParallelAnalysisPipeline owns N of them behind threads and
// merges their closed intervals deterministically.
//
// finalize_interval() is the one place interval math happens — the serial
// AnalysisPipeline and the parallel merge both call it, so the two paths
// agree bit for bit by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "api/pipeline.hpp"
#include "dimension/provisioning.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "net/packet.hpp"
#include "obs/catalog.hpp"
#include "stats/timeseries.hpp"

namespace fbm::api {

/// A type-erased snapshot of one classifier's complete mid-stream state,
/// for the checkpoint codec (ckpt::). Keys are canonicalized to a FiveTuple
/// regardless of flow definition: a prefix key stores its network address
/// in `dst` and its prefix length in `src_port`, all other fields zero.
/// Slot indices capture the active table's exact layout — restoring them
/// reproduces iteration order, and with it the bit-exact order of every
/// downstream floating-point accumulation.
struct ClassifierState {
  struct ActiveFlow {
    std::uint64_t slot = 0;
    net::FiveTuple key;
    flow::FlowRecord record;
    std::int64_t start_index = 0;
  };
  std::uint64_t capacity = 0;           ///< active-table slots allocated
  std::vector<ActiveFlow> active;       ///< slot order
  std::vector<flow::FlowRecord> flows;  ///< completed, not yet taken
  std::vector<flow::DiscardedPacket> discards;
  flow::ClassifierCounters counters;
  double last_ts = 0.0;  ///< stream clock (-inf before any packet)
};

/// Type erasure over flow::FlowClassifier<Key>: the flow definition is a
/// runtime choice, the classifier a compile-time template.
class FlowClassifierHandle {
 public:
  virtual ~FlowClassifierHandle() = default;
  virtual void add(const net::PacketRecord& packet) = 0;
  /// Batched add of packets [begin, end) of `batch`; emissions identical to
  /// add() per packet (see flow::FlowClassifier::add_batch).
  virtual void add_batch(const net::PacketBatch& batch, std::size_t begin,
                         std::size_t end) = 0;
  void add_batch(const net::PacketBatch& batch) {
    add_batch(batch, 0, batch.size());
  }
  virtual void expire_idle(double now) = 0;
  virtual void flush() = 0;
  [[nodiscard]] virtual std::vector<flow::FlowRecord> take_flows() = 0;
  [[nodiscard]] virtual std::vector<flow::DiscardedPacket> take_discards() = 0;
  [[nodiscard]] virtual const flow::ClassifierCounters& counters() const = 0;
  [[nodiscard]] virtual std::size_t active_flows() const = 0;
  /// Flow-table geometry for telemetry (occupancy / capacity; mean
  /// robin-hood probe distance). O(capacity) — scrape cadence only.
  [[nodiscard]] virtual double table_load_factor() const = 0;
  [[nodiscard]] virtual double table_mean_probe() const = 0;
  /// Complete mid-stream state, canonical-keyed (see ClassifierState).
  [[nodiscard]] virtual ClassifierState save_state() const = 0;
  /// Rebuilds the exact saved state (active-table layout included) in a
  /// classifier created with the same options. Throws std::invalid_argument
  /// on an inconsistent snapshot.
  virtual void restore_state(const ClassifierState& state) = 0;
};

/// Classifier for the configured flow definition, timeout and interval.
[[nodiscard]] std::unique_ptr<FlowClassifierHandle> make_flow_classifier(
    const AnalysisConfig& config);

/// Classifier with explicit options (fbm::live runs one classifier per
/// sliding window, with boundary splitting disabled — the window itself is
/// the interval).
[[nodiscard]] std::unique_ptr<FlowClassifierHandle> make_flow_classifier(
    FlowDefinition def, const flow::ClassifierOptions& options);

/// Throws std::invalid_argument for out-of-range pipeline parameters (shared
/// by the serial and parallel constructors, so both reject identically).
void validate_config(const AnalysisConfig& config);

/// AnalysisConfig::threads() == 0 means "use every core": resolves to
/// std::thread::hardware_concurrency() (floor 1 when the runtime cannot
/// tell). Any explicit value passes through unchanged.
[[nodiscard]] std::size_t resolve_threads(std::size_t configured);

/// Analysis-interval index of a timestamp — the single definition both
/// pipelines use, so a flow lands in the same interval everywhere.
[[nodiscard]] inline std::int64_t interval_index_of(double ts,
                                                    double interval_s) {
  return static_cast<std::int64_t>(std::floor(ts / interval_s));
}

/// Shard of the flow key of `packet` among `nshards` workers. Stable: FNV-1a
/// over the key's canonical fields, so the same key maps to the same shard
/// in every run on every platform.
[[nodiscard]] std::size_t flow_shard_of(const net::FiveTuple& tuple,
                                        FlowDefinition def,
                                        std::size_t nshards);
[[nodiscard]] inline std::size_t flow_shard_of(const net::PacketRecord& packet,
                                               FlowDefinition def,
                                               std::size_t nshards) {
  return flow_shard_of(packet.tuple, def, nshards);
}

/// One closed analysis interval as seen by one shard: the flows whose keys
/// hash there (unsorted) and this shard's packet bytes binned at delta
/// (discarded single-packet flows already subtracted).
struct ShardInterval {
  std::int64_t index;
  std::vector<flow::FlowRecord> flows;
  stats::RateBinner bins;
};

// PartialSink (api/pipeline.hpp) hands ShardIntervals to fbm::agg: when set
// on a pipeline, every closed analysis interval leaves as this raw
// sufficient-statistics form — completed flow records (any order) plus exact
// integral byte bins — INSTEAD of being fitted locally. Fitting (and
// min_flows filtering) then happens exactly once, after agg::Merger folds
// the partials of every producer, which is what keeps the distributed
// result bit-for-bit equal to a single-machine run.

/// Single-threaded per-shard pipeline state. Not thread-safe: exactly one
/// thread drives it (ParallelAnalysisPipeline guards each instance with its
/// worker's mutex). Feed only packets whose flow key hashes to this shard,
/// in global timestamp order.
class PipelineShard {
 public:
  explicit PipelineShard(const AnalysisConfig& config);

  /// Classify the packet and bin its bytes into its analysis interval.
  void add(const net::PacketRecord& packet);

  /// Batched add: same classification and binning as add() per packet, with
  /// the per-packet overheads hoisted — the classifier runs its hash-ahead
  /// batch path, the interval lookup happens once per interval-homogeneous
  /// run instead of per packet, and completed flows are drained once per
  /// batch instead of per packet.
  void add_batch(const net::PacketBatch& batch);

  /// Expire flows idle as of `now`, then emit one ShardInterval for every
  /// index not yet closed up to `last_index` inclusive (empty intervals
  /// included, so all shards produce the same contiguous index sequence).
  void close_through(double now, std::int64_t last_index,
                     std::vector<ShardInterval>& out);

  /// End of stream: terminate all active flows and close through
  /// `last_index`.
  void finish(std::int64_t last_index, std::vector<ShardInterval>& out);

  [[nodiscard]] const flow::ClassifierCounters& counters() const {
    return classifier_->counters();
  }
  [[nodiscard]] std::size_t active_flows() const {
    return classifier_->active_flows();
  }
  [[nodiscard]] std::size_t open_intervals() const { return open_.size(); }

 private:
  struct Open {
    std::vector<flow::FlowRecord> flows;
    stats::RateBinner bins;
  };

  [[nodiscard]] stats::RateBinner make_bins(std::int64_t index) const;
  [[nodiscard]] Open& open_at(std::int64_t index);
  void drain_classifier();
  void emit_through(std::int64_t last_index, std::vector<ShardInterval>& out);
  /// Folds classifier-counter deltas into the obs locals and samples the
  /// flow-table gauges. Batch/sweep cadence, no-op when obs is disabled.
  void sync_obs(bool sample_table);

  AnalysisConfig config_;
  std::unique_ptr<FlowClassifierHandle> classifier_;
  std::map<std::int64_t, Open> open_;
  std::int64_t next_close_ = 0;

  // obs: this shard's private counter cells (one relaxed add each at sync
  // time) and the classifier-counter values already folded in.
  obs::ShardedCounter::Local obs_packets_;
  obs::ShardedCounter::Local obs_flows_;
  obs::ShardedCounter::Local obs_discards_;
  obs::ShardedCounter::Local obs_splits_;
  flow::ClassifierCounters obs_synced_{};
  obs::Histogram* obs_classify_seconds_ = nullptr;
};

/// One fitted window of trace time: everything the paper derives from a set
/// of completed flows plus the window's exact byte bins. Produced by
/// fit_window() — the single implementation of the per-window math that the
/// serial pipeline, the sharded merge and live::WindowedEstimator all share,
/// so all three agree bit for bit by construction.
struct WindowFit {
  flow::ModelInputs inputs;
  measure::RateMoments measured;
  std::size_t continued_flows = 0;
  std::optional<double> shot_b;
  double shot_b_used = 1.0;
  double model_cov = 0.0;
  dimension::ProvisioningPlan plan;
  stats::RateSeries series;       ///< the Delta-binned measured rate
  flow::IntervalData interval;    ///< flows sorted by flow::ByStart
};

/// Fits one window [start_s, start_s + length_s): sort flows by
/// flow::ByStart, estimate the model inputs, derive rate moments from the
/// bins, fit the shot power (or apply the configured fixed/fallback b), plan
/// capacity. `flows` may arrive in any order; `bins` must cover the window.
[[nodiscard]] WindowFit fit_window(const AnalysisConfig& config,
                                   double start_s, double length_s,
                                   std::vector<flow::FlowRecord> flows,
                                   const stats::RateBinner& bins);

/// Turns one interval's merged raw material — flows (any order) and exact
/// byte bins — into the finished AnalysisReport via fit_window(). Both
/// pipelines close intervals through here; min_flows filtering stays with
/// the caller.
[[nodiscard]] AnalysisReport finalize_interval(const AnalysisConfig& config,
                                               std::int64_t index,
                                               std::vector<flow::FlowRecord>
                                                   flows,
                                               stats::RateBinner bins);

}  // namespace fbm::api
