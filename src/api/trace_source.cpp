#include "api/trace_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "trace/pcap.hpp"

namespace fbm::api {

// ------------------------------------------------------ VectorTraceSource ---

VectorTraceSource::VectorTraceSource(std::vector<net::PacketRecord> packets)
    : packets_(std::move(packets)) {}

std::optional<net::PacketRecord> VectorTraceSource::next() {
  if (pos_ >= packets_.size()) return std::nullopt;
  return packets_[pos_++];
}

std::size_t VectorTraceSource::next_batch(net::PacketBatch& out,
                                          std::size_t max_n) {
  const std::size_t n = std::min(max_n, packets_.size() - pos_);
  out.assign({packets_.data() + pos_, n});
  pos_ += n;
  return n;
}

// -------------------------------------------------------- FileTraceSource ---

FileTraceSource::FileTraceSource(const std::filesystem::path& path,
                                 bool follow)
    : path_(path), follow_(follow), reader_(path) {}

std::optional<net::PacketRecord> FileTraceSource::next() {
  return follow_ ? reader_.poll() : reader_.next();
}

std::size_t FileTraceSource::next_batch(net::PacketBatch& out,
                                        std::size_t max_n) {
  // Follow mode keeps poll()'s per-record rewind semantics; the plain path
  // bulk-reads whole batches in one ifstream::read.
  if (follow_) return TraceSource::next_batch(out, max_n);
  return reader_.next_batch(out, max_n);
}

std::uint64_t FileTraceSource::count_hint() const {
  const std::uint64_t n = reader_.header_count();
  return n == trace::kUnknownCount ? kUnknownCount : n;
}

bool FileTraceSource::reset() {
  reader_ = trace::TraceReader(path_);
  return true;
}

// -------------------------------------------------------- PcapTraceSource ---

PcapTraceSource::PcapTraceSource(const std::filesystem::path& path,
                                 bool follow)
    : path_(path), follow_(follow),
      reader_(path, trace::kPcapDefaultEpoch, follow) {}

std::optional<net::PacketRecord> PcapTraceSource::next() {
  return reader_.next();
}

std::size_t PcapTraceSource::next_batch(net::PacketBatch& out,
                                        std::size_t max_n) {
  // Parsing dominates pcap reads; batching still drops the per-packet
  // virtual dispatch and optional<> shuffle seen by consumers.
  out.clear();
  while (out.size() < max_n) {
    const auto p = reader_.next();
    if (!p) break;
    out.push_back(*p);
  }
  return out.size();
}

bool PcapTraceSource::reset() {
  reader_ = trace::PcapReader(path_, trace::kPcapDefaultEpoch, follow_);
  return true;
}

// --------------------------------------------------- SyntheticTraceSource ---

SyntheticTraceSource::SyntheticTraceSource(const trace::SyntheticConfig& config)
    : inner_([&] {
        trace::GenerationReport rep;
        auto packets = trace::generate_packets(config, &rep);
        report_ = rep;
        return packets;
      }()) {}

std::optional<net::PacketRecord> SyntheticTraceSource::next() {
  return inner_.next();
}

std::uint64_t SyntheticTraceSource::count_hint() const {
  return inner_.count_hint();
}

// ------------------------------------------------------- ModelTraceSource ---

ModelTraceSource::ModelTraceSource(ModelSourceConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (!(config_.duration_s > 0.0)) {
    throw std::invalid_argument("ModelTraceSource: duration <= 0");
  }
  if (!(config_.lambda > 0.0)) {
    throw std::invalid_argument("ModelTraceSource: lambda <= 0");
  }
  if (!(config_.shot_b >= 0.0)) {
    throw std::invalid_argument("ModelTraceSource: shot_b < 0");
  }
  if (config_.packet_bytes == 0) {
    throw std::invalid_argument("ModelTraceSource: packet_bytes == 0");
  }
  if (config_.resample_pool.empty() &&
      (!config_.size_bits || !config_.duration_s_dist)) {
    throw std::invalid_argument(
        "ModelTraceSource: need either a resample pool or size+duration "
        "distributions");
  }
  next_arrival_ = rng_.exponential(config_.lambda);
}

ModelTraceSource::ModelTraceSource(const core::ShotNoiseModel& model,
                                   double duration_s, double shot_b)
    : ModelTraceSource([&] {
        ModelSourceConfig cfg;
        cfg.duration_s = duration_s;
        cfg.lambda = model.lambda();
        cfg.shot_b = shot_b;
        cfg.resample_pool = model.samples();
        return cfg;
      }()) {}

void ModelTraceSource::start_flow(double t0) {
  ActiveFlow f;
  f.start = t0;
  if (!config_.resample_pool.empty()) {
    const auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, config_.resample_pool.size() - 1));
    f.size_bits = config_.resample_pool[idx].size_bits;
    f.duration_s = config_.resample_pool[idx].duration_s;
  } else {
    f.size_bits = config_.size_bits->sample(rng_);
    f.duration_s = config_.duration_s_dist->sample(rng_);
  }
  f.size_bits = std::max(1.0, f.size_bits);
  f.duration_s = std::max(1e-3, f.duration_s);
  f.bytes_left = static_cast<std::uint64_t>(std::ceil(f.size_bits / 8.0));

  const std::size_t rank = config_.prefix_pool > 0
                               ? static_cast<std::size_t>(rng_.uniform_int(
                                     0, config_.prefix_pool - 1))
                               : 0;
  f.tuple.dst = trace::dst_address_for_rank(
      rank, static_cast<std::uint8_t>(rng_.uniform_int(1, 254)));
  f.tuple.src = net::Ipv4Address(
      0x0a800000u | static_cast<std::uint32_t>(rng_.uniform_int(1, 0x7ffffe)));
  f.tuple.src_port =
      static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535));
  f.tuple.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(1, 1023));
  f.tuple.protocol = static_cast<std::uint8_t>(net::Protocol::tcp);

  ++flows_;
  schedule_next_packet(f);
  active_.push(std::move(f));
}

void ModelTraceSource::schedule_next_packet(ActiveFlow& f) const {
  // Pace packets so the cumulative bits sent at age u follow the power
  // shot's integral S * (u/D)^(b+1): packet j leaves when its last bit has
  // been transmitted.
  const double total_bytes =
      static_cast<double>(f.bytes_left) +
      static_cast<double>(f.packets_sent) *
          static_cast<double>(config_.packet_bytes);
  const double sent_after =
      static_cast<double>(f.packets_sent + 1) *
      static_cast<double>(config_.packet_bytes);
  const double fraction = std::min(1.0, sent_after / total_bytes);
  const double age =
      f.duration_s * std::pow(fraction, 1.0 / (config_.shot_b + 1.0));
  f.next_packet_ts = f.start + age;
}

bool ModelTraceSource::reset() {
  rng_ = stats::Rng(config_.seed);
  next_arrival_ = rng_.exponential(config_.lambda);
  arrivals_done_ = false;
  flows_ = 0;
  active_ = {};
  return true;
}

bool ModelTraceSource::step(double& ts, net::FiveTuple& tuple,
                            std::uint32_t& size) {
  while (true) {
    // Admit every arrival up to the next pending packet so the merged
    // stream leaves in global timestamp order.
    while (!arrivals_done_ &&
           (active_.empty() || next_arrival_ <= active_.top().next_packet_ts)) {
      if (next_arrival_ >= config_.duration_s) {
        arrivals_done_ = true;
        break;
      }
      const double t0 = next_arrival_;
      next_arrival_ += rng_.exponential(config_.lambda);
      start_flow(t0);
    }
    if (active_.empty()) return false;

    ActiveFlow f = active_.top();
    active_.pop();
    if (f.next_packet_ts >= config_.duration_s) {
      // The capture stops at the horizon: the flow's tail is dropped.
      continue;
    }
    size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(f.bytes_left, config_.packet_bytes));
    ts = f.next_packet_ts;
    tuple = f.tuple;
    f.bytes_left -= size;
    ++f.packets_sent;
    if (f.bytes_left > 0) {
      schedule_next_packet(f);
      active_.push(std::move(f));
    }
    return true;
  }
}

std::optional<net::PacketRecord> ModelTraceSource::next() {
  net::PacketRecord out;
  if (!step(out.timestamp, out.tuple, out.size_bytes)) return std::nullopt;
  return out;
}

std::size_t ModelTraceSource::next_batch(net::PacketBatch& out,
                                         std::size_t max_n) {
  out.clear();
  double ts = 0.0;
  net::FiveTuple tuple;
  std::uint32_t size = 0;
  while (out.size() < max_n && step(ts, tuple, size)) {
    out.emplace_back(ts, tuple, size);
  }
  return out.size();
}

// -------------------------------------------------------------- factories ---

TraceSourcePtr open_trace(const std::filesystem::path& path, bool follow) {
  const std::string s = path.string();
  if (s.ends_with(".pcap")) {
    return std::make_unique<PcapTraceSource>(path, follow);
  }
  if (s.ends_with(".csv")) {
    if (follow) {
      throw std::invalid_argument("open_trace: --follow needs .fbmt or .pcap");
    }
    return std::make_unique<VectorTraceSource>(trace::import_csv(path));
  }
  return std::make_unique<FileTraceSource>(path, follow);
}

TraceSourcePtr make_vector_source(std::vector<net::PacketRecord> packets) {
  return std::make_unique<VectorTraceSource>(std::move(packets));
}

TraceSourcePtr make_synthetic_source(const trace::SyntheticConfig& config) {
  return std::make_unique<SyntheticTraceSource>(config);
}

TraceSourcePtr make_model_source(ModelSourceConfig config) {
  return std::make_unique<ModelTraceSource>(std::move(config));
}

}  // namespace fbm::api
