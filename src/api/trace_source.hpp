// Streaming packet sources (fbm::api, stage 1 of the pipeline).
//
// A TraceSource delivers PacketRecords one at a time in non-decreasing
// timestamp order, so consumers — above all api::AnalysisPipeline — never
// need a whole trace in memory. Implementations wrap every way this
// repository can produce packets:
//
//   FileTraceSource       .fbmt files, truly streaming (O(1) memory)
//   PcapTraceSource       .pcap captures, truly streaming (O(1) memory)
//   VectorTraceSource     any in-memory vector (also serves csv, whose
//                         reader is batch; the memory cost is explicit)
//   SyntheticTraceSource  the trace/synthetic generator
//   ModelTraceSource      packets synthesized from the shot-noise model
//                         itself (Poisson arrivals, power-shot pacing),
//                         streaming with O(active flows) memory
//
// open_trace() picks the right reader from the file extension, mirroring
// what tools/fbm_analyze did by hand. Every source built here supports
// reset() (rewind to the first packet), which windowed replay and the
// differential test harnesses rely on; sources that cannot rewind return
// false and stay single-pass.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "trace/pcap.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_format.hpp"

namespace fbm::api {

/// Pull-based packet stream. Timestamps are non-decreasing.
class TraceSource {
 public:
  static constexpr std::uint64_t kUnknownCount = ~std::uint64_t{0};

  virtual ~TraceSource() = default;

  /// Next packet, or nullopt at end of stream.
  [[nodiscard]] virtual std::optional<net::PacketRecord> next() = 0;

  /// Fills `out` (cleared first) with up to `max_n` packets and returns the
  /// count; 0 means end of stream (or, in follow mode, nothing available
  /// yet). The default implementation loops next(); file-backed sources
  /// override it with bulk reads so the per-packet virtual call and
  /// optional<> shuffle disappear from the hot path. The delivered sequence
  /// is identical to calling next() repeatedly, for every max_n.
  [[nodiscard]] virtual std::size_t next_batch(net::PacketBatch& out,
                                               std::size_t max_n) {
    out.clear();
    while (out.size() < max_n) {
      const auto p = next();
      if (!p) break;
      out.push_back(*p);
    }
    return out.size();
  }

  /// Total packets this source will deliver, when knowable up front
  /// (kUnknownCount otherwise). A hint, not a contract.
  [[nodiscard]] virtual std::uint64_t count_hint() const {
    return kUnknownCount;
  }

  /// Rewinds to the first packet so the stream can be replayed; returns
  /// false when the source cannot rewind (the default — a TraceSource is
  /// single-pass unless it says otherwise). After a successful reset the
  /// source delivers exactly the same packet sequence again.
  [[nodiscard]] virtual bool reset() { return false; }

  /// Drains the stream through `fn(const net::PacketRecord&)`; returns the
  /// number of packets delivered.
  template <typename F>
  std::uint64_t for_each(F&& fn) {
    std::uint64_t n = 0;
    while (auto p = next()) {
      fn(*p);
      ++n;
    }
    return n;
  }
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

/// Serves an in-memory vector (must already be timestamp-sorted).
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<net::PacketRecord> packets);

  [[nodiscard]] std::optional<net::PacketRecord> next() override;
  [[nodiscard]] std::size_t next_batch(net::PacketBatch& out,
                                       std::size_t max_n) override;
  [[nodiscard]] std::uint64_t count_hint() const override {
    return packets_.size();
  }
  [[nodiscard]] bool reset() override {
    pos_ = 0;
    return true;
  }

 private:
  std::vector<net::PacketRecord> packets_;
  std::size_t pos_ = 0;
};

/// Streams a native .fbmt file record by record (O(1) memory). With
/// `follow`, end of file means "no data yet": next() returns nullopt but a
/// later call picks up records appended in the meantime (fbm_live --follow).
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(const std::filesystem::path& path,
                           bool follow = false);

  [[nodiscard]] std::optional<net::PacketRecord> next() override;
  [[nodiscard]] std::size_t next_batch(net::PacketBatch& out,
                                       std::size_t max_n) override;
  [[nodiscard]] std::uint64_t count_hint() const override;
  [[nodiscard]] bool reset() override;

 private:
  std::filesystem::path path_;
  bool follow_;
  trace::TraceReader reader_;
};

/// Streams a .pcap capture packet by packet (O(1) memory) — no more
/// materializing multi-GB captures through a vector. `follow` has
/// FileTraceSource semantics.
class PcapTraceSource final : public TraceSource {
 public:
  explicit PcapTraceSource(const std::filesystem::path& path,
                           bool follow = false);

  [[nodiscard]] std::optional<net::PacketRecord> next() override;
  [[nodiscard]] std::size_t next_batch(net::PacketBatch& out,
                                       std::size_t max_n) override;
  [[nodiscard]] bool reset() override;

  /// Non-IPv4/TCP/UDP packets skipped so far.
  [[nodiscard]] std::size_t skipped() const { return reader_.skipped(); }

 private:
  std::filesystem::path path_;
  bool follow_;
  trace::PcapReader reader_;
};

/// Wraps the synthetic backbone generator. Generation happens eagerly in
/// the constructor (the generator sorts globally), then packets stream out.
class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(const trace::SyntheticConfig& config);

  [[nodiscard]] std::optional<net::PacketRecord> next() override;
  [[nodiscard]] std::size_t next_batch(net::PacketBatch& out,
                                       std::size_t max_n) override {
    return inner_.next_batch(out, max_n);
  }
  [[nodiscard]] std::uint64_t count_hint() const override;
  [[nodiscard]] bool reset() override { return inner_.reset(); }

  /// What the generator actually produced.
  [[nodiscard]] const trace::GenerationReport& report() const {
    return report_;
  }

 private:
  trace::GenerationReport report_;
  VectorTraceSource inner_;
};

/// Model-driven source: simulates the paper's shot-noise model directly and
/// packetizes it. Flows arrive as a Poisson process; each draws (S, D)
/// either from parametric distributions or jointly from an empirical
/// resample pool (preserving the S-D correlation, as gen::generate does for
/// the fluid process); packets are paced so the cumulative bits sent at age
/// u follow the power shot S * (u/D)^(b+1).
///
/// Unlike gen::generate (a fluid RateSeries), this emits discrete packets,
/// so the full analysis pipeline — classification included — can run on
/// model output. Memory is O(active flows): a heap of per-flow cursors.
struct ModelSourceConfig {
  double duration_s = 60.0;
  double lambda = 100.0;        ///< flow arrivals per second
  double shot_b = 1.0;          ///< power-shot pacing (0 rect, 1 triangle)

  /// Parametric source: size (bits) and duration (s) drawn independently.
  stats::DistributionPtr size_bits;
  stats::DistributionPtr duration_s_dist;
  /// Empirical source: when non-empty, (S, D) resampled jointly from here
  /// and the parametric distributions are ignored.
  std::vector<core::FlowSample> resample_pool;

  std::uint32_t packet_bytes = 1000;  ///< packetization quantum
  std::size_t prefix_pool = 128;      ///< distinct /24 destination prefixes
  std::uint64_t seed = stats::Rng::default_seed;
};

class ModelTraceSource final : public TraceSource {
 public:
  /// Throws std::invalid_argument on inconsistent configuration.
  explicit ModelTraceSource(ModelSourceConfig config);

  /// Convenience: drive the source with a fitted model's lambda, empirical
  /// population, and (power) shot.
  ModelTraceSource(const core::ShotNoiseModel& model, double duration_s,
                   double shot_b);

  [[nodiscard]] std::optional<net::PacketRecord> next() override;
  /// Native SoA fill: the same sequence as next() (bit-pinned by
  /// tests/api/test_batch_differential.cpp) without the per-packet virtual
  /// dispatch and optional<> shuffle of the default path.
  [[nodiscard]] std::size_t next_batch(net::PacketBatch& out,
                                       std::size_t max_n) override;
  /// Restarts the simulation from its seed: the replay is identical.
  [[nodiscard]] bool reset() override;

  [[nodiscard]] std::uint64_t flows_started() const { return flows_; }

 private:
  struct ActiveFlow {
    double start = 0.0;
    double size_bits = 0.0;
    double duration_s = 0.0;
    std::uint64_t bytes_left = 0;
    std::uint64_t packets_sent = 0;
    double next_packet_ts = 0.0;
    net::FiveTuple tuple;
  };
  struct ByNextPacket {
    [[nodiscard]] bool operator()(const ActiveFlow& a,
                                  const ActiveFlow& b) const {
      return a.next_packet_ts > b.next_packet_ts;  // min-heap
    }
  };

  /// Core generator behind next()/next_batch(): the next packet into
  /// (ts, tuple, size); false at end of stream.
  bool step(double& ts, net::FiveTuple& tuple, std::uint32_t& size);
  void start_flow(double t0);
  void schedule_next_packet(ActiveFlow& f) const;

  ModelSourceConfig config_;
  stats::Rng rng_;
  double next_arrival_ = 0.0;
  bool arrivals_done_ = false;
  std::uint64_t flows_ = 0;
  std::priority_queue<ActiveFlow, std::vector<ActiveFlow>, ByNextPacket>
      active_;
};

/// Opens a trace file by extension: .fbmt and .pcap stream with O(1)
/// memory; .csv still goes through the batch importer and is served from
/// memory. `follow` requests tail -f semantics (.fbmt/.pcap only; throws
/// std::invalid_argument for .csv). Throws std::runtime_error for
/// unreadable files.
[[nodiscard]] TraceSourcePtr open_trace(const std::filesystem::path& path,
                                        bool follow = false);

/// Factory helpers, for symmetry with open_trace().
[[nodiscard]] TraceSourcePtr make_vector_source(
    std::vector<net::PacketRecord> packets);
[[nodiscard]] TraceSourcePtr make_synthetic_source(
    const trace::SyntheticConfig& config);
[[nodiscard]] TraceSourcePtr make_model_source(ModelSourceConfig config);

}  // namespace fbm::api
