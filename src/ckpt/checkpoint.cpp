#include "ckpt/checkpoint.hpp"

#include <stdexcept>
#include <utility>

#include "obs/catalog.hpp"

namespace fbm::ckpt {

namespace {

using core::ByteBuffer;
using core::ByteCursor;

constexpr std::uint32_t kFrameMeta = 1;       ///< kind + agg::PartialMeta
constexpr std::uint32_t kFrameEstimator = 2;  ///< live::EstimatorState
constexpr std::uint32_t kFrameEngine = 3;     ///< stream totals + link count
constexpr std::uint32_t kFrameSession = 4;    ///< one per link, attach order
constexpr std::uint32_t kFrameEnd = 5;        ///< frame count + packet total

// ------------------------------------------------------------- serializing ---

void put_flow(ByteBuffer& b, const flow::FlowRecord& f) {
  b.put(f.start);
  b.put(f.end);
  b.put(f.size_bytes);
  b.put(f.packets);
  b.put(static_cast<std::uint64_t>(f.continued ? 1 : 0));
}

void put_flows(ByteBuffer& b, const std::vector<flow::FlowRecord>& flows) {
  b.put(static_cast<std::uint64_t>(flows.size()));
  for (const auto& f : flows) put_flow(b, f);
}

void put_classifier(ByteBuffer& b, const api::ClassifierState& s) {
  b.put(s.capacity);
  b.put(static_cast<std::uint64_t>(s.active.size()));
  for (const auto& a : s.active) {
    b.put(a.slot);
    b.put(a.key.src.value());
    b.put(a.key.dst.value());
    b.put(static_cast<std::uint32_t>(a.key.src_port));
    b.put(static_cast<std::uint32_t>(a.key.dst_port));
    b.put(static_cast<std::uint32_t>(a.key.protocol));
    b.put(std::uint32_t{0});  // reserved
    put_flow(b, a.record);
    b.put(a.start_index);
  }
  put_flows(b, s.flows);
  b.put(static_cast<std::uint64_t>(s.discards.size()));
  for (const auto& d : s.discards) {
    b.put(d.timestamp);
    b.put(d.size_bytes);
  }
  b.put(s.counters.packets);
  b.put(s.counters.flows_emitted);
  b.put(s.counters.single_packet_discards);
  b.put(s.counters.boundary_splits);
  b.put(s.last_ts);
}

void put_estimator(ByteBuffer& b, const live::EstimatorState& s) {
  b.put(s.counters.packets);
  b.put(s.counters.bytes);
  b.put(s.counters.windows);
  b.put(s.counters.flows);
  b.put(s.last_ts);
  b.put(s.next_expire);
  b.put(s.next_close);
  b.put(s.max_window);
  b.put(s.cur_kmax);
  b.put(static_cast<std::uint64_t>(s.forecast_history.size()));
  for (const double v : s.forecast_history) b.put(v);
  b.put(s.monitor_consecutive);
  b.put(s.monitor_last_kind);
  b.put(std::uint32_t{0});  // reserved
  b.put(static_cast<std::uint64_t>(s.open.size()));
  for (const auto& w : s.open) {
    b.put(static_cast<std::uint32_t>(w.present ? 1 : 0));
    b.put(std::uint32_t{0});  // reserved
    if (!w.present) continue;
    put_classifier(b, w.classifier);
    put_flows(b, w.flows);
    b.put(static_cast<std::uint64_t>(w.bin_bytes.size()));
    for (const double v : w.bin_bytes) b.put(v);
    b.put(w.bin_dropped);
    b.put(w.bin_total_bytes);
    b.put(w.packets);
    b.put(w.bytes);
    b.put(w.discards);
  }
}

[[nodiscard]] ByteBuffer encode_meta_frame(CheckpointKind kind,
                                           const agg::PartialMeta& meta) {
  ByteBuffer b;
  b.put(static_cast<std::uint32_t>(kind));
  b.put(std::uint32_t{0});  // reserved
  agg::encode_meta(b, meta);
  return b;
}

[[nodiscard]] ByteBuffer encode_end(std::uint64_t frames,
                                    std::uint64_t packets) {
  ByteBuffer b;
  b.put(frames);
  b.put(packets);
  return b;
}

// --------------------------------------------------------------- deserializing

void check_count(const ByteCursor& c, std::uint64_t count,
                 std::size_t min_bytes_each) {
  if (count > (c.size - c.at) / min_bytes_each) {
    throw std::runtime_error(c.where + ": malformed frame payload");
  }
}

[[nodiscard]] flow::FlowRecord get_flow(ByteCursor& c) {
  flow::FlowRecord f;
  f.start = c.get<double>();
  f.end = c.get<double>();
  f.size_bytes = c.get<std::uint64_t>();
  f.packets = c.get<std::uint64_t>();
  f.continued = c.get<std::uint64_t>() != 0;
  return f;
}

[[nodiscard]] std::vector<flow::FlowRecord> get_flows(ByteCursor& c) {
  const auto n = c.get<std::uint64_t>();
  check_count(c, n, 40);  // 5 x 8 bytes per flow record
  std::vector<flow::FlowRecord> flows;
  flows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) flows.push_back(get_flow(c));
  return flows;
}

[[nodiscard]] api::ClassifierState get_classifier(ByteCursor& c) {
  api::ClassifierState s;
  s.capacity = c.get<std::uint64_t>();
  const auto active = c.get<std::uint64_t>();
  check_count(c, active, 80);  // slot + key + record + start_index
  s.active.reserve(active);
  for (std::uint64_t i = 0; i < active; ++i) {
    api::ClassifierState::ActiveFlow a;
    a.slot = c.get<std::uint64_t>();
    a.key.src = net::Ipv4Address(c.get<std::uint32_t>());
    a.key.dst = net::Ipv4Address(c.get<std::uint32_t>());
    a.key.src_port = static_cast<std::uint16_t>(c.get<std::uint32_t>());
    a.key.dst_port = static_cast<std::uint16_t>(c.get<std::uint32_t>());
    a.key.protocol = static_cast<std::uint8_t>(c.get<std::uint32_t>());
    (void)c.get<std::uint32_t>();  // reserved
    a.record = get_flow(c);
    a.start_index = c.get<std::int64_t>();
    s.active.push_back(a);
  }
  s.flows = get_flows(c);
  const auto discards = c.get<std::uint64_t>();
  check_count(c, discards, 16);
  s.discards.reserve(discards);
  for (std::uint64_t i = 0; i < discards; ++i) {
    flow::DiscardedPacket d{};
    d.timestamp = c.get<double>();
    d.size_bytes = c.get<std::uint64_t>();
    s.discards.push_back(d);
  }
  s.counters.packets = c.get<std::uint64_t>();
  s.counters.flows_emitted = c.get<std::uint64_t>();
  s.counters.single_packet_discards = c.get<std::uint64_t>();
  s.counters.boundary_splits = c.get<std::uint64_t>();
  s.last_ts = c.get<double>();
  return s;
}

[[nodiscard]] live::EstimatorState get_estimator(ByteCursor& c) {
  live::EstimatorState s;
  s.counters.packets = c.get<std::uint64_t>();
  s.counters.bytes = c.get<std::uint64_t>();
  s.counters.windows = c.get<std::uint64_t>();
  s.counters.flows = c.get<std::uint64_t>();
  s.last_ts = c.get<double>();
  s.next_expire = c.get<double>();
  s.next_close = c.get<std::int64_t>();
  s.max_window = c.get<std::int64_t>();
  s.cur_kmax = c.get<std::int64_t>();
  const auto history = c.get<std::uint64_t>();
  check_count(c, history, sizeof(double));
  s.forecast_history.reserve(history);
  for (std::uint64_t i = 0; i < history; ++i) {
    s.forecast_history.push_back(c.get<double>());
  }
  s.monitor_consecutive = c.get<std::uint64_t>();
  s.monitor_last_kind = c.get<std::uint32_t>();
  (void)c.get<std::uint32_t>();  // reserved
  const auto open = c.get<std::uint64_t>();
  check_count(c, open, 8);
  s.open.reserve(open);
  for (std::uint64_t i = 0; i < open; ++i) {
    live::EstimatorState::OpenWindow w;
    w.present = c.get<std::uint32_t>() != 0;
    (void)c.get<std::uint32_t>();  // reserved
    if (w.present) {
      w.classifier = get_classifier(c);
      w.flows = get_flows(c);
      const auto bins = c.get<std::uint64_t>();
      check_count(c, bins, sizeof(double));
      w.bin_bytes.reserve(bins);
      for (std::uint64_t j = 0; j < bins; ++j) {
        w.bin_bytes.push_back(c.get<double>());
      }
      w.bin_dropped = c.get<std::uint64_t>();
      w.bin_total_bytes = c.get<double>();
      w.packets = c.get<std::uint64_t>();
      w.bytes = c.get<std::uint64_t>();
      w.discards = c.get<std::uint64_t>();
    }
    s.open.push_back(std::move(w));
  }
  return s;
}

// ------------------------------------------------------------------ writing --

void write_frames(const std::filesystem::path& path, CheckpointKind kind,
                  const agg::PartialMeta& meta, std::uint64_t packets,
                  const std::vector<ByteBuffer>& body) {
  static obs::Histogram& ckpt_seconds =
      obs::stage_seconds(obs::kStageCheckpoint);
  obs::StageSpan span(ckpt_seconds);  // encode + write + fsync + rename
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    core::FrameWriter out(tmp, kCheckpointMagic, kCheckpointVersion,
                          "checkpoint");
    out.write_frame(kFrameMeta, encode_meta_frame(kind, meta));
    std::uint32_t type = kind == CheckpointKind::estimator ? kFrameEstimator
                                                           : kFrameEngine;
    for (const auto& b : body) {
      out.write_frame(type, b);
      // An engine checkpoint's first body frame is the engine frame; the
      // rest are per-session frames.
      if (type == kFrameEngine) type = kFrameSession;
    }
    out.write_frame(kFrameEnd,
                    encode_end(1 + body.size() + 1, packets));
    out.flush();
    out.close();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: cannot rename " + tmp.string() +
                             " to " + path.string() + ": " + ec.message());
  }
  if (obs::enabled()) {
    obs::checkpoint_writes().add(1);
    std::error_code size_ec;
    const auto bytes = std::filesystem::file_size(path, size_ec);
    if (!size_ec) {
      obs::checkpoint_last_bytes().set(static_cast<double>(bytes));
    }
  }
}

}  // namespace

void write_checkpoint(const std::filesystem::path& path,
                      const agg::PartialMeta& meta,
                      const live::EstimatorState& state) {
  ByteBuffer b;
  put_estimator(b, state);
  std::vector<ByteBuffer> body;
  body.push_back(std::move(b));
  write_frames(path, CheckpointKind::estimator, meta, state.counters.packets,
               body);
}

void write_checkpoint(const std::filesystem::path& path,
                      const agg::PartialMeta& meta,
                      const engine::EngineState& state) {
  std::vector<ByteBuffer> body;
  {
    ByteBuffer b;
    b.put(state.summary.packets);
    b.put(state.summary.total_bytes);
    b.put(state.summary.first_ts);
    b.put(state.summary.last_ts);
    b.put(state.last_ts);
    b.put(static_cast<std::uint64_t>(state.sessions.size()));
    body.push_back(std::move(b));
  }
  for (const auto& s : state.sessions) {
    ByteBuffer b;
    b.put_string(s.name);
    b.put(static_cast<std::uint32_t>(s.attached ? 1 : 0));
    b.put(static_cast<std::uint32_t>(s.has_live ? 1 : 0));
    b.put(s.counters.packets);
    b.put(s.counters.bytes);
    b.put(s.counters.reports);
    if (s.has_live) put_estimator(b, s.live);
    body.push_back(std::move(b));
  }
  write_frames(path, CheckpointKind::engine, meta, state.summary.packets,
               body);
}

Checkpoint read_checkpoint(const std::filesystem::path& path) {
  const std::string where = "checkpoint " + path.string();
  core::FrameReader reader(
      path, {kCheckpointMagic, kCheckpointVersion, "a checkpoint", where,
             /*tolerate_torn_tail=*/false});

  Checkpoint ck;
  std::uint64_t frames = 0;
  std::uint64_t expected_sessions = 0;
  bool saw_meta = false;
  bool saw_body = false;
  bool saw_end = false;

  while (auto frame = reader.next()) {
    ++frames;
    ByteCursor c{frame->payload.data(), frame->payload.size(), 0, where};
    switch (frame->type) {
      case kFrameMeta: {
        if (saw_meta) {
          throw std::runtime_error(where + ": duplicate meta frame");
        }
        saw_meta = true;
        const auto kind = c.get<std::uint32_t>();
        (void)c.get<std::uint32_t>();  // reserved
        if (kind != static_cast<std::uint32_t>(CheckpointKind::estimator) &&
            kind != static_cast<std::uint32_t>(CheckpointKind::engine)) {
          throw std::runtime_error(where + ": unknown checkpoint kind " +
                                   std::to_string(kind));
        }
        ck.kind = static_cast<CheckpointKind>(kind);
        ck.meta = agg::decode_meta(c);
        c.expect_done();
        break;
      }
      case kFrameEstimator: {
        if (!saw_meta || ck.kind != CheckpointKind::estimator || saw_body) {
          throw std::runtime_error(where + ": unexpected estimator frame");
        }
        saw_body = true;
        ck.estimator = get_estimator(c);
        c.expect_done();
        break;
      }
      case kFrameEngine: {
        if (!saw_meta || ck.kind != CheckpointKind::engine || saw_body) {
          throw std::runtime_error(where + ": unexpected engine frame");
        }
        saw_body = true;
        ck.engine.summary.packets = c.get<std::uint64_t>();
        ck.engine.summary.total_bytes = c.get<std::uint64_t>();
        ck.engine.summary.first_ts = c.get<double>();
        ck.engine.summary.last_ts = c.get<double>();
        ck.engine.last_ts = c.get<double>();
        expected_sessions = c.get<std::uint64_t>();
        c.expect_done();
        break;
      }
      case kFrameSession: {
        if (!saw_body || ck.kind != CheckpointKind::engine) {
          throw std::runtime_error(where + ": unexpected session frame");
        }
        if (ck.engine.sessions.size() >= expected_sessions) {
          throw std::runtime_error(where + ": more session frames than " +
                                   "the engine frame declared");
        }
        engine::EngineSessionState ss;
        ss.name = c.get_string();
        ss.attached = c.get<std::uint32_t>() != 0;
        ss.has_live = c.get<std::uint32_t>() != 0;
        ss.counters.packets = c.get<std::uint64_t>();
        ss.counters.bytes = c.get<std::uint64_t>();
        ss.counters.reports = c.get<std::uint64_t>();
        if (ss.has_live) ss.live = get_estimator(c);
        c.expect_done();
        ck.engine.sessions.push_back(std::move(ss));
        break;
      }
      case kFrameEnd: {
        if (!saw_body) {
          throw std::runtime_error(where + ": end frame before state");
        }
        const auto declared_frames = c.get<std::uint64_t>();
        const auto declared_packets = c.get<std::uint64_t>();
        c.expect_done();
        if (declared_frames != frames) {
          throw std::runtime_error(where + ": frame count mismatch");
        }
        if (declared_packets != ck.packets_consumed()) {
          throw std::runtime_error(where + ": packet total mismatch");
        }
        saw_end = true;
        break;
      }
      default:
        throw std::runtime_error(where + ": unknown frame type " +
                                 std::to_string(frame->type));
    }
    if (saw_end) break;
  }

  if (!saw_end) {
    throw std::runtime_error(where + ": truncated (missing end frame)");
  }
  if (ck.kind == CheckpointKind::engine &&
      ck.engine.sessions.size() != expected_sessions) {
    throw std::runtime_error(where + ": missing session frames");
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error(where + ": trailing data after end frame");
  }
  return ck;
}

}  // namespace fbm::ckpt
