// Checkpoint codec (fbm::ckpt) — durable mid-stream state on disk.
//
// A live run (fbm_live, single estimator or engine) can be SIGKILLed at any
// moment and resumed from its last checkpoint with bit-identical remaining
// output: the snapshot captures every member push() reads or writes —
// including each open window's flow table at exact-slot-layout fidelity, so
// the floating-point accumulation order of the resumed run matches the
// uninterrupted one (see core::FlatHashMap::restore_layout_*).
//
// File layout (all little-endian) reuses the partial-report framing
// discipline (core/framed_file.hpp):
//
//   header  : u32 magic "FBMC" | u32 version | u64 reserved
//   frames  : u32 type | u32 reserved | u64 payload_len
//             | payload | u64 fnv1a64(payload)
//
// Exactly one meta frame (first, carrying the producing run's config as an
// agg::PartialMeta — restore refuses a checkpoint taken under different
// knobs with the same field-naming diagnostics as a partial merge), then
// one estimator frame (kind estimator) or one engine frame followed by one
// session frame per link in attach order (kind engine), then exactly one
// end frame cross-checking the frame count and packet total. A truncated
// or bit-flipped file is always detected, never silently restored; writes
// go through a temp file + atomic rename so a crash mid-checkpoint leaves
// the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <filesystem>

#include "agg/partial_codec.hpp"
#include "engine/engine.hpp"
#include "live/windowed_estimator.hpp"

namespace fbm::ckpt {

inline constexpr std::uint32_t kCheckpointMagic = 0x434D4246;  // "FBMC"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// What kind of live run the checkpoint snapshots.
enum class CheckpointKind : std::uint32_t { estimator = 1, engine = 2 };

/// A fully parsed, checksum-verified checkpoint. Exactly one of
/// `estimator` / `engine` is meaningful, per `kind`.
struct Checkpoint {
  CheckpointKind kind = CheckpointKind::estimator;
  /// The producing run's config identity (agg::check_compatible validates
  /// it against the resuming run's config before restore).
  agg::PartialMeta meta;
  live::EstimatorState estimator;
  engine::EngineState engine;

  /// Packets the checkpointed run had consumed — the resuming reader skips
  /// exactly this many before pushing again.
  [[nodiscard]] std::uint64_t packets_consumed() const {
    return kind == CheckpointKind::estimator ? estimator.counters.packets
                                             : engine.summary.packets;
  }

  /// Reports the checkpointed run had already emitted (the resume banner;
  /// CI keeps the first N lines of the killed run and appends the rest).
  [[nodiscard]] std::uint64_t reports_emitted() const {
    if (kind == CheckpointKind::estimator) return estimator.counters.windows;
    std::uint64_t n = 0;
    for (const auto& s : engine.sessions) n += s.counters.reports;
    return n;
  }
};

/// Serializes a single-estimator snapshot. Writes to `path + ".tmp"` and
/// atomically renames, so the previous checkpoint survives a crash mid-write.
/// Throws std::runtime_error on I/O failure.
void write_checkpoint(const std::filesystem::path& path,
                      const agg::PartialMeta& meta,
                      const live::EstimatorState& state);

/// Serializes an engine snapshot (meta.engine must describe the link set).
void write_checkpoint(const std::filesystem::path& path,
                      const agg::PartialMeta& meta,
                      const engine::EngineState& state);

/// Parses and verifies one checkpoint file. Throws std::runtime_error with
/// a one-line diagnostic naming the file for every defect: unreadable, bad
/// magic, future version, truncated frame, checksum mismatch, malformed
/// payload, missing end frame, frame-order violation, or trailing garbage.
[[nodiscard]] Checkpoint read_checkpoint(const std::filesystem::path& path);

}  // namespace fbm::ckpt
