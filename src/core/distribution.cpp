#include "core/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/quadrature.hpp"

namespace fbm::core {

namespace {

// Quantile-stratified subsample: stride over the population sorted by flow
// size. A plain stride is unbiased only in expectation; with heavy-tailed
// sizes a single extra elephant shifts the subsample mean by several sigma.
// Striding the sorted order preserves the empirical size quantiles exactly
// (and the joint (S, D) pairs with them).
std::vector<FlowSample> subsample(const std::vector<FlowSample>& samples,
                                  std::size_t cap) {
  if (samples.size() <= cap) return samples;
  std::vector<FlowSample> sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const FlowSample& a, const FlowSample& b) {
              return a.size_bits < b.size_bits;
            });
  std::vector<FlowSample> out;
  out.reserve(cap);
  const double stride =
      static_cast<double>(sorted.size()) / static_cast<double>(cap);
  // Sample strata midpoints so the largest stratum (deep tail) is not
  // systematically included or excluded.
  for (std::size_t i = 0; i < cap; ++i) {
    const auto idx = static_cast<std::size_t>(
        (static_cast<double>(i) + 0.5) * stride);
    out.push_back(sorted[std::min(idx, sorted.size() - 1)]);
  }
  return out;
}

std::complex<double> characteristic_exponent(
    const ShotNoiseModel& model, const std::vector<FlowSample>& pop,
    double omega) {
  // lambda * E[ int_0^D (1 - e^{i omega X(u)}) du ], computed as separate
  // real and imaginary quadratures per sample.
  double re = 0.0;
  double im = 0.0;
  const Shot& shot = model.shot();
  for (const auto& fs : pop) {
    re += integrate(
        [&](double u) {
          return 1.0 -
                 std::cos(omega * shot.value(u, fs.size_bits, fs.duration_s));
        },
        0.0, fs.duration_s);
    im += integrate(
        [&](double u) {
          return std::sin(omega * shot.value(u, fs.size_bits, fs.duration_s));
        },
        0.0, fs.duration_s);
  }
  const double n = static_cast<double>(pop.size());
  return {model.lambda() * re / n, model.lambda() * im / n};
}

}  // namespace

std::complex<double> characteristic_function(const ShotNoiseModel& model,
                                             double omega,
                                             std::size_t max_samples) {
  const auto pop = subsample(model.samples(), max_samples);
  const auto expo = characteristic_exponent(model, pop, omega);
  // phi = exp(-(re - i*im)) = exp(-re) * (cos(im) + i sin(im)).
  const double mag = std::exp(-expo.real());
  return {mag * std::cos(expo.imag()), mag * std::sin(expo.imag())};
}

double RatePdf::exceedance(double level) const {
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] <= level) continue;
    const double lo = std::max(level, x[i - 1]);
    const double w = x[i] - lo;
    // Trapezoid clipped at `level`.
    const double f_lo =
        density[i - 1] + (density[i] - density[i - 1]) *
                             ((lo - x[i - 1]) / (x[i] - x[i - 1]));
    acc += 0.5 * (f_lo + density[i]) * w;
  }
  return std::clamp(acc, 0.0, 1.0);
}

double RatePdf::mean() const {
  double acc = 0.0;
  double mass = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double w = x[i] - x[i - 1];
    acc += 0.5 * (x[i] * density[i] + x[i - 1] * density[i - 1]) * w;
    mass += 0.5 * (density[i] + density[i - 1]) * w;
  }
  return mass > 0.0 ? acc / mass : 0.0;
}

double RatePdf::stddev() const {
  const double mu = mean();
  double acc = 0.0;
  double mass = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double w = x[i] - x[i - 1];
    const auto sq = [&](std::size_t k) {
      return (x[k] - mu) * (x[k] - mu) * density[k];
    };
    acc += 0.5 * (sq(i) + sq(i - 1)) * w;
    mass += 0.5 * (density[i] + density[i - 1]) * w;
  }
  return mass > 0.0 ? std::sqrt(acc / mass) : 0.0;
}

RatePdf rate_distribution(const ShotNoiseModel& model,
                          const InversionOptions& options) {
  if (options.grid < 8) {
    throw std::invalid_argument("rate_distribution: grid too small");
  }
  const auto pop = subsample(model.samples(), options.max_samples);
  // Use the subsampled population's own moments so the inversion grid and
  // phi are mutually consistent.
  const ShotNoiseModel sub(model.lambda(), pop, model.shot_ptr());
  const double mu = sub.mean_rate();
  const double sigma = sub.stddev();

  const double lo = std::max(0.0, mu - options.span_sigmas * sigma);
  const double hi = mu + options.span_sigmas * sigma;
  const double span = hi - lo;
  if (!(span > 0.0)) {
    throw std::invalid_argument("rate_distribution: degenerate span");
  }

  const std::size_t n = options.grid;
  // Nyquist-style pairing: omega resolution 2 pi / span, max omega chosen so
  // the x grid step is span/n.
  const double d_omega = 2.0 * M_PI / span;
  const std::size_t n_omega = n / 2;

  // Precompute phi on the positive omega grid (phi(-w) = conj(phi(w))).
  std::vector<std::complex<double>> phi(n_omega);
  for (std::size_t k = 0; k < n_omega; ++k) {
    const double omega = d_omega * static_cast<double>(k + 1);
    const auto expo = characteristic_exponent(sub, pop, omega);
    const double mag = std::exp(-expo.real());
    phi[k] = {mag * std::cos(expo.imag()), mag * std::sin(expo.imag())};
  }

  RatePdf out;
  out.x.resize(n);
  out.density.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double x = lo + span * static_cast<double>(j) /
                              static_cast<double>(n - 1);
    // f(x) = (1/2pi) * [ 1 + 2 sum_k Re(phi(w_k) e^{-i w_k x}) ] * d_omega
    // (the k=0 term is phi(0)=1).
    double acc = 1.0;
    for (std::size_t k = 0; k < n_omega; ++k) {
      const double w = d_omega * static_cast<double>(k + 1);
      acc += 2.0 * (phi[k].real() * std::cos(w * x) +
                    phi[k].imag() * std::sin(w * x));
    }
    out.x[j] = x;
    out.density[j] = std::max(0.0, acc * d_omega / (2.0 * M_PI));
  }
  return out;
}

}  // namespace fbm::core
