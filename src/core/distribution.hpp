// First-order distribution of the total rate (Theorem 1 + Section V-E).
//
// Theorem 1 gives the Laplace transform of R(t); evaluating it on the
// imaginary axis gives the characteristic function
//   phi(omega) = E[e^{i omega R}]
//              = exp(-lambda * E[ int_0^D (1 - e^{i omega X(u)}) du ]),
// and Fourier inversion yields the pdf of the stationary total rate. This
// is the "exact" distribution the paper contrasts with the Gaussian
// approximation: the shot-noise law is positively skewed, so the Gaussian
// under-estimates the upper tail that link dimensioning cares about.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "core/model.hpp"

namespace fbm::core {

/// phi(omega) for the model's population. `max_samples` caps the number of
/// (S, D) samples used (deterministic stride subsampling) since each
/// evaluation costs samples x quadrature nodes.
[[nodiscard]] std::complex<double> characteristic_function(
    const ShotNoiseModel& model, double omega, std::size_t max_samples = 512);

/// Numerically inverted pdf of R on a uniform grid.
struct RatePdf {
  std::vector<double> x;        ///< rate grid, bits/s
  std::vector<double> density;  ///< pdf values (>= 0 up to inversion noise)

  /// P(R > level) by trapezoidal integration of the tail.
  [[nodiscard]] double exceedance(double level) const;
  /// Mean and stddev of the numeric density (sanity checks).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
};

struct InversionOptions {
  std::size_t grid = 256;         ///< number of x points
  std::size_t max_samples = 512;  ///< population subsample cap
  double span_sigmas = 12.0;      ///< grid covers mean +- span*sigma (>= 0)
};

/// Fourier inversion of the characteristic function on a symmetric omega
/// grid. O(grid^2) evaluation; with the default sizes this is a few
/// milliseconds plus grid x samples x 32 quadrature evaluations of phi.
[[nodiscard]] RatePdf rate_distribution(const ShotNoiseModel& model,
                                        const InversionOptions& options = {});

}  // namespace fbm::core
