#include "core/fitting.hpp"

#include <algorithm>
#include <cmath>

namespace fbm::core {

std::optional<double> fit_power_b(double measured_variance,
                                  const flow::ModelInputs& inputs) {
  const double denom = inputs.lambda * inputs.mean_s2_over_d;
  if (!(denom > 0.0) || !(measured_variance >= 0.0)) return std::nullopt;
  const double gamma = measured_variance / denom;
  if (gamma <= 1.0) return 0.0;  // Theorem 3: rectangle already matches
  return (gamma - 1.0) + std::sqrt(gamma * (gamma - 1.0));
}

double gamma_of_b(double b) {
  const double c = b + 1.0;
  return c * c / (2.0 * b + 1.0);
}

OnlineEstimator::OnlineEstimator(double eps, double min_duration_s,
                                 double rate_window_s)
    : arrival_rate_(rate_window_s),
      mean_size_bits_(eps),
      mean_s2_over_d_(eps),
      min_duration_s_(min_duration_s) {}

void OnlineEstimator::observe(const flow::FlowRecord& flow) {
  ++flows_;
  // Flows complete (and are observed) in an order that need not match their
  // arrival order; clamp so the rate estimator sees a monotone clock.
  last_start_ = std::max(last_start_, flow.start);
  arrival_rate_.observe(last_start_);
  const double s = flow.size_bits();
  mean_size_bits_.update(s);
  const double d = std::max(flow.duration(), min_duration_s_);
  mean_s2_over_d_.update(s * s / d);
}

flow::ModelInputs OnlineEstimator::inputs() const {
  flow::ModelInputs in;
  in.lambda = arrival_rate_.rate();
  in.mean_size_bits = mean_size_bits_.value();
  in.mean_s2_over_d = mean_s2_over_d_.value();
  in.flows = flows_;
  return in;
}

}  // namespace fbm::core
