// Parameter estimation (Sections V-D and V-G).
//
// Offline: fit the shot power b so that the model variance matches the
// measured variance (eq. 5-6):
//   gamma = measured_variance / (lambda * E[S^2/D]),   gamma >= 1
//   b_hat = (gamma - 1) + sqrt(gamma (gamma - 1)).
//
// Online: EWMA estimators for the three parameters, updated as flows
// complete, exactly as sketched in Section V-G.
#pragma once

#include <optional>

#include "flow/flow_record.hpp"
#include "flow/interval.hpp"
#include "stats/ewma.hpp"

namespace fbm::core {

/// b_hat from the measured variance of the Delta-averaged rate. Because the
/// measured variance can fall slightly below the rectangular lower bound
/// (averaging effect, Section V-F / Theorem 3 discussion), gamma < 1 is
/// clamped to b = 0; a negative or zero denominator yields nullopt.
[[nodiscard]] std::optional<double> fit_power_b(
    double measured_variance, const flow::ModelInputs& inputs);

/// Inverse of fit: the gamma = (b+1)^2/(2b+1) variance factor.
[[nodiscard]] double gamma_of_b(double b);

/// Streaming three-parameter estimator (Section V-G). Feed every completed
/// flow; `inputs()` gives current (lambda, E[S], E[S^2/D]) estimates.
class OnlineEstimator {
 public:
  /// eps: EWMA gain in (0,1] for E[S] and E[S^2/D]; min_duration_s guards
  /// S^2/D; rate_window_s is the time constant of the lambda estimator.
  explicit OnlineEstimator(double eps = 0.05, double min_duration_s = 1e-3,
                           double rate_window_s = 10.0);

  void observe(const flow::FlowRecord& flow);

  [[nodiscard]] flow::ModelInputs inputs() const;
  [[nodiscard]] std::size_t flows_seen() const { return flows_; }

 private:
  stats::DiscountedRateEstimator arrival_rate_;
  stats::EwmaEstimator mean_size_bits_;
  stats::EwmaEstimator mean_s2_over_d_;
  double min_duration_s_;
  double last_start_ = 0.0;
  std::size_t flows_ = 0;
};

}  // namespace fbm::core
