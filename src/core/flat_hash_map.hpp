// Open-addressing hash map with robin-hood probing, built for the flow
// classifier's hot path: one try_emplace per packet against a table of
// active flows. Compared to std::unordered_map it stores key/value pairs
// inline (no per-node allocation, no bucket pointer chase) and keeps probe
// sequences short by displacement ("rich" entries close to home give way to
// "poor" ones far from home). Erase backward-shifts, so deleted slots are
// immediately reusable — no tombstones to accumulate, no periodic purge.
//
// Layout choices that matter for throughput (measured against
// std::unordered_map on the synthetic Sprint traces, bench_micro_perf):
//  - probe distances live in their own contiguous array, so a probe scans
//    compact 4-byte entries (a cache line covers 16 probes) and the wide
//    key/value slot is only touched when a distance matches;
//  - the home slot comes from Fibonacci hashing (multiply the user hash by
//    2^64/phi, keep the HIGH bits) rather than masking the low bits: with
//    structured keys (e.g. /24 prefixes, whose low byte is always zero)
//    FNV-1a's low bits are nearly constant, and low-bit masking piles every
//    home bucket into one contiguous cluster (measured: average probe
//    distance 46 on the Sprint /24 key set; 1.4 after the multiply). The
//    single multiply is also ~15 cycles cheaper per lookup than the prime
//    modulo std::unordered_map pays for the same protection;
//  - try_emplace probes for an existing key first (the per-packet common
//    case) and only falls into the out-of-line insert path on a miss, so
//    the hit path stays small enough to inline.
//
// API: the subset of std::unordered_map the classifier uses (try_emplace,
// find, erase(iterator), clear, reserve, size, iteration), so the two are
// drop-in interchangeable for A/B benchmarking.
//
// Requirements on Key and T: default-constructible and move-assignable
// (empty slots hold default-constructed pairs; displacement and backward
// shift move pairs between slots).
//
// Iteration caveat (by design, matching the classifier's usage): erase(it)
// backward-shifts later elements toward the erased slot, so a full
// begin()..end() sweep that erases as it goes revisits shifted-in elements
// and — when a shift chain wraps past the end of the array — may visit an
// element twice. It never skips an element that was present when the sweep
// started. Callers' predicates must therefore be idempotent, which the
// classifier's idle-timeout check is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace fbm::core {

template <typename Key, typename T, typename Hash = std::hash<Key>>
class FlatHashMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using size_type = std::size_t;

 private:
  template <bool Const>
  class Iter {
    using map_ptr =
        std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;

   public:
    using value_type = FlatHashMap::value_type;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(map_ptr map, size_type idx) : map_(map), idx_(idx) { skip_empty(); }

    reference operator*() const { return map_->kv_[idx_]; }
    pointer operator->() const { return &map_->kv_[idx_]; }

    Iter& operator++() {
      ++idx_;
      skip_empty();
      return *this;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

    /// Conversion iterator -> const_iterator.
    operator Iter<true>() const { return Iter<true>(map_, idx_); }

   private:
    friend class FlatHashMap;
    void skip_empty() {
      while (map_ != nullptr && idx_ < map_->dist_.size() &&
             map_->dist_[idx_] == 0) {
        ++idx_;
      }
    }

    map_ptr map_ = nullptr;
    size_type idx_ = 0;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;
  explicit FlatHashMap(Hash hash) : hash_(std::move(hash)) {}

  [[nodiscard]] size_type size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Slots allocated (power of two); 0 before the first insert.
  [[nodiscard]] size_type capacity() const { return dist_.size(); }

  /// Mean robin-hood probe distance over occupied slots (1.0 = every key in
  /// its home slot); 0 when empty. O(capacity) scan — telemetry cadence
  /// only, never the per-packet path.
  [[nodiscard]] double mean_probe_distance() const {
    if (size_ == 0) return 0.0;
    std::uint64_t total = 0;
    for (const std::uint32_t d : dist_) total += d;  // 0 for empty slots
    return static_cast<double>(total) / static_cast<double>(size_);
  }

  [[nodiscard]] iterator begin() { return iterator(this, 0); }
  [[nodiscard]] iterator end() { return iterator(this, dist_.size()); }
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, dist_.size());
  }

  /// Grows (never shrinks) so that `n` elements fit without rehashing.
  void reserve(size_type n) {
    size_type cap = dist_.empty() ? kMinCapacity : dist_.size();
    while (n * kLoadDen > cap * kLoadNum) cap *= 2;
    if (cap > dist_.size()) rehash(cap);
  }

  void clear() {
    for (size_type i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        kv_[i] = value_type{};
        dist_[i] = 0;
      }
    }
    size_ = 0;
  }

  [[nodiscard]] iterator find(const Key& key) {
    return iterator(this, find_index(key));
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    return const_iterator(this, find_index(key));
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find_index(key) != dist_.size();
  }

  /// Inserts {key, T(args...)} if absent; returns {iterator, inserted}.
  /// The existing-key case (the classifier's per-packet common case) stays
  /// on the inlinable find path; only a miss pays the insert machinery.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    return try_emplace_hashed(hash_of(key), key, std::forward<Args>(args)...);
  }

  /// The raw user hash of `key`, before Fibonacci mixing. Batch callers
  /// compute all hashes up front, prefetch_hashed() a few slots ahead, and
  /// feed the hash back through try_emplace_hashed() — so the table is
  /// already in cache when the probe runs (hash-ahead).
  [[nodiscard]] std::uint64_t hash_of(const Key& key) const {
    return static_cast<std::uint64_t>(hash_(key));
  }

  /// Warms the probe-start cache lines (distance array + key/value slot)
  /// for a key whose hash_of() value is already known. Safe at any time;
  /// a no-op on an empty table.
  void prefetch_hashed(std::uint64_t hash) const {
    if (dist_.empty()) return;
    const size_type idx = home_of_hash(hash);
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&dist_[idx]);
    __builtin_prefetch(&kv_[idx]);
#endif
  }

  /// try_emplace with the user hash precomputed by hash_of(). `hash` MUST
  /// equal hash_of(key); batch callers hoist the hash computation out of
  /// the probe loop.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace_hashed(std::uint64_t hash,
                                               const Key& key,
                                               Args&&... args) {
    const size_type idx = find_index_hashed(hash, key);
    if (idx != dist_.size()) return {iterator(this, idx), false};
    return {iterator(this,
                     insert_new(hash, key, T(std::forward<Args>(args)...))),
            true};
  }

  /// Erases the element at `pos` (must be valid). Backward-shifts the
  /// following chain, so the returned iterator points at the same slot and
  /// must be re-examined by sweep loops; see the header comment.
  iterator erase(iterator pos) {
    const size_type mask = dist_.size() - 1;
    size_type idx = pos.idx_;
    size_type next = (idx + 1) & mask;
    while (dist_[next] > 1) {
      kv_[idx] = std::move(kv_[next]);
      dist_[idx] = dist_[next] - 1;
      idx = next;
      next = (next + 1) & mask;
    }
    kv_[idx] = value_type{};
    dist_[idx] = 0;
    --size_;
    return iterator(this, pos.idx_);
  }

  /// Erases by key; returns the number of elements removed (0 or 1).
  size_type erase(const Key& key) {
    const size_type idx = find_index(key);
    if (idx == dist_.size()) return 0;
    (void)erase(iterator(this, idx));
    return 1;
  }

  // --- checkpoint hooks ------------------------------------------------
  // Iteration order here is *slot* order, and slot order decides the order
  // downstream floating-point accumulations run in — so a restore must
  // reproduce the exact table layout, not just the key set (re-inserting
  // keys can land them in different slots across wrap-around chains).
  // visit_slots() exposes the layout; restore_layout_begin()/
  // restore_layout_place() rebuild it bit for bit. The probe distance is
  // not serialized: it is recomputed from the key's home slot.

  /// Calls fn(slot_index, value_type) for every occupied slot, ascending.
  template <typename Fn>
  void visit_slots(Fn&& fn) const {
    for (size_type i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) fn(i, kv_[i]);
    }
  }

  /// Starts a layout restore into an empty table of exactly `capacity`
  /// slots (0, or a power of two >= kMinCapacity — what capacity() of the
  /// saved table reported). Discards any current contents.
  void restore_layout_begin(size_type capacity) {
    if (capacity != 0 &&
        (capacity < kMinCapacity || (capacity & (capacity - 1)) != 0)) {
      throw std::invalid_argument("FlatHashMap: invalid restored capacity");
    }
    dist_.assign(capacity, 0);
    kv_.assign(capacity, value_type{});
    size_ = 0;
    shift_ = 64;
    for (size_type cap = capacity; cap > 1; cap /= 2) --shift_;
  }

  /// Places one saved element back into its exact slot. Throws
  /// std::invalid_argument on an out-of-range or doubly-used slot (a
  /// corrupt snapshot), never corrupts memory.
  void restore_layout_place(size_type slot, const Key& key, T value) {
    if (slot >= dist_.size() || dist_[slot] != 0) {
      throw std::invalid_argument("FlatHashMap: invalid restored slot");
    }
    const size_type mask = dist_.size() - 1;
    const size_type dist = ((slot - home_of(key)) & mask) + 1;
    dist_[slot] = static_cast<std::uint32_t>(dist);
    kv_[slot] = value_type(key, std::move(value));
    ++size_;
  }

 private:
  static constexpr size_type kMinCapacity = 16;
  /// Max load factor 13/16 (0.8125): high enough that memory stays close
  /// to the element footprint, low enough that robin-hood probe chains
  /// stay short (~2 average at full load with the fmix64-finalized hash).
  static constexpr size_type kLoadNum = 13;
  static constexpr size_type kLoadDen = 16;

  /// Fibonacci hashing: one multiply by 2^64/phi, then keep the HIGH bits
  /// (see the header comment). shift_ is maintained as 64 - log2(capacity)
  /// so the result is already a valid slot index.
  [[nodiscard]] size_type home_of_hash(std::uint64_t hash) const {
    return static_cast<size_type>((hash * 0x9e3779b97f4a7c15ULL) >> shift_);
  }

  [[nodiscard]] size_type home_of(const Key& key) const {
    return home_of_hash(hash_of(key));
  }

  [[nodiscard]] size_type find_index(const Key& key) const {
    return find_index_hashed(hash_of(key), key);
  }

  [[nodiscard]] size_type find_index_hashed(std::uint64_t hash,
                                            const Key& key) const {
    if (dist_.empty()) return 0;  // == dist_.size(): not found
    const size_type mask = dist_.size() - 1;
    const std::uint32_t* dists = dist_.data();
    size_type idx = home_of_hash(hash);
    std::uint32_t dist = 1;
    while (true) {
      const std::uint32_t d = dists[idx];
      if (d < dist) return dist_.size();  // empty or richer: absent
      if (d == dist && kv_[idx].first == key) return idx;
      idx = (idx + 1) & mask;
      ++dist;
    }
  }

  /// Robin-hood insertion of a key known to be absent. Out of line so the
  /// try_emplace hit path stays small.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  size_type
  insert_new(std::uint64_t hash, const Key& key, T&& value) {
    if (dist_.empty() || (size_ + 1) * kLoadDen > dist_.size() * kLoadNum) {
      rehash(dist_.empty() ? kMinCapacity : dist_.size() * 2);
    }
    const size_type mask = dist_.size() - 1;
    size_type idx = home_of_hash(hash);
    std::uint32_t dist = 1;
    // Find the first slot that is empty or holds a richer resident.
    while (dist_[idx] >= dist) {
      idx = (idx + 1) & mask;
      ++dist;
    }
    const size_type home = idx;
    // Place the new element here; push the displaced chain forward.
    value_type carry(key, std::move(value));
    std::uint32_t carry_dist = dist;
    while (true) {
      if (dist_[idx] == 0) {
        kv_[idx] = std::move(carry);
        dist_[idx] = carry_dist;
        ++size_;
        return home;
      }
      if (dist_[idx] < carry_dist) {
        std::swap(kv_[idx], carry);
        std::swap(dist_[idx], carry_dist);
      }
      idx = (idx + 1) & mask;
      ++carry_dist;
    }
  }

  void rehash(size_type new_capacity) {
    std::vector<std::uint32_t> old_dist = std::move(dist_);
    std::vector<value_type> old_kv = std::move(kv_);
    dist_.assign(new_capacity, 0);
    kv_.assign(new_capacity, value_type{});
    shift_ = 64;
    for (size_type c = new_capacity; c > 1; c /= 2) --shift_;
    const size_type mask = new_capacity - 1;
    for (size_type i = 0; i < old_dist.size(); ++i) {
      if (old_dist[i] == 0) continue;
      value_type carry = std::move(old_kv[i]);
      size_type idx = home_of(carry.first);
      std::uint32_t dist = 1;
      while (true) {
        if (dist_[idx] == 0) {
          kv_[idx] = std::move(carry);
          dist_[idx] = dist;
          break;
        }
        if (dist_[idx] < dist) {
          std::swap(kv_[idx], carry);
          std::swap(dist_[idx], dist);
        }
        idx = (idx + 1) & mask;
        ++dist;
      }
    }
  }

  /// Probe distance + 1 of the element in each slot; 0 marks empty. Kept
  /// apart from kv_ so probing scans a compact array. With the max load
  /// factor there is always an empty slot, so a probe distance can never
  /// reach the capacity and 32 bits are ample.
  std::vector<std::uint32_t> dist_;
  std::vector<value_type> kv_;
  size_type size_ = 0;
  /// 64 - log2(capacity), so home_of() lands in [0, capacity) directly.
  int shift_ = 64;
  Hash hash_{};
};

}  // namespace fbm::core
