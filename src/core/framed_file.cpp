#include "core/framed_file.hpp"

#include <stdexcept>
#include <utility>

namespace fbm::core {

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// ------------------------------------------------------------- FrameWriter ---

FrameWriter::FrameWriter(const std::filesystem::path& path,
                         std::uint32_t magic, std::uint32_t version,
                         std::string context, bool append)
    : path_(path), context_(std::move(context)) {
  std::error_code ec;
  const bool fresh =
      !append || !std::filesystem::exists(path, ec) ||
      std::filesystem::file_size(path, ec) == 0;
  out_.open(path, append ? (std::ios::binary | std::ios::app)
                         : (std::ios::binary | std::ios::trunc));
  if (!out_) {
    throw std::runtime_error(context_ + ": cannot open " + path.string());
  }
  if (fresh) {
    const auto put = [this](auto v) {
      out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put(magic);
    put(version);
    put(std::uint64_t{0});  // reserved
  }
}

void FrameWriter::write_frame(std::uint32_t type, const ByteBuffer& body) {
  const auto put = [this](auto v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(type);
  put(std::uint32_t{0});
  put(static_cast<std::uint64_t>(body.bytes.size()));
  out_.write(body.bytes.data(),
             static_cast<std::streamsize>(body.bytes.size()));
  put(fnv1a64(body.bytes.data(), body.bytes.size()));
}

void FrameWriter::flush() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error(context_ + ": write failed for " +
                             path_.string());
  }
}

void FrameWriter::close() {
  flush();
  out_.close();
}

// ------------------------------------------------------------- FrameReader ---

FrameReader::FrameReader(const std::filesystem::path& path, Options opt)
    : opt_(std::move(opt)) {
  in_.open(path, std::ios::binary | std::ios::ate);
  if (!in_) {
    throw std::runtime_error(opt_.where + ": cannot open");
  }
  const auto file_size = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0);
  remaining_ = file_size;

  if (file_size < 16) {
    throw std::runtime_error(opt_.where + ": truncated header");
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t reserved = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in_.read(reinterpret_cast<char*>(&version), sizeof(version));
  in_.read(reinterpret_cast<char*>(&reserved), sizeof(reserved));
  if (!in_) {
    throw std::runtime_error(opt_.where + ": truncated header");
  }
  pos_ = 16;
  remaining_ -= 16;
  if (magic != opt_.magic) {
    throw std::runtime_error(opt_.where + ": not " + opt_.format_name +
                             " (bad magic)");
  }
  if (version != opt_.version) {
    throw std::runtime_error(opt_.where + ": unsupported version " +
                             std::to_string(version) +
                             " (written by a newer fbm?)");
  }
}

std::optional<FrameReader::Frame> FrameReader::next() {
  if (torn_tail_ || remaining_ == 0) return std::nullopt;
  const std::uint64_t frame_start = pos_;
  const auto torn_or_throw = [&](const char* what) {
    if (opt_.tolerate_torn_tail) {
      torn_tail_ = true;
      torn_offset_ = frame_start;
      return;
    }
    throw std::runtime_error(opt_.where + ": " + what);
  };

  if (remaining_ < 16) {
    torn_or_throw("truncated frame header");
    return std::nullopt;
  }
  const auto read_raw = [&](void* dst, std::size_t n, const char* what) {
    in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw std::runtime_error(opt_.where + ": truncated " +
                               std::string(what));
    }
    pos_ += n;
    remaining_ -= n;
  };

  Frame f;
  f.offset = frame_start;
  std::uint32_t frame_reserved = 0;
  std::uint64_t len = 0;
  read_raw(&f.type, sizeof(f.type), "frame header");
  read_raw(&frame_reserved, sizeof(frame_reserved), "frame header");
  read_raw(&len, sizeof(len), "frame header");
  if (len + 8 > remaining_) {  // payload + checksum must fit in the file
    torn_or_throw("truncated frame payload");
    return std::nullopt;
  }
  f.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) read_raw(f.payload.data(), f.payload.size(), "frame payload");
  std::uint64_t checksum = 0;
  read_raw(&checksum, sizeof(checksum), "frame checksum");
  if (checksum != fnv1a64(f.payload.data(), f.payload.size())) {
    // A checksum failure on the very last frame of the file is how a crash
    // mid-append looks when the length field made it to disk but the
    // payload bytes did not; recover it like any other torn tail.
    if (opt_.tolerate_torn_tail && remaining_ == 0) {
      torn_or_throw("checksum mismatch (corrupt frame)");
      return std::nullopt;
    }
    throw std::runtime_error(opt_.where + ": checksum mismatch (corrupt frame)");
  }
  return f;
}

}  // namespace fbm::core
