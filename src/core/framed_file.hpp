// Framed binary files (fbm::core) — the one framing discipline every
// on-disk format in this repo shares.
//
// Layout (all little-endian, like trace/trace_format.hpp):
//
//   header  : u32 magic | u32 version | u64 reserved
//   frames  : u32 type | u32 reserved | u64 payload_len
//             | payload | u64 fnv1a64(payload)
//
// agg::partial_codec ("FBMP"), ckpt::checkpoint ("FBMC") and
// store::report_store ("FBMS") all write through FrameWriter and read
// through FrameReader, so truncation, bit flips, bad magic and future
// versions fail with the same one-line diagnostics naming the file in
// every format. FrameReader can optionally *recover* a torn final frame
// (a crash mid-append) instead of rejecting it — the append-only store
// needs that; end-framed formats keep strict mode.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace fbm::core {

static_assert(std::endian::native == std::endian::little,
              "framed formats assume a little-endian host");

/// FNV-1a 64-bit — the frame payload checksum.
[[nodiscard]] std::uint64_t fnv1a64(const char* data, std::size_t n);

/// Append-only scratch buffer a frame payload is serialized into.
struct ByteBuffer {
  std::vector<char> bytes;

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes.size();
    bytes.resize(at + sizeof(v));
    std::memcpy(bytes.data() + at, &v, sizeof(v));
  }
  void put_string(const std::string& s) {
    put(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

/// Bounds-checked cursor over one verified frame payload. Every overrun is
/// a corruption diagnostic, never UB.
struct ByteCursor {
  const char* data;
  std::size_t size;
  std::size_t at = 0;
  const std::string& where;  ///< diagnostic prefix, e.g. "partial file x"

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size - at < sizeof(T)) {
      throw std::runtime_error(where + ": malformed frame payload");
    }
    T v;
    std::memcpy(&v, data + at, sizeof(v));
    at += sizeof(v);
    return v;
  }
  [[nodiscard]] std::string get_string() {
    const auto n = get<std::uint32_t>();
    if (size - at < n) {
      throw std::runtime_error(where + ": malformed frame payload");
    }
    std::string s(data + at, n);
    at += n;
    return s;
  }
  void expect_done() const {
    if (at != size) {
      throw std::runtime_error(where + ": malformed frame payload");
    }
  }
};

/// Streaming frame writer: header at construction, one checksummed frame
/// per write_frame(). In append mode an existing non-empty file keeps its
/// bytes and frames are added at the end (the caller is responsible for
/// having truncated any torn tail first — see FrameReader).
class FrameWriter {
 public:
  /// Throws std::runtime_error ("<context>: cannot open <path>") on failure.
  FrameWriter(const std::filesystem::path& path, std::uint32_t magic,
              std::uint32_t version, std::string context, bool append = false);

  void write_frame(std::uint32_t type, const ByteBuffer& body);

  /// Flushes and throws std::runtime_error
  /// ("<context>: write failed for <path>") if any write failed.
  void flush();
  void close();

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  std::string context_;
};

/// Streaming frame reader: validates the header at construction, then
/// yields one checksum-verified frame per next() until clean EOF (nullopt).
///
/// Strict mode (default) throws std::runtime_error naming the file for any
/// defect: unreadable, bad magic, future version, truncated frame header or
/// payload, checksum mismatch. With tolerate_torn_tail, a *final* frame cut
/// short by EOF (or whose checksum fails right at EOF — a crash mid-append)
/// is not an error: next() returns nullopt, torn_tail() reports it, and
/// torn_offset() is the file offset the valid prefix ends at, ready for
/// truncation. Corruption that is not at the tail still throws.
class FrameReader {
 public:
  struct Options {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::string format_name;  ///< "a partial report" → "... (bad magic)"
    std::string where;        ///< diagnostic prefix, e.g. "partial file x"
    bool tolerate_torn_tail = false;
  };
  struct Frame {
    std::uint32_t type = 0;
    std::vector<char> payload;
    std::uint64_t offset = 0;  ///< file offset of the frame header
  };

  FrameReader(const std::filesystem::path& path, Options opt);

  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool torn_tail() const { return torn_tail_; }
  [[nodiscard]] std::uint64_t torn_offset() const { return torn_offset_; }
  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }
  [[nodiscard]] const std::string& where() const { return opt_.where; }

 private:
  std::ifstream in_;
  Options opt_;
  std::uint64_t pos_ = 0;        ///< file offset of the next unread byte
  std::uint64_t remaining_ = 0;  ///< bytes between pos_ and EOF
  bool torn_tail_ = false;
  std::uint64_t torn_offset_ = 0;
};

}  // namespace fbm::core
