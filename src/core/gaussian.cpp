#include "core/gaussian.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/quantile.hpp"

namespace fbm::core {

GaussianApproximation::GaussianApproximation(double mean_bps, double variance)
    : mean_(mean_bps), stddev_(std::sqrt(variance)) {
  if (!(variance >= 0.0)) {
    throw std::invalid_argument("GaussianApproximation: variance < 0");
  }
}

double GaussianApproximation::pdf(double rate_bps) const {
  if (stddev_ == 0.0) return 0.0;
  const double z = (rate_bps - mean_) / stddev_;
  return std::exp(-0.5 * z * z) / (stddev_ * std::sqrt(2.0 * M_PI));
}

double GaussianApproximation::cdf(double rate_bps) const {
  if (stddev_ == 0.0) return rate_bps >= mean_ ? 1.0 : 0.0;
  return stats::normal_cdf((rate_bps - mean_) / stddev_);
}

double GaussianApproximation::exceedance(double capacity_bps) const {
  return 1.0 - cdf(capacity_bps);
}

double GaussianApproximation::capacity_for_exceedance(double eps) const {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("capacity_for_exceedance: eps outside (0,1)");
  }
  if (stddev_ == 0.0) return mean_;
  return mean_ + stats::normal_quantile(1.0 - eps) * stddev_;
}

double GaussianApproximation::fraction_within(double k_sigma) const {
  if (!(k_sigma >= 0.0)) {
    throw std::invalid_argument("fraction_within: k < 0");
  }
  return stats::normal_cdf(k_sigma) - stats::normal_cdf(-k_sigma);
}

}  // namespace fbm::core
