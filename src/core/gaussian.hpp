// Gaussian approximation of the total rate (Section V-E).
//
// With many simultaneously active flows, the Central Limit Theorem justifies
// approximating R(t) ~ Normal(E[R], Var(R)). The ISP-facing outputs are the
// tail probability P(R > C) and its inverse, the bandwidth needed so that
// congestion occurs in less than a fraction eps of time:
//   C = E[R] + q(1-eps) * sigma.
#pragma once

namespace fbm::core {

class GaussianApproximation {
 public:
  /// mean in bits/s, variance in (bits/s)^2 (variance may be 0).
  GaussianApproximation(double mean_bps, double variance);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }

  [[nodiscard]] double pdf(double rate_bps) const;
  [[nodiscard]] double cdf(double rate_bps) const;

  /// P(R > capacity): the congestion probability of a link of this size.
  [[nodiscard]] double exceedance(double capacity_bps) const;

  /// Smallest capacity with P(R > C) <= eps (eps in (0,1)).
  [[nodiscard]] double capacity_for_exceedance(double eps) const;

  /// Fraction of time the rate stays within k standard deviations of the
  /// mean: Phi(k) - Phi(-k). The paper's example: ~70% within one sigma.
  [[nodiscard]] double fraction_within(double k_sigma) const;

 private:
  double mean_;
  double stddev_;
};

}  // namespace fbm::core
