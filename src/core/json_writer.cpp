#include "core/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace fbm::core {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lg", &parsed);
  if (parsed == v) {
    // Try shorter forms first for readability.
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      std::sscanf(shorter, "%lg", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::separate() {
  const bool first_ever = out_.empty();
  if (!items_.empty()) {
    if (items_.back() > 0) {
      out_ += style_ == Style::compact ? ", " : ",";
    }
    ++items_.back();
  }
  if (style_ == Style::pretty) {
    if (!first_ever) out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) + 2 * items_.size(), ' ');
  }
}

void JsonWriter::open(std::string_view key, char bracket) {
  separate();
  if (!key.empty()) {
    out_ += json_quote(key);
    out_ += ": ";
  }
  out_ += bracket;
  items_.push_back(0);
}

void JsonWriter::close(char open_bracket, char close_bracket) {
  (void)open_bracket;
  const std::size_t items = items_.back();
  items_.pop_back();
  // Empty containers close inline ("{}", "[]"); populated pretty containers
  // put the closing bracket on its own line at the parent depth.
  if (style_ == Style::pretty && items > 0) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) + 2 * items_.size(), ' ');
  }
  out_ += close_bracket;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  open(key, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('{', '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  open(key, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close('[', ']');
  return *this;
}

JsonWriter& JsonWriter::raw_field(std::string_view key,
                                  std::string_view token) {
  separate();
  out_ += json_quote(key);
  out_ += ": ";
  out_ += token;
  return *this;
}

JsonWriter& JsonWriter::raw_element(std::string_view token) {
  if (style_ == Style::pretty) {
    // The token carries its own indentation (nested documents rendered at
    // indent + 2 * depth); only the separator is our job.
    if (!items_.empty() && items_.back() > 0) out_ += ',';
    if (!out_.empty()) out_ += '\n';
    if (!items_.empty()) ++items_.back();
    out_ += token;
  } else {
    separate();
    out_ += token;
  }
  return *this;
}

}  // namespace fbm::core
