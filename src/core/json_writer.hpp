// Shared hand-rolled JSON emission (no JSON dependency in the container).
//
// Every JSON document this tree writes — api::to_json, live::to_jsonl,
// perf::BenchReport::to_json, engine reports — goes through this writer, so
// number rendering (shortest round-trip form) and string escaping (quotes,
// backslashes, control characters) are implemented exactly once.
//
// Two styles:
//   pretty  — one "key": value per line, two-space nesting under a caller
//             base indent, no trailing newline (fbm_analyze --json, bench
//             telemetry);
//   compact — a single line with ", " separators (JSONL streams).
//
// Separators are emitted *before* each value, so callers never have to flag
// the last field of a container.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fbm::core {

/// Shortest decimal form that round-trips the double ("null" for non-finite
/// values — JSON has no literal for them).
[[nodiscard]] std::string json_number(double v);

/// `s` as a JSON string literal: quoted, with `"` and `\` escaped and
/// control characters rendered as \n, \t, \r, \b, \f or \u00XX.
[[nodiscard]] std::string json_quote(std::string_view s);

class JsonWriter {
 public:
  enum class Style { pretty, compact };

  /// `indent` leading spaces are applied to every pretty-style line.
  explicit JsonWriter(Style style, int indent = 0)
      : style_(style), indent_(indent) {}

  JsonWriter& begin_object(std::string_view key = {});
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key = {});
  JsonWriter& end_array();

  JsonWriter& field(std::string_view key, double v) {
    return raw_field(key, json_number(v));
  }
  JsonWriter& field(std::string_view key, std::uint64_t v) {
    return raw_field(key, std::to_string(v));
  }
  JsonWriter& field(std::string_view key, bool v) {
    return raw_field(key, v ? "true" : "false");
  }
  /// String value, escaped through json_quote.
  JsonWriter& field(std::string_view key, std::string_view v) {
    return raw_field(key, json_quote(v));
  }
  JsonWriter& field(std::string_view key, const char* v) {
    return raw_field(key, json_quote(v));
  }
  JsonWriter& null_field(std::string_view key) {
    return raw_field(key, "null");
  }

  /// Pre-rendered value token (a number kept as text, "null", ...).
  JsonWriter& raw_field(std::string_view key, std::string_view token);
  /// Array element from a pre-rendered token. In pretty style the token is
  /// emitted verbatim after the separator newline, so nested documents
  /// rendered at their own indent compose unchanged.
  JsonWriter& raw_element(std::string_view token);

  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void separate();  ///< comma/newline/indent before the next item
  void open(std::string_view key, char bracket);
  void close(char open_bracket, char close_bracket);

  std::string out_;
  Style style_;
  int indent_;
  std::vector<std::size_t> items_;  ///< items written per open container
};

}  // namespace fbm::core
