#include "core/mg_infinity.hpp"

#include <cmath>
#include <stdexcept>

namespace fbm::core {

MGInfinity::MGInfinity(double lambda, double mean_duration_s)
    : rho_(lambda * mean_duration_s) {
  if (!(lambda > 0.0)) throw std::invalid_argument("MGInfinity: lambda <= 0");
  if (!(mean_duration_s > 0.0)) {
    throw std::invalid_argument("MGInfinity: mean duration <= 0");
  }
}

double MGInfinity::pmf(std::uint64_t k) const {
  // exp(k log(rho) - rho - lgamma(k+1)) avoids overflow for large rho.
  const double kk = static_cast<double>(k);
  return std::exp(kk * std::log(rho_) - rho_ - std::lgamma(kk + 1.0));
}

double MGInfinity::cdf(std::uint64_t k) const {
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) acc += pmf(i);
  return acc > 1.0 ? 1.0 : acc;
}

double MGInfinity::pgf(double z) const {
  if (std::abs(z) > 1.0 + 1e-12) {
    throw std::invalid_argument("MGInfinity::pgf: |z| > 1");
  }
  return std::exp(rho_ * (z - 1.0));
}

ConstantRateBaseline::ConstantRateBaseline(double rate_bps, double lambda,
                                           double mean_duration_s)
    : rate_(rate_bps), occupancy_(lambda, mean_duration_s) {
  if (!(rate_bps > 0.0)) {
    throw std::invalid_argument("ConstantRateBaseline: rate <= 0");
  }
}

double ConstantRateBaseline::mean_rate() const {
  return rate_ * occupancy_.mean_active();
}

double ConstantRateBaseline::variance() const {
  return rate_ * rate_ * occupancy_.variance_active();
}

double ConstantRateBaseline::cov() const {
  const double m = mean_rate();
  return m > 0.0 ? std::sqrt(variance()) / m : 0.0;
}

}  // namespace fbm::core
