// M/G/infinity view of the flow population (Section V-A).
//
// With Poisson(lambda) arrivals and generic holding times D, the number of
// active flows N(t) is the occupancy of an M/G/infinity queue: Poisson with
// mean rho = lambda*E[D] in steady state, and the PGF used in the proof of
// Theorem 1 is E[z^N] = exp(rho (z-1)).
//
// ConstantRateBaseline is the model of [3] (Ben Fredj et al.) that the paper
// cites as the special case where every flow has the same rate: R = r*N.
// It serves as the comparison baseline in the benches.
#pragma once

#include <cstdint>

namespace fbm::core {

/// Steady-state occupancy N ~ Poisson(rho), rho = lambda * E[D].
class MGInfinity {
 public:
  /// lambda in flows/s, mean_duration in s; both must be positive.
  MGInfinity(double lambda, double mean_duration_s);

  [[nodiscard]] double load() const { return rho_; }
  [[nodiscard]] double mean_active() const { return rho_; }
  [[nodiscard]] double variance_active() const { return rho_; }

  /// P(N = k).
  [[nodiscard]] double pmf(std::uint64_t k) const;
  /// P(N <= k).
  [[nodiscard]] double cdf(std::uint64_t k) const;
  /// Probability generating function E[z^N] = exp(rho (z-1)), |z| <= 1.
  [[nodiscard]] double pgf(double z) const;

 private:
  double rho_;
};

/// Baseline of Section II ([3]): every flow transmits at the same constant
/// rate r, so R(t) = r * N(t) with N ~ Poisson(rho). Equivalent to our model
/// with rectangular shots and degenerate S/D ratio.
class ConstantRateBaseline {
 public:
  /// rate_bps: the common flow rate r; lambda flows/s; mean_duration s.
  ConstantRateBaseline(double rate_bps, double lambda, double mean_duration_s);

  [[nodiscard]] double mean_rate() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double cov() const;

 private:
  double rate_;
  MGInfinity occupancy_;
};

}  // namespace fbm::core
