#include "core/model.hpp"

#include <cmath>
#include <stdexcept>

#include "core/quadrature.hpp"

namespace fbm::core {

std::vector<FlowSample> to_samples(std::span<const flow::FlowRecord> flows,
                                   double min_duration_s) {
  std::vector<FlowSample> out;
  out.reserve(flows.size());
  for (const auto& f : flows) {
    out.push_back({f.size_bits(),
                   std::max(f.duration(), min_duration_s)});
  }
  return out;
}

ShotNoiseModel::ShotNoiseModel(double lambda, std::vector<FlowSample> samples,
                               ShotPtr shot)
    : lambda_(lambda), samples_(std::move(samples)), shot_(std::move(shot)) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("ShotNoiseModel: lambda <= 0");
  }
  if (samples_.empty()) {
    throw std::invalid_argument("ShotNoiseModel: no flow samples");
  }
  if (!shot_) throw std::invalid_argument("ShotNoiseModel: null shot");
  for (const auto& s : samples_) {
    if (!(s.size_bits >= 0.0) || !(s.duration_s > 0.0)) {
      throw std::invalid_argument(
          "ShotNoiseModel: sample with negative size or non-positive "
          "duration");
    }
  }
}

ShotNoiseModel ShotNoiseModel::from_interval(const flow::IntervalData& interval,
                                             ShotPtr shot,
                                             double min_duration_s) {
  if (interval.flows.empty() || !(interval.length > 0.0)) {
    throw std::invalid_argument("from_interval: empty interval");
  }
  const double lambda =
      static_cast<double>(interval.flows.size()) / interval.length;
  return ShotNoiseModel(lambda, to_samples(interval.flows, min_duration_s),
                        std::move(shot));
}

double ShotNoiseModel::mean_rate() const {
  return lambda_ * expect([](const FlowSample& s) { return s.size_bits; });
}

double ShotNoiseModel::variance() const {
  return lambda_ * expect([this](const FlowSample& s) {
           return shot_->energy(s.size_bits, s.duration_s);
         });
}

double ShotNoiseModel::stddev() const { return std::sqrt(variance()); }

double ShotNoiseModel::cov() const {
  const double m = mean_rate();
  return m > 0.0 ? stddev() / m : 0.0;
}

double ShotNoiseModel::autocovariance(double tau) const {
  return lambda_ * expect([this, tau](const FlowSample& s) {
           return shot_->autocov_kernel(tau, s.size_bits, s.duration_s);
         });
}

std::vector<double> ShotNoiseModel::autocorrelation(
    std::span<const double> taus) const {
  const double r0 = variance();
  std::vector<double> out;
  out.reserve(taus.size());
  for (double tau : taus) {
    out.push_back(r0 > 0.0 ? autocovariance(tau) / r0 : 0.0);
  }
  return out;
}

double ShotNoiseModel::spectral_density(double omega) const {
  return lambda_ / (2.0 * M_PI) * expect([this, omega](const FlowSample& s) {
           return shot_->fourier_mag2(omega, s.size_bits, s.duration_s);
         });
}

double ShotNoiseModel::averaged_variance(double delta) const {
  if (!(delta > 0.0)) {
    throw std::invalid_argument("averaged_variance: delta <= 0");
  }
  const double integral = integrate(
      [this, delta](double t) { return (delta - t) * autocovariance(t); },
      0.0, delta);
  return 2.0 / (delta * delta) * integral;
}

double ShotNoiseModel::cumulant(int k) const {
  if (k < 1) throw std::invalid_argument("cumulant: k < 1");
  return lambda_ * expect([this, k](const FlowSample& s) {
           return shot_->power_integral(k, s.size_bits, s.duration_s);
         });
}

double ShotNoiseModel::skewness() const {
  const double v = variance();
  if (!(v > 0.0)) return 0.0;
  return cumulant(3) / std::pow(v, 1.5);
}

double ShotNoiseModel::excess_kurtosis() const {
  const double v = variance();
  if (!(v > 0.0)) return 0.0;
  return cumulant(4) / (v * v);
}

double ShotNoiseModel::lst(double s) const {
  if (!(s >= 0.0)) throw std::invalid_argument("lst: s < 0");
  if (s == 0.0) return 1.0;
  const double exponent = expect([this, s](const FlowSample& fs) {
    return integrate(
        [&](double u) {
          return 1.0 - std::exp(-s * shot_->value(u, fs.size_bits,
                                                  fs.duration_s));
        },
        0.0, fs.duration_s);
  });
  return std::exp(-lambda_ * exponent);
}

GaussianApproximation ShotNoiseModel::gaussian() const {
  return GaussianApproximation(mean_rate(), variance());
}

flow::ModelInputs ShotNoiseModel::inputs() const {
  flow::ModelInputs in;
  in.lambda = lambda_;
  in.flows = samples_.size();
  in.mean_size_bits = expect([](const FlowSample& s) { return s.size_bits; });
  in.mean_s2_over_d = expect([](const FlowSample& s) {
    return s.size_bits * s.size_bits / s.duration_s;
  });
  return in;
}

ShotNoiseModel ShotNoiseModel::with_shot(ShotPtr shot) const {
  return ShotNoiseModel(lambda_, samples_, std::move(shot));
}

}  // namespace fbm::core
