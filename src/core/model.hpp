// The Poisson shot-noise traffic model (Sections IV-V) over an empirical
// flow population.
//
// ShotNoiseModel carries the flow arrival rate lambda, the sample of
// (S_n, D_n) pairs observed in an analysis interval, and a shot shape. All
// expectations E[f(S, D)] in the paper's formulas are evaluated as sample
// means over the population, so the model needs no parametric assumption on
// sizes or durations — exactly the paper's measurement-driven usage.
#pragma once

#include <span>
#include <vector>

#include "core/gaussian.hpp"
#include "core/shot.hpp"
#include "flow/flow_record.hpp"
#include "flow/interval.hpp"

namespace fbm::core {

/// One flow observation in model units (bits, seconds).
struct FlowSample {
  double size_bits;
  double duration_s;
};

/// Converts classifier output, clamping durations below `min_duration_s`
/// (guards S^2/D for near-instant flows, see flow::estimate_inputs).
[[nodiscard]] std::vector<FlowSample> to_samples(
    std::span<const flow::FlowRecord> flows, double min_duration_s = 1e-3);

class ShotNoiseModel {
 public:
  /// lambda: flow arrival rate (1/s); samples: observed (S, D); shot: rate
  /// profile. Throws std::invalid_argument for lambda<=0, empty samples or
  /// null shot.
  ShotNoiseModel(double lambda, std::vector<FlowSample> samples, ShotPtr shot);

  /// Builds from one analysis interval (uses its lambda and flows).
  [[nodiscard]] static ShotNoiseModel from_interval(
      const flow::IntervalData& interval, ShotPtr shot,
      double min_duration_s = 1e-3);

  // --- first and second moments -------------------------------------------
  /// Corollary 1: lambda * E[S], bits/s.
  [[nodiscard]] double mean_rate() const;
  /// Corollary 2: lambda * E[energy(S,D)], (bits/s)^2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double cov() const;  ///< stddev/mean, 0 if mean==0

  // --- correlation structure (Theorem 2) -----------------------------------
  /// r(tau) = lambda * E[autocov_kernel(tau; S, D)]; r(0) == variance().
  [[nodiscard]] double autocovariance(double tau) const;
  /// r(tau)/r(0) for each tau (Figure 8).
  [[nodiscard]] std::vector<double> autocorrelation(
      std::span<const double> taus) const;
  /// Spectral density of the centered process:
  /// Gamma(omega) = lambda/(2 pi) * E|X_hat(omega)|^2.
  [[nodiscard]] double spectral_density(double omega) const;

  /// Eq. (7): variance of the Delta-averaged measured rate,
  /// (2/Delta^2) * int_0^Delta (Delta - t) r(t) dt.
  [[nodiscard]] double averaged_variance(double delta) const;

  // --- higher moments (Corollary 3) ----------------------------------------
  /// k-th cumulant of R: lambda * E[int_0^D X(u)^k du]; k=1 is the mean,
  /// k=2 the variance.
  [[nodiscard]] double cumulant(int k) const;
  [[nodiscard]] double skewness() const;
  [[nodiscard]] double excess_kurtosis() const;

  // --- Theorem 1 ------------------------------------------------------------
  /// LST E[exp(-s R)] evaluated at real s >= 0:
  /// exp(-lambda E[int_0^D (1 - e^{-s X(u)}) du]).
  [[nodiscard]] double lst(double s) const;

  // --- Section V-E -----------------------------------------------------------
  [[nodiscard]] GaussianApproximation gaussian() const;

  // --- accessors --------------------------------------------------------------
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] const Shot& shot() const { return *shot_; }
  [[nodiscard]] ShotPtr shot_ptr() const { return shot_; }
  [[nodiscard]] const std::vector<FlowSample>& samples() const {
    return samples_;
  }
  /// Three-parameter summary (Section V-G) of this population.
  [[nodiscard]] flow::ModelInputs inputs() const;

  /// Returns a copy using a different shot (same population).
  [[nodiscard]] ShotNoiseModel with_shot(ShotPtr shot) const;

 private:
  /// Sample mean of f(S, D) over the population.
  template <typename F>
  [[nodiscard]] double expect(F&& f) const {
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
      acc += (f(s) - acc) / static_cast<double>(++n);
    }
    return acc;
  }

  double lambda_;
  std::vector<FlowSample> samples_;
  ShotPtr shot_;
};

}  // namespace fbm::core
