#include "core/moments.hpp"

#include <cmath>
#include <stdexcept>

namespace fbm::core {

double mean_rate(const flow::ModelInputs& in) {
  return in.lambda * in.mean_size_bits;
}

double power_shot_variance(const flow::ModelInputs& in, double b) {
  if (!(b >= 0.0)) throw std::invalid_argument("power_shot_variance: b < 0");
  const double c = b + 1.0;
  return in.lambda * c * c / (2.0 * b + 1.0) * in.mean_s2_over_d;
}

double power_shot_cov(const flow::ModelInputs& in, double b) {
  const double m = mean_rate(in);
  if (!(m > 0.0)) return 0.0;
  return std::sqrt(power_shot_variance(in, b)) / m;
}

double variance_lower_bound(const flow::ModelInputs& in) {
  return power_shot_variance(in, 0.0);
}

flow::ModelInputs scale_lambda(const flow::ModelInputs& in, double factor) {
  if (!(factor > 0.0)) throw std::invalid_argument("scale_lambda: factor<=0");
  flow::ModelInputs out = in;
  out.lambda *= factor;
  return out;
}

}  // namespace fbm::core
