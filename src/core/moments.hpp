// Closed-form moments of the total rate for power shots.
//
// With only the three parameters of Section V-G — lambda, E[S], E[S^2/D] —
// these functions give the paper's headline outputs:
//   Corollary 1: E[R]   = lambda * E[S]
//   Corollary 2 (power shot b): Var(R) = lambda * (b+1)^2/(2b+1) * E[S^2/D]
//   Theorem 3:   Var(R) >= lambda * E[S^2/D]  (rectangular lower bound)
#pragma once

#include "flow/interval.hpp"

namespace fbm::core {

/// Corollary 1, bits/s.
[[nodiscard]] double mean_rate(const flow::ModelInputs& in);

/// Corollary 2 for the power-shot family, (bits/s)^2.
[[nodiscard]] double power_shot_variance(const flow::ModelInputs& in,
                                         double b);

/// Model coefficient of variation sqrt(Var)/E[R] for power shot b.
/// Returns 0 when the mean rate is 0.
[[nodiscard]] double power_shot_cov(const flow::ModelInputs& in, double b);

/// Theorem 3: the variance achieved by rectangular shots, a lower bound over
/// all flow-rate functions.
[[nodiscard]] double variance_lower_bound(const flow::ModelInputs& in);

/// Section VII-A smoothing law: scaling lambda by `factor` (all per-flow
/// distributions unchanged) multiplies the mean by `factor`, the standard
/// deviation by sqrt(factor), hence CoV by 1/sqrt(factor).
[[nodiscard]] flow::ModelInputs scale_lambda(const flow::ModelInputs& in,
                                             double factor);

}  // namespace fbm::core
