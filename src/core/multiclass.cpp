#include "core/multiclass.hpp"

#include <cmath>
#include <stdexcept>

namespace fbm::core {

void MulticlassModel::add_class(std::string name, ShotNoiseModel model) {
  names_.push_back(std::move(name));
  models_.push_back(std::move(model));
}

const std::string& MulticlassModel::class_name(std::size_t i) const {
  return names_.at(i);
}

const ShotNoiseModel& MulticlassModel::class_model(std::size_t i) const {
  return models_.at(i);
}

double MulticlassModel::lambda() const {
  double acc = 0.0;
  for (const auto& m : models_) acc += m.lambda();
  return acc;
}

double MulticlassModel::mean_rate() const {
  double acc = 0.0;
  for (const auto& m : models_) acc += m.mean_rate();
  return acc;
}

double MulticlassModel::variance() const {
  double acc = 0.0;
  for (const auto& m : models_) acc += m.variance();
  return acc;
}

double MulticlassModel::cov() const {
  const double m = mean_rate();
  return m > 0.0 ? std::sqrt(variance()) / m : 0.0;
}

double MulticlassModel::autocovariance(double tau) const {
  double acc = 0.0;
  for (const auto& m : models_) acc += m.autocovariance(tau);
  return acc;
}

double MulticlassModel::cumulant(int k) const {
  double acc = 0.0;
  for (const auto& m : models_) acc += m.cumulant(k);
  return acc;
}

GaussianApproximation MulticlassModel::gaussian() const {
  return GaussianApproximation(mean_rate(), variance());
}

double MulticlassModel::mean_share(std::size_t i) const {
  const double total = mean_rate();
  return total > 0.0 ? models_.at(i).mean_rate() / total : 0.0;
}

double MulticlassModel::variance_share(std::size_t i) const {
  const double total = variance();
  return total > 0.0 ? models_.at(i).variance() / total : 0.0;
}

MulticlassModel split_by_size(const flow::IntervalData& interval,
                              double threshold_bytes, ShotPtr small_shot,
                              ShotPtr large_shot, double min_duration_s) {
  if (!(interval.length > 0.0)) {
    throw std::invalid_argument("split_by_size: empty interval");
  }
  std::vector<flow::FlowRecord> small;
  std::vector<flow::FlowRecord> large;
  for (const auto& f : interval.flows) {
    (static_cast<double>(f.size_bytes) < threshold_bytes ? small : large)
        .push_back(f);
  }
  if (small.empty() && large.empty()) {
    throw std::invalid_argument("split_by_size: no flows");
  }
  MulticlassModel out;
  if (!small.empty()) {
    out.add_class("mice",
                  ShotNoiseModel(static_cast<double>(small.size()) /
                                     interval.length,
                                 to_samples(small, min_duration_s),
                                 std::move(small_shot)));
  }
  if (!large.empty()) {
    out.add_class("elephants",
                  ShotNoiseModel(static_cast<double>(large.size()) /
                                     interval.length,
                                 to_samples(large, min_duration_s),
                                 std::move(large_shot)));
  }
  return out;
}

}  // namespace fbm::core
