// Multi-class shot-noise model (Section VIII: "the gain of introducing
// classes of flows with a different shot for each class").
//
// Assumption 2 requires identically distributed flow-rate functions; when
// the population visibly mixes behaviours (e.g. TCP transfers vs CBR
// streams), the fix the paper proposes is one class per behaviour. Classes
// are independent Poisson shot-noise processes, so every cumulant and the
// auto-covariance simply add across classes.
#pragma once

#include <string>
#include <vector>

#include "core/gaussian.hpp"
#include "core/model.hpp"

namespace fbm::core {

class MulticlassModel {
 public:
  /// Adds a class (its lambda is the class's own flow arrival rate).
  void add_class(std::string name, ShotNoiseModel model);

  [[nodiscard]] std::size_t classes() const { return models_.size(); }
  [[nodiscard]] const std::string& class_name(std::size_t i) const;
  [[nodiscard]] const ShotNoiseModel& class_model(std::size_t i) const;

  /// Total flow arrival rate (sum of class lambdas).
  [[nodiscard]] double lambda() const;

  // Aggregate moments: sums of per-class values (independence).
  [[nodiscard]] double mean_rate() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double cov() const;
  [[nodiscard]] double autocovariance(double tau) const;
  [[nodiscard]] double cumulant(int k) const;
  [[nodiscard]] GaussianApproximation gaussian() const;

  /// Share of the aggregate mean (resp. variance) contributed by class i —
  /// the diagnostic an operator would use to attribute burstiness.
  [[nodiscard]] double mean_share(std::size_t i) const;
  [[nodiscard]] double variance_share(std::size_t i) const;

 private:
  std::vector<std::string> names_;
  std::vector<ShotNoiseModel> models_;
};

/// Splits an interval's flows into two classes by a size threshold (the
/// mice/elephants dichotomy of [3]) and builds a two-class model with the
/// given shots. Classes with no flows are omitted. Throws if both would be
/// empty.
[[nodiscard]] MulticlassModel split_by_size(const flow::IntervalData& interval,
                                            double threshold_bytes,
                                            ShotPtr small_shot,
                                            ShotPtr large_shot,
                                            double min_duration_s = 1e-3);

}  // namespace fbm::core
