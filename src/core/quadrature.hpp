// Fixed-order Gauss-Legendre quadrature.
//
// The model needs one-dimensional integrals of smooth shot products
// (Theorem 2 kernels, LST exponents, eq. (7) averaging). 64-point
// Gauss-Legendre on the whole interval is exact for polynomials up to degree
// 127, which covers every closed-form shot we use and is accurate to ~1e-12
// for the smooth non-polynomial ones.
#pragma once

#include <array>
#include <cstddef>

namespace fbm::core {

namespace detail {

// Nodes/weights for 32-point Gauss-Legendre on [-1, 1] (symmetric half).
inline constexpr std::array<double, 16> kGl32Nodes = {
    0.0483076656877383162, 0.1444719615827964934, 0.2392873622521370745,
    0.3318686022821276497, 0.4213512761306353454, 0.5068999089322293900,
    0.5877157572407623290, 0.6630442669302152010, 0.7321821187402896804,
    0.7944837959679424070, 0.8493676137325699701, 0.8963211557660521240,
    0.9349060759377396892, 0.9647622555875064308, 0.9856115115452683354,
    0.9972638618494815635};
inline constexpr std::array<double, 16> kGl32Weights = {
    0.0965400885147278006, 0.0956387200792748594, 0.0938443990808045654,
    0.0911738786957638847, 0.0876520930044038111, 0.0833119242269467552,
    0.0781938957870703065, 0.0723457941088485062, 0.0658222227763618468,
    0.0586840934785355471, 0.0509980592623761762, 0.0428358980222266807,
    0.0342738629130214331, 0.0253920653092620595, 0.0162743947309056706,
    0.0070186100094700966};

}  // namespace detail

/// Integral of f over [a, b] by 32-point Gauss-Legendre. Returns 0 when
/// b <= a.
template <typename F>
[[nodiscard]] double integrate(F&& f, double a, double b) {
  if (!(b > a)) return 0.0;
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double acc = 0.0;
  for (std::size_t i = 0; i < detail::kGl32Nodes.size(); ++i) {
    const double x = detail::kGl32Nodes[i] * half;
    acc += detail::kGl32Weights[i] * (f(mid + x) + f(mid - x));
  }
  return acc * half;
}

/// Composite rule: splits [a, b] into `panels` Gauss-Legendre panels; use for
/// oscillatory integrands (Fourier transforms of shots).
template <typename F>
[[nodiscard]] double integrate_panels(F&& f, double a, double b,
                                      std::size_t panels) {
  if (!(b > a) || panels == 0) return 0.0;
  const double w = (b - a) / static_cast<double>(panels);
  double acc = 0.0;
  for (std::size_t i = 0; i < panels; ++i) {
    const double lo = a + static_cast<double>(i) * w;
    acc += integrate(f, lo, lo + w);
  }
  return acc;
}

}  // namespace fbm::core
