#include "core/shot.hpp"

#include <cmath>
#include <stdexcept>

#include "core/quadrature.hpp"

namespace fbm::core {

namespace {

[[nodiscard]] std::size_t fourier_panels(double omega, double duration) {
  // Enough panels to resolve the oscillation of e^{-i omega u} over [0, D].
  const double cycles = std::abs(omega) * duration / (2.0 * M_PI);
  return static_cast<std::size_t>(cycles * 4.0) + 4;
}

}  // namespace

double Shot::energy(double size_bits, double duration_s) const {
  return integrate(
      [&](double u) {
        const double x = value(u, size_bits, duration_s);
        return x * x;
      },
      0.0, duration_s);
}

double Shot::autocov_kernel(double tau, double size_bits,
                            double duration_s) const {
  if (tau < 0.0) tau = -tau;
  if (tau >= duration_s) return 0.0;
  return integrate(
      [&](double u) {
        return value(u, size_bits, duration_s) *
               value(u + tau, size_bits, duration_s);
      },
      0.0, duration_s - tau);
}

double Shot::power_integral(int k, double size_bits, double duration_s) const {
  if (k < 1) throw std::invalid_argument("Shot::power_integral: k < 1");
  return integrate(
      [&](double u) {
        return std::pow(value(u, size_bits, duration_s), k);
      },
      0.0, duration_s);
}

double Shot::fourier_mag2(double omega, double size_bits,
                          double duration_s) const {
  const std::size_t panels = fourier_panels(omega, duration_s);
  const double re = integrate_panels(
      [&](double u) {
        return value(u, size_bits, duration_s) * std::cos(omega * u);
      },
      0.0, duration_s, panels);
  const double im = integrate_panels(
      [&](double u) {
        return value(u, size_bits, duration_s) * std::sin(omega * u);
      },
      0.0, duration_s, panels);
  return re * re + im * im;
}

// ------------------------------------------------------------------ PowerShot

PowerShot::PowerShot(double b) : b_(b) {
  if (!(b >= 0.0)) throw std::invalid_argument("PowerShot: b < 0");
}

double PowerShot::value(double u, double size_bits, double duration_s) const {
  if (u < 0.0 || u > duration_s || duration_s <= 0.0) return 0.0;
  const double peak = size_bits * (b_ + 1.0) / duration_s;
  if (b_ == 0.0) return peak;
  return peak * std::pow(u / duration_s, b_);
}

double PowerShot::energy(double size_bits, double duration_s) const {
  if (duration_s <= 0.0) return 0.0;
  const double c = b_ + 1.0;
  return size_bits * size_bits * c * c / ((2.0 * b_ + 1.0) * duration_s);
}

double PowerShot::autocov_kernel(double tau, double size_bits,
                                 double duration_s) const {
  if (tau < 0.0) tau = -tau;
  if (tau >= duration_s || duration_s <= 0.0) return 0.0;
  const double s = size_bits;
  const double d = duration_s;
  const double x = d - tau;  // integration upper limit
  if (b_ == 0.0) {
    return s * s / (d * d) * x;
  }
  if (b_ == 1.0) {
    const double c = 2.0 * s / (d * d);
    return c * c * (x * x * x / 3.0 + tau * x * x / 2.0);
  }
  if (b_ == 2.0) {
    const double c = 3.0 * s / (d * d * d);
    const double x3 = x * x * x;
    return c * c *
           (x3 * x * x / 5.0 + tau * x3 * x / 2.0 + tau * tau * x3 / 3.0);
  }
  return Shot::autocov_kernel(tau, size_bits, duration_s);
}

double PowerShot::power_integral(int k, double size_bits,
                                 double duration_s) const {
  if (k < 1) throw std::invalid_argument("PowerShot::power_integral: k < 1");
  if (duration_s <= 0.0) return 0.0;
  const double kk = static_cast<double>(k);
  return std::pow(size_bits, kk) * std::pow(b_ + 1.0, kk) /
         ((kk * b_ + 1.0) * std::pow(duration_s, kk - 1.0));
}

double PowerShot::fourier_mag2(double omega, double size_bits,
                               double duration_s) const {
  if (duration_s <= 0.0) return 0.0;
  if (b_ == 0.0) {
    const double half = omega * duration_s / 2.0;
    if (std::abs(half) < 1e-12) return size_bits * size_bits;
    const double sinc = std::sin(half) / half;
    return size_bits * size_bits * sinc * sinc;
  }
  return Shot::fourier_mag2(omega, size_bits, duration_s);
}

std::string PowerShot::name() const {
  if (b_ == 0.0) return "rectangular (b=0)";
  if (b_ == 1.0) return "triangular (b=1)";
  if (b_ == 2.0) return "parabolic (b=2)";
  return "power (b=" + std::to_string(b_) + ")";
}

double PowerShot::variance_factor() const {
  const double c = b_ + 1.0;
  return c * c / (2.0 * b_ + 1.0);
}

// ----------------------------------------------------------------- CustomShot

CustomShot::CustomShot(std::function<double(double)> profile, std::string name)
    : profile_(std::move(profile)), name_(std::move(name)) {
  if (!profile_) throw std::invalid_argument("CustomShot: null profile");
  // Panel quadrature tolerates kinks (e.g. piecewise-linear profiles).
  const double mass = integrate_panels(profile_, 0.0, 1.0, 128);
  if (std::abs(mass - 1.0) > 1e-4) {
    throw std::invalid_argument(
        "CustomShot: profile does not integrate to 1 over [0,1] (got " +
        std::to_string(mass) + ")");
  }
}

double CustomShot::value(double u, double size_bits, double duration_s) const {
  if (u < 0.0 || u > duration_s || duration_s <= 0.0) return 0.0;
  return size_bits / duration_s * profile_(u / duration_s);
}

std::string CustomShot::name() const { return name_; }

// ----------------------------------------------------------------- factories

ShotPtr rectangular_shot() { return std::make_shared<PowerShot>(0.0); }
ShotPtr triangular_shot() { return std::make_shared<PowerShot>(1.0); }
ShotPtr parabolic_shot() { return std::make_shared<PowerShot>(2.0); }
ShotPtr power_shot(double b) { return std::make_shared<PowerShot>(b); }

}  // namespace fbm::core
