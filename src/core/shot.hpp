// Flow-rate functions ("shots", Section IV and Figure 7).
//
// A shot X(u; S, D) is the transmission rate of a flow of size S (bits) and
// duration D (seconds) at age u in [0, D]. Every shot satisfies the size
// constraint (eq. 5):  integral_0^D X(u) du = S.
//
// The model needs four functionals of a shot:
//   energy(S,D)          = int_0^D X(u)^2 du          (variance, Cor. 2)
//   autocov_kernel(tau)  = int_0^{D-tau} X(u)X(u+tau) du   (Theorem 2)
//   power_integral(k)    = int_0^D X(u)^k du          (cumulants, Cor. 3)
//   fourier_mag2(omega)  = |int_0^D X(u) e^{-i omega u} du|^2  (spectrum)
//
// PowerShot implements the paper's one-parameter family
//   X(u) = S (b+1)/D * (u/D)^b,
// with b=0 the rectangle, b=1 the triangle, b=2 the parabola; closed forms
// are used wherever they exist and quadrature otherwise. CustomShot accepts
// an arbitrary profile for experimentation.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace fbm::core {

class Shot {
 public:
  virtual ~Shot() = default;

  /// Rate at age u for a flow of size S (bits) and duration D (s).
  /// Zero outside [0, D].
  [[nodiscard]] virtual double value(double u, double size_bits,
                                     double duration_s) const = 0;

  /// int_0^D X(u)^2 du. Default: quadrature over value().
  [[nodiscard]] virtual double energy(double size_bits,
                                      double duration_s) const;

  /// int_0^{D-tau} X(u) X(u+tau) du for tau >= 0 (0 when tau >= D).
  /// Default: quadrature.
  [[nodiscard]] virtual double autocov_kernel(double tau, double size_bits,
                                              double duration_s) const;

  /// int_0^D X(u)^k du for k >= 1. Default: quadrature.
  [[nodiscard]] virtual double power_integral(int k, double size_bits,
                                              double duration_s) const;

  /// |X_hat(omega)|^2 where X_hat is the Fourier transform of the shot.
  /// Default: panel quadrature of the real/imag parts.
  [[nodiscard]] virtual double fourier_mag2(double omega, double size_bits,
                                            double duration_s) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

using ShotPtr = std::shared_ptr<const Shot>;

/// The paper's power family (Figure 7c/7d): X(u) = S(b+1)/D (u/D)^b.
class PowerShot final : public Shot {
 public:
  /// b >= 0; b=0 rectangular, b=1 triangular, b=2 parabolic.
  explicit PowerShot(double b);

  [[nodiscard]] double value(double u, double size_bits,
                             double duration_s) const override;
  /// Closed form: S^2 (b+1)^2 / ((2b+1) D).
  [[nodiscard]] double energy(double size_bits,
                              double duration_s) const override;
  /// Closed form for b in {0,1,2}; quadrature otherwise.
  [[nodiscard]] double autocov_kernel(double tau, double size_bits,
                                      double duration_s) const override;
  /// Closed form: S^k (b+1)^k / ((kb+1) D^{k-1}).
  [[nodiscard]] double power_integral(int k, double size_bits,
                                      double duration_s) const override;
  /// Closed form for b = 0 (sinc^2); quadrature otherwise.
  [[nodiscard]] double fourier_mag2(double omega, double size_bits,
                                    double duration_s) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double b() const { return b_; }

  /// Variance multiplier (b+1)^2/(2b+1) relative to lambda*E[S^2/D]
  /// (Section V-D): 1 for b=0, 4/3 for b=1, 9/5 for b=2.
  [[nodiscard]] double variance_factor() const;

 private:
  double b_;
};

/// Arbitrary normalised profile g on [0,1] with int_0^1 g = 1; the shot is
/// X(u) = S/D * g(u/D). The constructor checks the normalisation (throws
/// std::invalid_argument when off by more than 1e-6) so Theorem 3
/// comparisons stay meaningful.
class CustomShot final : public Shot {
 public:
  CustomShot(std::function<double(double)> profile, std::string name);

  [[nodiscard]] double value(double u, double size_bits,
                             double duration_s) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::function<double(double)> profile_;
  std::string name_;
};

/// Named constructors for the three canonical shots.
[[nodiscard]] ShotPtr rectangular_shot();  ///< b = 0
[[nodiscard]] ShotPtr triangular_shot();   ///< b = 1
[[nodiscard]] ShotPtr parabolic_shot();    ///< b = 2
[[nodiscard]] ShotPtr power_shot(double b);

}  // namespace fbm::core
