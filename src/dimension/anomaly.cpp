#include "dimension/anomaly.hpp"

#include <cmath>
#include <stdexcept>

namespace fbm::dimension {

std::vector<AnomalyEvent> detect_anomalies(const stats::RateSeries& series,
                                           double mean_bps, double stddev_bps,
                                           const AnomalyOptions& options) {
  if (!(stddev_bps > 0.0)) {
    throw std::invalid_argument("detect_anomalies: stddev <= 0");
  }
  if (!(options.k_sigma > 0.0)) {
    throw std::invalid_argument("detect_anomalies: k_sigma <= 0");
  }
  if (options.min_consecutive == 0) {
    throw std::invalid_argument("detect_anomalies: min_consecutive == 0");
  }

  std::vector<AnomalyEvent> events;
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  int run_sign = 0;
  double run_peak = 0.0;

  const auto close_run = [&]() {
    if (run_len >= options.min_consecutive) {
      events.push_back({run_start, run_len,
                        run_sign > 0 ? AnomalyKind::spike : AnomalyKind::drop,
                        run_peak});
    }
    run_len = 0;
    run_sign = 0;
    run_peak = 0.0;
  };

  for (std::size_t i = 0; i < series.values.size(); ++i) {
    const double z = (series.values[i] - mean_bps) / stddev_bps;
    const int sign = z > options.k_sigma ? 1 : (z < -options.k_sigma ? -1 : 0);
    if (sign != 0 && sign == run_sign) {
      ++run_len;
      run_peak = std::max(run_peak, std::abs(z));
    } else {
      close_run();
      if (sign != 0) {
        run_start = i;
        run_len = 1;
        run_sign = sign;
        run_peak = std::abs(z);
      }
    }
  }
  close_run();
  return events;
}

}  // namespace fbm::dimension
