// Model-envelope anomaly detection.
//
// The paper's introduction lists anomaly detection (DoS attacks, link
// failures) as a target application: an analytical model of the normal rate
// lets an operator flag measured samples that leave the predicted envelope
// [mean - k*sigma, mean + k*sigma]. This module implements that detector
// with hysteresis (consecutive out-of-envelope samples before alarming) so
// a single bursty bin does not fire it.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/timeseries.hpp"

namespace fbm::dimension {

struct AnomalyOptions {
  double k_sigma = 3.0;          ///< envelope half-width in std deviations
  std::size_t min_consecutive = 3;  ///< samples outside before an alarm
};

enum class AnomalyKind { spike, drop };

struct AnomalyEvent {
  std::size_t start_index;  ///< first out-of-envelope sample
  std::size_t length;       ///< consecutive out-of-envelope samples
  AnomalyKind kind;
  double peak_deviation_sigma;  ///< worst |z| inside the event
};

/// Scans a measured rate series against the model envelope. mean/stddev are
/// the model's (bits/s).
[[nodiscard]] std::vector<AnomalyEvent> detect_anomalies(
    const stats::RateSeries& series, double mean_bps, double stddev_bps,
    const AnomalyOptions& options = {});

}  // namespace fbm::dimension
