#include "dimension/provisioning.hpp"

#include <cmath>
#include <stdexcept>

#include "core/gaussian.hpp"
#include "core/moments.hpp"

namespace fbm::dimension {

ProvisioningPlan plan_link(const flow::ModelInputs& inputs, double b,
                           double eps) {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("plan_link: eps outside (0,1)");
  }
  ProvisioningPlan plan;
  plan.eps = eps;
  plan.mean_bps = core::mean_rate(inputs);
  const double var = core::power_shot_variance(inputs, b);
  plan.stddev_bps = std::sqrt(var);
  plan.cov = plan.mean_bps > 0.0 ? plan.stddev_bps / plan.mean_bps : 0.0;
  const core::GaussianApproximation g(plan.mean_bps, var);
  plan.capacity_bps = g.capacity_for_exceedance(eps);
  plan.headroom =
      plan.mean_bps > 0.0 ? plan.capacity_bps / plan.mean_bps : 0.0;
  return plan;
}

flow::ModelInputs apply_scenario(const flow::ModelInputs& in,
                                 const WhatIf& scenario) {
  if (!(scenario.lambda_factor > 0.0) || !(scenario.size_factor > 0.0) ||
      !(scenario.duration_factor > 0.0)) {
    throw std::invalid_argument("apply_scenario: factors must be positive");
  }
  flow::ModelInputs out = in;
  out.lambda *= scenario.lambda_factor;
  out.mean_size_bits *= scenario.size_factor;
  out.mean_s2_over_d *= scenario.size_factor * scenario.size_factor /
                        scenario.duration_factor;
  return out;
}

std::vector<ProvisioningPlan> capacity_sweep(
    const flow::ModelInputs& base, double b, double eps,
    const std::vector<double>& lambda_factors) {
  std::vector<ProvisioningPlan> out;
  out.reserve(lambda_factors.size());
  for (double f : lambda_factors) {
    out.push_back(plan_link(core::scale_lambda(base, f), b, eps));
  }
  return out;
}

}  // namespace fbm::dimension
