// Link dimensioning and what-if analysis (Section VII-A).
//
// Given the three flow parameters of a link, choose its bandwidth so that
// congestion (R > C) occurs less than a fraction eps of the time, and study
// how that bandwidth moves when traffic composition changes: more flows
// (lambda up), bigger transfers (sizes up), different application dynamics
// (shot power changes). The headline effect is the smoothing law: mean
// grows like lambda but stddev like sqrt(lambda), so required capacity grows
// sublinearly.
#pragma once

#include <vector>

#include "flow/interval.hpp"

namespace fbm::dimension {

struct ProvisioningPlan {
  double mean_bps = 0.0;
  double stddev_bps = 0.0;
  double cov = 0.0;
  double capacity_bps = 0.0;   ///< E[R] + q(1-eps) * sigma
  double headroom = 0.0;       ///< capacity / mean
  double eps = 0.0;            ///< target congestion probability
};

/// Dimension a link for power-shot b and congestion probability eps.
[[nodiscard]] ProvisioningPlan plan_link(const flow::ModelInputs& inputs,
                                         double b, double eps);

/// What-if knobs, all multiplicative (1.0 = unchanged).
struct WhatIf {
  double lambda_factor = 1.0;  ///< more/fewer flows (new customers)
  double size_factor = 1.0;    ///< bigger transfers (new application)
  double duration_factor = 1.0;  ///< longer flows (congested access links)
};

/// Applies the scenario to the inputs: lambda *= lf; E[S] *= sf;
/// E[S^2/D] *= sf^2/df.
[[nodiscard]] flow::ModelInputs apply_scenario(const flow::ModelInputs& in,
                                               const WhatIf& scenario);

/// Sweep of required capacity versus flow arrival rate, demonstrating the
/// sqrt-lambda smoothing. Returns one plan per factor.
[[nodiscard]] std::vector<ProvisioningPlan> capacity_sweep(
    const flow::ModelInputs& base, double b, double eps,
    const std::vector<double>& lambda_factors);

}  // namespace fbm::dimension
