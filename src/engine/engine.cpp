#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/shard.hpp"
#include "obs/catalog.hpp"

namespace fbm::engine {

namespace {

/// Backpressure bound, as in api::ParallelAnalysisPipeline: a demux thread
/// that outruns a worker blocks here, keeping memory bounded.
constexpr std::size_t kMaxQueuedCommands = 256;

}  // namespace

/// One per-link session: the analysis state (exactly one of batch/live) plus
/// demux bookkeeping. Driven by exactly one thread at a time — the caller
/// inline, or the owning pool worker.
struct Engine::Session {
  LinkId id = 0;
  std::string name;
  MatchRule rule;
  bool attached = true;
  std::size_t worker = 0;  ///< owning pool worker (pool mode)

  std::unique_ptr<api::AnalysisPipeline> batch;
  std::unique_ptr<live::WindowedEstimator> live;

  net::PacketBatch pending;  ///< demux buffer (pool mode)
  LinkCounters counters;  ///< packets/bytes: demux thread; reports: emit_mu_

  // obs: this link's exported gauges, resolved once at attach.
  obs::Gauge* g_packets = nullptr;
  obs::Gauge* g_reports = nullptr;
};

struct Engine::Worker {
  /// One unit of work, processed strictly in queue order — so each session
  /// (pinned to one worker) sees its packets in stream order.
  struct Command {
    enum class Kind { batch, finish_session, stop };
    Kind kind = Kind::batch;
    Session* session = nullptr;
    net::PacketBatch packets;
  };

  std::mutex mu;
  std::condition_variable work_cv;   ///< worker waits for commands
  std::condition_variable space_cv;  ///< demux waits for queue space
  std::condition_variable idle_cv;   ///< snapshot waits for the drain
  std::deque<Command> queue;
  bool busy = false;         ///< a popped command is being processed (mu)
  std::exception_ptr error;  ///< guarded by mu
  std::atomic<bool> failed{false};
  std::thread thread;

  // obs: queue-depth gauge and pool backpressure counter, set at spawn.
  obs::Gauge* queue_gauge = nullptr;
  obs::Counter* bp_counter = nullptr;

  void set_idle() {
    {
      std::lock_guard lock(mu);
      busy = false;
    }
    idle_cv.notify_all();
  }

  void run() {
    for (;;) {
      Command cmd;
      {
        std::unique_lock lock(mu);
        work_cv.wait(lock, [&] { return !queue.empty(); });
        cmd = std::move(queue.front());
        queue.pop_front();
        busy = true;
        if (queue_gauge != nullptr && obs::enabled()) {
          queue_gauge->set(static_cast<double>(queue.size()));
        }
      }
      space_cv.notify_one();
      if (cmd.kind == Command::Kind::stop) {
        set_idle();
        return;
      }
      try {
        Session& s = *cmd.session;
        if (cmd.kind == Command::Kind::batch) {
          if (s.batch) {
            s.batch->push_batch(cmd.packets);
          } else {
            s.live->push_batch(cmd.packets);
          }
        } else {  // finish_session
          if (s.batch) {
            s.batch->finish();
          } else {
            s.live->finish();
          }
          // The session is done: free the analysis state (classifier flow
          // tables above all) right here on the owning worker, so detached
          // links don't hold memory for the engine's lifetime. Counters
          // stay in the Session for links().
          s.batch.reset();
          s.live.reset();
        }
      } catch (...) {
        {
          std::lock_guard lock(mu);
          error = std::current_exception();
          failed.store(true, std::memory_order_release);
          busy = false;
        }
        space_cv.notify_all();
        idle_cv.notify_all();
        return;
      }
      set_idle();
    }
  }

  /// Blocks until this worker has processed everything enqueued so far (or
  /// died on an error — the caller rethrows via rethrow_worker_error()).
  void wait_idle() {
    std::unique_lock lock(mu);
    idle_cv.wait(lock, [&] {
      return (queue.empty() && !busy) ||
             failed.load(std::memory_order_acquire);
    });
  }

  void enqueue(Command cmd) {
    {
      std::unique_lock lock(mu);
      const auto has_space = [&] {
        return queue.size() < kMaxQueuedCommands ||
               failed.load(std::memory_order_acquire) || !thread.joinable();
      };
      if (!has_space() && bp_counter != nullptr && obs::enabled()) {
        bp_counter->add(1);  // the demux thread is about to block
      }
      space_cv.wait(lock, has_space);
      queue.push_back(std::move(cmd));
      if (queue_gauge != nullptr && obs::enabled()) {
        queue_gauge->set(static_cast<double>(queue.size()));
      }
    }
    work_cv.notify_one();
  }
};

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  // threads == 0 means "use every core", exactly as in api::AnalysisConfig.
  config_.threads = api::resolve_threads(config_.threads);
  if (config_.batch_packets == 0) {
    throw std::invalid_argument("Engine: batch_packets == 0");
  }
  if (!(config_.flush_every_s > 0.0)) {
    throw std::invalid_argument("Engine: flush cadence <= 0");
  }
  if (config_.threads > 1) {
    workers_.reserve(config_.threads);
    for (std::size_t i = 0; i < config_.threads; ++i) {
      workers_.push_back(std::make_unique<Worker>());
      workers_[i]->queue_gauge = &obs::worker_queue_depth("engine", i);
      workers_[i]->bp_counter = &obs::backpressure_waits("engine");
    }
    for (auto& w : workers_) {
      w->thread = std::thread([worker = w.get()] { worker->run(); });
    }
  }
}

Engine::~Engine() {
  // Workers hold raw Session pointers: stop and join them before the
  // sessions go away. Sessions left unfinished are simply dropped.
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->enqueue({Worker::Command::Kind::stop, nullptr, {}});
      w->thread.join();
    }
  }
}

LinkId Engine::attach(LinkSpec spec) {
  if (finished_) throw std::logic_error("Engine: attach after finish");
  if (spec.name.empty()) {
    throw std::invalid_argument("Engine: empty link name");
  }
  for (const auto& s : sessions_) {
    if (s->attached && s->name == spec.name) {
      throw std::invalid_argument("Engine: duplicate link name \"" +
                                  spec.name + "\"");
    }
  }

  auto session = std::make_unique<Session>();
  session->id = next_id_;
  session->name = spec.name;
  session->rule = spec.rule;

  // Build the layered session config and its analysis state first: a
  // throwing override or an invalid config must leave the engine unchanged.
  Session* raw = session.get();
  if (config_.mode == EngineMode::batch) {
    api::AnalysisConfig cfg = config_.analysis;
    if (spec.tune_analysis) spec.tune_analysis(cfg);
    cfg.threads(1);  // the engine pool is the only threading
    session->batch = std::make_unique<api::AnalysisPipeline>(cfg);
    if (partial_sink_) {
      session->batch->set_partial_sink([this, raw](api::ShardInterval&& iv) {
        emit_partial(*raw, live::WindowPartial{iv.index, 0, 0, 0,
                                               std::move(iv.flows),
                                               std::move(iv.bins)});
      });
    } else {
      session->batch->set_report_sink([this, raw](api::AnalysisReport&& r) {
        LinkReport report;
        report.link = raw->id;
        report.name = raw->name;
        report.interval = std::move(r);
        emit(*raw, std::move(report));
      });
    }
  } else {
    live::LiveConfig cfg = config_.live;
    if (spec.tune_live) spec.tune_live(cfg);
    session->live = std::make_unique<live::WindowedEstimator>(cfg);
    if (partial_sink_) {
      session->live->set_partial_sink([this, raw](live::WindowPartial&& p) {
        emit_partial(*raw, std::move(p));
      });
    } else {
      session->live->set_window_sink([this, raw](live::WindowReport&& r) {
        LinkReport report;
        report.link = raw->id;
        report.name = raw->name;
        report.window = std::move(r);
        emit(*raw, std::move(report));
      });
    }
  }

  // Index the match rule. Prefix links share one routing table, so inserts
  // can collide with another attached link's claim — roll back for the
  // strong guarantee.
  if (const auto* match = std::get_if<MatchPrefixes>(&spec.rule)) {
    if (match->prefixes.empty()) {
      throw std::invalid_argument("Engine: link \"" + spec.name +
                                  "\" has no prefixes");
    }
    std::vector<net::Prefix> inserted;
    inserted.reserve(match->prefixes.size());
    for (const auto& prefix : match->prefixes) {
      if (const auto prev = prefix_table_.insert(prefix, session->id)) {
        // insert() replaced the previous owner's entry — restore it, then
        // unwind the prefixes this attach already claimed (for a duplicate
        // within this very spec, the restored entry is among them).
        (void)prefix_table_.insert(prefix, *prev);
        for (const auto& p : inserted) (void)prefix_table_.erase(p);
        throw std::invalid_argument(
            *prev == session->id
                ? "Engine: duplicate prefix " + prefix.to_string() +
                      " in link \"" + spec.name + "\""
                : "Engine: prefix " + prefix.to_string() +
                      " already claimed by another link");
      }
      inserted.push_back(prefix);
    }
    ++prefix_links_;
  }

  if (!workers_.empty()) session->worker = next_worker_++ % workers_.size();
  session->g_packets = &obs::link_packets(session->name);
  session->g_reports = &obs::link_reports(session->name);
  routing_.push_back(session.get());
  sessions_.push_back(std::move(session));
  return next_id_++;
}

bool Engine::detach(LinkId id) {
  for (auto& s : sessions_) {
    if (s->id != id) continue;
    if (!s->attached) return false;
    s->attached = false;
    std::erase(routing_, s.get());
    if (const auto* match = std::get_if<MatchPrefixes>(&s->rule)) {
      for (const auto& prefix : match->prefixes) {
        (void)prefix_table_.erase(prefix);
      }
      --prefix_links_;
    }
    if (!finished_) {
      flush_session(*s);
      finish_session(*s);
    }
    return true;
  }
  return false;
}

void Engine::push(const net::PacketRecord& packet) {
  if (finished_) throw std::logic_error("Engine: push after finish");
  if (packet.timestamp < last_ts_) {
    throw std::invalid_argument("Engine: out-of-order packet");
  }
  last_ts_ = packet.timestamp;
  if (!workers_.empty()) rethrow_worker_error();

  if (summary_.packets == 0) summary_.first_ts = packet.timestamp;
  ++summary_.packets;
  summary_.total_bytes += packet.size_bytes;
  summary_.last_ts = packet.timestamp;

  route(packet);
  if (packet.timestamp >= flush_deadline_) {
    flush_all_pending(packet.timestamp);
  }
}

void Engine::push_batch(const net::PacketBatch& batch) {
  if (batch.empty()) return;
  if (finished_) throw std::logic_error("Engine: push after finish");
  const double* ts = batch.timestamps.data();
  const std::uint32_t* sizes = batch.sizes.data();
  const std::size_t n = batch.size();
  if (ts[0] < last_ts_) {
    throw std::invalid_argument("Engine: out-of-order packet");
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (ts[i] < ts[i - 1]) {
      throw std::invalid_argument("Engine: out-of-order packet");
    }
  }
  last_ts_ = ts[n - 1];
  if (!workers_.empty()) rethrow_worker_error();

  if (summary_.packets == 0) summary_.first_ts = ts[0];
  summary_.packets += n;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) bytes += sizes[i];
  summary_.total_bytes += bytes;
  summary_.last_ts = ts[n - 1];

  route_batch(batch);
  // Checking the flush deadline once per batch instead of per packet bounds
  // buffered-packet latency at batch granularity — a latency knob only,
  // never a result change.
  if (ts[n - 1] >= flush_deadline_) flush_all_pending(ts[n - 1]);
}

void Engine::route_batch(const net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  static obs::Histogram& demux_seconds =
      obs::stage_seconds(obs::kStageDemux);
  obs::StageSpan span(demux_seconds);  // whole-batch demux span
  if (obs::enabled()) obs::demux_packets().add(n);
  // One batched LPM pass over the whole batch's destinations: the lane
  // interleaving in lookup_batch overlaps the trie walks' dependent loads,
  // and every prefix link below reuses the same results.
  constexpr std::uint32_t kNoRoute = 0xffffffffu;  // LinkIds start at 0
  if (prefix_links_ > 0) {
    addr_scratch_.resize(n);
    lpm_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      addr_scratch_[i] = batch.tuples[i].dst.value();
    }
    prefix_table_.lookup_batch(addr_scratch_.data(), n, lpm_scratch_.data(),
                               kNoRoute);
  }
  for (Session* s : routing_) {
    if (std::holds_alternative<MatchAll>(s->rule)) {
      deliver_batch(*s, batch);  // the whole batch, no copy
      continue;
    }
    stage_.clear();
    if (std::holds_alternative<MatchPrefixes>(s->rule)) {
      const auto id = static_cast<std::uint32_t>(s->id);
      for (std::size_t i = 0; i < n; ++i) {
        if (lpm_scratch_[i] == id) {
          stage_.emplace_back(batch.timestamps[i], batch.tuples[i],
                              batch.sizes[i]);
        }
      }
    } else {
      const auto& rule = std::get<MatchTuple>(s->rule);
      for (std::size_t i = 0; i < n; ++i) {
        if (rule.matches(batch.tuples[i])) {
          stage_.emplace_back(batch.timestamps[i], batch.tuples[i],
                              batch.sizes[i]);
        }
      }
    }
    if (!stage_.empty()) deliver_batch(*s, stage_);
  }
}

void Engine::deliver_batch(Session& s, const net::PacketBatch& batch) {
  const std::size_t m = batch.size();
  s.counters.packets += m;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < m; ++i) bytes += batch.sizes[i];
  s.counters.bytes += bytes;
  if (workers_.empty()) {
    if (s.batch) {
      s.batch->push_batch(batch);
    } else {
      s.live->push_batch(batch);
    }
    return;
  }
  if (s.pending.empty()) {
    flush_deadline_ = std::min(
        flush_deadline_, batch.timestamps.front() + config_.flush_every_s);
  }
  s.pending.append(batch);
  if (s.pending.size() >= config_.batch_packets) flush_session(s);
}

void Engine::route(const net::PacketRecord& packet) {
  // Longest-prefix match across every attached prefix link: at most one
  // winner, decided exactly as the router's forwarding table would.
  std::optional<std::uint32_t> lpm;
  if (prefix_links_ > 0) {
    lpm = prefix_table_.lookup(packet.tuple.dst);
  }
  for (Session* s : routing_) {
    bool matched = false;
    if (std::holds_alternative<MatchAll>(s->rule)) {
      matched = true;
    } else if (std::holds_alternative<MatchPrefixes>(s->rule)) {
      matched = lpm && *lpm == s->id;
    } else {
      matched = std::get<MatchTuple>(s->rule).matches(packet.tuple);
    }
    if (matched) deliver(*s, packet);
  }
}

void Engine::deliver(Session& s, const net::PacketRecord& packet) {
  ++s.counters.packets;
  s.counters.bytes += packet.size_bytes;
  if (workers_.empty()) {
    feed(s, packet);
    return;
  }
  if (s.pending.empty()) {
    flush_deadline_ = std::min(
        flush_deadline_, packet.timestamp + config_.flush_every_s);
  }
  s.pending.push_back(packet);
  if (s.pending.size() >= config_.batch_packets) flush_session(s);
}

void Engine::feed(Session& s, const net::PacketRecord& packet) {
  if (s.batch) {
    s.batch->push(packet);
  } else {
    s.live->push(packet);
  }
}

void Engine::flush_session(Session& s) {
  if (workers_.empty() || s.pending.empty()) return;
  Worker::Command cmd;
  cmd.kind = Worker::Command::Kind::batch;
  cmd.session = &s;
  cmd.packets = std::exchange(s.pending, {});
  workers_[s.worker]->enqueue(std::move(cmd));
}

void Engine::flush_all_pending(double /*now*/) {
  for (auto& s : sessions_) flush_session(*s);
  if (obs::enabled()) {
    // Refresh the per-link exported gauges at flush cadence. reports is
    // written by pool workers under emit_mu_, so read it under the same
    // lock; packets/bytes are demux-thread-owned.
    std::lock_guard lock(emit_mu_);
    for (const auto& s : sessions_) {
      if (s->g_packets != nullptr) {
        s->g_packets->set(static_cast<double>(s->counters.packets));
      }
      if (s->g_reports != nullptr) {
        s->g_reports->set(static_cast<double>(s->counters.reports));
      }
    }
  }
  flush_deadline_ = std::numeric_limits<double>::infinity();
}

void Engine::flush() {
  if (finished_) return;
  if (!workers_.empty()) rethrow_worker_error();
  flush_all_pending(last_ts_);
}

void Engine::finish_session(Session& s) {
  if (workers_.empty()) {
    if (s.batch) {
      s.batch->finish();
    } else {
      s.live->finish();
    }
    // Free the analysis state now (the pool path does this on the owning
    // worker); only the counters outlive the session.
    s.batch.reset();
    s.live.reset();
    return;
  }
  Worker::Command cmd;
  cmd.kind = Worker::Command::Kind::finish_session;
  cmd.session = &s;
  workers_[s.worker]->enqueue(std::move(cmd));
}

void Engine::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& s : sessions_) {
    if (!s->attached) continue;
    flush_session(*s);
    finish_session(*s);
  }
  for (auto& w : workers_) {
    w->enqueue({Worker::Command::Kind::stop, nullptr, {}});
  }
  for (auto& w : workers_) w->thread.join();
  for (auto& w : workers_) {
    std::lock_guard lock(w->mu);
    if (w->error) std::rethrow_exception(w->error);
  }
}

std::uint64_t Engine::consume(api::TraceSource& source) {
  net::PacketBatch batch;
  const std::size_t cap = std::max<std::size_t>(1, config_.batch_packets);
  batch.reserve(cap);
  std::uint64_t n = 0;
  obs::Histogram& read_seconds =
      obs::stage_seconds(obs::kStageSourceRead);
  for (;;) {
    std::size_t got;
    {
      obs::StageSpan span(read_seconds);
      got = source.next_batch(batch, cap);
    }
    if (got == 0) break;
    if (obs::enabled()) {
      obs::source_packets().add(got);
      obs::source_batches().add(1);
    }
    n += batch.size();
    push_batch(batch);
  }
  finish();
  return n;
}

void Engine::emit(Session& s, LinkReport&& report) {
  std::lock_guard lock(emit_mu_);
  ++s.counters.reports;
  if (sink_) {
    sink_(std::move(report));
  } else {
    ready_.push_back(std::move(report));
  }
}

void Engine::emit_partial(Session& s, live::WindowPartial&& partial) {
  std::lock_guard lock(emit_mu_);  // pool workers flush concurrently
  ++s.counters.reports;
  partial_sink_(s.id, s.name, std::move(partial));
}

LinkReport Engine::pop_report() {
  std::lock_guard lock(emit_mu_);
  if (ready_.empty()) throw std::logic_error("Engine: no report ready");
  LinkReport r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

std::vector<LinkReport> Engine::take_reports() {
  std::lock_guard lock(emit_mu_);
  std::vector<LinkReport> out(std::make_move_iterator(ready_.begin()),
                              std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

void Engine::rethrow_worker_error() {
  for (auto& w : workers_) {
    if (!w->failed.load(std::memory_order_acquire)) continue;
    std::exception_ptr err;
    {
      std::lock_guard lock(w->mu);
      err = w->error;
    }
    finished_ = true;  // the failed worker is gone; no more pushes
    if (err) std::rethrow_exception(err);
  }
}

std::vector<LinkInfo> Engine::links() const {
  std::lock_guard lock(emit_mu_);  // counters.reports updates under it
  std::vector<LinkInfo> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    out.push_back({s->id, s->name, s->attached, s->counters});
  }
  return out;
}

std::size_t Engine::link_count() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) n += s->attached ? 1 : 0;
  return n;
}

EngineState Engine::save_state() {
  if (finished_) throw std::logic_error("Engine: save_state after finish");
  if (config_.mode != EngineMode::live) {
    throw std::logic_error("Engine: save_state requires live mode");
  }
  if (partial_sink_) {
    throw std::logic_error("Engine: save_state with a partial sink");
  }
  // Quiesce: hand every demux-buffered packet to its worker, wait for the
  // queues to drain, then surface any worker failure. After this every
  // routed packet is inside its session and every closed window has been
  // emitted — the per-session states are a consistent cut of the stream.
  flush_all_pending(last_ts_);
  for (auto& w : workers_) w->wait_idle();
  if (!workers_.empty()) rethrow_worker_error();
  {
    std::lock_guard lock(emit_mu_);
    if (!ready_.empty()) {
      throw std::logic_error(
          "Engine: take queued reports before save_state");
    }
  }
  EngineState st;
  st.summary = summary_;
  st.last_ts = last_ts_;
  st.sessions.reserve(sessions_.size());
  // emit_mu_ also orders the workers' counters.reports writes before our
  // reads; packets/bytes are demux-thread-owned and need no lock.
  std::lock_guard lock(emit_mu_);
  for (const auto& s : sessions_) {
    EngineSessionState ss;
    ss.name = s->name;
    ss.attached = s->attached;
    ss.counters = s->counters;
    if (s->live) {
      ss.has_live = true;
      ss.live = s->live->save_state();
    }
    st.sessions.push_back(std::move(ss));
  }
  return st;
}

void Engine::restore_state(const EngineState& state) {
  if (finished_) throw std::logic_error("Engine: restore_state after finish");
  if (config_.mode != EngineMode::live) {
    throw std::logic_error("Engine: restore_state requires live mode");
  }
  if (summary_.packets != 0) {
    throw std::logic_error("Engine: restore_state needs a fresh engine");
  }
  if (sessions_.size() != state.sessions.size()) {
    throw std::runtime_error(
        "Engine: restore link set mismatch (checkpoint has " +
        std::to_string(state.sessions.size()) + " links, engine has " +
        std::to_string(sessions_.size()) +
        " — attach the checkpoint's links first, in order)");
  }
  // Two passes: validate the whole link set before mutating anything, so a
  // mismatch leaves the engine untouched (strong guarantee).
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const Session& s = *sessions_[i];
    const EngineSessionState& ss = state.sessions[i];
    if (s.name != ss.name) {
      throw std::runtime_error("Engine: restore link mismatch at position " +
                               std::to_string(i) + " (checkpoint says \"" +
                               ss.name + "\", engine has \"" + s.name +
                               "\")");
    }
    if (s.attached != ss.attached) {
      throw std::runtime_error("Engine: restore attach-state mismatch for \"" +
                               ss.name + "\"");
    }
    if (ss.attached && static_cast<bool>(s.live) != ss.has_live) {
      throw std::runtime_error("Engine: restore session-state mismatch for \"" +
                               ss.name + "\"");
    }
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = *sessions_[i];
    const EngineSessionState& ss = state.sessions[i];
    s.counters = ss.counters;
    if (s.live && ss.has_live) s.live->restore_state(ss.live);
  }
  summary_ = state.summary;
  last_ts_ = state.last_ts;
}

}  // namespace fbm::engine
