// fbm::engine — one process, many links (the session-oriented front door).
//
//   TraceSource ──► Engine (demux) ──► per-link sessions ──► ReportSink
//                    │  RoutingTable LPM / 5-tuple      (AnalysisReport or
//                    │  predicates / match-all           WindowReport, each
//                    └─ shared worker pool               tagged with a link)
//
// A real POP monitors dozens of backbone links from a single tap; the paper
// models each link independently. Engine closes that gap: it owns a set of
// LinkSpecs, demuxes one packet stream to a session per link, and drives
// every session through either batch analysis (api::AnalysisPipeline — one
// api::PipelineShard per session, intervals closed through api::fit_window)
// or live sliding-window monitoring (live::WindowedEstimator), with
// per-link config overrides layered over a base config.
//
// Sessions never own threads. With threads == 1 (the default) the demux
// thread drives every session inline and report order is fully
// deterministic (attach order within a timestamp). With threads > 1 the
// engine runs one shared worker pool and pins each session to a worker
// (round-robin at attach), so N links cost min(N, threads) threads, not N;
// per-link output is unchanged — every session still sees exactly its own
// packet subsequence in stream order — only the interleaving of *different*
// links' reports becomes scheduling-dependent.
//
// The contract the differential tests pin (tests/engine/): each link's
// report stream is bit-for-bit identical to running the ordinary
// single-link pipeline (api::analyze / live::WindowedEstimator) on that
// link's pre-filtered packets.
//
// Links can be attached and detached at runtime: a session attached
// mid-stream sees packets from that point on; detach(id) finalizes the
// session immediately (its pending windows flush through the sink) and
// stops routing to it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/trace_source.hpp"
#include "engine/link_spec.hpp"
#include "live/live.hpp"
#include "net/lpm.hpp"
#include "net/packet_batch.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::engine {

enum class EngineMode { batch, live };

struct EngineConfig {
  EngineMode mode = EngineMode::batch;
  /// Base analysis knobs for batch sessions (per-link tune_analysis layers
  /// on a copy). threads/batch_packets inside are ignored: the engine's own
  /// pool below is the only threading.
  api::AnalysisConfig analysis;
  /// Base configuration for live sessions (mode == live).
  live::LiveConfig live;

  /// Worker pool size. 1 = no threads, sessions run inline on the caller;
  /// 0 auto-detects the machine's core count
  /// (std::thread::hardware_concurrency). Per-link output is identical at
  /// every value.
  std::size_t threads = 1;
  /// Packets handed to a worker per enqueue (pool only; a throughput knob —
  /// per-link results do not depend on it).
  std::size_t batch_packets = 512;
  /// Max trace time a routed packet may sit in a demux buffer before being
  /// flushed to its worker (pool only; bounds live-report latency).
  double flush_every_s = 1.0;
};

/// One report, tagged with the link that produced it. Exactly one of
/// `interval` (batch mode) / `window` (live mode) is set.
struct LinkReport {
  LinkId link = 0;
  std::string name;
  std::optional<api::AnalysisReport> interval;
  std::optional<live::WindowReport> window;
};

/// Unified sink: every session's reports funnel here, in per-link order.
/// Invoked on the caller's thread when threads == 1, on worker threads
/// otherwise (serialized — never concurrently). Must not call back into the
/// engine.
using ReportSink = std::function<void(LinkReport&&)>;

/// Pre-fit flush hook for distributed aggregation: every closed analysis
/// interval (batch mode) or sliding window (live mode) of every link leaves
/// as raw sufficient statistics tagged with its link, instead of being
/// fitted locally — agg::Merger folds partials across processes/hosts by
/// link name and window index and fits once. Batch intervals ride the same
/// live::WindowPartial carrier with zero packet/byte/discard counters (the
/// batch report schema never shows them). Same threading contract as
/// ReportSink.
using PartialSink =
    std::function<void(LinkId, const std::string&, live::WindowPartial&&)>;

struct LinkCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t reports = 0;
};

struct LinkInfo {
  LinkId id = 0;
  std::string name;
  bool attached = true;  ///< false once detached
  LinkCounters counters;
};

/// One session's slice of an engine snapshot: identity (for restore-time
/// validation against the re-attached link set), counters, and — for a
/// still-running live session — the full estimator state.
struct EngineSessionState {
  std::string name;
  bool attached = true;
  LinkCounters counters;
  bool has_live = false;  ///< false for detached (already finished) sessions
  live::EstimatorState live;
};

/// Complete serializable state of a live-mode Engine mid-stream: stream
/// totals plus every session in attach order (session ids are assigned
/// sequentially, so attach order alone reproduces them). The LPM claims and
/// match rules are NOT serialized — restore validates the caller re-attached
/// the same links (names, order, attach state) and refuses otherwise, so
/// the routing state is rebuilt through the ordinary attach path.
struct EngineState {
  trace::TraceSummary summary;
  double last_ts = -std::numeric_limits<double>::infinity();
  std::vector<EngineSessionState> sessions;  ///< attach order
};

class Engine {
 public:
  /// Throws std::invalid_argument on bad engine knobs (batch_packets == 0,
  /// flush cadence <= 0). Per-link analysis parameters
  /// are validated at attach(), where the layered config is known.
  explicit Engine(EngineConfig config);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Adds a link and starts its session. Throws std::invalid_argument on an
  /// empty/duplicate name, an empty prefix list, a prefix already claimed
  /// by another attached link, or an invalid layered session config (strong
  /// guarantee: a failed attach leaves the engine unchanged).
  LinkId attach(LinkSpec spec);

  /// Stops routing to the link and finalizes its session now — pending
  /// intervals/windows flush through the sink before this returns (the
  /// worker finishes them asynchronously when the pool is on; they are
  /// complete by finish()). Returns false if the id is unknown or already
  /// detached. The link's counters remain visible through links().
  bool detach(LinkId id);

  /// Set before the first push. See ReportSink for the threading contract.
  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }

  /// Diverts every session's closed intervals/windows to `sink` as raw
  /// pre-fit material (see PartialSink). Must be set before the first
  /// attach(): sessions wire their flush path when they are created.
  void set_partial_sink(PartialSink sink) {
    if (!sessions_.empty()) {
      throw std::logic_error("Engine: set_partial_sink after attach");
    }
    partial_sink_ = std::move(sink);
  }

  /// Feed the next packet; timestamps must be non-decreasing (throws
  /// std::invalid_argument otherwise).
  void push(const net::PacketRecord& packet);

  /// Feed a whole batch. Per-link results are bit-for-bit identical to
  /// push() per packet at every batch size: the destination addresses run
  /// through one batched LPM pass, each link then consumes its matching
  /// sub-batch through the session's own batch path. With inline sessions
  /// (threads == 1) reports still come out in attach order, at batch rather
  /// than per-packet granularity — link A's reports for the whole batch
  /// precede link B's.
  void push_batch(const net::PacketBatch& batch);

  /// Hands any demux-buffered packets to their workers now (pool mode; a
  /// no-op when sessions run inline). The per-packet flush cadence is trace
  /// time, so a quiet --follow stream can leave routed packets buffered —
  /// call this from the idle poll loop to bound report latency by wall
  /// clock too.
  void flush();

  /// End of stream: finalize every attached session, join the pool.
  /// push()/attach() must not be called afterwards.
  void finish();

  /// Drains `source` through push() and finishes; returns packets consumed.
  std::uint64_t consume(api::TraceSource& source);

  /// Queued reports (only when no sink is set), oldest first per link.
  /// (Locked: pool workers fill the queue from their own threads.)
  [[nodiscard]] bool has_report() const {
    std::lock_guard lock(emit_mu_);
    return !ready_.empty();
  }
  [[nodiscard]] LinkReport pop_report();
  [[nodiscard]] std::vector<LinkReport> take_reports();

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  /// Totals over the whole stream (every packet, routed or not).
  [[nodiscard]] const trace::TraceSummary& summary() const {
    return summary_;
  }
  /// Attached links (detached ones included, flagged), in attach order.
  [[nodiscard]] std::vector<LinkInfo> links() const;
  [[nodiscard]] std::size_t link_count() const;  ///< attached only

  /// Snapshot of the complete mid-stream state (live mode only). Flushes
  /// demux buffers and quiesces the worker pool first, so the captured
  /// per-session states are exactly "every routed packet processed, every
  /// closed window emitted". Call between pushes; throws std::logic_error
  /// after finish(), in batch mode, with a partial sink, or while reports
  /// sit undrained in the queue.
  [[nodiscard]] EngineState save_state();

  /// Rebuilds a saved state. The caller must first attach the checkpoint's
  /// links (same names, same order, same attach flags — ids then match by
  /// construction) on a fresh engine of the same config; throws
  /// std::runtime_error naming the first mismatch otherwise.
  void restore_state(const EngineState& state);

 private:
  struct Session;
  struct Worker;

  void route(const net::PacketRecord& packet);
  void route_batch(const net::PacketBatch& batch);
  void deliver(Session& s, const net::PacketRecord& packet);
  void deliver_batch(Session& s, const net::PacketBatch& batch);
  void feed(Session& s, const net::PacketRecord& packet);
  void finish_session(Session& s);
  void flush_session(Session& s);
  void flush_all_pending(double now);
  void emit(Session& s, LinkReport&& report);
  void emit_partial(Session& s, live::WindowPartial&& partial);
  void rethrow_worker_error();

  EngineConfig config_;
  ReportSink sink_;
  PartialSink partial_sink_;

  std::vector<std::unique_ptr<Session>> sessions_;  ///< attach order
  /// Attached sessions only, attach order — the per-packet routing scan.
  /// Rebuilt on attach/detach so detached links cost nothing per packet
  /// (their Session stays in sessions_ for counters and in-flight work).
  std::vector<Session*> routing_;
  net::RoutingTable prefix_table_;  ///< prefix -> LinkId, shared LPM
  std::size_t prefix_links_ = 0;    ///< attached links with prefix rules
  LinkId next_id_ = 0;

  // push_batch scratch, reused across batches (no per-batch allocation).
  std::vector<std::uint32_t> addr_scratch_;  ///< batch dst address values
  std::vector<std::uint32_t> lpm_scratch_;   ///< batched LPM results
  net::PacketBatch stage_;  ///< one link's matching sub-batch

  std::vector<std::unique_ptr<Worker>> workers_;  ///< empty when threads==1
  std::size_t next_worker_ = 0;

  mutable std::mutex emit_mu_;  ///< serializes sink_/ready_/report counters
  std::deque<LinkReport> ready_;

  trace::TraceSummary summary_;
  double last_ts_ = -std::numeric_limits<double>::infinity();
  double flush_deadline_ = std::numeric_limits<double>::infinity();
  bool finished_ = false;
};

}  // namespace fbm::engine
