// fbm::engine — umbrella header (one process, many links).
//
// Typical use:
//
//   fbm::engine::EngineConfig config;
//   config.mode = fbm::engine::EngineMode::live;
//   config.live.window_s = 30.0;
//   fbm::engine::Engine engine(config);
//   engine.attach(fbm::engine::parse_link_spec("transit=10.0.0.0/8"));
//   engine.attach(fbm::engine::parse_link_spec("peering=192.168.0.0/16"));
//   engine.attach(fbm::engine::parse_link_spec("tap=all"));
//   engine.set_report_sink([](fbm::engine::LinkReport&& r) {
//     std::puts(fbm::engine::to_jsonl(r).c_str());
//   });
//   auto source = fbm::api::open_trace("capture.fbmt");
//   engine.consume(*source);
#pragma once

#include "engine/engine.hpp"     // IWYU pragma: export
#include "engine/link_spec.hpp"  // IWYU pragma: export
#include "engine/report.hpp"     // IWYU pragma: export
