#include "engine/link_spec.hpp"

#include <charconv>
#include <stdexcept>

namespace fbm::engine {

namespace {

[[noreturn]] void bad_spec(std::string_view text, const std::string& why) {
  throw std::invalid_argument("link spec \"" + std::string(text) +
                              "\": " + why);
}

[[nodiscard]] net::Prefix parse_prefix(std::string_view text,
                                       std::string_view token) {
  std::string_view addr_part = token;
  int length = 32;
  if (const auto slash = token.find('/'); slash != std::string_view::npos) {
    addr_part = token.substr(0, slash);
    const std::string_view len_part = token.substr(slash + 1);
    const auto* end = len_part.data() + len_part.size();
    const auto [ptr, ec] =
        std::from_chars(len_part.data(), end, length);
    if (ec != std::errc{} || ptr != end || length < 0 || length > 32) {
      bad_spec(text, "bad prefix length \"" + std::string(len_part) + "\"");
    }
  }
  const auto addr = net::Ipv4Address::parse(addr_part);
  if (!addr) {
    bad_spec(text, "bad address \"" + std::string(addr_part) + "\"");
  }
  return net::Prefix(*addr, length);
}

}  // namespace

LinkSpec parse_link_spec(std::string_view text) {
  const auto eq = text.find('=');
  if (eq == std::string_view::npos) {
    bad_spec(text, "expected NAME=PREFIX[,PREFIX...] or NAME=all");
  }
  LinkSpec spec;
  spec.name = std::string(text.substr(0, eq));
  if (spec.name.empty()) bad_spec(text, "empty link name");

  const std::string_view rule = text.substr(eq + 1);
  if (rule == "all" || rule == "*") {
    spec.rule = MatchAll{};
    return spec;
  }
  if (rule.empty()) bad_spec(text, "empty match rule");

  MatchPrefixes match;
  std::size_t pos = 0;
  while (pos <= rule.size()) {
    const auto comma = rule.find(',', pos);
    const auto end = comma == std::string_view::npos ? rule.size() : comma;
    const std::string_view token = rule.substr(pos, end - pos);
    if (token.empty()) bad_spec(text, "empty prefix");
    match.prefixes.push_back(parse_prefix(text, token));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  spec.rule = std::move(match);
  return spec;
}

}  // namespace fbm::engine
