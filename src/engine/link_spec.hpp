// Link descriptions for the multi-link engine (fbm::engine).
//
// A LinkSpec names one monitored backbone link and says which packets
// belong to it. Three match rules, mirroring how a POP actually carves up a
// tapped stream:
//
//   MatchAll      every packet (an aggregate / whole-tap view)
//   MatchPrefixes the destination falls under one of the link's CIDR
//                 prefixes. All prefix links share one net::RoutingTable
//                 inside the engine, so when links claim overlapping
//                 prefixes the longest match wins — exactly the forwarding
//                 decision the router itself makes (paper Section VI-A's
//                 "routable" flow aggregation, applied to link demux).
//   MatchTuple    a 5-tuple predicate: every set field must match
//                 (protocol, ports, src/dst prefixes) — service- or
//                 customer-oriented virtual links.
//
// A packet can feed several links at once (a match-all aggregate plus the
// prefix link that owns it); among prefix links it feeds exactly the
// longest-match winner.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "api/pipeline.hpp"
#include "live/live_config.hpp"
#include "net/five_tuple.hpp"
#include "net/ip.hpp"

namespace fbm::engine {

/// Stable handle for one attached link (assigned by Engine::attach,
/// monotonically increasing, never reused).
using LinkId = std::uint32_t;

struct MatchAll {};

struct MatchPrefixes {
  std::vector<net::Prefix> prefixes;
};

/// Conjunction over the set fields; an empty predicate matches everything.
struct MatchTuple {
  std::optional<std::uint8_t> protocol;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<net::Prefix> src_prefix;
  std::optional<net::Prefix> dst_prefix;

  [[nodiscard]] bool matches(const net::FiveTuple& t) const {
    if (protocol && *protocol != t.protocol) return false;
    if (src_port && *src_port != t.src_port) return false;
    if (dst_port && *dst_port != t.dst_port) return false;
    if (src_prefix && !src_prefix->contains(t.src)) return false;
    if (dst_prefix && !dst_prefix->contains(t.dst)) return false;
    return true;
  }
};

using MatchRule = std::variant<MatchAll, MatchPrefixes, MatchTuple>;

/// One link: a unique name (carried on every report), its match rule, and
/// optional per-link configuration overrides. Overrides are *layered*: the
/// engine copies its base config and hands the copy to the mutator, so a
/// link tweaks only what differs (a tighter epsilon, a /24 flow definition)
/// and inherits everything else.
struct LinkSpec {
  std::string name;
  MatchRule rule = MatchAll{};
  std::function<void(api::AnalysisConfig&)> tune_analysis;  ///< batch mode
  std::function<void(live::LiveConfig&)> tune_live;         ///< live mode
};

/// Parses the tools' --link syntax: "NAME=PREFIX[,PREFIX...]" with CIDR
/// prefixes ("10.0.0.0/8"), or "NAME=all" / "NAME=*" for a match-all link.
/// A bare address gets a /32. Throws std::invalid_argument with a message
/// naming the offending token.
[[nodiscard]] LinkSpec parse_link_spec(std::string_view text);

}  // namespace fbm::engine
