#include "engine/report.hpp"

#include <stdexcept>
#include <utility>

#include "core/json_writer.hpp"

namespace fbm::engine {

std::string to_json(const trace::TraceSummary& summary,
                    std::span<const LinkBatchResult> links) {
  core::JsonWriter w(core::JsonWriter::Style::pretty, 0);
  w.begin_object();
  w.begin_object("trace");
  w.field("packets", summary.packets);
  w.field("total_bytes", summary.total_bytes);
  w.field("duration_s", summary.duration_s());
  w.field("mean_rate_bps", summary.mean_rate_bps());
  w.end_object();
  w.begin_array("links");
  for (const auto& link : links) {
    w.begin_object();
    w.field("name", link.name);
    w.field("packets", link.counters.packets);
    w.field("bytes", link.counters.bytes);
    w.begin_array("intervals");
    for (const auto& report : link.reports) {
      w.raw_element(api::to_json(report, 8));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

std::string to_jsonl(const LinkReport& report) {
  if (!report.window) {
    throw std::logic_error("engine::to_jsonl: not a live-mode report");
  }
  return live::to_jsonl(*report.window, report.name);
}

}  // namespace fbm::engine
