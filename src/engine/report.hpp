// JSON rendering for multi-link engine output.
//
// Live mode streams JSONL: one line per closed window, the live schema with
// `"link": "<name>"` prepended (see live/window_report.hpp; the engine-smoke
// CI job pins this shape).
//
// Batch mode renders one document per run, the fbm_analyze --json shape
// with the intervals grouped per link:
//
//   {
//     "trace": { ... api::to_json trace totals ... },
//     "links": [
//       {
//         "name": "<link>",
//         "packets": u, "bytes": u,
//         "intervals": [ { ... api::to_json report ... } ]
//       }
//     ]
//   }
#pragma once

#include <span>
#include <string>
#include <vector>

#include "api/report.hpp"
#include "engine/engine.hpp"

namespace fbm::engine {

/// One link's finished batch run, ready for rendering.
struct LinkBatchResult {
  std::string name;
  LinkCounters counters;
  std::vector<api::AnalysisReport> reports;
};

/// The whole multi-link batch run as one JSON document.
[[nodiscard]] std::string to_json(const trace::TraceSummary& summary,
                                  std::span<const LinkBatchResult> links);

/// One live-mode report as a single JSON line (delegates to
/// live::to_jsonl(window, link_name)). Throws std::logic_error for a
/// batch-mode report.
[[nodiscard]] std::string to_jsonl(const LinkReport& report);

}  // namespace fbm::engine
