#include "flow/active_count.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace fbm::flow {

stats::RateSeries active_flow_series(std::span<const FlowRecord> flows,
                                     double start, double end, double delta) {
  if (!(end > start)) {
    throw std::invalid_argument("active_flow_series: end <= start");
  }
  if (!(delta > 0.0)) {
    throw std::invalid_argument("active_flow_series: delta <= 0");
  }
  const auto bins =
      static_cast<std::size_t>(std::ceil((end - start) / delta - 1e-9));
  stats::RateSeries out;
  out.start = start;
  out.delta = delta;
  out.values.assign(std::max<std::size_t>(bins, 1), 0.0);

  // Difference-array sweep: +1 at the first midpoint >= flow start, -1 at
  // the first midpoint >= flow end.
  const auto mid_index = [&](double t) {
    // Midpoint of bin i is start + (i + 0.5) * delta; the first bin whose
    // midpoint is >= t has index ceil((t - start)/delta - 0.5).
    const double raw = (t - start) / delta - 0.5;
    return static_cast<long>(std::ceil(raw - 1e-12));
  };
  std::vector<double> diff(out.values.size() + 1, 0.0);
  for (const auto& f : flows) {
    long lo = mid_index(f.start);
    long hi = mid_index(f.end);
    lo = std::clamp<long>(lo, 0, static_cast<long>(out.values.size()));
    hi = std::clamp<long>(hi, 0, static_cast<long>(out.values.size()));
    if (hi <= lo) continue;  // flow covers no midpoint
    diff[static_cast<std::size_t>(lo)] += 1.0;
    diff[static_cast<std::size_t>(hi)] -= 1.0;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < out.values.size(); ++i) {
    acc += diff[i];
    out.values[i] = acc;
  }
  return out;
}

ActiveFlowStats active_flow_stats(const stats::RateSeries& n) {
  ActiveFlowStats s;
  if (n.values.empty()) return s;
  stats::RunningStats rs;
  for (double v : n.values) rs.add(v);
  s.mean = rs.mean();
  s.variance = rs.population_variance();
  s.dispersion = s.mean > 0.0 ? s.variance / s.mean : 0.0;
  return s;
}

}  // namespace fbm::flow
