// Number-of-active-flows process N(t) (Section V-A / Section VII-B).
//
// N(t) is the occupancy of the M/G/infinity queue in the proof of Theorem 1
// and the paper's proposed alternative predictor input ("the present and
// past values of the number of active flows"). active_flow_series builds
// the sampled N(t) from completed flow records; it should be Poisson with
// mean lambda*E[D] under the model's assumptions.
#pragma once

#include <span>
#include <vector>

#include "flow/flow_record.hpp"
#include "stats/timeseries.hpp"

namespace fbm::flow {

/// Samples N(t) on a uniform grid over [start, end) with step delta:
/// out.values[i] = number of flows with start <= t_i < end(flow), where
/// t_i is the bin midpoint. (The RateSeries container is reused; values are
/// counts, not bits/s.)
[[nodiscard]] stats::RateSeries active_flow_series(
    std::span<const FlowRecord> flows, double start, double end, double delta);

/// Mean/variance summary plus the Poisson dispersion ratio variance/mean
/// (should be ~1 under the M/G/infinity model).
struct ActiveFlowStats {
  double mean = 0.0;
  double variance = 0.0;
  double dispersion = 0.0;
};

[[nodiscard]] ActiveFlowStats active_flow_stats(const stats::RateSeries& n);

}  // namespace fbm::flow
