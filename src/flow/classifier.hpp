// Timeout-based flow classification (Section III of the paper).
//
// Rules implemented exactly as described:
//  - a flow ends when no packet arrives for `timeout` (default 60 s);
//  - duration = last packet time - first packet time;
//  - single-packet flows are discarded (their duration would be zero) and
//    their packets are excluded from rate-variance measurements;
//  - flows overlapping an analysis-interval boundary are split: the piece in
//    each interval is recorded separately, the later pieces flagged
//    `continued` (this is what produces the step at t=0 in Figure 1).
//
// The classifier is generic over the flow key: FiveTupleKey reproduces flow
// definition 1, PrefixKey<24> definition 2, and any /n is available for the
// aggregation-level extension discussed in Section VI-A.
//
// The active-flow table is a core::FlatHashMap (open addressing, robin-hood
// probing) — the per-packet try_emplace is the pipeline's hottest operation
// and the flat table removes std::unordered_map's per-node allocation and
// pointer chase. The map type is a template parameter so bench_micro_perf
// can A/B the two implementations on identical workloads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "flow/flow_record.hpp"
#include "net/lpm.hpp"
#include "net/packet.hpp"

namespace fbm::flow {

/// Flow definition 1: the 5-tuple itself.
struct FiveTupleKey {
  using key_type = net::FiveTuple;
  using hash_type = net::FiveTupleHash;
  [[nodiscard]] key_type operator()(const net::PacketRecord& p) const {
    return p.tuple;
  }
};

/// Flow definition 2: destination address prefix (paper uses /24).
template <int Bits>
struct PrefixKey {
  static_assert(Bits >= 0 && Bits <= 32);
  using key_type = net::Prefix;
  using hash_type = net::PrefixHash;
  [[nodiscard]] key_type operator()(const net::PacketRecord& p) const {
    return net::Prefix(p.tuple.dst, Bits);
  }
};

/// Section VI-A extension: flows keyed by the "routable" prefix — the
/// longest-prefix-match entry of a forwarding table. Destinations with no
/// covering route fall back to their /24 (a real router would drop them; a
/// monitor still has to account for the bytes).
struct RoutableKey {
  using key_type = net::Prefix;
  using hash_type = net::PrefixHash;

  explicit RoutableKey(const net::RoutingTable* table) : table_(table) {
    if (table_ == nullptr) {
      throw std::invalid_argument("RoutableKey: null routing table");
    }
  }

  [[nodiscard]] key_type operator()(const net::PacketRecord& p) const {
    if (const auto prefix = table_->lookup_prefix(p.tuple.dst)) {
      return *prefix;
    }
    return net::Prefix(p.tuple.dst, 24);
  }

 private:
  const net::RoutingTable* table_;
};

struct ClassifierOptions {
  double timeout = 60.0;  ///< idle gap that terminates a flow, seconds
  /// Analysis-interval length for boundary splitting; infinity disables
  /// splitting. The paper uses 30 minutes.
  double interval = std::numeric_limits<double>::infinity();
  bool discard_single_packet = true;
  /// Keep (timestamp, bytes) of discarded single-packet flows so the rate
  /// measurement can exclude them, as the paper does.
  bool record_discards = false;
  /// Active-flow table capacity reserved up front (0 = grow on demand).
  /// Backbone traces hold tens of thousands of concurrent flows; reserving
  /// ahead skips the rehash cascade during ramp-up.
  std::size_t reserve_flows = 0;
};

/// A packet belonging to a discarded single-packet flow.
struct DiscardedPacket {
  double timestamp;
  std::uint64_t size_bytes;
};

struct ClassifierCounters {
  std::uint64_t packets = 0;
  std::uint64_t flows_emitted = 0;       ///< records produced (incl. pieces)
  std::uint64_t single_packet_discards = 0;
  std::uint64_t boundary_splits = 0;     ///< pieces created by splitting
};

/// Streaming classifier: feed packets in timestamp order, collect completed
/// FlowRecords. Completion happens when (a) a packet of the same key arrives
/// after the idle timeout, (b) a packet of the same key arrives in a later
/// analysis interval, or (c) flush() is called at end of trace.
///
/// `Map` is the active-flow table implementation; the default FlatHashMap is
/// the production choice, std::unordered_map remains pluggable for the
/// bench_micro_perf A/B comparison.
template <typename KeyExtractor,
          template <typename, typename, typename> class Map =
              core::FlatHashMap>
class FlowClassifier {
 public:
  using key_type = typename KeyExtractor::key_type;

  explicit FlowClassifier(ClassifierOptions options = {})
      : FlowClassifier(KeyExtractor{}, options) {}

  /// For stateful key extractors (e.g. RoutableKey over a routing table).
  FlowClassifier(KeyExtractor extractor, ClassifierOptions options)
      : extract_(std::move(extractor)), options_(options) {
    if (!(options_.timeout > 0.0)) {
      throw std::invalid_argument("FlowClassifier: timeout <= 0");
    }
    if (!(options_.interval > 0.0)) {
      throw std::invalid_argument("FlowClassifier: interval <= 0");
    }
    if (options_.reserve_flows > 0) active_.reserve(options_.reserve_flows);
  }

  /// Packets must arrive in non-decreasing timestamp order (throws
  /// std::invalid_argument otherwise — classification depends on it).
  void add(const net::PacketRecord& packet) {
    if (packet.timestamp < last_ts_) {
      throw std::invalid_argument("FlowClassifier: out-of-order packet");
    }
    last_ts_ = packet.timestamp;
    ++counters_.packets;

    const key_type key = extract_(packet);
    auto [it, inserted] = active_.try_emplace(key);
    Active& a = it->second;
    if (!inserted) {
      const bool timed_out =
          packet.timestamp - a.record.end > options_.timeout;
      const bool crossed =
          interval_index(packet.timestamp) != interval_index(a.record.start);
      if (timed_out || crossed) {
        const bool continuation = crossed && !timed_out;
        emit(a.record);
        a.record = FlowRecord{};
        a.record.continued = continuation;
        if (continuation) ++counters_.boundary_splits;
        inserted = true;
      }
    }
    if (inserted || a.record.packets == 0) {
      a.record.start = packet.timestamp;
      a.record.end = packet.timestamp;
      a.record.size_bytes = 0;
      a.record.packets = 0;
    }
    a.record.end = packet.timestamp;
    a.record.size_bytes += packet.size_bytes;
    ++a.record.packets;
  }

  /// Terminates all active flows (end of capture). The classifier can be
  /// reused afterwards — the stream clock resets, so the next capture may
  /// start at any timestamp.
  void flush() {
    for (auto& [key, a] : active_) emit(a.record);
    active_.clear();
    last_ts_ = -std::numeric_limits<double>::infinity();
  }

  /// Emits and removes every flow idle for longer than the timeout as of
  /// `now` (NetFlow's inactive timer). Without this, a flow whose 5-tuple
  /// never recurs stays in the table until flush(). Full-table scan: call
  /// it periodically (e.g. once per second of trace time), not per packet.
  void expire_idle(double now) {
    for (auto it = active_.begin(); it != active_.end();) {
      if (now - it->second.record.end > options_.timeout) {
        emit(it->second.record);
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Completed flows so far, in completion order (not arrival order).
  [[nodiscard]] const std::vector<FlowRecord>& flows() const { return flows_; }
  [[nodiscard]] std::vector<FlowRecord> take_flows() {
    return std::exchange(flows_, {});
  }

  [[nodiscard]] const ClassifierCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }

  /// Packets of discarded single-packet flows (only populated when
  /// options.record_discards is set).
  [[nodiscard]] const std::vector<DiscardedPacket>& discards() const {
    return discards_;
  }
  /// Takes ownership of the discard list (streaming consumers drain it so
  /// it does not grow with the trace).
  [[nodiscard]] std::vector<DiscardedPacket> take_discards() {
    return std::exchange(discards_, {});
  }

 private:
  struct Active {
    FlowRecord record;
  };

  [[nodiscard]] long interval_index(double ts) const {
    if (!std::isfinite(options_.interval)) return 0;
    return static_cast<long>(ts / options_.interval);
  }

  void emit(const FlowRecord& rec) {
    if (rec.packets == 0) return;
    if (rec.packets == 1 && options_.discard_single_packet) {
      ++counters_.single_packet_discards;
      if (options_.record_discards) {
        discards_.push_back({rec.start, rec.size_bytes});
      }
      return;
    }
    flows_.push_back(rec);
    ++counters_.flows_emitted;
  }

  KeyExtractor extract_;
  ClassifierOptions options_;
  Map<key_type, Active, typename KeyExtractor::hash_type> active_;
  std::vector<FlowRecord> flows_;
  std::vector<DiscardedPacket> discards_;
  ClassifierCounters counters_;
  double last_ts_ = -std::numeric_limits<double>::infinity();
};

using FiveTupleClassifier = FlowClassifier<FiveTupleKey>;
using Prefix24Classifier = FlowClassifier<PrefixKey<24>>;

/// Convenience: classify a whole packet vector and return flows sorted by
/// start time (the (T_n) order the model expects).
template <typename KeyExtractor>
[[nodiscard]] std::vector<FlowRecord> classify_all_with(
    KeyExtractor extractor, std::span<const net::PacketRecord> packets,
    ClassifierOptions options = {}, ClassifierCounters* counters = nullptr) {
  FlowClassifier<KeyExtractor> c(std::move(extractor), options);
  for (const auto& p : packets) c.add(p);
  c.flush();
  auto flows = c.take_flows();
  std::sort(flows.begin(), flows.end(), ByStart{});
  if (counters) *counters = c.counters();
  return flows;
}

template <typename KeyExtractor>
[[nodiscard]] std::vector<FlowRecord> classify_all(
    std::span<const net::PacketRecord> packets,
    ClassifierOptions options = {},
    ClassifierCounters* counters = nullptr) {
  return classify_all_with(KeyExtractor{}, packets, options, counters);
}

}  // namespace fbm::flow
