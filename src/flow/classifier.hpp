// Timeout-based flow classification (Section III of the paper).
//
// Rules implemented exactly as described:
//  - a flow ends when no packet arrives for `timeout` (default 60 s);
//  - duration = last packet time - first packet time;
//  - single-packet flows are discarded (their duration would be zero) and
//    their packets are excluded from rate-variance measurements. The rule
//    applies to whole flows, not split pieces: a one-packet piece that
//    continues an earlier piece or is continued by a later one is kept;
//  - flows overlapping an analysis-interval boundary are split: the piece in
//    each interval is recorded separately, the later pieces flagged
//    `continued` (this is what produces the step at t=0 in Figure 1).
//
// The classifier is generic over the flow key: FiveTupleKey reproduces flow
// definition 1, PrefixKey<24> definition 2, and any /n is available for the
// aggregation-level extension discussed in Section VI-A.
//
// The active-flow table is a core::FlatHashMap (open addressing, robin-hood
// probing) — the per-packet try_emplace is the pipeline's hottest operation
// and the flat table removes std::unordered_map's per-node allocation and
// pointer chase. The map type is a template parameter so bench_micro_perf
// can A/B the two implementations on identical workloads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "flow/flow_record.hpp"
#include "net/lpm.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"

namespace fbm::flow {

/// Flow definition 1: the 5-tuple itself.
struct FiveTupleKey {
  using key_type = net::FiveTuple;
  using hash_type = net::FiveTupleHash;
  [[nodiscard]] key_type operator()(const net::PacketRecord& p) const {
    return p.tuple;
  }
};

/// Flow definition 2: destination address prefix (paper uses /24).
template <int Bits>
struct PrefixKey {
  static_assert(Bits >= 0 && Bits <= 32);
  using key_type = net::Prefix;
  using hash_type = net::PrefixHash;
  [[nodiscard]] key_type operator()(const net::PacketRecord& p) const {
    return net::Prefix(p.tuple.dst, Bits);
  }
};

/// Section VI-A extension: flows keyed by the "routable" prefix — the
/// longest-prefix-match entry of a forwarding table. Destinations with no
/// covering route fall back to their /24 (a real router would drop them; a
/// monitor still has to account for the bytes).
struct RoutableKey {
  using key_type = net::Prefix;
  using hash_type = net::PrefixHash;

  explicit RoutableKey(const net::RoutingTable* table) : table_(table) {
    if (table_ == nullptr) {
      throw std::invalid_argument("RoutableKey: null routing table");
    }
  }

  [[nodiscard]] key_type operator()(const net::PacketRecord& p) const {
    if (const auto prefix = table_->lookup_prefix(p.tuple.dst)) {
      return *prefix;
    }
    return net::Prefix(p.tuple.dst, 24);
  }

 private:
  const net::RoutingTable* table_;
};

struct ClassifierOptions {
  double timeout = 60.0;  ///< idle gap that terminates a flow, seconds
  /// Analysis-interval length for boundary splitting; infinity disables
  /// splitting. The paper uses 30 minutes.
  double interval = std::numeric_limits<double>::infinity();
  bool discard_single_packet = true;
  /// Keep (timestamp, bytes) of discarded single-packet flows so the rate
  /// measurement can exclude them, as the paper does.
  bool record_discards = false;
  /// Active-flow table capacity reserved up front (0 = grow on demand).
  /// Backbone traces hold tens of thousands of concurrent flows; reserving
  /// ahead skips the rehash cascade during ramp-up.
  std::size_t reserve_flows = 0;
};

/// A packet belonging to a discarded single-packet flow.
struct DiscardedPacket {
  double timestamp;
  std::uint64_t size_bytes;
};

struct ClassifierCounters {
  std::uint64_t packets = 0;
  std::uint64_t flows_emitted = 0;       ///< records produced (incl. pieces)
  std::uint64_t single_packet_discards = 0;
  std::uint64_t boundary_splits = 0;     ///< pieces created by splitting
};

/// Streaming classifier: feed packets in timestamp order, collect completed
/// FlowRecords. Completion happens when (a) a packet of the same key arrives
/// after the idle timeout, (b) a packet of the same key arrives in a later
/// analysis interval, or (c) flush() is called at end of trace.
///
/// `Map` is the active-flow table implementation; the default FlatHashMap is
/// the production choice, std::unordered_map remains pluggable for the
/// bench_micro_perf A/B comparison.
template <typename KeyExtractor,
          template <typename, typename, typename> class Map =
              core::FlatHashMap>
class FlowClassifier {
 public:
  using key_type = typename KeyExtractor::key_type;

  explicit FlowClassifier(ClassifierOptions options = {})
      : FlowClassifier(KeyExtractor{}, options) {}

  /// For stateful key extractors (e.g. RoutableKey over a routing table).
  FlowClassifier(KeyExtractor extractor, ClassifierOptions options)
      : extract_(std::move(extractor)), options_(options) {
    if (!(options_.timeout > 0.0)) {
      throw std::invalid_argument("FlowClassifier: timeout <= 0");
    }
    if (!(options_.interval > 0.0)) {
      throw std::invalid_argument("FlowClassifier: interval <= 0");
    }
    if (options_.reserve_flows > 0) active_.reserve(options_.reserve_flows);
  }

  /// Packets must arrive in non-decreasing timestamp order (throws
  /// std::invalid_argument otherwise — classification depends on it).
  void add(const net::PacketRecord& packet) {
    if (packet.timestamp < last_ts_) {
      throw std::invalid_argument("FlowClassifier: out-of-order packet");
    }
    last_ts_ = packet.timestamp;
    ++counters_.packets;
    const key_type key = extract_(packet);
    step(key, hash_value(key), packet.timestamp, packet.size_bytes,
         interval_index(packet.timestamp));
  }

  void add_batch(const net::PacketBatch& batch) {
    add_batch(batch, 0, batch.size());
  }

  /// Batched add of packets [begin, end) of `batch`. Emits exactly what an
  /// add() per packet would — the batch form only hoists work: ordering is
  /// validated in one scan, keys and hashes are computed for the whole
  /// range up front (hash-ahead, prefetching the flow-table slot a few
  /// packets ahead of use), and the interval index is evaluated once per
  /// interval-homogeneous run instead of once per packet.
  void add_batch(const net::PacketBatch& batch, std::size_t begin,
                 std::size_t end) {
    if (begin >= end) return;
    const double* ts = batch.timestamps.data();
    const std::uint32_t* sizes = batch.sizes.data();
    if (ts[begin] < last_ts_) {
      throw std::invalid_argument("FlowClassifier: out-of-order packet");
    }
    for (std::size_t i = begin + 1; i < end; ++i) {
      if (ts[i] < ts[i - 1]) {
        throw std::invalid_argument("FlowClassifier: out-of-order packet");
      }
    }
    last_ts_ = ts[end - 1];
    const std::size_t n = end - begin;
    counters_.packets += n;

    keys_scratch_.resize(n);
    hash_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys_scratch_[i] = extract_(batch.record(begin + i));
      hash_scratch_[i] = hash_value(keys_scratch_[i]);
    }

    std::size_t i = begin;
    while (i < end) {
      const std::int64_t idx = interval_index(ts[i]);
      const std::size_t run = run_end(ts, i, end, idx);
      for (std::size_t k = i; k < run; ++k) {
        const std::size_t ahead = k - begin + kPrefetchAhead;
        if (ahead < n) prefetch_slot(hash_scratch_[ahead]);
        step(keys_scratch_[k - begin], hash_scratch_[k - begin], ts[k],
             sizes[k], idx);
      }
      i = run;
    }
  }

  /// Terminates all active flows (end of capture). The classifier can be
  /// reused afterwards — the stream clock resets, so the next capture may
  /// start at any timestamp.
  void flush() {
    for (auto& [key, a] : active_) emit(a.record, false);
    active_.clear();
    last_ts_ = -std::numeric_limits<double>::infinity();
  }

  /// Emits and removes every flow idle for longer than the timeout as of
  /// `now` (NetFlow's inactive timer). Without this, a flow whose 5-tuple
  /// never recurs stays in the table until flush(). Full-table scan: call
  /// it periodically (e.g. once per second of trace time), not per packet.
  void expire_idle(double now) {
    for (auto it = active_.begin(); it != active_.end();) {
      if (now - it->second.record.end > options_.timeout) {
        emit(it->second.record, false);
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Completed flows so far, in completion order (not arrival order).
  [[nodiscard]] const std::vector<FlowRecord>& flows() const { return flows_; }
  [[nodiscard]] std::vector<FlowRecord> take_flows() {
    return std::exchange(flows_, {});
  }

  [[nodiscard]] const ClassifierCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }

  /// Packets of discarded single-packet flows (only populated when
  /// options.record_discards is set).
  [[nodiscard]] const std::vector<DiscardedPacket>& discards() const {
    return discards_;
  }
  /// Takes ownership of the discard list (streaming consumers drain it so
  /// it does not grow with the trace).
  [[nodiscard]] std::vector<DiscardedPacket> take_discards() {
    return std::exchange(discards_, {});
  }

  // --- checkpoint hooks ------------------------------------------------
  // flush()/expire_idle() emit in active-table iteration order, and that
  // order decides the floating-point accumulation order downstream — so a
  // snapshot captures the table's *exact slot layout*, not just the key
  // set. With the FlatHashMap the slot index round-trips bit for bit; the
  // std::unordered_map A/B fallback degrades to insertion order (its
  // iteration order is not serializable, so it has no bit-exact restore).

  /// The stream clock (timestamp of the last packet; -inf before any).
  [[nodiscard]] double stream_clock() const { return last_ts_; }

  /// Slots allocated in the active table (0 before the first insert).
  [[nodiscard]] std::size_t active_capacity() const {
    if constexpr (requires(const map_type& m) { m.capacity(); }) {
      return active_.capacity();
    } else {
      return 0;
    }
  }

  /// Active-table occupancy / capacity (0 before the first insert).
  [[nodiscard]] double table_load_factor() const {
    const std::size_t cap = active_capacity();
    if (cap == 0) return 0.0;
    return static_cast<double>(active_.size()) / static_cast<double>(cap);
  }

  /// Mean probe distance of the active table (telemetry; 0 when the map
  /// implementation doesn't expose probe geometry).
  [[nodiscard]] double table_mean_probe() const {
    if constexpr (requires(const map_type& m) { m.mean_probe_distance(); }) {
      return active_.mean_probe_distance();
    } else {
      return 0.0;
    }
  }

  /// Calls fn(slot, key, record, start_index) for every active flow in
  /// iteration (slot) order.
  template <typename Fn>
  void visit_active(Fn&& fn) const {
    if constexpr (requires(const map_type& m) {
                    m.visit_slots([](std::size_t, const auto&) {});
                  }) {
      active_.visit_slots([&](std::size_t slot, const auto& kv) {
        fn(slot, kv.first, kv.second.record, kv.second.start_index);
      });
    } else {
      std::size_t slot = 0;
      for (const auto& [key, a] : active_) {
        fn(slot++, key, a.record, a.start_index);
      }
    }
  }

  /// Prepares the active table for restore_active_flow() calls: exactly
  /// `capacity` slots (what active_capacity() of the saved table reported).
  void begin_restore_active(std::size_t capacity) {
    if constexpr (requires(map_type& m) { m.restore_layout_begin(capacity); }) {
      active_.restore_layout_begin(capacity);
    } else {
      active_.clear();
      (void)capacity;
    }
  }

  /// Places one saved active flow back into its exact slot.
  void restore_active_flow(std::size_t slot, const key_type& key,
                           const FlowRecord& record, std::int64_t start_index) {
    if constexpr (requires(map_type& m) {
                    m.restore_layout_place(slot, key, Active{});
                  }) {
      active_.restore_layout_place(slot, key, Active{record, start_index});
    } else {
      auto [it, inserted] = active_.try_emplace(key);
      if (!inserted) {
        throw std::invalid_argument("FlowClassifier: duplicate restored key");
      }
      it->second = Active{record, start_index};
      (void)slot;
    }
  }

  /// Restores the streaming side: pending completed flows and discards,
  /// counters, and the stream clock.
  void restore_streams(std::vector<FlowRecord> flows,
                       std::vector<DiscardedPacket> discards,
                       const ClassifierCounters& counters, double last_ts) {
    flows_ = std::move(flows);
    discards_ = std::move(discards);
    counters_ = counters;
    last_ts_ = last_ts;
  }

 private:
  struct Active {
    FlowRecord record;
    /// interval_index(record.start), cached at piece start so the per-packet
    /// boundary check is an integer compare instead of a floor division.
    std::int64_t start_index = 0;
  };

  using map_type = Map<key_type, Active, typename KeyExtractor::hash_type>;

  /// Flow-table slots to prefetch ahead of the packet being classified in
  /// add_batch (hash-ahead distance). Far enough to cover a memory load,
  /// near enough that the line is still resident when the probe runs.
  static constexpr std::size_t kPrefetchAhead = 8;

  /// Canonical interval index: floor division, matching api::interval_index_of
  /// and stats::group_by_interval. Floor — not truncation toward zero — so
  /// negative timestamps land in negative intervals instead of folding into
  /// index 0 and never splitting at the t=0 boundary.
  [[nodiscard]] std::int64_t interval_index(double ts) const {
    if (!std::isfinite(options_.interval)) return 0;
    return static_cast<std::int64_t>(std::floor(ts / options_.interval));
  }

  /// First index in (i, end) whose interval index differs from `idx`, or
  /// `end` when the whole range shares it. Timestamps are non-decreasing, so
  /// floor(ts/interval) is non-decreasing and the crossing can be bisected:
  /// O(log n) evaluations of the canonical index expression per interval
  /// crossing instead of one per packet — and every index the classifier
  /// ever uses comes from the same expression, so the batched path cannot
  /// disagree with the per-packet path by a ulp.
  [[nodiscard]] std::size_t run_end(const double* ts, std::size_t i,
                                    std::size_t end, std::int64_t idx) const {
    if (interval_index(ts[end - 1]) == idx) return end;
    std::size_t lo = i + 1;
    std::size_t hi = end - 1;  // known: interval_index(ts[hi]) != idx
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (interval_index(ts[mid]) == idx) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::uint64_t hash_value(const key_type& key) const {
    if constexpr (requires(const map_type& m) { m.hash_of(key); }) {
      return active_.hash_of(key);
    } else {
      return static_cast<std::uint64_t>(
          typename KeyExtractor::hash_type{}(key));
    }
  }

  void prefetch_slot(std::uint64_t hash) const {
    if constexpr (requires(const map_type& m) { m.prefetch_hashed(hash); }) {
      active_.prefetch_hashed(hash);
    }
  }

  auto emplace_key(const key_type& key, std::uint64_t hash) {
    if constexpr (requires(map_type& m) { m.try_emplace_hashed(hash, key); }) {
      return active_.try_emplace_hashed(hash, key);
    } else {
      (void)hash;
      return active_.try_emplace(key);
    }
  }

  /// One packet's worth of classification, ordering/counters already
  /// handled by the caller. `idx` must equal interval_index(ts).
  void step(const key_type& key, std::uint64_t hash, double ts,
            std::uint32_t size_bytes, std::int64_t idx) {
    auto [it, inserted] = emplace_key(key, hash);
    Active& a = it->second;
    if (!inserted) {
      const bool timed_out = ts - a.record.end > options_.timeout;
      const bool crossed = idx != a.start_index;
      if (timed_out || crossed) {
        const bool continuation = crossed && !timed_out;
        emit(a.record, continuation);
        a.record = FlowRecord{};
        a.record.continued = continuation;
        if (continuation) ++counters_.boundary_splits;
        inserted = true;
      }
    }
    if (inserted || a.record.packets == 0) {
      a.record.start = ts;
      a.record.end = ts;
      a.record.size_bytes = 0;
      a.record.packets = 0;
      a.start_index = idx;
    }
    a.record.end = ts;
    a.record.size_bytes += size_bytes;
    ++a.record.packets;
  }

  /// `continues` marks a record being closed because a later piece of the
  /// same flow is starting (boundary split). The paper discards
  /// single-packet FLOWS, not pieces: a one-packet record still belongs to
  /// a multi-packet flow when it continues an earlier piece (rec.continued)
  /// or is continued by a later one (`continues`), so only records with
  /// neither are discarded.
  void emit(const FlowRecord& rec, bool continues) {
    if (rec.packets == 0) return;
    if (rec.packets == 1 && options_.discard_single_packet &&
        !rec.continued && !continues) {
      ++counters_.single_packet_discards;
      if (options_.record_discards) {
        discards_.push_back({rec.start, rec.size_bytes});
      }
      return;
    }
    flows_.push_back(rec);
    ++counters_.flows_emitted;
  }

  KeyExtractor extract_;
  ClassifierOptions options_;
  map_type active_;
  std::vector<FlowRecord> flows_;
  std::vector<DiscardedPacket> discards_;
  ClassifierCounters counters_;
  std::vector<key_type> keys_scratch_;
  std::vector<std::uint64_t> hash_scratch_;
  double last_ts_ = -std::numeric_limits<double>::infinity();
};

using FiveTupleClassifier = FlowClassifier<FiveTupleKey>;
using Prefix24Classifier = FlowClassifier<PrefixKey<24>>;

/// Convenience: classify a whole packet vector and return flows sorted by
/// start time (the (T_n) order the model expects).
template <typename KeyExtractor>
[[nodiscard]] std::vector<FlowRecord> classify_all_with(
    KeyExtractor extractor, std::span<const net::PacketRecord> packets,
    ClassifierOptions options = {}, ClassifierCounters* counters = nullptr) {
  FlowClassifier<KeyExtractor> c(std::move(extractor), options);
  for (const auto& p : packets) c.add(p);
  c.flush();
  auto flows = c.take_flows();
  std::sort(flows.begin(), flows.end(), ByStart{});
  if (counters) *counters = c.counters();
  return flows;
}

template <typename KeyExtractor>
[[nodiscard]] std::vector<FlowRecord> classify_all(
    std::span<const net::PacketRecord> packets,
    ClassifierOptions options = {},
    ClassifierCounters* counters = nullptr) {
  return classify_all_with(KeyExtractor{}, packets, options, counters);
}

}  // namespace fbm::flow
