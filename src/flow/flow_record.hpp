// Completed flow records (the model's (T_n, S_n, D_n) observations).
#pragma once

#include <cstdint>

namespace fbm::flow {

/// One completed flow (or flow piece after interval splitting).
/// Size is in bytes; the model converts to bits where rates are needed.
struct FlowRecord {
  double start = 0.0;   ///< timestamp of the first packet (T_n)
  double end = 0.0;     ///< timestamp of the last packet
  std::uint64_t bytes = 0;   ///< S_n
  std::uint64_t packets = 0;
  bool continued = false;    ///< piece of a flow split at an interval boundary

  /// D_n = time between first and last packet (paper Section III).
  [[nodiscard]] double duration() const { return end - start; }

  /// Mean rate S_n/D_n in bits/s; 0 for zero-duration flows.
  [[nodiscard]] double mean_rate_bps() const {
    const double d = duration();
    return d > 0.0 ? static_cast<double>(bytes) * 8.0 / d : 0.0;
  }
};

}  // namespace fbm::flow
