// Completed flow records (the model's (T_n, S_n, D_n) observations).
#pragma once

#include <cstdint>

namespace fbm::flow {

/// One completed flow (or flow piece after interval splitting).
/// The on-wire size is stored in bytes; use size_bits() where the model
/// needs bits (all rates in this codebase are bits/s).
struct FlowRecord {
  double start = 0.0;   ///< timestamp of the first packet (T_n)
  double end = 0.0;     ///< timestamp of the last packet
  std::uint64_t size_bytes = 0;   ///< S_n, bytes on the wire
  std::uint64_t packets = 0;
  bool continued = false;    ///< piece of a flow split at an interval boundary

  /// S_n in model units (bits).
  [[nodiscard]] double size_bits() const {
    return static_cast<double>(size_bytes) * 8.0;
  }

  /// D_n = time between first and last packet (paper Section III).
  [[nodiscard]] double duration() const { return end - start; }

  /// Mean rate S_n/D_n in bits/s; 0 for zero-duration flows.
  [[nodiscard]] double mean_rate_bps() const {
    const double d = duration();
    return d > 0.0 ? size_bits() / d : 0.0;
  }
};

/// Strict-weak ordering by start time with full tie-breaking, so sorting a
/// permuted set of records is deterministic regardless of input order (the
/// streaming and batch pipelines must agree bit-for-bit).
struct ByStart {
  [[nodiscard]] bool operator()(const FlowRecord& a,
                                const FlowRecord& b) const {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    if (a.size_bytes != b.size_bytes) return a.size_bytes < b.size_bytes;
    if (a.packets != b.packets) return a.packets < b.packets;
    return a.continued < b.continued;
  }
};

}  // namespace fbm::flow
