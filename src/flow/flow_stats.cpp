#include "flow/flow_stats.hpp"

#include <algorithm>

#include "stats/autocorrelation.hpp"

namespace fbm::flow {

PopulationDiagnostics diagnose_population(std::span<const FlowRecord> flows,
                                          std::size_t qq_points,
                                          std::size_t max_lag) {
  PopulationDiagnostics d;
  d.flows = flows.size();
  d.continued = static_cast<std::size_t>(
      std::count_if(flows.begin(), flows.end(),
                    [](const FlowRecord& f) { return f.continued; }));
  if (flows.size() < 3) return d;

  std::vector<double> inter;
  inter.reserve(flows.size() - 1);
  for (std::size_t i = 1; i < flows.size(); ++i) {
    inter.push_back(std::max(0.0, flows[i].start - flows[i - 1].start));
  }
  std::vector<double> sizes;
  std::vector<double> durations;
  sizes.reserve(flows.size());
  durations.reserve(flows.size());
  for (const auto& f : flows) {
    sizes.push_back(static_cast<double>(f.size_bytes));
    durations.push_back(f.duration());
  }

  d.interarrival_qq = stats::qq_exponential(inter, qq_points, true);
  d.interarrival_acf = stats::autocorrelation_series(inter, max_lag);
  d.interarrival_ks = stats::ks_test_exponential(inter);
  d.size_acf = stats::autocorrelation_series(sizes, max_lag);
  d.duration_acf = stats::autocorrelation_series(durations, max_lag);
  d.white_noise_band = stats::white_noise_band(inter.size());
  return d;
}

}  // namespace fbm::flow
