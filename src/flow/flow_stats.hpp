// Flow-population diagnostics backing Figures 1 and 3-6.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "flow/flow_record.hpp"
#include "stats/ks_test.hpp"
#include "stats/quantile.hpp"

namespace fbm::flow {

/// Everything the paper plots about one interval's flow population.
struct PopulationDiagnostics {
  std::size_t flows = 0;
  std::size_t continued = 0;

  // Figures 3-4: inter-arrival distribution vs exponential.
  std::vector<stats::QQPoint> interarrival_qq;  ///< normalised axes
  std::vector<double> interarrival_acf;         ///< lags 0..max_lag
  stats::KsResult interarrival_ks{0.0, 1.0};

  // Figures 5-6: serial correlation of sizes and durations.
  std::vector<double> size_acf;
  std::vector<double> duration_acf;

  double white_noise_band = 0.0;  ///< +-1.96/sqrt(n) reference
};

/// Computes the full diagnostic set for a set of flows sorted by start time.
/// `qq_points` quantile levels and ACF lags 0..`max_lag`.
[[nodiscard]] PopulationDiagnostics diagnose_population(
    std::span<const FlowRecord> flows, std::size_t qq_points = 100,
    std::size_t max_lag = 20);

}  // namespace fbm::flow
