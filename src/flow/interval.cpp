#include "flow/interval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace fbm::flow {

std::vector<IntervalData> group_by_interval(std::span<const FlowRecord> flows,
                                            double interval_s,
                                            double horizon_s) {
  if (!(interval_s > 0.0)) {
    throw std::invalid_argument("group_by_interval: interval <= 0");
  }
  if (!(horizon_s > 0.0)) {
    throw std::invalid_argument("group_by_interval: horizon <= 0");
  }
  const auto n_intervals =
      static_cast<std::size_t>(std::ceil(horizon_s / interval_s - 1e-9));
  std::vector<IntervalData> out(n_intervals);
  for (std::size_t i = 0; i < n_intervals; ++i) {
    out[i].start = static_cast<double>(i) * interval_s;
    out[i].length = interval_s;
  }
  for (const auto& f : flows) {
    if (f.start < 0.0 || f.start >= horizon_s) continue;
    const auto idx = static_cast<std::size_t>(f.start / interval_s);
    if (idx < out.size()) out[idx].flows.push_back(f);
  }
  for (auto& iv : out) {
    std::sort(iv.flows.begin(), iv.flows.end(), ByStart{});
  }
  return out;
}

ModelInputs estimate_inputs(const IntervalData& interval,
                            double min_duration_s) {
  ModelInputs in;
  in.flows = interval.flows.size();
  if (interval.flows.empty() || !(interval.length > 0.0)) return in;

  in.lambda = static_cast<double>(in.flows) / interval.length;
  stats::RunningStats size_bits;
  stats::RunningStats s2_over_d;
  for (const auto& f : interval.flows) {
    const double s = f.size_bits();
    size_bits.add(s);
    const double d = std::max(f.duration(), min_duration_s);
    s2_over_d.add(s * s / d);
  }
  in.mean_size_bits = size_bits.mean();
  in.mean_s2_over_d = s2_over_d.mean();
  return in;
}

std::vector<double> interarrival_times(const IntervalData& interval) {
  std::vector<double> out;
  if (interval.flows.size() < 2) return out;
  out.reserve(interval.flows.size() - 1);
  for (std::size_t i = 1; i < interval.flows.size(); ++i) {
    out.push_back(interval.flows[i].start - interval.flows[i - 1].start);
  }
  return out;
}

std::vector<double> sizes_bytes(const IntervalData& interval) {
  std::vector<double> out;
  out.reserve(interval.flows.size());
  for (const auto& f : interval.flows) {
    out.push_back(static_cast<double>(f.size_bytes));
  }
  return out;
}

std::vector<double> durations_s(const IntervalData& interval) {
  std::vector<double> out;
  out.reserve(interval.flows.size());
  for (const auto& f : interval.flows) out.push_back(f.duration());
  return out;
}

std::vector<std::size_t> cumulative_arrivals(const IntervalData& interval,
                                             double step_s) {
  if (!(step_s > 0.0)) {
    throw std::invalid_argument("cumulative_arrivals: step <= 0");
  }
  const auto steps =
      static_cast<std::size_t>(std::floor(interval.length / step_s)) + 1;
  std::vector<std::size_t> out(steps, 0);
  for (const auto& f : interval.flows) {
    const double rel = f.start - interval.start;
    if (rel < 0.0) continue;
    auto idx = static_cast<std::size_t>(rel / step_s) + 1;
    if (idx < out.size()) ++out[idx];
    // Flows beyond the last full step are ignored for the curve.
  }
  for (std::size_t i = 1; i < out.size(); ++i) out[i] += out[i - 1];
  return out;
}

std::size_t continued_count(const IntervalData& interval) {
  return static_cast<std::size_t>(
      std::count_if(interval.flows.begin(), interval.flows.end(),
                    [](const FlowRecord& f) { return f.continued; }));
}

}  // namespace fbm::flow
