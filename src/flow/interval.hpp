// Analysis-interval bookkeeping (the paper's 30-minute windows).
//
// Groups completed FlowRecords by interval and derives, per interval, the
// three model inputs (lambda, E[S], E[S^2/D]) plus the raw series used by
// Figures 1 and 3-6 (inter-arrival times, sizes, durations, cumulative
// arrival curve).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "flow/flow_record.hpp"

namespace fbm::flow {

/// Model inputs estimated from one interval of flows (paper Section V-G:
/// "only three parameters").
struct ModelInputs {
  double lambda = 0.0;        ///< flow arrivals per second
  double mean_size_bits = 0.0;      ///< E[S], bits
  double mean_s2_over_d = 0.0;      ///< E[S^2/D], bits^2/s
  std::size_t flows = 0;

  /// Corollary 1: E[R] = lambda * E[S], bits/s.
  [[nodiscard]] double mean_rate_bps() const {
    return lambda * mean_size_bits;
  }
};

/// One analysis interval and everything measured in it.
struct IntervalData {
  double start = 0.0;
  double length = 0.0;
  std::vector<FlowRecord> flows;  ///< sorted by start time

  [[nodiscard]] double end() const { return start + length; }
};

/// Splits flows (already split at boundaries by the classifier) into
/// intervals of `interval_s` covering [0, horizon). A flow belongs to the
/// interval containing its start time. Flows starting beyond the horizon are
/// dropped. Intervals are returned in time order; empty intervals are kept
/// so indices line up with wall-clock windows.
[[nodiscard]] std::vector<IntervalData> group_by_interval(
    std::span<const FlowRecord> flows, double interval_s, double horizon_s);

/// Estimates the model inputs from one interval. Flows with zero duration
/// contribute to lambda and E[S] but not to E[S^2/D] (the paper discards
/// them before this point anyway). `min_duration_s` guards the S^2/D ratio
/// against numerically tiny durations (default 1 ms).
[[nodiscard]] ModelInputs estimate_inputs(const IntervalData& interval,
                                          double min_duration_s = 1e-3);

/// Inter-arrival time series of the interval's flows (Figures 3-4).
[[nodiscard]] std::vector<double> interarrival_times(
    const IntervalData& interval);

/// Size (bytes) and duration (s) series in arrival order (Figures 5-6).
[[nodiscard]] std::vector<double> sizes_bytes(const IntervalData& interval);
[[nodiscard]] std::vector<double> durations_s(const IntervalData& interval);

/// Cumulative arrival counts sampled every `step_s` from the interval start
/// (Figure 1): out[i] = number of flows arrived in [start, start+i*step].
[[nodiscard]] std::vector<std::size_t> cumulative_arrivals(
    const IntervalData& interval, double step_s);

/// Number of flows in the interval flagged as continuations of flows split
/// at the boundary (the ~15k/680k effect in Figure 1).
[[nodiscard]] std::size_t continued_count(const IntervalData& interval);

}  // namespace fbm::flow
