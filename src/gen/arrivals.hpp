// Nonstationary Poisson arrival sampling (fbm::gen).
//
// Ogata thinning: candidate arrivals are drawn from a homogeneous Poisson
// process at an envelope rate lambda_max >= lambda(t) everywhere, and each
// candidate at time t is accepted with probability lambda(t)/lambda_max.
// The accepted points are an exact draw from the inhomogeneous process —
// no discretization, and (given a seeded Rng) fully deterministic: every
// candidate costs exactly two Rng draws (one exponential, one uniform)
// whether accepted or not, so the stream of accepted arrivals does not
// depend on how the caller interleaves other randomness between calls.
//
// gen::generate's two-state MMPP modulation is a special case (a
// two-level lambda(t)); the scenario engine uses this for its
// regime-switching lambda profile.
#pragma once

#include <stdexcept>

#include "stats/rng.hpp"

namespace fbm::gen {

class ThinningArrivals {
 public:
  /// `lambda_max` must dominate every rate the intensity function will
  /// return; throws std::invalid_argument otherwise (<= 0).
  explicit ThinningArrivals(double lambda_max) : lambda_max_(lambda_max) {
    if (!(lambda_max > 0.0)) {
      throw std::invalid_argument("ThinningArrivals: lambda_max <= 0");
    }
  }

  /// Next accepted arrival at or after the current position, or a time
  /// >= `horizon_s` when the process leaves the horizon first (the
  /// returned overshoot time is NOT an arrival; callers stop there).
  /// `intensity(t)` returns lambda(t) and may be called once per
  /// candidate; values above lambda_max throw std::logic_error — a
  /// violated envelope would silently distort the process.
  template <typename Intensity>
  [[nodiscard]] double next(stats::Rng& rng, double horizon_s,
                            Intensity&& intensity) {
    while (t_ < horizon_s) {
      t_ += rng.exponential(lambda_max_);
      const double u = rng.uniform();
      if (t_ >= horizon_s) break;
      const double rate = intensity(t_);
      if (rate > lambda_max_ * (1.0 + 1e-12)) {
        throw std::logic_error(
            "ThinningArrivals: intensity exceeds the lambda_max envelope");
      }
      if (u * lambda_max_ < rate) return t_;
    }
    return t_;
  }

  /// Current position of the candidate clock (the last candidate time).
  [[nodiscard]] double position() const { return t_; }
  [[nodiscard]] double lambda_max() const { return lambda_max_; }

  /// Rewind to time zero (the caller re-seeds its Rng separately).
  void reset() { t_ = 0.0; }

 private:
  double lambda_max_;
  double t_ = 0.0;
};

}  // namespace fbm::gen
