#include "gen/traffic_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fbm::gen {

namespace {

// Draws the next arrival gap under the (possibly modulated) arrival process.
class ArrivalProcess {
 public:
  ArrivalProcess(double lambda, const ArrivalModulation& mod, stats::Rng& rng)
      : lambda_(lambda), mod_(mod), rng_(rng) {
    if (!mod_.is_poisson()) {
      state_high_ = rng_.bernoulli(0.5);
      next_switch_ = rng_.exponential(1.0 / mod_.mean_sojourn_s);
    }
  }

  [[nodiscard]] double next(double now) {
    if (mod_.is_poisson()) return now + rng_.exponential(lambda_);
    // Thinning-free approach: advance piecewise through modulation states.
    double t = now;
    while (true) {
      const double rate =
          lambda_ * (state_high_ ? mod_.high_factor : mod_.low_factor);
      if (rate <= 0.0) {
        t = next_switch_;
        flip();
        continue;
      }
      const double candidate = t + rng_.exponential(rate);
      if (candidate < next_switch_) return candidate;
      t = next_switch_;
      flip();
    }
  }

 private:
  void flip() {
    state_high_ = !state_high_;
    next_switch_ += rng_.exponential(1.0 / mod_.mean_sojourn_s);
  }

  double lambda_;
  ArrivalModulation mod_;
  stats::Rng& rng_;
  bool state_high_ = true;
  double next_switch_ = 0.0;
};

}  // namespace

GeneratedTraffic generate(const GeneratorConfig& config) {
  if (!(config.duration_s > 0.0)) {
    throw std::invalid_argument("generate: duration <= 0");
  }
  if (!(config.lambda > 0.0)) {
    throw std::invalid_argument("generate: lambda <= 0");
  }
  if (!(config.delta_s > 0.0)) {
    throw std::invalid_argument("generate: delta <= 0");
  }
  const bool empirical = !config.resample_pool.empty();
  if (!empirical && (!config.size_bits || !config.duration_s_dist)) {
    throw std::invalid_argument(
        "generate: need either a resample pool or size+duration "
        "distributions");
  }
  core::ShotPtr shot = config.shot ? config.shot : core::triangular_shot();

  stats::Rng rng(config.seed);
  ArrivalProcess arrivals(config.lambda, config.modulation, rng);

  const auto bins = static_cast<std::size_t>(
      std::ceil(config.duration_s / config.delta_s - 1e-9));
  GeneratedTraffic out;
  out.series.start = 0.0;
  out.series.delta = config.delta_s;
  out.series.values.assign(bins, 0.0);

  double t = arrivals.next(0.0);
  while (t < config.duration_s) {
    core::FlowSample fs{};
    if (empirical) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, config.resample_pool.size() - 1));
      fs = config.resample_pool[idx];
    } else {
      fs.size_bits = std::max(1.0, config.size_bits->sample(rng));
      fs.duration_s = std::max(1e-3, config.duration_s_dist->sample(rng));
    }
    ++out.flows;
    out.offered_bits += fs.size_bits;

    // Add the shot's contribution at each covered bin center.
    const double end = std::min(t + fs.duration_s, config.duration_s);
    auto first_bin = static_cast<std::size_t>(
        std::max(0.0, std::floor(t / config.delta_s)));
    for (std::size_t i = first_bin; i < bins; ++i) {
      const double center =
          (static_cast<double>(i) + 0.5) * config.delta_s;
      if (center < t) continue;
      if (center >= end) break;
      out.series.values[i] += shot->value(center - t, fs.size_bits,
                                          fs.duration_s);
    }
    t = arrivals.next(t);
  }
  return out;
}

GeneratorConfig from_model(const core::ShotNoiseModel& model,
                           double duration_s, double delta_s) {
  GeneratorConfig cfg;
  cfg.duration_s = duration_s;
  cfg.lambda = model.lambda();
  cfg.delta_s = delta_s;
  cfg.resample_pool = model.samples();
  cfg.shot = model.shot_ptr();
  return cfg;
}

}  // namespace fbm::gen
