// Model-driven backbone traffic generation (Section VII-C).
//
// Generates a fluid rate process R(t) by simulating the shot-noise model
// itself: Poisson flow arrivals, per-flow (S, D) drawn either from
// parametric distributions or by resampling an empirical population, and a
// chosen shot transmitting the data over the flow lifetime. The paper's
// point: with rectangular shots this reduces to classical flow generation;
// matching the variance/correlation of real traffic requires the shot as a
// new modelling component.
//
// Arrivals can optionally be made bursty (Markov-modulated, two states) to
// probe the model's Poisson assumption — the ablation of DESIGN.md item 5.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "core/shot.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "stats/timeseries.hpp"

namespace fbm::gen {

/// Two-state Markov-modulated Poisson process for the arrival ablation:
/// rate alternates between lambda*high_factor and lambda*low_factor with
/// exponential sojourns of the given means. Poisson when high==low==1.
struct ArrivalModulation {
  double high_factor = 1.0;
  double low_factor = 1.0;
  double mean_sojourn_s = 1.0;

  [[nodiscard]] bool is_poisson() const {
    return high_factor == 1.0 && low_factor == 1.0;
  }
};

struct GeneratorConfig {
  double duration_s = 60.0;
  double lambda = 100.0;        ///< flow arrivals per second
  core::ShotPtr shot;           ///< default: triangular
  double delta_s = 0.2;         ///< output sampling interval

  /// Parametric source: size (bits) and duration (s) drawn independently.
  stats::DistributionPtr size_bits;
  stats::DistributionPtr duration_s_dist;

  /// Empirical source: when non-empty, (S, D) pairs are resampled jointly
  /// from this pool (preserving the S-D correlation) and the parametric
  /// source is ignored.
  std::vector<core::FlowSample> resample_pool;

  ArrivalModulation modulation;  ///< default: plain Poisson
  std::uint64_t seed = stats::Rng::default_seed;
};

struct GeneratedTraffic {
  stats::RateSeries series;          ///< bits/s every delta_s
  std::uint64_t flows = 0;
  double offered_bits = 0.0;         ///< sum of generated flow sizes
};

/// Runs the generator. Flows whose lifetime crosses the horizon are kept
/// (their truncated contribution is what a link monitor would see).
/// Throws std::invalid_argument on inconsistent configuration.
[[nodiscard]] GeneratedTraffic generate(const GeneratorConfig& config);

/// Convenience: configuration that clones a fitted model (its lambda,
/// empirical population and shot).
[[nodiscard]] GeneratorConfig from_model(const core::ShotNoiseModel& model,
                                         double duration_s,
                                         double delta_s = 0.2);

}  // namespace fbm::gen
