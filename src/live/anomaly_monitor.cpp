#include "live/anomaly_monitor.hpp"

#include <algorithm>
#include <cmath>

namespace fbm::live {

AnomalyMonitor::AnomalyMonitor(const LiveConfig& config)
    : band_k_sigma_(config.band_k_sigma),
      alert_min_consecutive_(config.alert_min_consecutive),
      alert_warmup_windows_(config.alert_warmup_windows) {
  bin_options_.k_sigma = config.bin_k_sigma;
  bin_options_.min_consecutive = config.bin_min_consecutive;
}

void AnomalyMonitor::evaluate(WindowReport& report,
                              const stats::RateSeries& series) {
  WindowAnomaly& a = report.anomaly;

  // Band check against the rolling forecast. Without a forecast (cold
  // start) the window cannot be judged; hysteresis state is left alone so a
  // short history gap does not reset a building alert.
  if (report.forecast.available) {
    const WindowForecast& f = report.forecast;
    const double observed = report.measured.mean_bps;
    AlertKind kind = AlertKind::none;
    if (observed > f.band_high_bps) {
      kind = AlertKind::spike;
    } else if (observed < f.band_low_bps) {
      kind = AlertKind::drop;
    }
    a.deviation_sigma =
        f.sigma_bps > 0.0 ? (observed - f.predicted_mean_bps) / f.sigma_bps
                          : 0.0;
    if (kind == AlertKind::none) {
      consecutive_ = 0;
      last_kind_ = AlertKind::none;
    } else {
      consecutive_ = kind == last_kind_ ? consecutive_ + 1 : 1;
      last_kind_ = kind;
      // Hysteresis still accumulates through the warmup, so an excursion
      // already in progress alerts on the first eligible window.
      if (consecutive_ >= alert_min_consecutive_ &&
          report.window_index >= alert_warmup_windows_) {
        a.alert = true;
        a.kind = kind;
      }
    }
    a.consecutive = consecutive_;
  }

  // Bin check: sub-window excursions against the fitted model envelope.
  if (!series.empty() && report.plan.stddev_bps > 0.0) {
    const auto events = dimension::detect_anomalies(
        series, report.plan.mean_bps, report.plan.stddev_bps, bin_options_);
    a.bin_events = events.size();
    for (const auto& e : events) {
      a.bin_peak_sigma = std::max(a.bin_peak_sigma, e.peak_deviation_sigma);
    }
  }
}

}  // namespace fbm::live
