// Window-level anomaly alerting for the live subsystem.
//
// Two detectors run per closed window, both applications the paper's
// introduction names (DoS attacks, link failures):
//
//  - Band check: the window's observed mean rate against the rolling
//    forecast band [predicted - k*sigma, predicted + k*sigma]. Hysteresis:
//    the alert fires after `alert_min_consecutive` consecutive windows
//    outside the band on the same side (1 = every excursion alerts).
//  - Bin check: the window's Delta-binned rate series against the fitted
//    model envelope via dimension::detect_anomalies — sub-window bursts that
//    the window mean averages away still show up here.
#pragma once

#include "dimension/anomaly.hpp"
#include "live/live_config.hpp"
#include "live/window_report.hpp"
#include "stats/timeseries.hpp"

namespace fbm::live {

class AnomalyMonitor {
 public:
  explicit AnomalyMonitor(const LiveConfig& config);

  /// Fills report.anomaly from report.forecast / report.measured and the
  /// window's Delta-binned rate series; updates the hysteresis state.
  /// Windows must be evaluated in index order.
  void evaluate(WindowReport& report, const stats::RateSeries& series);

  /// Consecutive out-of-band windows at the moment (0 when inside).
  [[nodiscard]] std::size_t consecutive_outside() const {
    return consecutive_;
  }

  // --- checkpoint hooks ------------------------------------------------

  /// Direction of the current out-of-band run (none when inside).
  [[nodiscard]] AlertKind last_kind() const { return last_kind_; }

  /// Restores the hysteresis state (the monitor's only mutable state).
  void restore_hysteresis(std::size_t consecutive, AlertKind kind) {
    consecutive_ = consecutive;
    last_kind_ = kind;
  }

 private:
  double band_k_sigma_;
  std::size_t alert_min_consecutive_;
  std::size_t alert_warmup_windows_;
  dimension::AnomalyOptions bin_options_;
  std::size_t consecutive_ = 0;
  AlertKind last_kind_ = AlertKind::none;
};

}  // namespace fbm::live
