#include "live/forecast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "predict/predictor.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"

namespace fbm::live {

RollingForecaster::RollingForecaster(std::size_t max_order,
                                     std::size_t history_capacity,
                                     double k_sigma)
    : max_order_(max_order), capacity_(history_capacity), k_sigma_(k_sigma) {
  if (max_order_ == 0) {
    throw std::invalid_argument("RollingForecaster: max_order == 0");
  }
  if (capacity_ < 4) {
    throw std::invalid_argument("RollingForecaster: history capacity < 4");
  }
  if (!(k_sigma_ > 0.0)) {
    throw std::invalid_argument("RollingForecaster: k_sigma <= 0");
  }
}

void RollingForecaster::observe(double mean_bps) {
  if (history_.size() == capacity_) {
    history_.erase(history_.begin());
  }
  history_.push_back(mean_bps);
}

std::optional<WindowForecast> RollingForecaster::forecast() const {
  // An order-M predictor needs M past samples, an ACF estimated over at
  // least 2M of them to mean anything, and select_order needs a non-empty
  // walk-forward training evaluation. history/2 caps the order accordingly.
  if (history_.size() < 4) return std::nullopt;
  const std::size_t max_order =
      std::max<std::size_t>(1, std::min(max_order_, history_.size() / 2));

  const auto acf = stats::autocorrelation_series(history_, max_order);
  const std::size_t order =
      predict::select_order(acf, history_, max_order);
  const double mean = stats::mean(history_);
  const predict::MovingAveragePredictor predictor(acf, order, mean);

  WindowForecast f;
  f.available = true;
  f.order = predictor.order();
  f.predicted_mean_bps = predictor.predict(history_);
  // theoretical_error() is the one-step MSE normalised by c(0); scale it
  // back by the history variance to get the band in bits/s.
  const double c0 = stats::population_variance(history_);
  f.sigma_bps =
      std::sqrt(std::max(0.0, predictor.theoretical_error()) * c0);
  f.band_low_bps = f.predicted_mean_bps - k_sigma_ * f.sigma_bps;
  f.band_high_bps = f.predicted_mean_bps + k_sigma_ * f.sigma_bps;
  return f;
}

}  // namespace fbm::live
