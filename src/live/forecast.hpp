// Rolling next-window rate forecast (the live counterpart of Section VII-B).
//
// Each closed window contributes one sample of the window-rate process
// {R_k} (mean bits/s over window k). The forecaster keeps a bounded history
// of those samples, estimates the data-driven ACF over it, picks the
// predictor order the paper's way (predict::select_order) and produces the
// one-window-ahead Moving-Average forecast with a confidence band
//   predicted +- k_sigma * sigma,
// sigma^2 = (theoretical normalised MSE from the Levinson recursion) x
// (population variance of the history). No forecast is produced until the
// history is long enough to support at least an order-1 predictor with a
// usable ACF (4 samples) — callers must tolerate nullopt, which is exactly
// the "series shorter than the lag order" edge the satellite tests pin.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "live/window_report.hpp"

namespace fbm::live {

class RollingForecaster {
 public:
  /// max_order >= 1; history_capacity >= 4; k_sigma > 0 (validated by
  /// LiveConfig; throws std::invalid_argument here for standalone use).
  RollingForecaster(std::size_t max_order, std::size_t history_capacity,
                    double k_sigma);

  /// Forecast for the next observation, from the history so far. nullopt
  /// while fewer than 4 samples have been observed (an order-M predictor
  /// needs M past samples plus a non-degenerate ACF estimate).
  [[nodiscard]] std::optional<WindowForecast> forecast() const;

  /// Appends one window's mean rate (the oldest sample falls out once the
  /// capacity is reached).
  void observe(double mean_bps);

  [[nodiscard]] std::size_t history_size() const { return history_.size(); }

  // --- checkpoint hooks ------------------------------------------------

  /// The rolling history, oldest first (forecast() is a pure function of
  /// it, so serializing it captures the forecaster completely).
  [[nodiscard]] const std::vector<double>& history() const {
    return history_;
  }

  /// Replaces the history (restore). Throws std::invalid_argument when the
  /// snapshot holds more samples than this forecaster's capacity.
  void restore_history(std::vector<double> history) {
    if (history.size() > capacity_) {
      throw std::invalid_argument(
          "RollingForecaster: restored history exceeds capacity");
    }
    history_ = std::move(history);
  }

 private:
  std::size_t max_order_;
  std::size_t capacity_;
  double k_sigma_;
  std::vector<double> history_;  ///< oldest first
};

}  // namespace fbm::live
