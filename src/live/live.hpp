// fbm::live — sliding-window online estimation, rolling prediction and
// anomaly alerting over an unbounded packet stream.
//
//   TraceSource ──► WindowedEstimator ──► WindowReport (JSONL)
//                   (per-window batch-exact fit          │
//                    + RollingForecaster                 ▼
//                    + AnomalyMonitor)            fbm_live / dashboards
//
// Typical use:
//
//   fbm::live::LiveConfig config;
//   config.window_s = 30.0;
//   config.stride_s = 10.0;
//   config.analysis.timeout_s(60.0).epsilon(0.01);
//   fbm::live::WindowedEstimator monitor(config);
//   monitor.set_window_sink([](fbm::live::WindowReport&& w) {
//     std::puts(fbm::live::to_jsonl(w).c_str());
//   });
//   auto source = fbm::api::open_trace("capture.fbmt", /*follow=*/true);
//   monitor.consume(*source);
#pragma once

#include "live/anomaly_monitor.hpp"     // IWYU pragma: export
#include "live/forecast.hpp"            // IWYU pragma: export
#include "live/live_config.hpp"         // IWYU pragma: export
#include "live/window_report.hpp"       // IWYU pragma: export
#include "live/windowed_estimator.hpp"  // IWYU pragma: export
