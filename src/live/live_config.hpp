// Configuration for the fbm::live online-monitoring subsystem.
//
// The live subsystem partitions an unbounded packet stream into sliding
// windows of `window_s` seconds starting every `stride_s` seconds (window k
// covers [k*stride, k*stride + window)). stride == window tiles the stream,
// stride < window overlaps (each packet feeds ceil(window/stride) windows),
// stride > window leaves unmonitored gaps — all three are legal. Per window
// the paper's flow-level parameters are re-derived exactly as a batch fit on
// that window's packets would, so the analysis knobs are the familiar
// api::AnalysisConfig (its interval_s is ignored: the window itself is the
// analysis interval, and flows are never boundary-split inside one).
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "api/pipeline.hpp"

namespace fbm::live {

struct LiveConfig {
  /// Flow definition, idle timeout, Delta, epsilon, shot-b policy, expiry
  /// cadence and reserve-ahead come from here; interval_s / threads /
  /// batch_packets are ignored by the live path.
  api::AnalysisConfig analysis;

  double window_s = 60.0;  ///< window width
  double stride_s = 0.0;   ///< window start spacing; 0 means "= window_s"

  // Rolling next-window forecast (predict::MovingAveragePredictor over the
  // per-window mean rates).
  std::size_t forecast_max_order = 8;   ///< predictor lag-order cap
  std::size_t forecast_history = 64;    ///< window rates kept for the ACF
  double band_k_sigma = 3.0;            ///< confidence band half-width

  // Window-level anomaly alerting (live::AnomalyMonitor).
  std::size_t alert_min_consecutive = 1;  ///< windows outside the band
  /// Band alerts are suppressed for windows with index below this: the
  /// first forecasts come from a near-empty history and routinely land a
  /// settled stream outside the band. 0 keeps every judged window eligible.
  std::size_t alert_warmup_windows = 0;
  double bin_k_sigma = 4.0;               ///< within-window envelope width
  std::size_t bin_min_consecutive = 3;    ///< Delta bins outside before event

  [[nodiscard]] double stride() const {
    return stride_s > 0.0 ? stride_s : window_s;
  }
  /// Windows a packet can belong to at once.
  [[nodiscard]] std::size_t overlap() const {
    return static_cast<std::size_t>(std::ceil(window_s / stride()));
  }

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const {
    if (!(window_s > 0.0) || !std::isfinite(window_s)) {
      throw std::invalid_argument("LiveConfig: window must be finite > 0");
    }
    if (stride_s < 0.0 || !std::isfinite(stride())) {
      throw std::invalid_argument("LiveConfig: stride must be finite >= 0");
    }
    if (!(analysis.timeout_s() > 0.0)) {
      throw std::invalid_argument("LiveConfig: timeout <= 0");
    }
    if (!(analysis.delta_s() > 0.0)) {
      throw std::invalid_argument("LiveConfig: delta <= 0");
    }
    if (!(analysis.epsilon() > 0.0 && analysis.epsilon() < 1.0)) {
      throw std::invalid_argument("LiveConfig: eps outside (0,1)");
    }
    if (!(analysis.expire_every_s() > 0.0)) {
      throw std::invalid_argument("LiveConfig: expire cadence <= 0");
    }
    if (forecast_max_order == 0) {
      throw std::invalid_argument("LiveConfig: forecast_max_order == 0");
    }
    if (forecast_history < 4) {
      throw std::invalid_argument("LiveConfig: forecast_history < 4");
    }
    if (!(band_k_sigma > 0.0) || !(bin_k_sigma > 0.0)) {
      throw std::invalid_argument("LiveConfig: k_sigma <= 0");
    }
    if (alert_min_consecutive == 0 || bin_min_consecutive == 0) {
      throw std::invalid_argument("LiveConfig: min_consecutive == 0");
    }
  }
};

}  // namespace fbm::live
