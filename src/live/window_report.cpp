#include "live/window_report.hpp"

#include <stdexcept>
#include <utility>

#include "core/json_writer.hpp"

namespace fbm::live {

std::string_view to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::none: return "none";
    case AlertKind::spike: return "spike";
    case AlertKind::drop: return "drop";
  }
  return "none";
}

AlertKind alert_kind_from_string(std::string_view name) {
  if (name == "none") return AlertKind::none;
  if (name == "spike") return AlertKind::spike;
  if (name == "drop") return AlertKind::drop;
  throw std::invalid_argument("unknown alert kind \"" + std::string(name) +
                              "\"");
}

namespace {

void write_report(core::JsonWriter& w, const WindowReport& r) {
  w.field("window", static_cast<std::uint64_t>(r.window_index));
  w.field("start_s", r.start_s);
  w.field("width_s", r.width_s);
  w.field("stride_s", r.stride_s);
  w.field("packets", r.packets);
  w.field("bytes", r.bytes);
  w.field("discards", r.discards);

  w.begin_object("flows");
  w.field("count", static_cast<std::uint64_t>(r.inputs.flows));
  w.field("lambda_per_s", r.inputs.lambda);
  w.field("mean_size_bits", r.inputs.mean_size_bits);
  w.field("mean_s2_over_d_bits2_per_s", r.inputs.mean_s2_over_d);
  w.field("mean_duration_s", r.flow_moments.mean_duration_s);
  w.field("stddev_size_bits", r.flow_moments.stddev_size_bits);
  w.field("stddev_duration_s", r.flow_moments.stddev_duration_s);
  w.field("mean_rate_bps", r.flow_moments.mean_rate_bps);
  w.end_object();

  w.begin_object("measured");
  w.field("samples", static_cast<std::uint64_t>(r.measured.samples));
  w.field("mean_bps", r.measured.mean_bps);
  w.field("variance_bps2", r.measured.variance_bps2);
  w.field("cov", r.measured.cov);
  w.end_object();

  w.begin_object("model");
  if (r.shot_b) {
    w.field("shot_b_fitted", *r.shot_b);
  } else {
    w.null_field("shot_b_fitted");
  }
  w.field("shot_b_used", r.shot_b_used);
  w.field("mean_bps", r.plan.mean_bps);
  w.field("stddev_bps", r.plan.stddev_bps);
  w.field("cov", r.model_cov);
  w.end_object();

  w.begin_object("provisioning");
  w.field("eps", r.plan.eps);
  w.field("capacity_bps", r.plan.capacity_bps);
  w.field("headroom", r.plan.headroom);
  w.end_object();

  w.begin_object("forecast");
  const auto& f = r.forecast;
  if (f.available) {
    w.field("predicted_mean_bps", f.predicted_mean_bps);
    w.field("band_low_bps", f.band_low_bps);
    w.field("band_high_bps", f.band_high_bps);
    w.field("sigma_bps", f.sigma_bps);
  } else {
    w.null_field("predicted_mean_bps");
    w.null_field("band_low_bps");
    w.null_field("band_high_bps");
    w.null_field("sigma_bps");
  }
  w.field("order", static_cast<std::uint64_t>(f.order));
  w.end_object();

  w.begin_object("anomaly");
  const auto& a = r.anomaly;
  w.field("alert", a.alert);
  if (a.kind == AlertKind::none) {
    w.null_field("kind");
  } else {
    w.field("kind", to_string(a.kind));
  }
  w.field("deviation_sigma", a.deviation_sigma);
  w.field("consecutive", static_cast<std::uint64_t>(a.consecutive));
  w.field("bin_events", static_cast<std::uint64_t>(a.bin_events));
  w.field("bin_peak_sigma", a.bin_peak_sigma);
  w.end_object();
}

}  // namespace

std::string to_jsonl(const WindowReport& r) {
  core::JsonWriter w(core::JsonWriter::Style::compact);
  w.begin_object();
  write_report(w, r);
  w.end_object();
  return std::move(w).str();
}

std::string to_jsonl(const WindowReport& r, std::string_view link_name) {
  core::JsonWriter w(core::JsonWriter::Style::compact);
  w.begin_object();
  w.field("link", link_name);
  write_report(w, r);
  w.end_object();
  return std::move(w).str();
}

}  // namespace fbm::live
