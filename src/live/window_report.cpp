#include "live/window_report.hpp"

#include "api/report.hpp"

namespace fbm::live {

namespace {

using api::detail::json_number;

void field(std::string& out, const char* key, const std::string& value,
           bool last = false) {
  out += '"';
  out += key;
  out += "\": ";
  out += value;
  out += last ? "" : ", ";
}

void field(std::string& out, const char* key, double v, bool last = false) {
  field(out, key, json_number(v), last);
}

void field(std::string& out, const char* key, std::uint64_t v,
           bool last = false) {
  field(out, key, std::to_string(v), last);
}

}  // namespace

std::string to_jsonl(const WindowReport& r) {
  std::string out = "{";
  field(out, "window", static_cast<std::uint64_t>(r.window_index));
  field(out, "start_s", r.start_s);
  field(out, "width_s", r.width_s);
  field(out, "stride_s", r.stride_s);
  field(out, "packets", r.packets);
  field(out, "bytes", r.bytes);
  field(out, "discards", r.discards);

  out += "\"flows\": {";
  field(out, "count", static_cast<std::uint64_t>(r.inputs.flows));
  field(out, "lambda_per_s", r.inputs.lambda);
  field(out, "mean_size_bits", r.inputs.mean_size_bits);
  field(out, "mean_s2_over_d_bits2_per_s", r.inputs.mean_s2_over_d);
  field(out, "mean_duration_s", r.flow_moments.mean_duration_s);
  field(out, "stddev_size_bits", r.flow_moments.stddev_size_bits);
  field(out, "stddev_duration_s", r.flow_moments.stddev_duration_s);
  field(out, "mean_rate_bps", r.flow_moments.mean_rate_bps, true);
  out += "}, ";

  out += "\"measured\": {";
  field(out, "samples", static_cast<std::uint64_t>(r.measured.samples));
  field(out, "mean_bps", r.measured.mean_bps);
  field(out, "variance_bps2", r.measured.variance_bps2);
  field(out, "cov", r.measured.cov, true);
  out += "}, ";

  out += "\"model\": {";
  field(out, "shot_b_fitted",
        r.shot_b ? json_number(*r.shot_b) : std::string("null"));
  field(out, "shot_b_used", r.shot_b_used);
  field(out, "mean_bps", r.plan.mean_bps);
  field(out, "stddev_bps", r.plan.stddev_bps);
  field(out, "cov", r.model_cov, true);
  out += "}, ";

  out += "\"provisioning\": {";
  field(out, "eps", r.plan.eps);
  field(out, "capacity_bps", r.plan.capacity_bps);
  field(out, "headroom", r.plan.headroom, true);
  out += "}, ";

  out += "\"forecast\": {";
  const auto& f = r.forecast;
  field(out, "predicted_mean_bps",
        f.available ? json_number(f.predicted_mean_bps)
                    : std::string("null"));
  field(out, "band_low_bps",
        f.available ? json_number(f.band_low_bps) : std::string("null"));
  field(out, "band_high_bps",
        f.available ? json_number(f.band_high_bps) : std::string("null"));
  field(out, "sigma_bps",
        f.available ? json_number(f.sigma_bps) : std::string("null"));
  field(out, "order", static_cast<std::uint64_t>(f.order), true);
  out += "}, ";

  out += "\"anomaly\": {";
  const auto& a = r.anomaly;
  field(out, "alert", std::string(a.alert ? "true" : "false"));
  field(out, "kind",
        a.kind == AlertKind::none
            ? std::string("null")
            : std::string(a.kind == AlertKind::spike ? "\"spike\""
                                                     : "\"drop\""));
  field(out, "deviation_sigma", a.deviation_sigma);
  field(out, "consecutive", static_cast<std::uint64_t>(a.consecutive));
  field(out, "bin_events", static_cast<std::uint64_t>(a.bin_events));
  field(out, "bin_peak_sigma", a.bin_peak_sigma, true);
  out += "}}";
  return out;
}

}  // namespace fbm::live
