// Per-window results of the live monitoring subsystem.
//
// One WindowReport summarizes one sliding window the way an operator's
// dashboard consumes it: the three model inputs, streaming flow-population
// moments, the measured Delta-averaged rate, the fitted shot and Gaussian
// envelope, the capacity plan, the rolling next-window forecast with its
// confidence band, and the anomaly verdict.
//
// to_jsonl() renders one report as a single JSON line. Stable schema —
// external tooling and the live-smoke CI job parse these lines, so the keys
// below are append-only (additions fine, never rename or reorder):
//
//   {"window": u, "start_s": d, "width_s": d, "stride_s": d,
//    "packets": u, "bytes": u, "discards": u,
//    "flows": {"count": u, "lambda_per_s": d, "mean_size_bits": d,
//              "mean_s2_over_d_bits2_per_s": d, "mean_duration_s": d,
//              "stddev_size_bits": d, "stddev_duration_s": d,
//              "mean_rate_bps": d},
//    "measured": {"samples": u, "mean_bps": d, "variance_bps2": d, "cov": d},
//    "model": {"shot_b_fitted": d|null, "shot_b_used": d, "mean_bps": d,
//              "stddev_bps": d, "cov": d},
//    "provisioning": {"eps": d, "capacity_bps": d, "headroom": d},
//    "forecast": {"predicted_mean_bps": d|null, "band_low_bps": d|null,
//                 "band_high_bps": d|null, "sigma_bps": d|null, "order": u},
//    "anomaly": {"alert": bool, "kind": "spike"|"drop"|null,
//                "deviation_sigma": d, "consecutive": u,
//                "bin_events": u, "bin_peak_sigma": d}}
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/gaussian.hpp"
#include "dimension/provisioning.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"

namespace fbm::live {

/// Streaming (single-pass) moments of the window's completed-flow
/// population, beyond the three model inputs.
struct FlowMoments {
  double mean_duration_s = 0.0;
  double stddev_size_bits = 0.0;
  double stddev_duration_s = 0.0;
  double mean_rate_bps = 0.0;  ///< mean of per-flow S/D
};

/// Rolling one-window-ahead forecast, made before this window's data was
/// seen. `available` is false while the rate history is still too short.
struct WindowForecast {
  bool available = false;
  double predicted_mean_bps = 0.0;
  double band_low_bps = 0.0;   ///< predicted - k * sigma
  double band_high_bps = 0.0;  ///< predicted + k * sigma
  double sigma_bps = 0.0;      ///< theoretical one-step prediction error
  std::size_t order = 0;       ///< predictor order actually used
};

enum class AlertKind { none, spike, drop };

/// Canonical wire names ("none" / "spike" / "drop") — the JSONL schema's
/// `anomaly.kind` values and the scenario truth-log event kinds share this
/// single mapping.
[[nodiscard]] std::string_view to_string(AlertKind kind);
/// Throws std::invalid_argument for anything but the three names above.
[[nodiscard]] AlertKind alert_kind_from_string(std::string_view name);

/// Verdict of live::AnomalyMonitor for this window.
struct WindowAnomaly {
  bool alert = false;
  AlertKind kind = AlertKind::none;
  double deviation_sigma = 0.0;   ///< (observed - predicted) / sigma
  std::size_t consecutive = 0;    ///< windows outside the band so far
  std::size_t bin_events = 0;     ///< dimension::detect_anomalies events
  double bin_peak_sigma = 0.0;    ///< worst |z| across those events
};

struct WindowReport {
  std::size_t window_index = 0;
  double start_s = 0.0;
  double width_s = 0.0;
  double stride_s = 0.0;

  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t discards = 0;  ///< single-packet-flow packets excluded

  flow::ModelInputs inputs;       ///< lambda, E[S], E[S^2/D], flow count
  FlowMoments flow_moments;
  measure::RateMoments measured;  ///< Delta-averaged moments, bits/s

  std::optional<double> shot_b;   ///< fitted power-shot b, when fittable
  double shot_b_used = 1.0;
  double model_cov = 0.0;

  dimension::ProvisioningPlan plan;

  WindowForecast forecast;
  WindowAnomaly anomaly;

  [[nodiscard]] double end_s() const { return start_s + width_s; }
  [[nodiscard]] core::GaussianApproximation gaussian() const {
    return {plan.mean_bps, plan.stddev_bps * plan.stddev_bps};
  }
};

/// One report as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const WindowReport& report);

/// Engine-mode variant: the same line with `"link": "<name>"` as the first
/// field (fbm::engine multi-link streams; the engine-smoke CI job pins this
/// shape). The single-link schema above is unchanged.
[[nodiscard]] std::string to_jsonl(const WindowReport& report,
                                   std::string_view link_name);

}  // namespace fbm::live
