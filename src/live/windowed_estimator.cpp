#include "live/windowed_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/catalog.hpp"
#include "stats/descriptive.hpp"

namespace fbm::live {

WindowReport fit_window_report(const LiveConfig& config, WindowPartial&& raw,
                               RollingForecaster& forecaster,
                               AnomalyMonitor& monitor) {
  WindowReport report;
  report.window_index = static_cast<std::size_t>(raw.index);
  report.start_s = static_cast<double>(raw.index) * config.stride();
  report.width_s = config.window_s;
  report.stride_s = config.stride();
  report.packets = raw.packets;
  report.bytes = raw.bytes;
  report.discards = raw.discards;

  // The exact same fit the serial pipeline and the sharded merge run when
  // they close an analysis interval.
  api::WindowFit fit =
      api::fit_window(config.analysis, report.start_s, config.window_s,
                      std::move(raw.flows), raw.bins);
  report.inputs = fit.inputs;
  report.measured = fit.measured;
  report.shot_b = fit.shot_b;
  report.shot_b_used = fit.shot_b_used;
  report.model_cov = fit.model_cov;
  report.plan = fit.plan;

  // Streaming flow-population moments over the sorted flows (single pass).
  stats::RunningStats size_bits;
  stats::RunningStats duration_s;
  stats::RunningStats rate_bps;
  for (const auto& f : fit.interval.flows) {
    size_bits.add(f.size_bits());
    duration_s.add(f.duration());
    rate_bps.add(f.mean_rate_bps());
  }
  report.flow_moments.mean_duration_s = duration_s.mean();
  report.flow_moments.stddev_size_bits = size_bits.population_stddev();
  report.flow_moments.stddev_duration_s = duration_s.population_stddev();
  report.flow_moments.mean_rate_bps = rate_bps.mean();

  // Forecast made from windows < k, then judge this window against it, then
  // fold this window's rate into the history for the next one.
  if (auto f = forecaster.forecast()) report.forecast = *f;
  monitor.evaluate(report, fit.series);
  forecaster.observe(report.measured.mean_bps);
  return report;
}

WindowedEstimator::WindowedEstimator(LiveConfig config)
    : config_(std::move(config)),
      forecaster_(config_.forecast_max_order, config_.forecast_history,
                  config_.band_k_sigma),
      monitor_(config_) {
  config_.validate();
  stride_ = config_.stride();

  classifier_options_.timeout = config_.analysis.timeout_s();
  // No boundary splitting inside a window: the window is the interval. A
  // flow straddling a window edge simply appears in every window that saw
  // its packets, re-derived from that window's packets alone.
  classifier_options_.interval = std::numeric_limits<double>::infinity();
  classifier_options_.record_discards = true;
  const std::size_t reserve = config_.analysis.reserve_flows();
  classifier_options_.reserve_flows =
      reserve == 0 ? 0
                   : std::max<std::size_t>(64, reserve / config_.overlap());

  tiled_ = stride_ == config_.window_s;
  // One extra candidate below ceil(width/stride) guards the floor/ceil edge;
  // every candidate is membership-checked anyway.
  candidates_ = static_cast<std::int64_t>(config_.overlap()) + 1;
  kmax_boundary_ = 0.0;  // first packet advances cur_kmax_ from -1
  next_close_end_ = window_end(0);
}

std::size_t WindowedEstimator::active_flows() const {
  std::size_t n = 0;
  for (const auto& s : open_) {
    if (s) n += s->classifier->active_flows();
  }
  return n;
}

WindowedEstimator::WindowState& WindowedEstimator::state_at(std::int64_t k) {
  auto& slot = open_[static_cast<std::size_t>(k - next_close_)];
  if (!slot) {
    slot = std::make_unique<WindowState>(WindowState{
        api::make_flow_classifier(config_.analysis.flow_definition(),
                                  classifier_options_),
        {},
        stats::RateBinner(window_start(k), window_end(k),
                          config_.analysis.delta_s()),
        0,
        0,
        0});
  }
  return *slot;
}

void WindowedEstimator::feed(WindowState& state,
                             const net::PacketRecord& packet) {
  state.classifier->add(packet);
  state.bins.add(packet.timestamp, static_cast<double>(packet.size_bytes));
  ++state.packets;
  state.bytes += packet.size_bytes;
  // Completed flows stay queued inside the classifier until the next expiry
  // sweep or the window flush — they already belong to this window, so
  // nothing needs them per packet (unlike the pipeline, which must route
  // flows to their interval as they complete).
}

void WindowedEstimator::drain(WindowState& state) {
  for (auto& f : state.classifier->take_flows()) {
    state.flows.push_back(std::move(f));
  }
  for (const auto& d : state.classifier->take_discards()) {
    // The paper excludes discarded single-packet flows from the variance
    // measurement; subtract them from their bin, as the batch path does.
    state.bins.add(d.timestamp, -static_cast<double>(d.size_bytes));
    ++state.discards;
  }
}

void WindowedEstimator::push(const net::PacketRecord& packet) {
  if (finished_) {
    throw std::logic_error("WindowedEstimator: push after finish");
  }
  const double ts = packet.timestamp;
  if (ts < 0.0) {
    throw std::invalid_argument("WindowedEstimator: negative timestamp");
  }
  if (ts < last_ts_) {
    throw std::invalid_argument("WindowedEstimator: out-of-order packet");
  }
  if (counters_.packets == 0) {
    next_expire_ = ts + config_.analysis.expire_every_s();
  }
  last_ts_ = ts;
  ++counters_.packets;
  counters_.bytes += packet.size_bytes;

  // Close (and report) every window the stream clock has passed, empty
  // windows included, so the emitted index sequence stays contiguous.
  if (ts >= next_close_end_) close_through(ts);

  // Newest window whose start is <= ts, tracked by boundary comparison (a
  // loop iteration per stride crossed, no per-packet division).
  while (ts >= kmax_boundary_) {
    ++cur_kmax_;
    kmax_boundary_ = window_start(cur_kmax_ + 1);
  }
  max_window_ = std::max(max_window_, cur_kmax_);
  while (next_close_ + static_cast<std::int64_t>(open_.size()) <= cur_kmax_) {
    open_.emplace_back(nullptr);
  }

  // Windows containing ts: k*stride <= ts < k*stride + window. With tiling
  // windows that is exactly cur_kmax_; otherwise every candidate in reach
  // is verified with the same comparison close_through() uses, so an edge
  // timestamp never lands in a window the close watermark disagrees about.
  if (tiled_) {
    feed(state_at(cur_kmax_), packet);
  } else {
    const std::int64_t k_min =
        std::max(next_close_, cur_kmax_ - candidates_);
    for (std::int64_t k = k_min; k <= cur_kmax_; ++k) {
      if (!(window_start(k) <= ts && ts < window_end(k))) continue;
      feed(state_at(k), packet);
    }
  }

  if (ts >= next_expire_) expire_all(ts);
}

void WindowedEstimator::expire_all(double now) {
  // Result-neutral early completion of idle flows (NetFlow's inactive
  // timer): emitting now or at the window flush yields the same records,
  // but the active tables stay O(active flows).
  for (auto& s : open_) {
    if (!s) continue;
    s->classifier->expire_idle(now);
    drain(*s);
  }
  if (obs::enabled()) {
    obs::live_open_windows().set(static_cast<double>(open_.size()));
    obs::flow_table_active("live")
        .set(static_cast<double>(active_flows()));
    for (const auto& s : open_) {  // sample the oldest touched window
      if (!s) continue;
      obs::flow_table_load_factor("live")
          .set(s->classifier->table_load_factor());
      obs::flow_table_avg_probe("live")
          .set(s->classifier->table_mean_probe());
      break;
    }
  }
  while (next_expire_ <= now) {
    next_expire_ += config_.analysis.expire_every_s();
  }
}

void WindowedEstimator::push_batch(const net::PacketBatch& batch) {
  if (batch.empty()) return;
  if (finished_) {
    throw std::logic_error("WindowedEstimator: push after finish");
  }
  if (!tiled_) {
    // Overlapping windows fan one packet out to several classifiers; the
    // per-packet path already amortizes membership with the candidate scan,
    // so batching buys nothing there.
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) push(batch.record(i));
    return;
  }

  const double* ts = batch.timestamps.data();
  const std::uint32_t* sizes = batch.sizes.data();
  const std::size_t n = batch.size();

  // Bulk validation up front so the run loop below never mutates state for
  // a batch that would have thrown mid-way on the per-packet path.
  if (ts[0] < 0.0) {
    throw std::invalid_argument("WindowedEstimator: negative timestamp");
  }
  if (ts[0] < last_ts_) {
    throw std::invalid_argument("WindowedEstimator: out-of-order packet");
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (ts[i] < ts[i - 1]) {
      throw std::invalid_argument("WindowedEstimator: out-of-order packet");
    }
  }

  if (counters_.packets == 0) {
    next_expire_ = ts[0] + config_.analysis.expire_every_s();
  }
  last_ts_ = ts[n - 1];
  counters_.packets += n;

  std::size_t i = 0;
  while (i < n) {
    const double t = ts[i];
    if (t >= next_close_end_) close_through(t);
    while (t >= kmax_boundary_) {
      ++cur_kmax_;
      kmax_boundary_ = window_start(cur_kmax_ + 1);
    }
    max_window_ = std::max(max_window_, cur_kmax_);
    while (next_close_ + static_cast<std::int64_t>(open_.size()) <=
           cur_kmax_) {
      open_.emplace_back(nullptr);
    }
    // Expiring before the run instead of after each crossing packet is
    // result-neutral: a flow idle past the timeout at t emits the same
    // record whether the sweep or the classifier's own timeout step
    // completes it.
    if (t >= next_expire_) expire_all(t);

    // Maximal run sharing this window with no close/expire deadline inside:
    // every packet in [i, j) has ts < limit, found by bisection (timestamps
    // are non-decreasing). Only the boundaries the per-packet path compares
    // against are used, so run splitting cannot disagree with it.
    const double limit =
        std::min(kmax_boundary_, std::min(next_close_end_, next_expire_));
    std::size_t j = n;
    if (!(ts[n - 1] < limit)) {
      std::size_t lo = i + 1;
      std::size_t hi = n - 1;  // known: ts[hi] >= limit
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (ts[mid] < limit) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      j = lo;
    }

    WindowState& state = state_at(cur_kmax_);
    static obs::Histogram& classify_seconds =
        obs::stage_seconds(obs::kStageClassify);
    obs::StageSpan span(classify_seconds);  // run (sub-batch) granularity
    state.classifier->add_batch(batch, i, j);
    std::uint64_t run_bytes = 0;
    for (std::size_t k = i; k < j; ++k) {
      state.bins.add(ts[k], static_cast<double>(sizes[k]));
      run_bytes += sizes[k];
    }
    state.packets += j - i;
    state.bytes += run_bytes;
    counters_.bytes += run_bytes;
    i = j;
  }
}

void WindowedEstimator::close_through(double now) {
  while (now >= next_close_end_) {
    std::unique_ptr<WindowState> state;
    if (!open_.empty()) {
      state = std::move(open_.front());
      open_.pop_front();
    }
    finalize_window(next_close_, state.get());
    ++next_close_;
    next_close_end_ = window_end(next_close_);
  }
}

void WindowedEstimator::finalize_window(std::int64_t k, WindowState* state) {
  // Flush/drain the window into its raw material. Untouched windows build
  // their (zero) bins here; touched windows hand over what they accumulated.
  WindowPartial raw{k,
                    0,
                    0,
                    0,
                    {},
                    stats::RateBinner(window_start(k), window_end(k),
                                      config_.analysis.delta_s())};
  if (state != nullptr) {
    state->classifier->flush();
    drain(*state);
    raw.packets = state->packets;
    raw.bytes = state->bytes;
    raw.discards = state->discards;
    raw.flows = std::move(state->flows);
    raw.bins = std::move(state->bins);
  }

  ++counters_.windows;
  counters_.flows += raw.flows.size();
  if (obs::enabled()) {
    obs::live_windows_closed().add(1);
    obs::live_open_windows().set(static_cast<double>(open_.size()));
  }

  if (partial_sink_) {
    // Distributed mode: the raw material leaves for agg::Merger, which
    // fits/forecasts/judges once after the final fold. The local forecaster
    // and monitor never advance (they only ever saw this producer's key
    // slice, which would poison the merged history).
    partial_sink_(std::move(raw));
    return;
  }

  emit(fit_window_report(config_, std::move(raw), forecaster_, monitor_));
}

void WindowedEstimator::emit(WindowReport&& report) {
  if (obs::enabled() && report.anomaly.alert) {
    obs::live_alerts(report.anomaly.kind == AlertKind::spike ? "spike"
                                                             : "drop")
        .add(1);
  }
  if (sink_) {
    sink_(std::move(report));
  } else {
    ready_.push_back(std::move(report));
  }
}

void WindowedEstimator::finish() {
  if (finished_) return;
  finished_ = true;
  while (next_close_ <= max_window_) {
    std::unique_ptr<WindowState> state;
    if (!open_.empty()) {
      state = std::move(open_.front());
      open_.pop_front();
    }
    finalize_window(next_close_, state.get());
    ++next_close_;
  }
  open_.clear();
}

std::uint64_t WindowedEstimator::consume(api::TraceSource& source) {
  net::PacketBatch batch;
  const std::size_t cap =
      std::max<std::size_t>(1, config_.analysis.batch_packets());
  batch.reserve(cap);
  std::uint64_t n = 0;
  obs::Histogram& read_seconds =
      obs::stage_seconds(obs::kStageSourceRead);
  for (;;) {
    std::size_t got;
    {
      obs::StageSpan span(read_seconds);
      got = source.next_batch(batch, cap);
    }
    if (got == 0) break;
    if (obs::enabled()) {
      obs::source_packets().add(got);
      obs::source_batches().add(1);
    }
    n += batch.size();
    push_batch(batch);
  }
  finish();
  return n;
}

WindowReport WindowedEstimator::pop_report() {
  if (ready_.empty()) {
    throw std::logic_error("WindowedEstimator: no report ready");
  }
  WindowReport r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

std::vector<WindowReport> WindowedEstimator::take_reports() {
  std::vector<WindowReport> out(std::make_move_iterator(ready_.begin()),
                                std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

// ------------------------------------------------------- snapshot/restore ---

EstimatorState WindowedEstimator::save_state() const {
  if (finished_) {
    throw std::logic_error("WindowedEstimator: snapshot after finish");
  }
  if (!ready_.empty()) {
    throw std::logic_error(
        "WindowedEstimator: drain pending reports before snapshot");
  }
  EstimatorState st;
  st.counters = counters_;
  st.last_ts = last_ts_;
  st.next_expire = next_expire_;
  st.next_close = next_close_;
  st.max_window = max_window_;
  st.cur_kmax = cur_kmax_;
  st.forecast_history = forecaster_.history();
  st.monitor_consecutive =
      static_cast<std::uint64_t>(monitor_.consecutive_outside());
  st.monitor_last_kind = static_cast<std::uint32_t>(monitor_.last_kind());
  st.open.reserve(open_.size());
  for (const auto& slot : open_) {
    EstimatorState::OpenWindow ow;
    if (slot) {
      ow.present = true;
      ow.classifier = slot->classifier->save_state();
      ow.flows = slot->flows;
      const auto bins = slot->bins.bin_bytes();
      ow.bin_bytes.assign(bins.begin(), bins.end());
      ow.bin_dropped = static_cast<std::uint64_t>(slot->bins.dropped());
      ow.bin_total_bytes = slot->bins.total_bytes();
      ow.packets = slot->packets;
      ow.bytes = slot->bytes;
      ow.discards = slot->discards;
    }
    st.open.push_back(std::move(ow));
  }
  return st;
}

void WindowedEstimator::restore_state(const EstimatorState& state) {
  if (finished_ || counters_.packets != 0 || counters_.windows != 0 ||
      next_close_ != 0 || !open_.empty() || !ready_.empty()) {
    throw std::logic_error(
        "WindowedEstimator: restore needs a fresh estimator");
  }
  if (state.monitor_last_kind >
      static_cast<std::uint32_t>(AlertKind::drop)) {
    throw std::invalid_argument("EstimatorState: unknown alert kind");
  }
  forecaster_.restore_history(state.forecast_history);
  monitor_.restore_hysteresis(
      static_cast<std::size_t>(state.monitor_consecutive),
      static_cast<AlertKind>(state.monitor_last_kind));

  counters_ = state.counters;
  last_ts_ = state.last_ts;
  next_expire_ = state.next_expire;
  next_close_ = state.next_close;
  max_window_ = state.max_window;
  cur_kmax_ = state.cur_kmax;
  kmax_boundary_ = window_start(cur_kmax_ + 1);
  next_close_end_ = window_end(next_close_);

  for (std::size_t i = 0; i < state.open.size(); ++i) {
    const auto& ow = state.open[i];
    if (!ow.present) {
      open_.emplace_back(nullptr);
      continue;
    }
    const std::int64_t k = state.next_close + static_cast<std::int64_t>(i);
    stats::RateBinner bins = [&] {
      try {
        return stats::RateBinner(
            window_start(k), window_end(k), config_.analysis.delta_s(),
            ow.bin_bytes, static_cast<std::size_t>(ow.bin_dropped),
            ow.bin_total_bytes);
      } catch (const std::invalid_argument&) {
        throw std::invalid_argument(
            "EstimatorState: window bins do not match the configured grid");
      }
    }();
    auto ws = std::make_unique<WindowState>(WindowState{
        api::make_flow_classifier(config_.analysis.flow_definition(),
                                  classifier_options_),
        ow.flows, std::move(bins), ow.packets, ow.bytes, ow.discards});
    ws->classifier->restore_state(ow.classifier);
    open_.push_back(std::move(ws));
  }
}

}  // namespace fbm::live
