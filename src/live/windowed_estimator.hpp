// Sliding-window online estimation (fbm::live, the tentpole).
//
// WindowedEstimator consumes an unbounded packet stream (any
// api::TraceSource, or push() by hand) and re-derives the paper's
// flow-level parameters per sliding window with bounded state: each of the
// ceil(window/stride) concurrently open windows owns a flow classifier
// (idle-timeout semantics, no boundary splitting — the window IS the
// analysis interval), its completed-flow list and exact Delta byte bins.
// A window closes the moment the stream clock passes its end: the
// classifier flushes, flows sort by flow::ByStart, and api::fit_window —
// the same function the serial and sharded pipelines close intervals
// through — produces the parameters. Replaying a finished trace therefore
// reproduces, bit for bit, what a batch fit restricted to each window's
// packets computes in isolation (tests/live/test_windowed_differential.cpp
// proves it against the independent batch primitives and against
// api::analyze for tiling windows).
//
// On top of the per-window fit, a RollingForecaster predicts each next
// window's mean rate with a confidence band and an AnomalyMonitor flags
// windows that leave it — the paper's monitoring story running
// continuously: estimate, predict, alert, in one pass, O(active flows +
// open windows) memory.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "api/shard.hpp"
#include "api/trace_source.hpp"
#include "net/packet_batch.hpp"
#include "live/anomaly_monitor.hpp"
#include "live/forecast.hpp"
#include "live/live_config.hpp"
#include "live/window_report.hpp"

namespace fbm::live {

/// Running totals of one estimator's life.
struct LiveCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t windows = 0;  ///< windows closed (reports emitted)
  std::uint64_t flows = 0;    ///< completed flow records across windows
};

/// One closed window's raw pre-fit material: exactly what fit_window_report
/// consumes, and what the agg::PartialReport codec ships across processes.
/// Flows may be in any order (fitting re-sorts with flow::ByStart); the bins
/// hold exact integral byte counts over the window's Delta grid, so folding
/// the partials of key-disjoint producers and fitting once reproduces a
/// single-machine run bit for bit.
struct WindowPartial {
  std::int64_t index = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t discards = 0;
  std::vector<flow::FlowRecord> flows;
  stats::RateBinner bins;
};

/// Pre-fit flush hook for distributed aggregation: when set on a
/// WindowedEstimator, closed windows leave as WindowPartials instead of
/// being fitted — no forecast or anomaly state advances locally; the merger
/// replays fit_window_report over the folded windows in order.
using WindowPartialSink = std::function<void(WindowPartial&&)>;

/// Turns one window's merged raw material into the finished WindowReport:
/// api::fit_window (the same function the serial pipeline and the sharded
/// merge close intervals through), the streaming flow-population moments,
/// then forecast/judge/observe against the rolling state. The single
/// implementation WindowedEstimator and agg::Merger share, so live
/// monitoring and distributed aggregation agree bit for bit by
/// construction. Windows must be finalized in index order (the forecaster
/// and monitor are stateful).
[[nodiscard]] WindowReport fit_window_report(const LiveConfig& config,
                                             WindowPartial&& raw,
                                             RollingForecaster& forecaster,
                                             AnomalyMonitor& monitor);

/// Complete serializable state of a WindowedEstimator mid-stream: every
/// member push() reads or writes, including each open window's classifier
/// at exact-table-layout fidelity (api::ClassifierState). Restoring it into
/// a fresh estimator of the same config and resuming the stream reproduces
/// the uninterrupted run's remaining reports bit for bit — the checkpoint
/// codec (ckpt::) is a pure serialization of this struct.
struct EstimatorState {
  LiveCounters counters;
  double last_ts = -std::numeric_limits<double>::infinity();
  double next_expire = 0.0;
  std::int64_t next_close = 0;
  std::int64_t max_window = -1;
  std::int64_t cur_kmax = -1;
  std::vector<double> forecast_history;  ///< oldest first
  std::uint64_t monitor_consecutive = 0;
  std::uint32_t monitor_last_kind = 0;  ///< AlertKind as wire integer

  /// Open windows, indices state.next_close .. next_close + open.size() - 1.
  struct OpenWindow {
    bool present = false;  ///< false: no packet touched this window yet
    api::ClassifierState classifier;
    std::vector<flow::FlowRecord> flows;
    std::vector<double> bin_bytes;  ///< grid derivable from index + config
    std::uint64_t bin_dropped = 0;
    double bin_total_bytes = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t discards = 0;
  };
  std::vector<OpenWindow> open;
};

class WindowedEstimator {
 public:
  /// Throws std::invalid_argument on bad configuration (LiveConfig rules).
  explicit WindowedEstimator(LiveConfig config);

  /// Feed the next packet. Timestamps must be non-negative and
  /// non-decreasing (throws std::invalid_argument otherwise). Windows whose
  /// end the timestamp passes are closed and reported before the packet is
  /// classified.
  void push(const net::PacketRecord& packet);

  /// Feed a whole batch; reports are bit-for-bit identical to push() per
  /// packet at every batch size. With tiling windows (stride == width) the
  /// batch runs through a vectorized fast path: packets are fed to their
  /// window in maximal runs bounded by the next window boundary, close
  /// watermark and expiry deadline, so the classifier's hash-ahead batch
  /// path and the bin accumulation loop both run over contiguous spans.
  void push_batch(const net::PacketBatch& batch);

  /// End of stream: close every window up to the last packet's. push() must
  /// not be called afterwards.
  void finish();

  /// Drains `source` through push() and finishes; returns packets consumed.
  std::uint64_t consume(api::TraceSource& source);

  /// Reports stream here the moment each window closes, in window order,
  /// when set (pop_report/take_reports then never see them). Set before the
  /// first push.
  using WindowSink = std::function<void(WindowReport&&)>;
  void set_window_sink(WindowSink sink) { sink_ = std::move(sink); }

  /// Diverts closed windows to `sink` as raw pre-fit material (see
  /// WindowPartialSink): no fitting, no forecast, no anomaly judgement —
  /// those run once, downstream, after the merge. Set before the first
  /// push.
  void set_partial_sink(WindowPartialSink sink) {
    partial_sink_ = std::move(sink);
  }

  [[nodiscard]] bool has_report() const { return !ready_.empty(); }
  [[nodiscard]] WindowReport pop_report();
  [[nodiscard]] std::vector<WindowReport> take_reports();

  [[nodiscard]] const LiveConfig& config() const { return config_; }
  [[nodiscard]] const LiveCounters& counters() const { return counters_; }

  /// Observability for the bounded-memory story.
  [[nodiscard]] std::size_t open_windows() const { return open_.size(); }
  [[nodiscard]] std::size_t active_flows() const;

  /// Snapshot of the complete mid-stream state. Call between pushes —
  /// throws std::logic_error after finish() or while reports sit undrained
  /// (a sink-less caller must pop them first; the snapshot counts them as
  /// already delivered).
  [[nodiscard]] EstimatorState save_state() const;

  /// Rebuilds a saved state in this estimator. Only valid on a fresh
  /// instance (same config, nothing pushed); throws std::logic_error
  /// otherwise and std::invalid_argument on an inconsistent snapshot.
  void restore_state(const EstimatorState& state);

 private:
  /// Per-open-window accumulation. nullptr in open_ marks a window no
  /// packet has touched yet (finalized straight to an empty report).
  struct WindowState {
    std::unique_ptr<api::FlowClassifierHandle> classifier;
    std::vector<flow::FlowRecord> flows;
    stats::RateBinner bins;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t discards = 0;
  };

  [[nodiscard]] double window_start(std::int64_t k) const {
    return static_cast<double>(k) * stride_;
  }
  [[nodiscard]] double window_end(std::int64_t k) const {
    return window_start(k) + config_.window_s;
  }

  [[nodiscard]] WindowState& state_at(std::int64_t k);
  void feed(WindowState& state, const net::PacketRecord& packet);
  void drain(WindowState& state);
  void expire_all(double now);  ///< expire + drain every open window
  void close_through(double now);  ///< close windows with end <= now
  void finalize_window(std::int64_t k, WindowState* state);
  void emit(WindowReport&& report);

  LiveConfig config_;
  double stride_ = 0.0;
  flow::ClassifierOptions classifier_options_;

  /// Open windows, indices [next_close_, next_close_ + open_.size()).
  std::deque<std::unique_ptr<WindowState>> open_;
  std::int64_t next_close_ = 0;   ///< lowest window index not yet closed
  std::int64_t max_window_ = -1;  ///< highest window index seen

  // Hot-path caches: the newest window index is tracked by boundary
  // comparison (one multiply per stride crossed) instead of a per-packet
  // floor division, and the close watermark keeps its end precomputed.
  std::int64_t cur_kmax_ = -1;     ///< newest window whose start <= last ts
  double kmax_boundary_ = 0.0;     ///< window_start(cur_kmax_ + 1)
  double next_close_end_ = 0.0;    ///< window_end(next_close_)
  std::int64_t candidates_ = 1;    ///< windows probed per packet (overlap)
  bool tiled_ = true;              ///< stride == width: membership is free

  RollingForecaster forecaster_;
  AnomalyMonitor monitor_;

  std::deque<WindowReport> ready_;
  WindowSink sink_;
  WindowPartialSink partial_sink_;
  LiveCounters counters_;
  double last_ts_ = -std::numeric_limits<double>::infinity();
  double next_expire_ = 0.0;
  bool finished_ = false;
};

}  // namespace fbm::live
