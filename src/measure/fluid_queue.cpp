#include "measure/fluid_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbm::measure {

FluidQueueReport run_fluid_queue(const stats::RateSeries& input,
                                 const FluidQueueConfig& config) {
  if (!(config.capacity_bps > 0.0)) {
    throw std::invalid_argument("run_fluid_queue: capacity <= 0");
  }
  if (!(config.buffer_bits >= 0.0)) {
    throw std::invalid_argument("run_fluid_queue: buffer < 0");
  }
  if (input.values.empty() || !(input.delta > 0.0)) {
    throw std::invalid_argument("run_fluid_queue: empty input series");
  }

  FluidQueueReport rep;
  rep.bins = input.values.size();
  const double dt = input.delta;
  const double c = config.capacity_bps;
  const double b = config.buffer_bits;

  double q = 0.0;  // queue occupancy, bits
  double queue_time_integral = 0.0;
  std::size_t congested = 0;
  std::size_t busy = 0;

  for (double rate : input.values) {
    const double offered = rate * dt;
    rep.offered_bits += offered;
    if (rate > c) ++congested;

    // Net fill rate within the bin.
    const double net = rate - c;
    double lost = 0.0;
    double q_end = q + net * dt;
    if (net > 0.0 && q_end > b) {
      // Queue hits the buffer limit partway through the bin; overflow is
      // lost at rate `net` for the remaining time.
      const double t_full = (b - q) / net;
      lost = net * (dt - t_full);
      q_end = b;
      // Time-average of q over the bin: ramp then flat.
      queue_time_integral += 0.5 * (q + b) * t_full + b * (dt - t_full);
    } else if (q_end < 0.0) {
      // Queue empties partway through the bin.
      const double t_empty = net < 0.0 ? q / (-net) : 0.0;
      queue_time_integral += 0.5 * q * t_empty;
      q_end = 0.0;
    } else {
      queue_time_integral += 0.5 * (q + q_end) * dt;
    }
    rep.lost_bits += lost;
    if (q > 0.0 || q_end > 0.0) ++busy;
    q = q_end;
    rep.max_queue_bits = std::max(rep.max_queue_bits, q);
  }

  rep.carried_bits = rep.offered_bits - rep.lost_bits;
  rep.loss_fraction =
      rep.offered_bits > 0.0 ? rep.lost_bits / rep.offered_bits : 0.0;
  rep.congested_fraction =
      static_cast<double>(congested) / static_cast<double>(rep.bins);
  rep.busy_fraction =
      static_cast<double>(busy) / static_cast<double>(rep.bins);
  rep.mean_queue_bits =
      queue_time_integral / (dt * static_cast<double>(rep.bins));
  rep.max_delay_s = rep.max_queue_bits / c;
  rep.mean_delay_s = rep.mean_queue_bits / c;
  return rep;
}

}  // namespace fbm::measure
