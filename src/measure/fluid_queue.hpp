// Fluid queue fed by a rate series: the buffer-sizing companion to the
// Gaussian dimensioning rule.
//
// Section V-E dimensions the link so that P(R > C) <= eps; the paper notes
// short-term overshoot is "absorbed by the buffers at the inputs of links".
// This simulator plays a measured or generated rate series R(t) into a
// server of capacity C with buffer B and reports congestion fraction, loss,
// and queueing delay — letting benches verify that the capacity chosen by
// GaussianApproximation::capacity_for_exceedance keeps losses near eps.
#pragma once

#include <cstddef>

#include "stats/timeseries.hpp"

namespace fbm::measure {

struct FluidQueueConfig {
  double capacity_bps = 0.0;  ///< service rate C
  double buffer_bits = 0.0;   ///< buffer size B; 0 = bufferless
};

struct FluidQueueReport {
  double offered_bits = 0.0;
  double carried_bits = 0.0;
  double lost_bits = 0.0;
  double loss_fraction = 0.0;       ///< lost/offered
  double congested_fraction = 0.0;  ///< fraction of bins with R > C
  double busy_fraction = 0.0;       ///< fraction of bins with queue > 0
  double max_queue_bits = 0.0;
  double mean_queue_bits = 0.0;
  double max_delay_s = 0.0;   ///< max queue / C
  double mean_delay_s = 0.0;  ///< mean queue / C
  std::size_t bins = 0;
};

/// Plays `input` (bits/s per bin of length input.delta) through the queue.
/// Within a bin the input rate is constant; the queue drains at C. Exact
/// piecewise-linear evolution per bin (fill, clip at B, drain).
/// Throws std::invalid_argument for non-positive capacity or empty input.
[[nodiscard]] FluidQueueReport run_fluid_queue(const stats::RateSeries& input,
                                               const FluidQueueConfig& config);

}  // namespace fbm::measure
