#include "measure/rate_meter.hpp"

#include <cmath>

#include "stats/descriptive.hpp"

namespace fbm::measure {

stats::RateSeries measure_rate(std::span<const net::PacketRecord> packets,
                               double start, double end, double delta,
                               std::span<const flow::DiscardedPacket> exclude) {
  stats::RateBinner binner(start, end, delta);
  for (const auto& p : packets) {
    binner.add(p.timestamp, static_cast<double>(p.size_bytes));
  }
  for (const auto& d : exclude) {
    binner.add(d.timestamp, -static_cast<double>(d.size_bytes));
  }
  return binner.series();
}

RateMoments rate_moments(const stats::RateSeries& series) {
  RateMoments m;
  m.samples = series.values.size();
  if (m.samples == 0) return m;
  stats::RunningStats s;
  for (double v : series.values) s.add(v);
  m.mean_bps = s.mean();
  m.variance_bps2 = s.population_variance();
  m.cov = s.coefficient_of_variation();
  return m;
}

}  // namespace fbm::measure
