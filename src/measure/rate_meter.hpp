// Measured total rate (Section V-F and VI).
//
// The "measured rate" is the byte volume in consecutive windows of length
// Delta divided by Delta (paper default Delta = 200 ms, approximately one
// round-trip time). The paper excludes packets of discarded single-packet
// flows from the variance measurement; `measure_rate` takes the discard list
// produced by the classifier for exactly that correction.
#pragma once

#include <span>

#include "flow/classifier.hpp"
#include "net/packet.hpp"
#include "stats/timeseries.hpp"

namespace fbm::measure {

inline constexpr double kPaperDelta = 0.2;  ///< 200 ms averaging interval

/// Bins packets falling in [start, end) into a RateSeries with bin width
/// `delta` (bits/s). Packets listed in `exclude` (timestamp, bytes) are
/// subtracted from their bin.
[[nodiscard]] stats::RateSeries measure_rate(
    std::span<const net::PacketRecord> packets, double start, double end,
    double delta = kPaperDelta,
    std::span<const flow::DiscardedPacket> exclude = {});

/// Measured first two moments of one interval's rate.
struct RateMoments {
  double mean_bps = 0.0;
  double variance_bps2 = 0.0;  ///< population variance, (bits/s)^2
  double cov = 0.0;            ///< stddev/mean, dimensionless
  std::size_t samples = 0;
};

[[nodiscard]] RateMoments rate_moments(const stats::RateSeries& series);

}  // namespace fbm::measure
