// The classic 5-tuple flow key (Section III, flow definition 1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/ip.hpp"

namespace fbm::net {

/// Transport protocol numbers used by the synthetic generator.
enum class Protocol : std::uint8_t {
  icmp = 1,
  tcp = 6,
  udp = 17,
};

[[nodiscard]] constexpr const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::icmp: return "ICMP";
    case Protocol::tcp: return "TCP";
    case Protocol::udp: return "UDP";
  }
  return "?";
}

/// Source/destination addresses and ports plus protocol number: packets with
/// equal FiveTuple belong to the same flow under definition 1.
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) =
      default;

  [[nodiscard]] std::string to_string() const {
    return src.to_string() + ":" + std::to_string(src_port) + " -> " +
           dst.to_string() + ":" + std::to_string(dst_port) + " proto " +
           std::to_string(protocol);
  }
};

/// FNV-1a over all five fields.
struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h = (h ^ v) * 1099511628211ULL;
    };
    mix(t.src.value());
    mix(t.dst.value());
    mix(t.src_port);
    mix(t.dst_port);
    mix(t.protocol);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

}  // namespace fbm::net
