#include "net/ip.hpp"

#include <charconv>

namespace fbm::net {

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(static_cast<unsigned>(octet(i)));
  }
  return out;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  std::uint32_t value = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p >= end || *p != '.') return std::nullopt;
      ++p;
    }
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4Address{value};
}

std::string Prefix::to_string() const {
  return network().to_string() + "/" + std::to_string(length_);
}

}  // namespace fbm::net
