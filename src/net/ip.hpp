// IPv4 addresses and prefixes.
//
// The paper's second flow definition aggregates packets by /24 destination
// prefix; Prefix supports arbitrary /n masks so benches can also explore /8
// and /16 aggregation (Section VI-A suggests "routable" prefixes as an
// extension).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fbm::net {

/// IPv4 address as a host-order 32-bit value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad rendering, e.g. "10.1.2.3".
  [[nodiscard]] std::string to_string() const;

  /// Parse dotted-quad; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view s);

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix: the top `length` bits of `address`.
class Prefix {
 public:
  constexpr Prefix() = default;
  /// Canonicalises: host bits below the mask are zeroed. length in [0, 32].
  constexpr Prefix(Ipv4Address addr, int length)
      : length_(length),
        network_(length <= 0
                     ? 0u
                     : (addr.value() &
                        (length >= 32 ? 0xffffffffu
                                      : ~((1u << (32 - length)) - 1u)))) {}

  [[nodiscard]] constexpr Ipv4Address network() const {
    return Ipv4Address{network_};
  }
  [[nodiscard]] constexpr int length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return Prefix(a, length_).network_ == network_;
  }

  /// e.g. "192.168.1.0/24".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  int length_ = 0;
  std::uint32_t network_ = 0;
};

/// Hash helpers (FNV-1a over the canonical representation).
struct Ipv4Hash {
  [[nodiscard]] std::size_t operator()(Ipv4Address a) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    h = (h ^ a.value()) * 1099511628211ULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct PrefixHash {
  [[nodiscard]] std::size_t operator()(const Prefix& p) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    h = (h ^ p.network().value()) * 1099511628211ULL;
    h = (h ^ static_cast<std::uint64_t>(p.length())) * 1099511628211ULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

}  // namespace fbm::net
