#include "net/lpm.hpp"

#include <algorithm>
#include <array>
#include <random>

namespace fbm::net {

RoutingTable::RoutingTable() { nodes_.push_back(Node{}); }

std::optional<std::uint32_t> RoutingTable::insert(const Prefix& prefix,
                                                  std::uint32_t route_id) {
  std::size_t idx = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int b = bit(prefix.network().value(), depth) ? 1 : 0;
    if (nodes_[idx].child[b] < 0) {
      std::int32_t slot;
      if (free_.empty()) {
        slot = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(Node{});
      } else {
        slot = free_.back();
        free_.pop_back();
      }
      nodes_[idx].child[b] = slot;
      nodes_[static_cast<std::size_t>(slot)].depth =
          static_cast<std::int8_t>(depth + 1);
    }
    idx = static_cast<std::size_t>(nodes_[idx].child[b]);
  }
  std::optional<std::uint32_t> previous;
  if (nodes_[idx].terminal) previous = nodes_[idx].route_id;
  nodes_[idx].terminal = true;
  nodes_[idx].route_id = route_id;
  if (!previous) ++entries_;
  return previous;
}

std::optional<std::uint32_t> RoutingTable::lookup(Ipv4Address addr) const {
  std::optional<std::uint32_t> best;
  std::size_t idx = 0;
  if (nodes_[0].terminal) best = nodes_[0].route_id;
  for (int depth = 0; depth < 32; ++depth) {
    const int b = bit(addr.value(), depth) ? 1 : 0;
    const std::int32_t next = nodes_[idx].child[b];
    if (next < 0) break;
    idx = static_cast<std::size_t>(next);
    if (nodes_[idx].terminal) best = nodes_[idx].route_id;
  }
  return best;
}

std::optional<Prefix> RoutingTable::lookup_prefix(Ipv4Address addr) const {
  std::optional<Prefix> best;
  std::size_t idx = 0;
  if (nodes_[0].terminal) best = Prefix(addr, 0);
  for (int depth = 0; depth < 32; ++depth) {
    const int b = bit(addr.value(), depth) ? 1 : 0;
    const std::int32_t next = nodes_[idx].child[b];
    if (next < 0) break;
    idx = static_cast<std::size_t>(next);
    if (nodes_[idx].terminal) best = Prefix(addr, depth + 1);
  }
  return best;
}

bool RoutingTable::erase(const Prefix& prefix) {
  std::array<std::int32_t, 33> path;  // node index at each depth of the walk
  path[0] = 0;
  std::size_t idx = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int b = bit(prefix.network().value(), depth) ? 1 : 0;
    const std::int32_t next = nodes_[idx].child[b];
    if (next < 0) return false;
    idx = static_cast<std::size_t>(next);
    path[static_cast<std::size_t>(depth) + 1] = next;
  }
  if (!nodes_[idx].terminal) return false;
  nodes_[idx].terminal = false;
  --entries_;
  // Prune the dead tail of the path: a node that is neither terminal nor a
  // parent serves no lookup, so unlink it bottom-up and park the slot on
  // the free list for insert() to reuse. Without this, attach/detach
  // cycles grow the trie without bound.
  for (int depth = prefix.length(); depth > 0; --depth) {
    const std::int32_t slot = path[static_cast<std::size_t>(depth)];
    Node& node = nodes_[static_cast<std::size_t>(slot)];
    if (node.terminal || node.child[0] >= 0 || node.child[1] >= 0) break;
    Node& parent = nodes_[static_cast<std::size_t>(path[depth - 1])];
    const int b = bit(prefix.network().value(), depth - 1) ? 1 : 0;
    parent.child[b] = -1;
    node = Node{};
    free_.push_back(slot);
  }
  return true;
}

void RoutingTable::lookup_batch(const std::uint32_t* addrs, std::size_t n,
                                std::uint32_t* out, std::uint32_t miss) const {
  // Up to kLanes dependent pointer-chase chains run interleaved: while one
  // lane's node load is in flight the other lanes issue theirs, and each
  // child is prefetched a full round before it is visited.
  constexpr std::size_t kLanes = 8;
  const Node* nodes = nodes_.data();
  std::size_t base = 0;
  while (base < n) {
    const std::size_t lanes = std::min(kLanes, n - base);
    std::int32_t cur[kLanes];  // node each lane visits this round; -1 = done
    std::uint32_t best[kLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      cur[l] = 0;
      best[l] = miss;
    }
    std::size_t active = lanes;
    for (int depth = 0; depth <= 32 && active > 0; ++depth) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::int32_t idx = cur[l];
        if (idx < 0) continue;
        const Node& node = nodes[idx];
        if (node.terminal) best[l] = node.route_id;
        if (depth == 32) {  // /32 leaf: no further bit to branch on
          cur[l] = -1;
          --active;
          continue;
        }
        const std::int32_t next =
            node.child[bit(addrs[base + l], depth) ? 1 : 0];
        cur[l] = next;
        if (next < 0) {
          --active;
          continue;
        }
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&nodes[next]);
#endif
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) out[base + l] = best[l];
    base += lanes;
  }
}

std::vector<RoutingTable::Entry> RoutingTable::entries() const {
  // Iterative DFS reconstructing prefixes from the path.
  std::vector<Entry> out;
  struct Frame {
    std::size_t idx;
    std::uint32_t bits;
    int depth;
  };
  std::vector<Frame> stack = {{0, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.idx];
    if (node.terminal) {
      out.push_back({Prefix(Ipv4Address{f.bits}, f.depth), node.route_id});
    }
    for (int b = 1; b >= 0; --b) {
      if (node.child[b] >= 0) {
        std::uint32_t bits = f.bits;
        if (b == 1) bits |= (1u << (31 - f.depth));
        stack.push_back({static_cast<std::size_t>(node.child[b]), bits,
                         f.depth + 1});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return std::pair(a.prefix.network().value(), a.prefix.length()) <
           std::pair(b.prefix.network().value(), b.prefix.length());
  });
  return out;
}

RoutingTable make_synthetic_fib(std::size_t n, std::uint64_t seed, double w8,
                                double w16, double w24) {
  std::mt19937_64 rng(seed);
  std::discrete_distribution<int> pick({w8, w16, w24});
  std::uniform_int_distribution<std::uint32_t> dist32;
  RoutingTable table;
  std::uint32_t route_id = 0;
  while (table.size() < n) {
    const std::uint32_t addr = dist32(rng);
    int len = 24;
    switch (pick(rng)) {
      case 0: len = 8; break;
      case 1: len = 16; break;
      default: len = 24; break;
    }
    table.insert(Prefix(Ipv4Address{addr}, len), route_id++);
  }
  return table;
}

}  // namespace fbm::net
