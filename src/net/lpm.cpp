#include "net/lpm.hpp"

#include <algorithm>
#include <random>

namespace fbm::net {

RoutingTable::RoutingTable() { nodes_.push_back(Node{}); }

std::optional<std::uint32_t> RoutingTable::insert(const Prefix& prefix,
                                                  std::uint32_t route_id) {
  std::size_t idx = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int b = bit(prefix.network().value(), depth) ? 1 : 0;
    if (nodes_[idx].child[b] < 0) {
      nodes_[idx].child[b] = static_cast<std::int32_t>(nodes_.size());
      Node node;
      node.depth = static_cast<std::int8_t>(depth + 1);
      nodes_.push_back(node);
    }
    idx = static_cast<std::size_t>(nodes_[idx].child[b]);
  }
  std::optional<std::uint32_t> previous;
  if (nodes_[idx].terminal) previous = nodes_[idx].route_id;
  nodes_[idx].terminal = true;
  nodes_[idx].route_id = route_id;
  if (!previous) ++entries_;
  return previous;
}

std::optional<std::uint32_t> RoutingTable::lookup(Ipv4Address addr) const {
  std::optional<std::uint32_t> best;
  std::size_t idx = 0;
  if (nodes_[0].terminal) best = nodes_[0].route_id;
  for (int depth = 0; depth < 32; ++depth) {
    const int b = bit(addr.value(), depth) ? 1 : 0;
    const std::int32_t next = nodes_[idx].child[b];
    if (next < 0) break;
    idx = static_cast<std::size_t>(next);
    if (nodes_[idx].terminal) best = nodes_[idx].route_id;
  }
  return best;
}

std::optional<Prefix> RoutingTable::lookup_prefix(Ipv4Address addr) const {
  std::optional<Prefix> best;
  std::size_t idx = 0;
  if (nodes_[0].terminal) best = Prefix(addr, 0);
  for (int depth = 0; depth < 32; ++depth) {
    const int b = bit(addr.value(), depth) ? 1 : 0;
    const std::int32_t next = nodes_[idx].child[b];
    if (next < 0) break;
    idx = static_cast<std::size_t>(next);
    if (nodes_[idx].terminal) best = Prefix(addr, depth + 1);
  }
  return best;
}

bool RoutingTable::erase(const Prefix& prefix) {
  std::size_t idx = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int b = bit(prefix.network().value(), depth) ? 1 : 0;
    const std::int32_t next = nodes_[idx].child[b];
    if (next < 0) return false;
    idx = static_cast<std::size_t>(next);
  }
  if (!nodes_[idx].terminal) return false;
  nodes_[idx].terminal = false;
  --entries_;
  return true;
}

std::vector<RoutingTable::Entry> RoutingTable::entries() const {
  // Iterative DFS reconstructing prefixes from the path.
  std::vector<Entry> out;
  struct Frame {
    std::size_t idx;
    std::uint32_t bits;
    int depth;
  };
  std::vector<Frame> stack = {{0, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.idx];
    if (node.terminal) {
      out.push_back({Prefix(Ipv4Address{f.bits}, f.depth), node.route_id});
    }
    for (int b = 1; b >= 0; --b) {
      if (node.child[b] >= 0) {
        std::uint32_t bits = f.bits;
        if (b == 1) bits |= (1u << (31 - f.depth));
        stack.push_back({static_cast<std::size_t>(node.child[b]), bits,
                         f.depth + 1});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return std::pair(a.prefix.network().value(), a.prefix.length()) <
           std::pair(b.prefix.network().value(), b.prefix.length());
  });
  return out;
}

RoutingTable make_synthetic_fib(std::size_t n, std::uint64_t seed, double w8,
                                double w16, double w24) {
  std::mt19937_64 rng(seed);
  std::discrete_distribution<int> pick({w8, w16, w24});
  std::uniform_int_distribution<std::uint32_t> dist32;
  RoutingTable table;
  std::uint32_t route_id = 0;
  while (table.size() < n) {
    const std::uint32_t addr = dist32(rng);
    int len = 24;
    switch (pick(rng)) {
      case 0: len = 8; break;
      case 1: len = 16; break;
      default: len = 24; break;
    }
    table.insert(Prefix(Ipv4Address{addr}, len), route_id++);
  }
  return table;
}

}  // namespace fbm::net
