// Longest-prefix-match routing table (binary trie).
//
// Section VI-A proposes defining flows by "routable" prefixes — the entries
// of the router's forwarding table — instead of fixed /24s, so that flow
// state shrinks further and flow statistics can be combined with routing
// information. RoutingTable provides the longest-prefix-match lookup that
// such a flow definition needs; flow/classifier.hpp's RoutableKey uses it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ip.hpp"

namespace fbm::net {

/// Binary (one bit per level) trie mapping prefixes to a route id.
/// Insertion is O(prefix length); lookup walks at most 32 levels and returns
/// the longest matching entry.
class RoutingTable {
 public:
  RoutingTable();

  /// Inserts or replaces the entry for `prefix`. Returns the previous route
  /// id if the exact prefix was already present.
  std::optional<std::uint32_t> insert(const Prefix& prefix,
                                      std::uint32_t route_id);

  /// Longest-prefix match; nullopt when no entry covers the address (no
  /// default route unless one was inserted as /0).
  [[nodiscard]] std::optional<std::uint32_t> lookup(Ipv4Address addr) const;

  /// Batched longest-prefix match over raw address values: out[i] gets the
  /// route id for addrs[i], or `miss` for addresses no entry covers. Walks
  /// several tries strides in parallel lanes with node prefetch, so the
  /// dependent-load chain of one lookup overlaps the others — same results
  /// as calling lookup() per address, measurably faster on large tables.
  void lookup_batch(const std::uint32_t* addrs, std::size_t n,
                    std::uint32_t* out, std::uint32_t miss) const;

  /// The matching prefix itself (for flow keying).
  [[nodiscard]] std::optional<Prefix> lookup_prefix(Ipv4Address addr) const;

  /// Removes the exact prefix; returns false if absent. Interior nodes left
  /// childless and non-terminal by the removal are pruned onto a free list
  /// that insert() reuses, so attach/detach cycles do not grow the trie.
  bool erase(const Prefix& prefix);

  [[nodiscard]] std::size_t size() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_ == 0; }

  /// Live trie nodes (allocated minus free-listed), for bounding growth in
  /// tests; at most 1 + sum over entries of prefix length.
  [[nodiscard]] std::size_t node_count() const {
    return nodes_.size() - free_.size();
  }

  /// All installed entries in ascending (network, length) order.
  struct Entry {
    Prefix prefix;
    std::uint32_t route_id;
  };
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};  ///< indices into nodes_, -1 = none
    bool terminal = false;
    std::uint32_t route_id = 0;
    std::int8_t depth = 0;
  };

  [[nodiscard]] static bool bit(std::uint32_t value, int depth) {
    return (value >> (31 - depth)) & 1u;
  }

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_;  ///< pruned slots, reused by insert()
  std::size_t entries_ = 0;
};

/// Builds a synthetic backbone forwarding table: `n` prefixes with lengths
/// drawn from the given histogram-like weights for /8, /16, /24 (roughly the
/// 2001 BGP table mix). Deterministic for a given seed.
[[nodiscard]] RoutingTable make_synthetic_fib(std::size_t n,
                                              std::uint64_t seed,
                                              double w8 = 0.05,
                                              double w16 = 0.45,
                                              double w24 = 0.50);

}  // namespace fbm::net
