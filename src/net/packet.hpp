// Packet record: the unit stored in trace files.
//
// Mirrors the paper's measurement infrastructure, which timestamps every
// packet and keeps its first 44 bytes (enough for IP + transport headers).
// We keep the decoded header fields plus the on-wire size.
#pragma once

#include <cstdint>

#include "net/five_tuple.hpp"

namespace fbm::net {

struct PacketRecord {
  double timestamp = 0.0;        ///< seconds since trace start
  FiveTuple tuple;               ///< decoded header fields
  std::uint32_t size_bytes = 0;  ///< IP datagram length on the wire

  friend constexpr bool operator==(const PacketRecord&, const PacketRecord&) =
      default;
};

/// Strict-weak ordering by timestamp (merge / sort helper).
struct ByTimestamp {
  [[nodiscard]] constexpr bool operator()(const PacketRecord& a,
                                          const PacketRecord& b) const {
    return a.timestamp < b.timestamp;
  }
};

}  // namespace fbm::net
