// Structure-of-arrays packet batch — the unit of flow through the hot path.
//
// The per-packet pipeline (virtual TraceSource::next() returning an
// std::optional, one Shard::add() per packet) spends most of its cycles on
// call overhead and cache misses, not on classification. PacketBatch moves
// packets through the pipeline a few hundred at a time in parallel arrays:
//
//   timestamps[i] | tuples[i] | sizes[i]     describe packet i
//
// The SoA layout keeps the fields each stage actually touches dense —
// interval-run splitting scans timestamps[] alone (8 bytes/packet, one cache
// line per 8 packets), key extraction scans tuples[], binning scans
// timestamps[]+sizes[] — and lets consumers hoist per-packet work (hash
// computation, interval-index checks, virtual dispatch) to per-batch work.
//
// Invariant: the three arrays always have identical length. Timestamps are
// non-decreasing when the batch was filled from a TraceSource (sources
// deliver in stream order); consumers that require ordering validate it
// once per batch instead of once per packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace fbm::net {

struct PacketBatch {
  std::vector<double> timestamps;
  std::vector<FiveTuple> tuples;
  std::vector<std::uint32_t> sizes;

  [[nodiscard]] std::size_t size() const { return timestamps.size(); }
  [[nodiscard]] bool empty() const { return timestamps.empty(); }

  void clear() {
    timestamps.clear();
    tuples.clear();
    sizes.clear();
  }

  void reserve(std::size_t n) {
    timestamps.reserve(n);
    tuples.reserve(n);
    sizes.reserve(n);
  }

  void push_back(const PacketRecord& p) {
    timestamps.push_back(p.timestamp);
    tuples.push_back(p.tuple);
    sizes.push_back(p.size_bytes);
  }

  void emplace_back(double timestamp, const FiveTuple& tuple,
                    std::uint32_t size_bytes) {
    timestamps.push_back(timestamp);
    tuples.push_back(tuple);
    sizes.push_back(size_bytes);
  }

  /// Replaces the contents with `recs` (AoS -> SoA transpose).
  void assign(std::span<const PacketRecord> recs) {
    clear();
    append(recs);
  }

  void append(std::span<const PacketRecord> recs) {
    reserve(size() + recs.size());
    for (const auto& r : recs) push_back(r);
  }

  /// Appends all of `other` (SoA -> SoA, three bulk copies).
  void append(const PacketBatch& other) {
    timestamps.insert(timestamps.end(), other.timestamps.begin(),
                      other.timestamps.end());
    tuples.insert(tuples.end(), other.tuples.begin(), other.tuples.end());
    sizes.insert(sizes.end(), other.sizes.begin(), other.sizes.end());
  }

  /// Packet i as the classic AoS record (cold paths and tests).
  [[nodiscard]] PacketRecord record(std::size_t i) const {
    return {timestamps[i], tuples[i], sizes[i]};
  }
};

}  // namespace fbm::net
