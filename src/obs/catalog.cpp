#include "obs/catalog.hpp"

#include <map>
#include <mutex>

namespace fbm::obs {

namespace {

Registry& reg() { return Registry::global(); }

/// Cache for labeled families: one registry resolve per distinct label
/// value, then a plain map lookup under a local mutex. Labeled accessors
/// are called at setup/flush cadence, not per packet.
template <typename T, typename Make>
T& labeled(std::map<std::string, T*>& cache, std::mutex& mu,
           const std::string& label_value, Make make) {
  std::lock_guard lock(mu);
  auto it = cache.find(label_value);
  if (it == cache.end()) {
    it = cache.emplace(label_value, &make()).first;
  }
  return *it->second;
}

}  // namespace

Histogram& stage_seconds(const std::string& stage) {
  static std::mutex mu;
  static std::map<std::string, Histogram*> cache;
  return labeled(cache, mu, stage, [&]() -> Histogram& {
    return reg().histogram({.name = "fbm_stage_seconds",
                            .help = "Wall time per pipeline stage span",
                            .unit = "seconds",
                            .stage = stage,
                            .labels = {{"stage", stage}}},
                           log_scale_bounds(1e-6, 4.0, 13));
  });
}

ShardedCounter& classify_packets() {
  static ShardedCounter& c = reg().sharded_counter(
      {.name = "fbm_classify_packets_total",
       .help = "Packets classified into flows",
       .unit = "packets",
       .stage = kStageClassify});
  return c;
}

ShardedCounter& flows_emitted() {
  static ShardedCounter& c = reg().sharded_counter(
      {.name = "fbm_flows_emitted_total",
       .help = "Flows emitted to the rate binner",
       .unit = "flows",
       .stage = kStageClassify});
  return c;
}

ShardedCounter& flows_discarded() {
  static ShardedCounter& c = reg().sharded_counter(
      {.name = "fbm_flows_discarded_total",
       .help = "Single-packet flows discarded (paper filtering rule)",
       .unit = "flows",
       .stage = kStageClassify});
  return c;
}

ShardedCounter& flow_boundary_splits() {
  static ShardedCounter& c = reg().sharded_counter(
      {.name = "fbm_flow_boundary_splits_total",
       .help = "Flow pieces created by interval-boundary splitting",
       .unit = "flows",
       .stage = kStageClassify});
  return c;
}

Gauge& flow_table_active(const std::string& pipeline) {
  static std::mutex mu;
  static std::map<std::string, Gauge*> cache;
  return labeled(cache, mu, pipeline, [&]() -> Gauge& {
    return reg().gauge({.name = "fbm_flow_table_active",
                        .help = "Open flows in the flow table",
                        .unit = "flows",
                        .stage = kStageClassify,
                        .labels = {{"pipeline", pipeline}}});
  });
}

Gauge& flow_table_load_factor(const std::string& pipeline) {
  static std::mutex mu;
  static std::map<std::string, Gauge*> cache;
  return labeled(cache, mu, pipeline, [&]() -> Gauge& {
    return reg().gauge({.name = "fbm_flow_table_load_factor",
                        .help = "Flow table occupancy / capacity",
                        .unit = "ratio",
                        .stage = kStageClassify,
                        .labels = {{"pipeline", pipeline}}});
  });
}

Gauge& flow_table_avg_probe(const std::string& pipeline) {
  static std::mutex mu;
  static std::map<std::string, Gauge*> cache;
  return labeled(cache, mu, pipeline, [&]() -> Gauge& {
    return reg().gauge({.name = "fbm_flow_table_avg_probe",
                        .help = "Mean robin-hood probe distance",
                        .unit = "slots",
                        .stage = kStageClassify,
                        .labels = {{"pipeline", pipeline}}});
  });
}

Counter& source_packets() {
  static Counter& c = reg().counter(
      {.name = "fbm_source_packets_total",
       .help = "Packets read from the trace source",
       .unit = "packets",
       .stage = kStageSourceRead});
  return c;
}

Counter& source_batches() {
  static Counter& c = reg().counter(
      {.name = "fbm_source_batches_total",
       .help = "Batches read from the trace source",
       .unit = "batches",
       .stage = kStageSourceRead});
  return c;
}

Counter& demux_packets() {
  static Counter& c = reg().counter(
      {.name = "fbm_demux_packets_total",
       .help = "Packets seen by the engine link demux",
       .unit = "packets",
       .stage = kStageDemux});
  return c;
}

Gauge& link_packets(const std::string& link) {
  static std::mutex mu;
  static std::map<std::string, Gauge*> cache;
  return labeled(cache, mu, link, [&]() -> Gauge& {
    return reg().gauge({.name = "fbm_link_packets",
                        .help = "Packets routed to this link so far",
                        .unit = "packets",
                        .stage = kStageDemux,
                        .labels = {{"link", link}}});
  });
}

Gauge& link_reports(const std::string& link) {
  static std::mutex mu;
  static std::map<std::string, Gauge*> cache;
  return labeled(cache, mu, link, [&]() -> Gauge& {
    return reg().gauge({.name = "fbm_link_reports",
                        .help = "Reports emitted for this link so far",
                        .unit = "reports",
                        .stage = kStageDemux,
                        .labels = {{"link", link}}});
  });
}

Gauge& worker_queue_depth(const std::string& pool, std::size_t worker) {
  static std::mutex mu;
  static std::map<std::string, Gauge*> cache;
  const std::string key = pool + '/' + std::to_string(worker);
  return labeled(cache, mu, key, [&]() -> Gauge& {
    return reg().gauge({.name = "fbm_worker_queue_depth",
                        .help = "Commands queued for this worker",
                        .unit = "commands",
                        .stage = kStageDemux,
                        .labels = {{"pool", pool},
                                   {"worker", std::to_string(worker)}}});
  });
}

Counter& backpressure_waits(const std::string& pool) {
  static std::mutex mu;
  static std::map<std::string, Counter*> cache;
  return labeled(cache, mu, pool, [&]() -> Counter& {
    return reg().counter({.name = "fbm_backpressure_waits_total",
                          .help = "Producer blocked on a full worker queue",
                          .unit = "waits",
                          .stage = kStageDemux,
                          .labels = {{"pool", pool}}});
  });
}

Counter& windows_fitted() {
  static Counter& c = reg().counter(
      {.name = "fbm_windows_fitted_total",
       .help = "Windows fitted through api::fit_window",
       .unit = "windows",
       .stage = kStageFit});
  return c;
}

Gauge& live_open_windows() {
  static Gauge& g = reg().gauge(
      {.name = "fbm_live_open_windows",
       .help = "Currently open sliding windows",
       .unit = "windows",
       .stage = kStageFit});
  return g;
}

Counter& live_windows_closed() {
  static Counter& c = reg().counter(
      {.name = "fbm_live_windows_closed_total",
       .help = "Sliding windows closed and emitted",
       .unit = "windows",
       .stage = kStageFit});
  return c;
}

Gauge& live_window_lag_s() {
  static Gauge& g = reg().gauge(
      {.name = "fbm_live_window_lag_seconds",
       .help = "Wall clock minus newest packet time (--follow)",
       .unit = "seconds",
       .stage = kStageFit});
  return g;
}

Counter& live_alerts(const std::string& kind) {
  static std::mutex mu;
  static std::map<std::string, Counter*> cache;
  return labeled(cache, mu, kind, [&]() -> Counter& {
    return reg().counter({.name = "fbm_live_alerts_total",
                          .help = "Anomaly alerts emitted",
                          .unit = "alerts",
                          .stage = kStageForecast,
                          .labels = {{"kind", kind}}});
  });
}

Counter& store_appends() {
  static Counter& c = reg().counter(
      {.name = "fbm_store_appends_total",
       .help = "Reports appended to the FBMS store",
       .unit = "records",
       .stage = kStageStoreAppend});
  return c;
}

Counter& store_scanned() {
  static Counter& c = reg().counter(
      {.name = "fbm_store_scanned_total",
       .help = "Records scanned from the FBMS store",
       .unit = "records",
       .stage = kStageStoreAppend});
  return c;
}

Counter& agg_windows_merged() {
  static Counter& c = reg().counter(
      {.name = "fbm_agg_windows_merged_total",
       .help = "Windows folded by the distributed merger",
       .unit = "windows",
       .stage = kStageFit});
  return c;
}

Counter& agg_partials_read() {
  static Counter& c = reg().counter(
      {.name = "fbm_agg_partials_read_total",
       .help = "Partial-report files read by the merger",
       .unit = "files",
       .stage = kStageFit});
  return c;
}

Counter& checkpoint_writes() {
  static Counter& c = reg().counter(
      {.name = "fbm_checkpoint_writes_total",
       .help = "Checkpoints written",
       .unit = "checkpoints",
       .stage = kStageCheckpoint});
  return c;
}

Gauge& checkpoint_last_bytes() {
  static Gauge& g = reg().gauge(
      {.name = "fbm_checkpoint_last_bytes",
       .help = "Size of the most recent checkpoint",
       .unit = "bytes",
       .stage = kStageCheckpoint});
  return g;
}

Counter& scenario_packets() {
  static Counter& c = reg().counter(
      {.name = "fbm_scenario_packets_total",
       .help = "Packets generated by the scenario engine",
       .unit = "packets",
       .stage = kStageScenarioGen});
  return c;
}

Counter& scenario_flows(const std::string& cls) {
  static std::mutex mu;
  static std::map<std::string, Counter*> cache;
  return labeled(cache, mu, cls, [&]() -> Counter& {
    return reg().counter({.name = "fbm_scenario_flows_total",
                          .help = "Scenario flows started",
                          .unit = "flows",
                          .stage = kStageScenarioGen,
                          .labels = {{"class", cls}}});
  });
}

Counter& scenario_events(const std::string& kind) {
  static std::mutex mu;
  static std::map<std::string, Counter*> cache;
  return labeled(cache, mu, kind, [&]() -> Counter& {
    return reg().counter({.name = "fbm_scenario_events_total",
                          .help = "Ground-truth events injected",
                          .unit = "events",
                          .stage = kStageScenarioGen,
                          .labels = {{"kind", kind}}});
  });
}

Counter& scenario_alerts(const std::string& result) {
  static std::mutex mu;
  static std::map<std::string, Counter*> cache;
  return labeled(cache, mu, result, [&]() -> Counter& {
    return reg().counter({.name = "fbm_scenario_alerts_total",
                          .help = "Scored alert verdicts",
                          .unit = "alerts",
                          .stage = kStageScenarioScore,
                          .labels = {{"result", result}}});
  });
}

}  // namespace fbm::obs
