// Canonical metric catalog (fbm::obs): every metric the tree emits is
// declared here, so names, units, and stages stay consistent between the
// instrumentation sites, the README table, and the schema tests.
//
// Each accessor resolves its instrument in Registry::global() on first call
// and caches the reference in a function-local static — instrumentation
// sites pay the registry mutex once per process, never per event.
//
// Labeled families (per-stage histograms, per-link counters, per-worker
// gauges) take the label value; callers that fire per batch resolve the
// instrument once at setup and keep the reference.
//
// StageSpan is the sampling primitive for the per-stage wall-time
// breakdown: a scoped perf::Stopwatch that observes its elapsed seconds
// into fbm_stage_seconds{stage=...} on destruction. Spans wrap *batch*
// work (read a batch, classify a batch, fit a window, write a checkpoint),
// never per-packet work, so the timing cost amortises to nothing.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"

namespace fbm::obs {

// Stage names, also the `stage=` label of fbm_stage_seconds. Keep in sync
// with the README metric catalog.
inline constexpr const char* kStageSourceRead = "source_read";
inline constexpr const char* kStageDemux = "demux";
inline constexpr const char* kStageClassify = "classify";
inline constexpr const char* kStageFit = "fit";
inline constexpr const char* kStageForecast = "forecast";
inline constexpr const char* kStageStoreAppend = "store_append";
inline constexpr const char* kStageCheckpoint = "checkpoint_write";
inline constexpr const char* kStageScenarioGen = "scenario_gen";
inline constexpr const char* kStageScenarioScore = "scenario_score";

/// fbm_stage_seconds{stage=...} — per-stage wall time, log-scale buckets
/// 1 us .. ~17 s (factor 4). One histogram per distinct stage string.
[[nodiscard]] Histogram& stage_seconds(const std::string& stage);

/// Scoped span: observes elapsed seconds into `h` at scope exit. The
/// obs::enabled() check happens at construction; a disabled span is two
/// branches total — it never reads the clock, so a metrics-off run pays
/// nothing measurable.
class StageSpan {
 public:
  explicit StageSpan(Histogram& h) {
    if (enabled()) {
      h_ = &h;
      start_ = std::chrono::steady_clock::now();
    }
  }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;
  ~StageSpan() {
    if (h_ != nullptr) {
      h_->observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }

 private:
  Histogram* h_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

// --- classify -------------------------------------------------------------
/// Packets classified (all pipelines; per-shard local cells).
[[nodiscard]] ShardedCounter& classify_packets();
/// Flows emitted to the rate binner.
[[nodiscard]] ShardedCounter& flows_emitted();
/// Single-packet flows discarded per the paper's filtering rule.
[[nodiscard]] ShardedCounter& flows_discarded();
/// Flow pieces created by analysis-interval boundary splitting.
[[nodiscard]] ShardedCounter& flow_boundary_splits();
/// Flow-table occupancy / geometry, refreshed at flush/sweep cadence.
[[nodiscard]] Gauge& flow_table_active(const std::string& pipeline);
[[nodiscard]] Gauge& flow_table_load_factor(const std::string& pipeline);
[[nodiscard]] Gauge& flow_table_avg_probe(const std::string& pipeline);

// --- source / demux -------------------------------------------------------
/// Packets read from the trace source (before any demux/classify).
[[nodiscard]] Counter& source_packets();
/// Batches read from the trace source.
[[nodiscard]] Counter& source_batches();
/// Packets seen by the engine demux (before link matching).
[[nodiscard]] Counter& demux_packets();
/// Per-link routed packets/reports, refreshed by the engine at flush.
[[nodiscard]] Gauge& link_packets(const std::string& link);
[[nodiscard]] Gauge& link_reports(const std::string& link);

// --- workers / backpressure ----------------------------------------------
/// Queue depth of one worker ("engine"/"pipeline" pool, worker index).
[[nodiscard]] Gauge& worker_queue_depth(const std::string& pool,
                                        std::size_t worker);
/// Producer blocked on a full worker queue (one count per wait).
[[nodiscard]] Counter& backpressure_waits(const std::string& pool);

// --- fit / window / live --------------------------------------------------
/// Windows fitted through api::fit_window (all paths). A plain counter:
/// windows close at interval cadence, so one shared add per window is free.
[[nodiscard]] Counter& windows_fitted();
/// Live estimator: currently open windows.
[[nodiscard]] Gauge& live_open_windows();
/// Live estimator: windows closed and emitted.
[[nodiscard]] Counter& live_windows_closed();
/// Newest packet timestamp vs wall clock in --follow mode (seconds).
[[nodiscard]] Gauge& live_window_lag_s();
/// Anomaly alerts by kind ("spike" / "drop").
[[nodiscard]] Counter& live_alerts(const std::string& kind);

// --- sinks / durability ---------------------------------------------------
/// Reports appended to an FBMS store.
[[nodiscard]] Counter& store_appends();
/// Records scanned from an FBMS store (fbm_query).
[[nodiscard]] Counter& store_scanned();
/// Windows folded by the distributed merger (fbm_aggregate).
[[nodiscard]] Counter& agg_windows_merged();
/// Partial-report files read by the merger.
[[nodiscard]] Counter& agg_partials_read();
/// Checkpoints written; size of the most recent one.
[[nodiscard]] Counter& checkpoint_writes();
[[nodiscard]] Gauge& checkpoint_last_bytes();

// --- scenario engine ------------------------------------------------------
/// Packets generated by a ScenarioTraceSource run (fbm_scenario).
[[nodiscard]] Counter& scenario_packets();
/// Flows started, by class ("baseline" / "attack").
[[nodiscard]] Counter& scenario_flows(const std::string& cls);
/// Ground-truth events injected, by kind ("spike" / "drop").
[[nodiscard]] Counter& scenario_events(const std::string& kind);
/// Alert-scoring verdicts ("tp" / "fp" / "ignored").
[[nodiscard]] Counter& scenario_alerts(const std::string& result);

}  // namespace fbm::obs
