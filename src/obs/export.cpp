#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <string_view>

#include "core/json_writer.hpp"

namespace fbm::obs {

namespace {

/// Prometheus label-value / HELP escaping: backslash, quote, newline.
std::string prom_escape(std::string_view s, bool quote_too) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"' && quote_too) {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prom_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* extra_key = nullptr, const std::string& extra_val = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prom_escape(v, /*quote_too=*/true);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += prom_escape(extra_val, /*quote_too=*/true);
    out += '"';
  }
  out += '}';
  return out;
}

/// Prometheus sample value for a double (exposition format accepts the
/// shortest round-trip decimal; non-finite values render as Go-style
/// tokens, not JSON null).
std::string prom_number(double v) {
  if (v != v) return "NaN";
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-Inf";
  return core::json_number(v);
}

void jsonl_metric(core::JsonWriter& w, const MetricValue& m) {
  w.begin_object();
  w.field("name", std::string_view(m.meta.name));
  w.field("type", std::string_view(type_name(m.type)));
  w.field("unit", std::string_view(m.meta.unit));
  w.field("stage", std::string_view(m.meta.stage));
  w.begin_object("labels");
  for (const auto& [k, v] : m.meta.labels) {
    w.field(std::string_view(k), std::string_view(v));
  }
  w.end_object();
  switch (m.type) {
    case MetricType::counter:
    case MetricType::sharded_counter:
      w.field("value", m.counter);
      break;
    case MetricType::gauge:
      w.field("value", m.gauge);
      break;
    case MetricType::histogram: {
      w.begin_array("bounds");
      for (double b : m.hist.bounds) w.raw_element(core::json_number(b));
      w.end_array();
      w.begin_array("counts");
      for (std::uint64_t c : m.hist.counts) {
        w.raw_element(std::to_string(c));
      }
      w.end_array();
      w.field("count", m.hist.count);
      w.field("sum", m.hist.sum);
      break;
    }
  }
  w.end_object();
}

}  // namespace

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::counter:
    case MetricType::sharded_counter:
      return "counter";
    case MetricType::gauge:
      return "gauge";
    case MetricType::histogram:
      return "histogram";
  }
  return "counter";
}

std::string to_jsonl(const Snapshot& snap, std::uint64_t seq,
                     double uptime_s) {
  core::JsonWriter w(core::JsonWriter::Style::compact);
  w.begin_object();
  w.field("schema", std::string_view(kMetricsSchema));
  w.field("seq", seq);
  w.field("uptime_s", uptime_s);
  w.raw_field("metrics", to_json_metrics(snap));
  w.end_object();
  return std::move(w).str();
}

std::string to_json_metrics(const Snapshot& snap) {
  core::JsonWriter w(core::JsonWriter::Style::compact);
  w.begin_array();
  for (const auto& m : snap.metrics) jsonl_metric(w, m);
  w.end_array();
  return std::move(w).str();
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::string last_name;  // HELP/TYPE once per family, series stay adjacent
  for (const auto& m : snap.metrics) {
    if (m.meta.name != last_name) {
      last_name = m.meta.name;
      out += "# HELP " + m.meta.name + ' ' +
             prom_escape(m.meta.help, /*quote_too=*/false) + '\n';
      out += "# TYPE " + m.meta.name + ' ' + type_name(m.type) + '\n';
    }
    const std::string labels = prom_labels(m.meta.labels);
    switch (m.type) {
      case MetricType::counter:
      case MetricType::sharded_counter:
        out += m.meta.name + labels + ' ' + std::to_string(m.counter) + '\n';
        break;
      case MetricType::gauge:
        out += m.meta.name + labels + ' ' + prom_number(m.gauge) + '\n';
        break;
      case MetricType::histogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.hist.counts.size(); ++i) {
          cum += m.hist.counts[i];
          const std::string le = i < m.hist.bounds.size()
                                     ? prom_number(m.hist.bounds[i])
                                     : std::string("+Inf");
          out += m.meta.name + "_bucket" +
                 prom_labels(m.meta.labels, "le", le) + ' ' +
                 std::to_string(cum) + '\n';
        }
        out += m.meta.name + "_sum" + labels + ' ' + prom_number(m.hist.sum) +
               '\n';
        out += m.meta.name + "_count" + labels + ' ' +
               std::to_string(m.hist.count) + '\n';
        break;
      }
    }
  }
  return out;
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (err != nullptr) *err = "cannot open " + tmp;
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      if (err != nullptr) *err = "write failed: " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err != nullptr) *err = "rename failed: " + tmp + " -> " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace fbm::obs
