// Snapshot rendering (fbm::obs): the two wire formats for metrics.
//
//   to_jsonl       one self-describing JSON line per scrape — the format
//                  behind `--metrics FILE --metrics-every N` on all four
//                  tools, and the "obs" section of perf::BenchReport.
//                  Rendered through core::JsonWriter, the tree's single
//                  JSON emitter.
//   to_prometheus  Prometheus text exposition (HELP/TYPE, cumulative
//                  le-buckets) for scrape-based collection; written
//                  atomically to a file (tmp + rename) so a collector
//                  never reads a torn page.
//
// Both render a Snapshot (registry.hpp), never live instruments, so the
// formats are trivially testable against golden strings.
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.hpp"

namespace fbm::obs {

/// Schema tag stamped into every JSONL snapshot line.
inline constexpr const char* kMetricsSchema = "fbm.metrics.v1";

/// One compact JSON line (no trailing newline):
///   {"schema":"fbm.metrics.v1","seq":N,"uptime_s":S,"metrics":[...]}
/// Each metric object carries name/type/unit/stage/labels plus its value
/// ("value" for counters and gauges; "bounds"/"counts"/"count"/"sum" for
/// histograms, overflow bucket last).
[[nodiscard]] std::string to_jsonl(const Snapshot& snap, std::uint64_t seq,
                                   double uptime_s);

/// The bare compact "metrics" array ("[...]", no envelope) — the payload
/// to_jsonl wraps, also embedded raw as the "obs" section of a
/// perf::BenchReport so bench telemetry reuses this emitter.
[[nodiscard]] std::string to_json_metrics(const Snapshot& snap);

/// Prometheus text-format exposition, trailing newline included. Histogram
/// buckets are cumulative with the final le="+Inf" sample equal to _count.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Write `content` to `path` via a sibling ".tmp" file + rename, so readers
/// only ever see a complete document. Returns false (and fills *err when
/// given) on I/O failure.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* err = nullptr);

/// Human-readable type tag used by both formats ("counter" for sharded
/// counters too — the distinction is an implementation detail).
[[nodiscard]] const char* type_name(MetricType t);

}  // namespace fbm::obs
