#include "obs/exporter.hpp"

#include <csignal>
#include <cstdio>
#include <utility>

#include "obs/export.hpp"

namespace fbm::obs {

namespace {

volatile std::sig_atomic_t g_sigusr1_pending = 0;

void sigusr1_handler(int) { g_sigusr1_pending = 1; }

}  // namespace

void install_sigusr1() {
#ifdef SIGUSR1
  static bool installed = [] {
    std::signal(SIGUSR1, sigusr1_handler);
    return true;
  }();
  (void)installed;
#endif
}

bool consume_sigusr1() {
  if (g_sigusr1_pending == 0) return false;
  g_sigusr1_pending = 0;
  return true;
}

MetricsExporter::MetricsExporter(ExporterConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.registry == nullptr) cfg_.registry = &Registry::global();
  if (!cfg_.jsonl_path.empty()) {
    jsonl_.open(cfg_.jsonl_path, std::ios::binary | std::ios::trunc);
    if (!jsonl_) {
      std::fprintf(stderr, "fbm: cannot open metrics file %s\n",
                   cfg_.jsonl_path.c_str());
      cfg_.jsonl_path.clear();
    }
  }
  if (active()) install_sigusr1();
}

void MetricsExporter::tick() {
  if (!active()) return;
  const bool forced = consume_sigusr1();
  if (!forced && last_emit_s_ >= 0.0 &&
      uptime_.elapsed_s() - last_emit_s_ < cfg_.every_s) {
    return;
  }
  emit();
}

void MetricsExporter::finish() {
  if (!active()) return;
  emit();
  if (jsonl_.is_open()) jsonl_.close();
}

void MetricsExporter::emit() {
  const Snapshot snap = cfg_.registry->snapshot();
  last_emit_s_ = uptime_.elapsed_s();
  if (!cfg_.jsonl_path.empty() && jsonl_.is_open()) {
    jsonl_ << to_jsonl(snap, seq_, last_emit_s_) << '\n';
    jsonl_.flush();
  }
  if (!cfg_.prom_path.empty()) {
    std::string err;
    if (!write_file_atomic(cfg_.prom_path, to_prometheus(snap), &err)) {
      std::fprintf(stderr, "fbm: metrics exposition: %s\n", err.c_str());
    }
  }
  ++seq_;
}

}  // namespace fbm::obs
