// MetricsExporter (fbm::obs): the tool-facing end of the metrics pipe.
//
// Tools construct one from their --metrics / --metrics-every /
// --metrics-prom flags and call tick() at their natural cadence points
// (batch drain, live sweep, store scan loop). tick() is a no-op until the
// configured interval has elapsed — or a SIGUSR1 arrived — then appends one
// JSONL snapshot line and atomically rewrites the Prometheus exposition
// file. finish() forces a final snapshot so short runs still emit one.
//
// SIGUSR1 is delivered through a sig_atomic_t flag polled from tick(): the
// handler itself does nothing but set it, so it is async-signal-safe, and
// an operator can `kill -USR1 <pid>` a long-lived monitor for an immediate
// dump without waiting out the cadence.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/registry.hpp"
#include "perf/stopwatch.hpp"

namespace fbm::obs {

struct ExporterConfig {
  std::string jsonl_path;  ///< --metrics FILE; empty = no JSONL stream
  double every_s = 1.0;    ///< --metrics-every N (seconds between snapshots)
  std::string prom_path;   ///< --metrics-prom FILE; empty = no exposition
  Registry* registry = nullptr;  ///< nullptr = Registry::global()
};

/// Installs the process SIGUSR1 handler (idempotent). Called by
/// MetricsExporter's constructor when any output is configured.
void install_sigusr1();

/// True once per delivered SIGUSR1 (clears the pending flag).
[[nodiscard]] bool consume_sigusr1();

class MetricsExporter {
 public:
  MetricsExporter() = default;
  explicit MetricsExporter(ExporterConfig cfg);

  /// Any output configured?
  [[nodiscard]] bool active() const {
    return !cfg_.jsonl_path.empty() || !cfg_.prom_path.empty();
  }

  /// Emit if the cadence interval elapsed or a SIGUSR1 is pending.
  void tick();
  /// Unconditional final snapshot (end of run).
  void finish();

  [[nodiscard]] std::uint64_t snapshots_written() const { return seq_; }

 private:
  void emit();

  ExporterConfig cfg_;
  std::ofstream jsonl_;
  perf::Stopwatch uptime_;
  double last_emit_s_ = -1.0;  ///< uptime at last emit; <0 = never
  std::uint64_t seq_ = 0;
};

}  // namespace fbm::obs
