#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace fbm::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("FBM_OBS_OFF");
    return !(env != nullptr && env[0] == '1');
  }();
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Histogram ---

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no bucket bounds");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument("Histogram: bounds not increasing");
    }
  }
}

void Histogram::observe(double v) {
  // First bound >= v; everything above the last bound overflows into the
  // extra bucket. NaN (never produced by the stopwatch) would overflow too.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> via CAS: portable across libstdc++ versions.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<double> log_scale_bounds(double first, double factor,
                                     std::size_t n) {
  if (!(first > 0.0) || !(factor > 1.0) || n == 0) {
    throw std::invalid_argument("log_scale_bounds: need first > 0, "
                                "factor > 1, n > 0");
  }
  std::vector<double> out;
  out.reserve(n);
  double v = first;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

// ----------------------------------------------------------- ShardedCounter ---

ShardedCounter::Local ShardedCounter::local() {
  std::lock_guard lock(mu_);
  std::atomic<std::uint64_t>* cell;
  if (!free_.empty()) {
    cell = free_.back();
    free_.pop_back();
  } else {
    cell = &cells_.emplace_back(0);
  }
  return Local(this, cell);
}

void ShardedCounter::Local::release() {
  if (owner_ == nullptr || cell_ == nullptr) return;
  std::lock_guard lock(owner_->mu_);
  // Fold the cell into the base so the family total survives this local,
  // then recycle the (zeroed) cell.
  owner_->base_.fetch_add(cell_->exchange(0, std::memory_order_relaxed),
                          std::memory_order_relaxed);
  owner_->free_.push_back(cell_);
  owner_ = nullptr;
  cell_ = nullptr;
}

std::uint64_t ShardedCounter::value() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = base_.load(std::memory_order_relaxed);
  for (const auto& cell : cells_) {
    total += cell.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace fbm::obs
