// Runtime metric instruments (fbm::obs).
//
// The hot path must never contend: every instrument is built from relaxed
// atomics that a single writer owns (per shard, per worker, per classifier)
// and a scraper merges at snapshot time. Instruments are registered once in
// an obs::Registry (registry.hpp) and live for the registry's lifetime, so
// instrumentation sites cache plain references.
//
//   Counter        monotonic u64; one cell, shared (low-rate sites).
//   Gauge          last-written double (queue depth, load factor, lag).
//   Histogram      fixed-boundary distribution (log-scale helper below);
//                  atomic buckets, safe to observe from many threads.
//   ShardedCounter a counter family: each shard/worker/classifier acquires
//                  its own Local cell (one relaxed add, never shared), and
//                  value() folds base + live cells at scrape time. Dying
//                  locals fold their count into the base, so totals survive
//                  short-lived owners (live windows open a classifier each).
//
// Everything here is cheap enough to leave always-on; obs::enabled() is the
// process-wide kill switch (FBM_OBS_OFF=1, or set_enabled(false)) that the
// instrumentation sites check so a metrics-off run measures a clean A/B
// against a metrics-on run (the CI overhead gate).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace fbm::obs {

/// Process-wide instrumentation switch. Defaults to on; the environment
/// variable FBM_OBS_OFF=1 (checked once, at first use) or set_enabled(false)
/// turns every instrumentation site into a single relaxed load + branch.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram. A value lands in the first bucket whose upper
/// bound is >= it (upper-inclusive, Prometheus "le" semantics); anything
/// above the last bound lands in the implicit overflow (+Inf) bucket, so
/// counts() has bounds().size() + 1 entries. Negative values clamp into the
/// first bucket. sum()/count() track the raw observations.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (not cumulative), overflow bucket last.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `n` log-spaced upper bounds: first, first*factor, first*factor^2, ...
/// The standard grid for stage durations (e.g. 1 us .. 16 s at factor 4).
[[nodiscard]] std::vector<double> log_scale_bounds(double first, double factor,
                                                   std::size_t n);

/// A counter whose writers each own a private cell. local() hands out a
/// Local handle (mutex-guarded allocation, reusing cells of dead locals);
/// Local::add is one relaxed atomic add on memory no other writer touches.
/// value() merges base + every cell with relaxed loads — the scraper never
/// blocks a writer.
class ShardedCounter {
 public:
  class Local {
   public:
    Local() = default;
    Local(Local&& other) noexcept
        : owner_(std::exchange(other.owner_, nullptr)),
          cell_(std::exchange(other.cell_, nullptr)) {}
    Local& operator=(Local&& other) noexcept {
      release();
      owner_ = std::exchange(other.owner_, nullptr);
      cell_ = std::exchange(other.cell_, nullptr);
      return *this;
    }
    Local(const Local&) = delete;
    Local& operator=(const Local&) = delete;
    ~Local() { release(); }

    void add(std::uint64_t n = 1) {
      if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
    }

   private:
    friend class ShardedCounter;
    Local(ShardedCounter* owner, std::atomic<std::uint64_t>* cell)
        : owner_(owner), cell_(cell) {}
    void release();

    ShardedCounter* owner_ = nullptr;
    std::atomic<std::uint64_t>* cell_ = nullptr;
  };

  [[nodiscard]] Local local();
  [[nodiscard]] std::uint64_t value() const;

 private:
  mutable std::mutex mu_;  ///< guards cell allocation/recycling, not add()
  std::deque<std::atomic<std::uint64_t>> cells_;  ///< stable addresses
  std::vector<std::atomic<std::uint64_t>*> free_;
  std::atomic<std::uint64_t> base_{0};  ///< folded-in counts of dead locals
};

}  // namespace fbm::obs
