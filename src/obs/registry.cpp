#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbm::obs {

std::string MetricMeta::key() const {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += "=\"";
      out += v;
      out += '"';
    }
    out += '}';
  }
  return out;
}

const MetricValue* Snapshot::find(const std::string& key) const {
  for (const auto& m : metrics) {
    if (m.meta.key() == key) return &m;
  }
  return nullptr;
}

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out = after;
  for (auto& m : out.metrics) {
    const MetricValue* prev = before.find(m.meta.key());
    if (prev == nullptr || prev->type != m.type) continue;
    switch (m.type) {
      case MetricType::counter:
      case MetricType::sharded_counter:
        m.counter -= std::min(m.counter, prev->counter);
        break;
      case MetricType::gauge:
        break;  // gauges are point-in-time; keep `after`
      case MetricType::histogram: {
        if (prev->hist.bounds == m.hist.bounds &&
            prev->hist.counts.size() == m.hist.counts.size()) {
          for (std::size_t i = 0; i < m.hist.counts.size(); ++i) {
            m.hist.counts[i] -= std::min(m.hist.counts[i],
                                         prev->hist.counts[i]);
          }
          m.hist.count -= std::min(m.hist.count, prev->hist.count);
          m.hist.sum -= prev->hist.sum;
        }
        break;
      }
    }
  }
  return out;
}

Registry::Entry& Registry::resolve(MetricMeta&& meta, MetricType type) {
  const std::string key = meta.key();
  std::lock_guard lock(mu_);
  for (auto& e : entries_) {
    if (e->meta.key() == key) {
      if (e->type != type) {
        throw std::logic_error("obs::Registry: metric '" + key +
                               "' re-registered with a different type");
      }
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->meta = std::move(meta);
  entry->type = type;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(MetricMeta meta) {
  Entry& e = resolve(std::move(meta), MetricType::counter);
  std::lock_guard lock(mu_);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(MetricMeta meta) {
  Entry& e = resolve(std::move(meta), MetricType::gauge);
  std::lock_guard lock(mu_);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(MetricMeta meta, std::vector<double> bounds) {
  Entry& e = resolve(std::move(meta), MetricType::histogram);
  std::lock_guard lock(mu_);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

ShardedCounter& Registry::sharded_counter(MetricMeta meta) {
  Entry& e = resolve(std::move(meta), MetricType::sharded_counter);
  std::lock_guard lock(mu_);
  if (!e.sharded) e.sharded = std::make_unique<ShardedCounter>();
  return *e.sharded;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  {
    std::lock_guard lock(mu_);
    out.metrics.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricValue v;
      v.meta = e->meta;
      v.type = e->type;
      switch (e->type) {
        case MetricType::counter:
          v.counter = e->counter ? e->counter->value() : 0;
          break;
        case MetricType::gauge:
          v.gauge = e->gauge ? e->gauge->value() : 0.0;
          break;
        case MetricType::sharded_counter:
          v.counter = e->sharded ? e->sharded->value() : 0;
          break;
        case MetricType::histogram:
          if (e->histogram) {
            v.hist.bounds = e->histogram->bounds();
            v.hist.counts = e->histogram->counts();
            v.hist.count = e->histogram->count();
            v.hist.sum = e->histogram->sum();
          }
          break;
      }
      out.metrics.push_back(std::move(v));
    }
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.meta.key() < b.meta.key();
            });
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: sites cache
  return *instance;                            // references past static dtors
}

}  // namespace fbm::obs
