// Metric registry (fbm::obs): named, labeled, self-describing instruments.
//
// A Registry owns its instruments for its whole lifetime, so call sites
// resolve a metric once (mutex-guarded map lookup) and keep the returned
// reference — the hot path never touches the registry again. Lookups are
// idempotent: the same (name, labels) returns the same instrument; asking
// for it as a different type throws std::logic_error.
//
// snapshot() produces a point-in-time copy of every instrument — the one
// carrier both export formats (JSONL snapshots and Prometheus text
// exposition, see export.hpp) and perf::BenchReport's embedded telemetry
// render from, so there is exactly one metrics schema in the tree.
//
// Registry::global() is the process-wide instance the library's
// instrumentation uses; tests build their own registries so goldens never
// see unrelated metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace fbm::obs {

enum class MetricType { counter, gauge, histogram, sharded_counter };

/// Everything that describes a metric besides its value — the
/// "self-describing" part of every snapshot.
struct MetricMeta {
  std::string name;   ///< Prometheus-style base name (fbm_..._total)
  std::string help;   ///< one-line description
  std::string unit;   ///< "packets", "seconds", "flows", "ratio", ...
  std::string stage;  ///< pipeline stage it observes ("classify", ...)
  /// Label set, rendered in this order. Part of the metric's identity.
  std::vector<std::pair<std::string, std::string>> labels;

  /// Canonical identity: name{k="v",...} (no escaping — identity only).
  [[nodiscard]] std::string key() const;
};

struct HistogramValue {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< per-bucket, overflow last
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One metric's snapshot: meta + the value slot its type uses.
struct MetricValue {
  MetricMeta meta;
  MetricType type = MetricType::counter;
  std::uint64_t counter = 0;  ///< counter / sharded_counter
  double gauge = 0.0;
  HistogramValue hist;
};

/// Point-in-time copy of a registry, metrics sorted by key (deterministic
/// render order regardless of registration order).
struct Snapshot {
  std::vector<MetricValue> metrics;

  /// Lookup by exact key; nullptr when absent.
  [[nodiscard]] const MetricValue* find(const std::string& key) const;
};

/// after - before: counters and histograms subtract (entries missing from
/// `before` pass through), gauges keep their `after` value. The bench
/// harness uses this so per-bench telemetry is the bench's own work, not
/// the process's life story.
[[nodiscard]] Snapshot delta(const Snapshot& before, const Snapshot& after);

class Registry {
 public:
  Counter& counter(MetricMeta meta);
  Gauge& gauge(MetricMeta meta);
  /// `bounds` are the fixed upper bounds (log_scale_bounds for the standard
  /// grid); ignored when the histogram already exists.
  Histogram& histogram(MetricMeta meta, std::vector<double> bounds);
  ShardedCounter& sharded_counter(MetricMeta meta);

  [[nodiscard]] Snapshot snapshot() const;

  /// The process-wide registry all library instrumentation registers in.
  [[nodiscard]] static Registry& global();

 private:
  struct Entry {
    MetricMeta meta;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<ShardedCounter> sharded;
  };

  Entry& resolve(MetricMeta&& meta, MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

}  // namespace fbm::obs
