#include "perf/bench_report.hpp"

#include <cstdlib>
#include <utility>

#include "core/json_writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fbm::perf {

void BenchReport::set_config(const std::string& key,
                             const std::string& value) {
  config.emplace_back(key, core::json_quote(value));
}

void BenchReport::set_config(const std::string& key, double value) {
  config.emplace_back(key, core::json_number(value));
}

void BenchReport::set_config(const std::string& key, std::uint64_t value) {
  config.emplace_back(key, std::to_string(value));
}

void BenchReport::set_config(const std::string& key, bool value) {
  config.emplace_back(key, value ? "true" : "false");
}

void BenchReport::set_metric(const std::string& key, double value) {
  extra_metrics.emplace_back(key, value);
}

std::string BenchReport::to_json(int indent) const {
  core::JsonWriter w(core::JsonWriter::Style::pretty, indent);
  w.begin_object();
  w.field("bench", bench);
  w.begin_object("config");
  for (const auto& [key, token] : config) w.raw_field(key, token);
  w.end_object();
  w.begin_object("metrics");
  w.field("wall_s", wall_s);
  w.field("packets_per_s", packets_per_s);
  w.field("analyze_packets_per_s", analyze_packets_per_s);
  w.field("peak_rss_kb", peak_rss_kb);
  w.field("packets", counters.packets);
  w.field("flows", counters.flows);
  w.field("intervals", counters.intervals);
  w.field("windows", counters.windows);
  for (const auto& [key, value] : extra_metrics) w.field(key, value);
  w.field("bytes_classified", counters.bytes_classified);
  w.end_object();
  if (!obs_json.empty()) w.raw_field("obs", obs_json);
  w.field("git_sha", git_sha);
  w.end_object();
  return std::move(w).str();
}

std::string summary_json(std::span<const BenchReport> reports) {
  std::string out = "{\n  \"schema\": 1,\n  \"benches\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += reports[i].to_json(4);
  }
  out += reports.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes there
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already kB
#endif
#else
  return 0;
#endif
}

std::string current_git_sha() {
  if (const char* env = std::getenv("FBM_GIT_SHA"); env != nullptr &&
                                                    env[0] != '\0') {
    return env;
  }
#ifdef FBM_GIT_SHA
  return FBM_GIT_SHA;
#else
  return "unknown";
#endif
}

}  // namespace fbm::perf
