#include "perf/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fbm::perf {

namespace {

/// Shortest decimal form that round-trips a double (same convention as the
/// api report writer); non-finite values become null.
[[nodiscard]] std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lg", &parsed);
  if (parsed == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      std::sscanf(shorter, "%lg", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

[[nodiscard]] std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void append_line(std::string& out, int indent, const std::string& text) {
  if (!out.empty()) out += '\n';
  out.append(static_cast<std::size_t>(indent), ' ');
  out += text;
}

}  // namespace

void BenchReport::set_config(const std::string& key,
                             const std::string& value) {
  config.emplace_back(key, quoted(value));
}

void BenchReport::set_config(const std::string& key, double value) {
  config.emplace_back(key, number(value));
}

void BenchReport::set_config(const std::string& key, std::uint64_t value) {
  config.emplace_back(key, std::to_string(value));
}

void BenchReport::set_config(const std::string& key, bool value) {
  config.emplace_back(key, value ? "true" : "false");
}

void BenchReport::set_metric(const std::string& key, double value) {
  extra_metrics.emplace_back(key, value);
}

std::string BenchReport::to_json(int indent) const {
  std::string out;
  append_line(out, indent, "{");
  append_line(out, indent + 2, "\"bench\": " + quoted(bench) + ",");
  append_line(out, indent + 2, "\"config\": {");
  for (std::size_t i = 0; i < config.size(); ++i) {
    append_line(out, indent + 4,
                quoted(config[i].first) + ": " + config[i].second +
                    (i + 1 < config.size() ? "," : ""));
  }
  append_line(out, indent + 2, "},");
  append_line(out, indent + 2, "\"metrics\": {");
  append_line(out, indent + 4, "\"wall_s\": " + number(wall_s) + ",");
  append_line(out, indent + 4,
              "\"packets_per_s\": " + number(packets_per_s) + ",");
  append_line(out, indent + 4,
              "\"peak_rss_kb\": " + std::to_string(peak_rss_kb) + ",");
  append_line(out, indent + 4,
              "\"packets\": " + std::to_string(counters.packets) + ",");
  append_line(out, indent + 4,
              "\"flows\": " + std::to_string(counters.flows) + ",");
  append_line(out, indent + 4,
              "\"intervals\": " + std::to_string(counters.intervals) + ",");
  append_line(out, indent + 4,
              "\"windows\": " + std::to_string(counters.windows) + ",");
  for (const auto& [key, value] : extra_metrics) {
    append_line(out, indent + 4, quoted(key) + ": " + number(value) + ",");
  }
  append_line(out, indent + 4,
              "\"bytes_classified\": " +
                  std::to_string(counters.bytes_classified));
  append_line(out, indent + 2, "},");
  append_line(out, indent + 2, "\"git_sha\": " + quoted(git_sha));
  append_line(out, indent, "}");
  return out;
}

std::string summary_json(std::span<const BenchReport> reports) {
  std::string out = "{\n  \"schema\": 1,\n  \"benches\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += reports[i].to_json(4);
  }
  out += reports.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes there
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already kB
#endif
#else
  return 0;
#endif
}

std::string current_git_sha() {
  if (const char* env = std::getenv("FBM_GIT_SHA"); env != nullptr &&
                                                    env[0] != '\0') {
    return env;
  }
#ifdef FBM_GIT_SHA
  return FBM_GIT_SHA;
#else
  return "unknown";
#endif
}

}  // namespace fbm::perf
