// BenchReport: the machine-readable output of one bench run.
//
// Stable JSON schema (the benchmark-regression CI gate and external
// dashboards parse these files, so additions are fine but the keys below
// never change or move):
//
//   {
//     "bench": "<name>",
//     "config": { ... resolved knobs: threads, quick, scale, ... },
//     "metrics": {
//       "wall_s": <double>,
//       "packets_per_s": <double>,      // 0 when the bench counts none
//       "analyze_packets_per_s": <double>,  // classify+fit stage time only
//       "peak_rss_kb": <uint64>,
//       ... work counters and bench-specific extras ...
//     },
//     "obs": [ ... ],   // registry delta of the run (obs::to_json_metrics
//                       // objects); omitted when no metrics moved
//     "git_sha": "<sha or \"unknown\">"
//   }
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "perf/counters.hpp"

namespace fbm::perf {

struct BenchReport {
  std::string bench;

  /// Resolved configuration, in insertion order. Values are raw JSON tokens
  /// (set_config quotes strings, renders numbers).
  std::vector<std::pair<std::string, std::string>> config;

  double wall_s = 0.0;
  double packets_per_s = 0.0;
  /// Packets / (classify + fit stage-histogram seconds): throughput of the
  /// analysis work alone, with trace generation and reporting excluded.
  /// 0 when the run moved no stage timers (or obs is disabled).
  double analyze_packets_per_s = 0.0;
  std::uint64_t peak_rss_kb = 0;
  Counters counters;
  /// Bench-specific metrics emitted inside "metrics", in insertion order.
  std::vector<std::pair<std::string, double>> extra_metrics;
  /// Raw JSON array of the run's obs registry delta (obs::to_json_metrics);
  /// empty = the "obs" key is omitted. A raw token, so perf stays free of
  /// obs types while reusing its single emitter.
  std::string obs_json;

  std::string git_sha = "unknown";

  void set_config(const std::string& key, const std::string& value);
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, std::uint64_t value);
  void set_config(const std::string& key, bool value);

  void set_metric(const std::string& key, double value);

  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Aggregate document for BENCH_summary.json: every report in run order.
[[nodiscard]] std::string summary_json(std::span<const BenchReport> reports);

/// Peak resident set size of this process in kB (getrusage; 0 if
/// unavailable on the platform).
[[nodiscard]] std::uint64_t peak_rss_kb();

/// Git commit recorded at configure time (FBM_GIT_SHA compile definition),
/// overridable at runtime via the FBM_GIT_SHA environment variable;
/// "unknown" when neither is set.
[[nodiscard]] std::string current_git_sha();

}  // namespace fbm::perf
