// Work counters for the perf telemetry subsystem: what a bench or pipeline
// run actually processed, so throughput rates (packets/s) are computed from
// measured work, never hard-coded expectations.
#pragma once

#include <cstdint>

namespace fbm::perf {

struct Counters {
  std::uint64_t packets = 0;           ///< packets pushed through analysis
  std::uint64_t flows = 0;             ///< flow records produced
  std::uint64_t intervals = 0;         ///< analysis intervals closed
  std::uint64_t windows = 0;           ///< live sliding windows closed
  std::uint64_t bytes_classified = 0;  ///< payload bytes seen by classifiers

  Counters& operator+=(const Counters& other) {
    packets += other.packets;
    flows += other.flows;
    intervals += other.intervals;
    windows += other.windows;
    bytes_classified += other.bytes_classified;
    return *this;
  }
};

}  // namespace fbm::perf
