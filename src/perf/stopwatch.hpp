// Monotonic wall-clock stopwatch for the perf telemetry subsystem.
#pragma once

#include <chrono>

namespace fbm::perf {

/// Measures elapsed wall time against std::chrono::steady_clock (immune to
/// system clock adjustments). Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fbm::perf
