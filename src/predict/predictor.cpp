#include "predict/predictor.hpp"

#include <cmath>
#include <stdexcept>

#include "predict/toeplitz.hpp"
#include "stats/descriptive.hpp"

namespace fbm::predict {

MovingAveragePredictor::MovingAveragePredictor(std::span<const double> acf,
                                               std::size_t order, double mean)
    : mean_(mean) {
  LevinsonResult lr = levinson_durbin(acf, order);
  coeffs_ = std::move(lr.coefficients);
  theoretical_error_ = lr.prediction_error;
}

double MovingAveragePredictor::predict(std::span<const double> history) const {
  const std::size_t m = coeffs_.size();
  if (history.size() < m) {
    throw std::invalid_argument("predict: history shorter than order");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    // coeffs_[i] weights the sample i+1 steps in the past.
    acc += coeffs_[i] * (history[history.size() - 1 - i] - mean_);
  }
  return mean_ + acc;
}

PredictionReport evaluate_predictor(const MovingAveragePredictor& predictor,
                                    std::span<const double> series) {
  PredictionReport rep;
  rep.predictions.assign(series.size(), 0.0);
  const std::size_t m = predictor.order();
  if (series.size() <= m) return rep;

  double sq = 0.0;
  stats::RunningStats actual;
  for (std::size_t k = m; k < series.size(); ++k) {
    const double pred = predictor.predict(series.subspan(0, k));
    rep.predictions[k] = pred;
    const double err = pred - series[k];
    sq += err * err;
    actual.add(series[k]);
    ++rep.evaluated;
  }
  rep.rmse = std::sqrt(sq / static_cast<double>(rep.evaluated));
  const double mean_actual = actual.mean();
  rep.relative_error = mean_actual > 0.0 ? rep.rmse / mean_actual : 0.0;
  return rep;
}

std::size_t select_order(std::span<const double> acf,
                         std::span<const double> training,
                         std::size_t max_order) {
  if (max_order == 0) throw std::invalid_argument("select_order: max 0");
  if (acf.size() < max_order + 1) {
    throw std::invalid_argument("select_order: ACF shorter than max order");
  }
  const double mean = stats::mean(training);
  double best_mse = -1.0;
  std::size_t best_order = 1;
  for (std::size_t m = 1; m <= max_order; ++m) {
    const MovingAveragePredictor p(acf, m, mean);
    const PredictionReport rep = evaluate_predictor(p, training);
    if (rep.evaluated == 0) break;
    const double mse = rep.rmse * rep.rmse;
    if (best_mse < 0.0 || mse < best_mse - 1e-12) {
      best_mse = mse;
      best_order = m;
    } else {
      // First increase: the paper stops at the order preceding it.
      break;
    }
  }
  return best_order;
}

}  // namespace fbm::predict
