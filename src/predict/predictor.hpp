// Moving-Average rate predictor (Section VII-B, Table II, Figure 14).
//
// The predictor forecasts the next sample of the rate process {R_k} (sampled
// every iota seconds) as a linear combination of the last M samples. The
// combination weights come from the normal equations driven by an
// auto-correlation function that is either
//   - measured from past samples of {R_k} ("data-driven"), or
//   - computed from flow statistics via Theorem 2 ("model-driven"),
// the paper's point being that the model-driven ACF stays usable when iota
// is large and {R_k} has too few samples.
//
// The process is centered before prediction (the paper predicts around the
// known mean; without centering a short-M predictor is biased).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fbm::predict {

class MovingAveragePredictor {
 public:
  /// acf: rho(0..>=order), rho(0)==1; order M >= 1; `mean` of the process.
  MovingAveragePredictor(std::span<const double> acf, std::size_t order,
                         double mean);

  /// One-step-ahead forecast from the latest `order()` samples;
  /// history.back() is the most recent. Throws when history is shorter than
  /// the order.
  [[nodiscard]] double predict(std::span<const double> history) const;

  [[nodiscard]] std::size_t order() const { return coeffs_.size(); }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeffs_;
  }
  [[nodiscard]] double mean() const { return mean_; }
  /// Theoretical normalised MSE from the Levinson recursion.
  [[nodiscard]] double theoretical_error() const { return theoretical_error_; }

 private:
  std::vector<double> coeffs_;  ///< a_0 (lag 1) .. a_{M-1} (lag M)
  double mean_;
  double theoretical_error_;
};

/// Walk-forward evaluation on a series: predict each sample from its
/// predecessors and accumulate the error. Skips the first `order` samples.
struct PredictionReport {
  double rmse = 0.0;            ///< sqrt(E[(pred - actual)^2]), bits/s
  double relative_error = 0.0;  ///< rmse / mean(actual), the paper's "%"
  std::size_t evaluated = 0;
  std::vector<double> predictions;  ///< aligned with input indices
};

[[nodiscard]] PredictionReport evaluate_predictor(
    const MovingAveragePredictor& predictor, std::span<const double> series);

/// The paper's order selection: starting from M=1, pick the smallest M whose
/// successor would increase the walk-forward MSE on `training`.
/// `max_order` bounds the search; the ACF must cover max_order+1 lags.
[[nodiscard]] std::size_t select_order(std::span<const double> acf,
                                       std::span<const double> training,
                                       std::size_t max_order);

}  // namespace fbm::predict
