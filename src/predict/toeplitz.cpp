#include "predict/toeplitz.hpp"

#include <cmath>
#include <stdexcept>

namespace fbm::predict {

LevinsonResult levinson_durbin(std::span<const double> acf,
                               std::size_t order) {
  if (order == 0) throw std::invalid_argument("levinson_durbin: order == 0");
  if (acf.size() < order + 1) {
    throw std::invalid_argument("levinson_durbin: need rho(0..order)");
  }
  if (std::abs(acf[0] - 1.0) > 1e-9) {
    throw std::invalid_argument("levinson_durbin: rho(0) != 1");
  }

  std::vector<double> a(order, 0.0);
  double err = 1.0;  // normalised: rho(0)
  std::vector<double> prev(order, 0.0);
  for (std::size_t m = 0; m < order; ++m) {
    double acc = acf[m + 1];
    for (std::size_t i = 0; i < m; ++i) acc -= prev[i] * acf[m - i];
    if (err <= 0.0) break;
    const double k = acc / err;  // reflection coefficient
    if (!(k > -1.0 && k < 1.0) && m > 0) break;  // non-PSD estimate: stop
    a = prev;
    a[m] = k;
    for (std::size_t i = 0; i < m; ++i) a[i] = prev[i] - k * prev[m - 1 - i];
    err *= (1.0 - k * k);
    prev = a;
  }
  return {std::move(a), err};
}

std::vector<double> solve_normal_equations(std::span<const double> acf,
                                           std::size_t order) {
  if (order == 0) {
    throw std::invalid_argument("solve_normal_equations: order == 0");
  }
  if (acf.size() < order + 1) {
    throw std::invalid_argument("solve_normal_equations: need rho(0..order)");
  }
  const std::size_t n = order;
  for (double jitter : {0.0, 1e-10, 1e-8, 1e-6, 1e-4}) {
    // Build A = Toeplitz(rho(0..n-1)) + jitter*I, b = rho(1..n).
    std::vector<double> chol(n * n, 0.0);
    bool ok = true;
    // Cholesky factorisation of the Toeplitz matrix.
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const std::size_t lag = i - j;
        double sum = acf[lag] + (i == j ? jitter : 0.0);
        for (std::size_t k = 0; k < j; ++k) {
          sum -= chol[i * n + k] * chol[j * n + k];
        }
        if (i == j) {
          if (!(sum > 0.0)) {
            ok = false;
            break;
          }
          chol[i * n + i] = std::sqrt(sum);
        } else {
          chol[i * n + j] = sum / chol[j * n + j];
        }
      }
    }
    if (!ok) continue;
    // Forward/backward substitution on b = rho(1..n).
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = acf[i + 1];
      for (std::size_t k = 0; k < i; ++k) sum -= chol[i * n + k] * y[k];
      y[i] = sum / chol[i * n + i];
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = y[ii];
      for (std::size_t k = ii + 1; k < n; ++k) sum -= chol[k * n + ii] * x[k];
      x[ii] = sum / chol[ii * n + ii];
    }
    return x;
  }
  throw std::runtime_error(
      "solve_normal_equations: ACF matrix could not be stabilised");
}

}  // namespace fbm::predict
