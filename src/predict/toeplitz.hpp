// Solvers for the normal equations of linear prediction (eq. 8).
//
// The one-step predictor R_hat_{k+1} = sum_{l=0}^{M-1} a_l R_{k-l} minimises
// the mean-square error when
//   sum_l a_l rho(|l - i|) = rho(i + 1),   i = 0..M-1,
// a symmetric Toeplitz system in the auto-correlation rho. Levinson-Durbin
// solves it in O(M^2); a dense Cholesky fallback covers ACF sequences that
// are not strictly positive definite after estimation noise.
#pragma once

#include <span>
#include <vector>

namespace fbm::predict {

struct LevinsonResult {
  std::vector<double> coefficients;  ///< a_0..a_{M-1}
  double prediction_error;  ///< theoretical MSE / rho(0), in [0, 1]
};

/// Levinson-Durbin recursion. `acf` must hold rho(0..order) with
/// rho(0) == 1 (normalised); throws std::invalid_argument otherwise.
/// Returns nullopt-like degenerate handling: if a reflection coefficient
/// leaves [-1, 1] (non-PSD estimated ACF), the recursion stops at the last
/// valid order and pads with zeros.
[[nodiscard]] LevinsonResult levinson_durbin(std::span<const double> acf,
                                             std::size_t order);

/// Dense solve of the same system via Cholesky with Tikhonov jitter; slower
/// but tolerant of slightly indefinite ACF estimates. Throws
/// std::runtime_error if the system cannot be stabilised.
[[nodiscard]] std::vector<double> solve_normal_equations(
    std::span<const double> acf, std::size_t order);

}  // namespace fbm::predict
