#include "scenario/score.hpp"

#include <algorithm>

#include "core/json_writer.hpp"

namespace fbm::scenario {

namespace {

[[nodiscard]] bool overlaps(double a0, double a1, double b0, double b1) {
  return a0 < b1 && a1 > b0;
}

}  // namespace

ObservedWindow observe(const live::WindowReport& report, std::string link) {
  ObservedWindow w;
  w.link = std::move(link);
  w.start_s = report.start_s;
  w.end_s = report.end_s();
  w.alert = report.anomaly.alert;
  w.kind = report.anomaly.kind;
  return w;
}

ScoreReport score(const TruthLog& truth,
                  const std::vector<ObservedWindow>& windows) {
  ScoreReport out;
  out.scenario = truth.scenario;
  out.seed = truth.seed;
  out.duration_s = truth.duration_s;
  out.windows = windows.size();

  out.events.reserve(truth.events.size());
  for (const auto& e : truth.events) out.events.push_back({e, false, 0, {}});

  for (const auto& w : windows) {
    if (!w.alert) continue;
    ++out.alerts;

    EventScore* match = nullptr;
    bool in_extended_span = false;
    for (auto& es : out.events) {
      const auto& e = es.event;
      if (e.link != w.link) continue;
      if (overlaps(w.start_s, w.end_s, e.start_s,
                   e.end_s + truth.grace_s + truth.cooldown_s)) {
        in_extended_span = true;
        if (w.kind == e.kind &&
            overlaps(w.start_s, w.end_s, e.start_s,
                     e.end_s + truth.grace_s) &&
            match == nullptr) {
          match = &es;
        }
      }
    }

    if (match != nullptr) {
      ++out.true_positives;
      ++match->matched_alerts;
      if (!match->detected) {
        match->detected = true;
        match->detection_latency_s =
            std::max(0.0, w.end_s - match->event.start_s);
      }
    } else if (in_extended_span) {
      ++out.ignored_alerts;
    } else {
      ++out.false_positives;
    }
  }

  double latency_sum = 0.0;
  for (const auto& es : out.events) {
    if (es.detected) {
      ++out.detected_events;
      latency_sum += *es.detection_latency_s;
      const double l = *es.detection_latency_s;
      if (!out.max_detection_latency_s || l > *out.max_detection_latency_s) {
        out.max_detection_latency_s = l;
      }
    } else {
      ++out.false_negatives;
    }
  }
  if (out.detected_events > 0) {
    out.mean_detection_latency_s =
        latency_sum / static_cast<double>(out.detected_events);
  }

  const std::size_t judged = out.true_positives + out.false_positives;
  out.precision = judged == 0 ? 1.0
                              : static_cast<double>(out.true_positives) /
                                    static_cast<double>(judged);
  out.recall = out.events.empty()
                   ? 1.0
                   : static_cast<double>(out.detected_events) /
                         static_cast<double>(out.events.size());
  return out;
}

std::string to_json(const ScoreReport& r, int indent) {
  core::JsonWriter w(core::JsonWriter::Style::pretty, indent);
  w.begin_object();
  w.field("fbm_scenario_score", std::uint64_t{1});
  w.field("scenario", r.scenario);
  w.field("seed", r.seed);
  w.field("duration_s", r.duration_s);
  w.field("windows", static_cast<std::uint64_t>(r.windows));
  w.field("alerts", static_cast<std::uint64_t>(r.alerts));
  w.field("true_positives", static_cast<std::uint64_t>(r.true_positives));
  w.field("false_positives",
          static_cast<std::uint64_t>(r.false_positives));
  w.field("ignored_alerts", static_cast<std::uint64_t>(r.ignored_alerts));
  w.field("false_negatives",
          static_cast<std::uint64_t>(r.false_negatives));
  w.field("precision", r.precision);
  w.field("recall", r.recall);
  w.field("detected_events",
          static_cast<std::uint64_t>(r.detected_events));
  if (r.mean_detection_latency_s) {
    w.field("mean_detection_latency_s", *r.mean_detection_latency_s);
  } else {
    w.null_field("mean_detection_latency_s");
  }
  if (r.max_detection_latency_s) {
    w.field("max_detection_latency_s", *r.max_detection_latency_s);
  } else {
    w.null_field("max_detection_latency_s");
  }
  w.begin_array("events");
  for (const auto& es : r.events) {
    w.begin_object();
    w.field("kind", live::to_string(es.event.kind));
    w.field("link", es.event.link);
    w.field("start_s", es.event.start_s);
    w.field("end_s", es.event.end_s);
    w.field("detected", es.detected);
    w.field("matched_alerts",
            static_cast<std::uint64_t>(es.matched_alerts));
    if (es.detection_latency_s) {
      w.field("detection_latency_s", *es.detection_latency_s);
    } else {
      w.null_field("detection_latency_s");
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace fbm::scenario
