// Alert acceptance scoring (fbm::scenario).
//
// scenario::score matches the live anomaly monitor's alerts against a
// scenario's injected ground truth and reduces them to the operator's
// quality numbers: precision, recall and detection latency.
//
// Matching semantics (per observed window, [start_s, end_s)):
//   true positive   the window alerts, overlaps an event interval
//                   [t0, t1 + grace) on the same link, and the alert kind
//                   matches the event's.
//   ignored         the window alerts inside an event's extended span
//                   [t0, t1 + grace + cooldown) on the same link but the
//                   kind differs or only the cooldown overlaps. The band
//                   forecaster adapts during an event and rebounds after
//                   it (the return to baseline can read as the opposite
//                   kind), so these alerts are counted but judged neither
//                   true nor false.
//   false positive  the window alerts anywhere else.
//   detected event  an event with at least one matching alert; its
//                   detection latency is first_alert.end_s - t0, clamped
//                   at 0 (a window can only alert once it closes).
//
// precision = TP / (TP + FP)   (1 when no alert was judged)
// recall    = detected / events (1 when the truth has no events)
//
// to_json renders the report through core::JsonWriter. Stable schema —
// the scenario-smoke CI job and external tooling parse it, so keys are
// append-only (additions fine, never rename or reorder):
//
//   {"fbm_scenario_score": 1, "scenario": s, "seed": u, "duration_s": d,
//    "windows": u, "alerts": u,
//    "true_positives": u, "false_positives": u, "ignored_alerts": u,
//    "false_negatives": u, "precision": d, "recall": d,
//    "detected_events": u,
//    "mean_detection_latency_s": d|null, "max_detection_latency_s": d|null,
//    "events": [{"kind": "spike"|"drop", "link": s, "start_s": d,
//                "end_s": d, "detected": bool, "matched_alerts": u,
//                "detection_latency_s": d|null}, ...]}
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "live/window_report.hpp"
#include "scenario/truth.hpp"

namespace fbm::scenario {

/// One analyzed window as the scorer sees it: where it sat on the stream
/// clock, which link produced it (empty = aggregate/single stream), and
/// the monitor's verdict.
struct ObservedWindow {
  std::string link;
  double start_s = 0.0;
  double end_s = 0.0;
  bool alert = false;
  live::AlertKind kind = live::AlertKind::none;
};

/// Convenience projection from a live report (+ optional link name).
[[nodiscard]] ObservedWindow observe(const live::WindowReport& report,
                                     std::string link = {});

struct EventScore {
  TruthEvent event;
  bool detected = false;
  std::size_t matched_alerts = 0;
  std::optional<double> detection_latency_s;
};

struct ScoreReport {
  std::string scenario;
  std::uint64_t seed = 0;
  double duration_s = 0.0;

  std::size_t windows = 0;  ///< observed windows, alerting or not
  std::size_t alerts = 0;   ///< windows with alert == true

  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t ignored_alerts = 0;
  std::size_t false_negatives = 0;  ///< undetected events

  double precision = 1.0;
  double recall = 1.0;

  std::size_t detected_events = 0;
  std::optional<double> mean_detection_latency_s;
  std::optional<double> max_detection_latency_s;

  std::vector<EventScore> events;
};

/// Scores `windows` against `truth` under the semantics above.
[[nodiscard]] ScoreReport score(const TruthLog& truth,
                                const std::vector<ObservedWindow>& windows);

/// Pretty JSON document (schema above), rendered at `indent` spaces.
[[nodiscard]] std::string to_json(const ScoreReport& report,
                                  int indent = 0);

}  // namespace fbm::scenario
