#include "scenario/source.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "trace/synthetic.hpp"

namespace fbm::scenario {

namespace {

[[nodiscard]] double envelope_lambda(const ScenarioSpec& spec) {
  double peak = 1.0;
  for (const auto& s : spec.segments) {
    peak = std::max(peak, s.lambda_peak_x());
  }
  return spec.lambda * peak;
}

}  // namespace

ScenarioTraceSource::ScenarioTraceSource(ScenarioSpec spec)
    : spec_([&] {
        spec.validate();
        return std::move(spec);
      }()),
      size_dist_(stats::LogNormal::from_mean_cv(
          spec_.size_mean_bits, std::max(1e-9, spec_.size_cv))),
      duration_dist_(stats::LogNormal::from_mean_cv(
          spec_.duration_mean_s, std::max(1e-9, spec_.duration_cv))),
      rng_(spec_.seed),
      arrivals_(envelope_lambda(spec_)) {
  segment_start_.reserve(spec_.segments.size());
  double t = 0.0;
  for (const auto& s : spec_.segments) {
    segment_start_.push_back(t);
    t += s.duration_s;
  }
  total_duration_s_ = t;
  advance_arrival();
}

const Segment& ScenarioTraceSource::segment_at(double t) const {
  // First segment whose start exceeds t, then step back one.
  auto it = std::upper_bound(segment_start_.begin(), segment_start_.end(),
                             t);
  const std::size_t i =
      it == segment_start_.begin()
          ? 0
          : static_cast<std::size_t>(it - segment_start_.begin()) - 1;
  return spec_.segments[std::min(i, spec_.segments.size() - 1)];
}

double ScenarioTraceSource::lambda_at(double t) const {
  const auto& seg = segment_at(t);
  double rate = spec_.lambda * seg.lambda_x;
  if (seg.kind == SegmentKind::diurnal && seg.amplitude > 0.0) {
    const std::size_t i =
        static_cast<std::size_t>(&seg - spec_.segments.data());
    const double phase = (t - segment_start_[i]) / seg.period_s;
    rate *= 1.0 + seg.amplitude *
                      std::sin(2.0 * std::numbers::pi * phase);
  }
  return std::max(rate, 0.0);
}

void ScenarioTraceSource::advance_arrival() {
  const double t = arrivals_.next(rng_, total_duration_s_,
                                  [this](double u) { return lambda_at(u); });
  if (t >= total_duration_s_) {
    arrivals_done_ = true;
  } else {
    next_arrival_ = t;
  }
}

void ScenarioTraceSource::start_flow(double t0) {
  const auto& seg = segment_at(t0);
  const bool event_segment = seg.kind == SegmentKind::ddos ||
                             seg.kind == SegmentKind::flash_crowd;
  // The intensity during an event segment is base*lambda_x; the extra
  // arrivals beyond the base rate are the attack/crowd class, so each
  // arrival is one with probability 1 - 1/lambda_x.
  const bool attack = event_segment && seg.lambda_x > 1.0 &&
                      rng_.bernoulli(1.0 - 1.0 / seg.lambda_x);

  ActiveFlow f;
  f.start = t0;
  double size_bits = size_dist_.sample(rng_);
  double duration_s = duration_dist_.sample(rng_);
  if (attack) {
    size_bits *= seg.size_x;
    duration_s *= seg.duration_x;
  }
  size_bits = std::max(1.0, size_bits);
  f.duration_s = std::max(1e-3, duration_s);
  f.packet_bytes = attack && seg.kind == SegmentKind::ddos
                       ? spec_.attack_packet_bytes
                       : spec_.packet_bytes;
  f.bytes_left =
      static_cast<std::uint64_t>(std::ceil(size_bits / 8.0));
  if (attack && seg.kind == SegmentKind::ddos) {
    // Keep flood flows at >= 2 packets: single-packet flows are discarded
    // by the paper's filtering rule and never reach the measured rate.
    f.bytes_left = std::max<std::uint64_t>(
        f.bytes_left, 2ull * f.packet_bytes);
  }

  std::size_t rank = attack && seg.prefixes.set
                         ? seg.prefixes.lo +
                               static_cast<std::size_t>(rng_.uniform_int(
                                   0, seg.prefixes.span() - 1))
                         : static_cast<std::size_t>(rng_.uniform_int(
                               0, spec_.prefix_pool - 1));
  if (seg.kind == SegmentKind::reroute && seg.prefixes.contains(rank)) {
    rank = seg.to_prefixes.lo +
           (rank - seg.prefixes.lo) % seg.to_prefixes.span();
  }
  f.tuple.dst = trace::dst_address_for_rank(
      rank, static_cast<std::uint8_t>(rng_.uniform_int(1, 254)));
  f.tuple.src = net::Ipv4Address(
      0x0a800000u |
      static_cast<std::uint32_t>(rng_.uniform_int(1, 0x7ffffe)));
  f.tuple.src_port =
      static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535));
  f.tuple.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(1, 1023));
  f.tuple.protocol = static_cast<std::uint8_t>(
      attack && seg.kind == SegmentKind::ddos ? net::Protocol::udp
                                              : net::Protocol::tcp);

  ++flows_;
  if (attack) ++attack_flows_;
  schedule_next_packet(f);
  active_.push(std::move(f));
}

void ScenarioTraceSource::schedule_next_packet(ActiveFlow& f) const {
  // Same power-shot pacing as api::ModelTraceSource: the cumulative bits
  // sent at age u follow S * (u/D)^(b+1); packet j leaves when its last
  // bit has been transmitted.
  const double total_bytes =
      static_cast<double>(f.bytes_left) +
      static_cast<double>(f.packets_sent) *
          static_cast<double>(f.packet_bytes);
  const double sent_after = static_cast<double>(f.packets_sent + 1) *
                            static_cast<double>(f.packet_bytes);
  const double fraction = std::min(1.0, sent_after / total_bytes);
  const double age =
      f.duration_s * std::pow(fraction, 1.0 / (spec_.shot_b + 1.0));
  f.next_packet_ts = f.start + age;
}

bool ScenarioTraceSource::step(double& ts, net::FiveTuple& tuple,
                               std::uint32_t& size) {
  while (true) {
    // Admit every arrival up to the next pending packet so the merged
    // stream leaves in global timestamp order.
    while (!arrivals_done_ &&
           (active_.empty() ||
            next_arrival_ <= active_.top().next_packet_ts)) {
      const double t0 = next_arrival_;
      start_flow(t0);
      advance_arrival();
    }
    if (active_.empty()) return false;

    ActiveFlow f = active_.top();
    active_.pop();
    if (f.next_packet_ts >= total_duration_s_) {
      // The capture stops at the horizon: the flow's tail is dropped.
      continue;
    }
    size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(f.bytes_left, f.packet_bytes));
    ts = f.next_packet_ts;
    tuple = f.tuple;
    f.bytes_left -= size;
    ++f.packets_sent;
    if (f.bytes_left > 0) {
      schedule_next_packet(f);
      active_.push(std::move(f));
    }
    return true;
  }
}

std::optional<net::PacketRecord> ScenarioTraceSource::next() {
  net::PacketRecord out;
  if (!step(out.timestamp, out.tuple, out.size_bytes)) return std::nullopt;
  return out;
}

std::size_t ScenarioTraceSource::next_batch(net::PacketBatch& out,
                                            std::size_t max_n) {
  out.clear();
  double ts = 0.0;
  net::FiveTuple tuple;
  std::uint32_t size = 0;
  while (out.size() < max_n && step(ts, tuple, size)) {
    out.emplace_back(ts, tuple, size);
  }
  return out.size();
}

bool ScenarioTraceSource::reset() {
  rng_ = stats::Rng(spec_.seed);
  arrivals_.reset();
  next_arrival_ = 0.0;
  arrivals_done_ = false;
  flows_ = 0;
  attack_flows_ = 0;
  active_ = {};
  advance_arrival();
  return true;
}

}  // namespace fbm::scenario
