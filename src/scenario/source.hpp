// Regime-switching packet generation (fbm::scenario).
//
// ScenarioTraceSource simulates a ScenarioSpec as a deterministic, seeded
// api::TraceSource: flows arrive as an inhomogeneous Poisson process whose
// intensity follows the spec's segments (gen::ThinningArrivals under a
// global envelope), draw size/duration from the base lognormals scaled by
// the active segment, and packetize with the same power-shot pacing as
// api::ModelTraceSource — so the whole analysis pipeline (classification
// included) runs on scenario output, and a baseline-only scenario is
// statistically the stationary model source.
//
// Regime mechanics, per arriving flow:
//   - During ddos / flash-crowd segments the intensity is base*lambda_x;
//     each arrival is an "attack"/"crowd" flow with probability
//     1 - 1/lambda_x (the *extra* arrivals) and a baseline flow otherwise,
//     so background traffic persists through the event.
//   - ddos attack flows shrink by size-x, pace in attack-packet-bytes
//     quanta (small-packet flood, UDP), and are clamped to >= 2 packets:
//     the paper's filtering discards single-packet flows, and a flood of
//     discarded flows would be invisible to the measured rate by design.
//   - flash-crowd flows grow by size-x and target the segment's prefixes.
//   - reroute segments remap destination ranks in `prefixes` onto
//     `to-prefixes` (rank-shifted modulo the target span), moving traffic
//     between engine links while conserving the aggregate.
//
// Determinism: the packet stream is a pure function of the spec (seed
// included). Candidate arrivals cost a fixed two Rng draws, flow
// attributes a fixed per-class draw sequence, so next() / next_batch(n)
// / reset() replay all deliver bit-identical sequences — pinned by
// tests/scenario/test_scenario_source.cpp.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "api/trace_source.hpp"
#include "gen/arrivals.hpp"
#include "scenario/spec.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace fbm::scenario {

class ScenarioTraceSource final : public api::TraceSource {
 public:
  /// Validates the spec (ScenarioSpec::validate rules).
  explicit ScenarioTraceSource(ScenarioSpec spec);

  [[nodiscard]] std::optional<net::PacketRecord> next() override;
  /// Native SoA fill — same sequence as next(), no per-packet virtual
  /// dispatch or optional<> shuffle.
  [[nodiscard]] std::size_t next_batch(net::PacketBatch& out,
                                       std::size_t max_n) override;
  /// Restarts the simulation from its seed: the replay is identical.
  [[nodiscard]] bool reset() override;

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t flows_started() const { return flows_; }
  /// Flows that arrived as attack/crowd extras (ddos / flash-crowd).
  [[nodiscard]] std::uint64_t attack_flows() const { return attack_flows_; }

 private:
  struct ActiveFlow {
    double start = 0.0;
    double duration_s = 0.0;
    std::uint64_t bytes_left = 0;
    std::uint64_t packets_sent = 0;
    double next_packet_ts = 0.0;
    std::uint32_t packet_bytes = 0;  ///< per-flow quantum (ddos differs)
    net::FiveTuple tuple;
  };
  struct ByNextPacket {
    [[nodiscard]] bool operator()(const ActiveFlow& a,
                                  const ActiveFlow& b) const {
      return a.next_packet_ts > b.next_packet_ts;  // min-heap
    }
  };

  /// Core generator: the next packet into (ts, tuple, size); false at end
  /// of stream. next() and next_batch() are thin wrappers.
  bool step(double& ts, net::FiveTuple& tuple, std::uint32_t& size);
  void start_flow(double t0);
  void advance_arrival();
  void schedule_next_packet(ActiveFlow& f) const;
  [[nodiscard]] const Segment& segment_at(double t) const;
  [[nodiscard]] double lambda_at(double t) const;

  ScenarioSpec spec_;
  std::vector<double> segment_start_;  ///< per-segment start times
  double total_duration_s_ = 0.0;

  stats::LogNormal size_dist_;
  stats::LogNormal duration_dist_;

  stats::Rng rng_;
  gen::ThinningArrivals arrivals_;
  double next_arrival_ = 0.0;
  bool arrivals_done_ = false;
  std::uint64_t flows_ = 0;
  std::uint64_t attack_flows_ = 0;
  std::priority_queue<ActiveFlow, std::vector<ActiveFlow>, ByNextPacket>
      active_;
};

}  // namespace fbm::scenario
