#include "scenario/spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fbm::scenario {

namespace {

[[noreturn]] void fail(std::string_view origin, std::size_t line,
                       const std::string& what) {
  std::ostringstream msg;
  msg << "scenario spec " << origin << ":" << line << ": " << what;
  throw std::invalid_argument(msg.str());
}

[[nodiscard]] double parse_double(std::string_view origin, std::size_t line,
                                  const std::string& key,
                                  const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    fail(origin, line, key + " wants a number, got \"" + value + "\"");
  }
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view origin,
                                      std::size_t line,
                                      const std::string& key,
                                      const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    fail(origin, line, key + " wants an integer, got \"" + value + "\"");
  }
}

[[nodiscard]] PrefixRange parse_range(std::string_view origin,
                                      std::size_t line,
                                      const std::string& key,
                                      const std::string& value) {
  PrefixRange r;
  const auto dash = value.find('-');
  if (dash == std::string::npos) {
    r.lo = r.hi = static_cast<std::size_t>(parse_u64(origin, line, key,
                                                     value));
  } else {
    r.lo = static_cast<std::size_t>(
        parse_u64(origin, line, key, value.substr(0, dash)));
    r.hi = static_cast<std::size_t>(
        parse_u64(origin, line, key, value.substr(dash + 1)));
  }
  if (r.hi < r.lo) fail(origin, line, key + ": range hi < lo");
  r.set = true;
  return r;
}

/// Per-kind defaults for multipliers the spec leaves unset, chosen so the
/// bundled regimes carry the paper's signatures (ddos: lambda up, E[S]
/// down; flash crowd: both up) and are detectable out of the box.
void apply_kind_defaults(Segment& s, bool lambda_set, bool size_set,
                         bool duration_set, bool amplitude_set) {
  switch (s.kind) {
    case SegmentKind::ddos:
      if (!lambda_set) s.lambda_x = 30.0;
      if (!size_set) s.size_x = 0.05;
      if (!duration_set) s.duration_x = 0.3;
      break;
    case SegmentKind::flash_crowd:
      if (!lambda_set) s.lambda_x = 3.0;
      if (!size_set) s.size_x = 2.5;
      break;
    case SegmentKind::diurnal:
      if (!amplitude_set) s.amplitude = 0.3;
      break;
    case SegmentKind::baseline:
    case SegmentKind::reroute:
      break;
  }
}

}  // namespace

std::string_view to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::baseline: return "baseline";
    case SegmentKind::diurnal: return "diurnal";
    case SegmentKind::flash_crowd: return "flash-crowd";
    case SegmentKind::ddos: return "ddos";
    case SegmentKind::reroute: return "reroute";
  }
  return "baseline";
}

SegmentKind segment_kind_from_string(std::string_view name) {
  if (name == "baseline") return SegmentKind::baseline;
  if (name == "diurnal") return SegmentKind::diurnal;
  if (name == "flash-crowd" || name == "flash_crowd") {
    return SegmentKind::flash_crowd;
  }
  if (name == "ddos") return SegmentKind::ddos;
  if (name == "reroute") return SegmentKind::reroute;
  throw std::invalid_argument("unknown segment kind \"" + std::string(name) +
                              "\"");
}

double ScenarioSpec::total_duration_s() const {
  double total = 0.0;
  for (const auto& s : segments) total += s.duration_s;
  return total;
}

double ScenarioSpec::segment_start_s(std::size_t i) const {
  double start = 0.0;
  for (std::size_t k = 0; k < i && k < segments.size(); ++k) {
    start += segments[k].duration_s;
  }
  return start;
}

void ScenarioSpec::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("ScenarioSpec: " + what);
  };
  if (name.empty()) bad("missing scenario name");
  if (!(lambda > 0.0)) bad("lambda <= 0");
  if (!(size_mean_bits > 0.0)) bad("size-mean-bits <= 0");
  if (!(duration_mean_s > 0.0)) bad("duration-mean-s <= 0");
  if (size_cv < 0.0 || duration_cv < 0.0) bad("cv < 0");
  if (!(shot_b >= 0.0)) bad("shot-b < 0");
  if (packet_bytes == 0) bad("packet-bytes == 0");
  if (attack_packet_bytes == 0) bad("attack-packet-bytes == 0");
  if (prefix_pool == 0) bad("prefix-pool == 0");
  if (grace_s < 0.0 || cooldown_s < 0.0) bad("grace/cooldown < 0");
  if (!(window_s > 0.0)) bad("window <= 0");
  if (stride_s < 0.0) bad("stride < 0");
  if (segments.empty()) bad("no segments");
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& s = segments[i];
    const std::string where = "segment " + std::to_string(i) + " (" +
                              std::string(to_string(s.kind)) + "): ";
    if (!(s.duration_s > 0.0)) bad(where + "duration <= 0");
    if (!(s.lambda_x > 0.0)) bad(where + "lambda-x <= 0");
    if (!(s.size_x > 0.0)) bad(where + "size-x <= 0");
    if (!(s.duration_x > 0.0)) bad(where + "duration-x <= 0");
    if (s.amplitude < 0.0 || s.amplitude > 1.0) {
      bad(where + "amplitude outside [0, 1]");
    }
    if (s.kind == SegmentKind::diurnal && !(s.period_s > 0.0)) {
      bad(where + "period <= 0");
    }
    if (s.prefixes.set && s.prefixes.hi >= prefix_pool) {
      bad(where + "prefixes outside pool");
    }
    if (s.to_prefixes.set && s.to_prefixes.hi >= prefix_pool) {
      bad(where + "to-prefixes outside pool");
    }
    if (s.kind == SegmentKind::reroute) {
      if (!s.prefixes.set || !s.to_prefixes.set) {
        bad(where + "needs prefixes= and to-prefixes=");
      }
    }
  }
}

ScenarioSpec parse_scenario(std::istream& in, std::string_view origin) {
  ScenarioSpec spec;
  std::string line;
  std::size_t lineno = 0;
  bool saw_scenario = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line

    const auto want_value = [&](const std::string& k) {
      std::string v;
      if (!(ls >> v)) fail(origin, lineno, k + " wants a value");
      return v;
    };

    if (key == "scenario") {
      spec.name = want_value(key);
      saw_scenario = true;
    } else if (key == "seed") {
      spec.seed = parse_u64(origin, lineno, key, want_value(key));
    } else if (key == "lambda") {
      spec.lambda = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "size-mean-bits") {
      spec.size_mean_bits =
          parse_double(origin, lineno, key, want_value(key));
    } else if (key == "size-cv") {
      spec.size_cv = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "duration-mean-s") {
      spec.duration_mean_s =
          parse_double(origin, lineno, key, want_value(key));
    } else if (key == "duration-cv") {
      spec.duration_cv = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "shot-b") {
      spec.shot_b = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "packet-bytes") {
      spec.packet_bytes = static_cast<std::uint32_t>(
          parse_u64(origin, lineno, key, want_value(key)));
    } else if (key == "attack-packet-bytes") {
      spec.attack_packet_bytes = static_cast<std::uint32_t>(
          parse_u64(origin, lineno, key, want_value(key)));
    } else if (key == "prefix-pool") {
      spec.prefix_pool = static_cast<std::size_t>(
          parse_u64(origin, lineno, key, want_value(key)));
    } else if (key == "grace") {
      spec.grace_s = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "cooldown") {
      spec.cooldown_s = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "window") {
      spec.window_s = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "stride") {
      spec.stride_s = parse_double(origin, lineno, key, want_value(key));
    } else if (key == "segment") {
      Segment seg;
      std::string kind;
      std::string duration;
      if (!(ls >> kind >> duration)) {
        fail(origin, lineno, "segment wants KIND DURATION");
      }
      try {
        seg.kind = segment_kind_from_string(kind);
      } catch (const std::invalid_argument& e) {
        fail(origin, lineno, e.what());
      }
      seg.duration_s = parse_double(origin, lineno, "duration", duration);
      bool lambda_set = false;
      bool size_set = false;
      bool duration_set = false;
      bool amplitude_set = false;
      std::string opt;
      while (ls >> opt) {
        const auto eq = opt.find('=');
        if (eq == std::string::npos) {
          fail(origin, lineno, "segment option \"" + opt +
                                   "\" wants key=value");
        }
        const std::string k = opt.substr(0, eq);
        const std::string v = opt.substr(eq + 1);
        if (k == "lambda-x") {
          seg.lambda_x = parse_double(origin, lineno, k, v);
          lambda_set = true;
        } else if (k == "size-x") {
          seg.size_x = parse_double(origin, lineno, k, v);
          size_set = true;
        } else if (k == "duration-x") {
          seg.duration_x = parse_double(origin, lineno, k, v);
          duration_set = true;
        } else if (k == "amplitude") {
          seg.amplitude = parse_double(origin, lineno, k, v);
          amplitude_set = true;
        } else if (k == "period") {
          seg.period_s = parse_double(origin, lineno, k, v);
        } else if (k == "prefixes") {
          seg.prefixes = parse_range(origin, lineno, k, v);
        } else if (k == "to-prefixes") {
          seg.to_prefixes = parse_range(origin, lineno, k, v);
        } else if (k == "expect") {
          if (v == "none") {
            seg.expect = Expectation::none;
          } else if (v == "spike") {
            seg.expect = Expectation::spike;
          } else if (v == "drop") {
            seg.expect = Expectation::drop;
          } else {
            fail(origin, lineno, "expect wants none|spike|drop, got \"" +
                                     v + "\"");
          }
        } else if (k == "expect-spike") {
          seg.expect_spike_link = v;
        } else if (k == "expect-drop") {
          seg.expect_drop_link = v;
        } else {
          fail(origin, lineno, "unknown segment option \"" + k + "\"");
        }
      }
      apply_kind_defaults(seg, lambda_set, size_set, duration_set,
                          amplitude_set);
      spec.segments.push_back(std::move(seg));
    } else {
      fail(origin, lineno, "unknown key \"" + key + "\"");
    }
  }
  if (!saw_scenario) {
    fail(origin, lineno == 0 ? 1 : lineno, "missing \"scenario NAME\" line");
  }
  spec.validate();
  return spec;
}

ScenarioSpec parse_scenario_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_scenario(in, "<string>");
}

ScenarioSpec load_scenario(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_scenario: cannot open " + path.string());
  }
  return parse_scenario(in, path.string());
}

std::string render_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out.precision(17);
  out << "scenario " << spec.name << "\n";
  out << "seed " << spec.seed << "\n";
  out << "lambda " << spec.lambda << "\n";
  out << "size-mean-bits " << spec.size_mean_bits << "\n";
  out << "size-cv " << spec.size_cv << "\n";
  out << "duration-mean-s " << spec.duration_mean_s << "\n";
  out << "duration-cv " << spec.duration_cv << "\n";
  out << "shot-b " << spec.shot_b << "\n";
  out << "packet-bytes " << spec.packet_bytes << "\n";
  out << "attack-packet-bytes " << spec.attack_packet_bytes << "\n";
  out << "prefix-pool " << spec.prefix_pool << "\n";
  out << "grace " << spec.grace_s << "\n";
  out << "cooldown " << spec.cooldown_s << "\n";
  out << "window " << spec.window_s << "\n";
  out << "stride " << spec.stride_s << "\n";
  for (const auto& s : spec.segments) {
    out << "segment " << to_string(s.kind) << " " << s.duration_s;
    out << " lambda-x=" << s.lambda_x;
    out << " size-x=" << s.size_x;
    out << " duration-x=" << s.duration_x;
    if (s.kind == SegmentKind::diurnal) {
      out << " amplitude=" << s.amplitude << " period=" << s.period_s;
    }
    if (s.prefixes.set) {
      out << " prefixes=" << s.prefixes.lo << "-" << s.prefixes.hi;
    }
    if (s.to_prefixes.set) {
      out << " to-prefixes=" << s.to_prefixes.lo << "-"
          << s.to_prefixes.hi;
    }
    switch (s.expect) {
      case Expectation::auto_from_kind: break;
      case Expectation::none: out << " expect=none"; break;
      case Expectation::spike: out << " expect=spike"; break;
      case Expectation::drop: out << " expect=drop"; break;
    }
    if (!s.expect_spike_link.empty()) {
      out << " expect-spike=" << s.expect_spike_link;
    }
    if (!s.expect_drop_link.empty()) {
      out << " expect-drop=" << s.expect_drop_link;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace fbm::scenario
