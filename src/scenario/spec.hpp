// Scenario specifications (fbm::scenario): regime-switching traffic
// declared as data.
//
// A scenario composes timed segments over one base traffic model (Poisson
// flow arrivals, lognormal size/duration, power-shot pacing — the same
// model api::ModelTraceSource simulates). Each segment switches the regime:
//
//   baseline     stationary shot noise at the base parameters
//   diurnal      lambda(t) modulated by a sinusoid (amplitude, period)
//   flash-crowd  lambda and E[S] both rise: extra "crowd" flows, larger
//                than baseline, concentrated on target prefixes
//   ddos         lambda spikes while E[S] collapses: a flood of tiny
//                short flows (the paper's DDoS signature) at the target
//                prefixes, small-packet, UDP
//   reroute      link failure/repair: destination prefixes in `prefixes`
//                are remapped onto `to_prefixes` for the segment, so
//                traffic shifts between engine links while the aggregate
//                is conserved
//
// Specs are parsed from a small line-based text format (see parse_scenario
// below; '#' starts a comment):
//
//   scenario ddos-flood
//   seed 42
//   lambda 200            # base flow arrivals per second
//   size-mean-bits 40000  # base lognormal mean flow size
//   size-cv 1.2
//   duration-mean-s 0.5   # base lognormal mean flow duration
//   duration-cv 1.0
//   shot-b 1              # power-shot pacing exponent
//   packet-bytes 1000     # packetization quantum (baseline flows)
//   attack-packet-bytes 64
//   prefix-pool 64        # distinct /24 destination prefixes
//   window 5              # suggested live window/stride (tool overridable)
//   stride 5
//   grace 10              # event match grace after the segment ends (s)
//   cooldown 60           # post-event alert-ignore span (s)
//   segment baseline 60
//   segment ddos 30 lambda-x=30 size-x=0.05 prefixes=0-7
//   segment baseline 90
//
// Segment lines are `segment KIND DURATION [key=value ...]` with keys
// lambda-x / size-x / duration-x (multipliers over the base model),
// amplitude / period (diurnal), prefixes=LO-HI / to-prefixes=LO-HI (rank
// ranges into the prefix pool), and expect / expect-spike / expect-drop
// (ground-truth overrides, see truth.hpp). Unset keys take per-kind
// defaults chosen so that the bundled regimes are detectable by the live
// band monitor out of the box.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "stats/rng.hpp"

namespace fbm::scenario {

enum class SegmentKind { baseline, diurnal, flash_crowd, ddos, reroute };

[[nodiscard]] std::string_view to_string(SegmentKind kind);
/// Throws std::invalid_argument for an unknown kind name.
[[nodiscard]] SegmentKind segment_kind_from_string(std::string_view name);

/// Expected-alert policy of one segment. `auto_from_kind` resolves at parse
/// time: ddos and flash-crowd expect a spike over the segment interval;
/// everything else expects no aggregate event.
enum class Expectation { auto_from_kind, none, spike, drop };

/// Inclusive rank range into the scenario's destination prefix pool.
/// empty() ranges mean "whole pool" where a target is optional.
struct PrefixRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool set = false;

  [[nodiscard]] std::size_t span() const { return set ? hi - lo + 1 : 0; }
  [[nodiscard]] bool contains(std::size_t rank) const {
    return set && rank >= lo && rank <= hi;
  }
};

struct Segment {
  SegmentKind kind = SegmentKind::baseline;
  double duration_s = 60.0;

  // Multipliers over the scenario's base model; 1 = unchanged. The
  // per-kind defaults (applied when the spec leaves them unset) are
  // lambda-x=30 size-x=0.05 duration-x=0.3 for ddos and lambda-x=3
  // size-x=2.5 for flash-crowd.
  double lambda_x = 1.0;
  double size_x = 1.0;
  double duration_x = 1.0;

  // Diurnal modulation: lambda(t) = base * lambda_x *
  // (1 + amplitude * sin(2*pi*(t - segment_start) / period_s)).
  double amplitude = 0.0;
  double period_s = 60.0;

  PrefixRange prefixes;     ///< target ranks (attack/crowd dst; reroute src)
  PrefixRange to_prefixes;  ///< reroute destination ranks

  Expectation expect = Expectation::auto_from_kind;
  std::string expect_spike_link;  ///< reroute: link expected to alert spike
  std::string expect_drop_link;   ///< reroute: link expected to alert drop

  /// Peak lambda multiplier over the segment (thinning envelope).
  [[nodiscard]] double lambda_peak_x() const {
    return lambda_x * (1.0 + (amplitude > 0.0 ? amplitude : 0.0));
  }
};

struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = stats::Rng::default_seed;

  // Base (baseline-segment) model.
  double lambda = 200.0;             ///< flow arrivals per second
  double size_mean_bits = 4e4;       ///< lognormal mean flow size
  double size_cv = 1.2;
  double duration_mean_s = 0.5;      ///< lognormal mean flow duration
  double duration_cv = 1.0;
  double shot_b = 1.0;               ///< power-shot pacing exponent
  std::uint32_t packet_bytes = 1000; ///< packetization quantum
  std::uint32_t attack_packet_bytes = 64;  ///< ddos flood packet size
  std::size_t prefix_pool = 64;      ///< distinct /24 destination prefixes

  // Scoring policy carried into the truth log (see score.hpp).
  double grace_s = 10.0;    ///< alert may trail the event by this much
  double cooldown_s = 60.0; ///< post-event alerts ignored for this long

  // Suggested live-analysis cadence; fbm_scenario uses these unless
  // overridden on its command line. 0 stride means "= window".
  double window_s = 5.0;
  double stride_s = 0.0;

  std::vector<Segment> segments;

  [[nodiscard]] double total_duration_s() const;
  /// Start time of segment `i` (sum of earlier durations).
  [[nodiscard]] double segment_start_s(std::size_t i) const;

  /// Throws std::invalid_argument naming the first inconsistency.
  void validate() const;
};

/// Parses the text format above. Line numbers appear in error messages.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] ScenarioSpec parse_scenario(std::istream& in,
                                          std::string_view origin = "spec");
[[nodiscard]] ScenarioSpec parse_scenario_text(std::string_view text);
/// Reads and parses a spec file; throws std::runtime_error when unreadable.
[[nodiscard]] ScenarioSpec load_scenario(const std::filesystem::path& path);

/// Renders `spec` back into the text format (parse(render(s)) == s for
/// every field; the determinism tests round-trip through this).
[[nodiscard]] std::string render_scenario(const ScenarioSpec& spec);

}  // namespace fbm::scenario
