#include "scenario/truth.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fbm::scenario {

namespace {

constexpr const char* kHeader = "# fbm-scenario-truth v1";

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("truth log line " + std::to_string(line) +
                              ": " + what);
}

/// Resolved expectation of one segment's aggregate behaviour.
[[nodiscard]] live::AlertKind resolve_expect(const Segment& s) {
  switch (s.expect) {
    case Expectation::none: return live::AlertKind::none;
    case Expectation::spike: return live::AlertKind::spike;
    case Expectation::drop: return live::AlertKind::drop;
    case Expectation::auto_from_kind: break;
  }
  switch (s.kind) {
    case SegmentKind::ddos:
    case SegmentKind::flash_crowd:
      return live::AlertKind::spike;
    case SegmentKind::baseline:
    case SegmentKind::diurnal:
    case SegmentKind::reroute:
      return live::AlertKind::none;
  }
  return live::AlertKind::none;
}

}  // namespace

TruthLog derive_truth(const ScenarioSpec& spec) {
  spec.validate();
  TruthLog log;
  log.scenario = spec.name;
  log.seed = spec.seed;
  log.duration_s = spec.total_duration_s();
  log.grace_s = spec.grace_s;
  log.cooldown_s = spec.cooldown_s;

  double t = 0.0;
  for (const auto& s : spec.segments) {
    TruthSegment seg;
    seg.kind = s.kind;
    seg.start_s = t;
    seg.end_s = t + s.duration_s;
    log.segments.push_back(seg);

    const auto kind = resolve_expect(s);
    if (kind != live::AlertKind::none) {
      log.events.push_back({kind, seg.start_s, seg.end_s, ""});
    }
    if (!s.expect_spike_link.empty()) {
      log.events.push_back(
          {live::AlertKind::spike, seg.start_s, seg.end_s,
           s.expect_spike_link});
    }
    if (!s.expect_drop_link.empty()) {
      log.events.push_back(
          {live::AlertKind::drop, seg.start_s, seg.end_s,
           s.expect_drop_link});
    }
    t = seg.end_s;
  }
  return log;
}

std::string write_truth(const TruthLog& log) {
  std::ostringstream out;
  out.precision(17);
  out << kHeader << "\n";
  out << "scenario " << log.scenario << "\n";
  out << "seed " << log.seed << "\n";
  out << "duration " << log.duration_s << "\n";
  out << "grace " << log.grace_s << "\n";
  out << "cooldown " << log.cooldown_s << "\n";
  for (std::size_t i = 0; i < log.segments.size(); ++i) {
    const auto& s = log.segments[i];
    out << "segment " << i << " " << to_string(s.kind) << " " << s.start_s
        << " " << s.end_s << "\n";
  }
  for (const auto& e : log.events) {
    out << "event " << live::to_string(e.kind) << " " << e.start_s << " "
        << e.end_s << " link " << (e.link.empty() ? "-" : e.link) << "\n";
  }
  return out.str();
}

void write_truth_file(const std::filesystem::path& path,
                      const TruthLog& log) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_truth_file: cannot open " +
                             path.string());
  }
  out << write_truth(log);
  if (!out) {
    throw std::runtime_error("write_truth_file: write failed for " +
                             path.string());
  }
}

TruthLog parse_truth(std::istream& in) {
  TruthLog log;
  std::string line;
  std::size_t lineno = 0;
  bool saw_scenario = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "scenario") {
      if (!(ls >> log.scenario)) fail(lineno, "scenario wants a name");
      saw_scenario = true;
    } else if (key == "seed") {
      if (!(ls >> log.seed)) fail(lineno, "seed wants an integer");
    } else if (key == "duration") {
      if (!(ls >> log.duration_s)) fail(lineno, "duration wants a number");
    } else if (key == "grace") {
      if (!(ls >> log.grace_s)) fail(lineno, "grace wants a number");
    } else if (key == "cooldown") {
      if (!(ls >> log.cooldown_s)) fail(lineno, "cooldown wants a number");
    } else if (key == "segment") {
      std::size_t index = 0;
      std::string kind;
      TruthSegment seg;
      if (!(ls >> index >> kind >> seg.start_s >> seg.end_s)) {
        fail(lineno, "segment wants INDEX KIND START END");
      }
      try {
        seg.kind = segment_kind_from_string(kind);
      } catch (const std::invalid_argument& e) {
        fail(lineno, e.what());
      }
      if (index != log.segments.size()) {
        fail(lineno, "segment index out of order");
      }
      log.segments.push_back(seg);
    } else if (key == "event") {
      std::string kind;
      std::string link_kw;
      std::string link;
      TruthEvent ev;
      if (!(ls >> kind >> ev.start_s >> ev.end_s >> link_kw >> link) ||
          link_kw != "link") {
        fail(lineno, "event wants KIND START END link NAME");
      }
      try {
        ev.kind = live::alert_kind_from_string(kind);
      } catch (const std::invalid_argument& e) {
        fail(lineno, e.what());
      }
      if (ev.kind == live::AlertKind::none) {
        fail(lineno, "event kind must be spike or drop");
      }
      ev.link = link == "-" ? "" : link;
      log.events.push_back(std::move(ev));
    } else {
      fail(lineno, "unknown key \"" + key + "\"");
    }
  }
  if (!saw_scenario) fail(lineno == 0 ? 1 : lineno, "missing scenario line");
  return log;
}

TruthLog parse_truth_text(const std::string& text) {
  std::istringstream in(text);
  return parse_truth(in);
}

TruthLog load_truth(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_truth: cannot open " + path.string());
  }
  return parse_truth(in);
}

}  // namespace fbm::scenario
