// Ground truth for scenario runs (fbm::scenario).
//
// A TruthLog is the machine-checkable record of what a scenario injected:
// every segment boundary and every interval where the live anomaly monitor
// is *expected* to alert. It is derived purely from the spec (no
// generation involved), so the same spec always yields byte-identical
// truth, and it round-trips through a small line-based text file written
// next to generated traces:
//
//   # fbm-scenario-truth v1
//   scenario ddos-flood
//   seed 42
//   duration 180
//   grace 10
//   cooldown 60
//   segment 0 baseline 0 60
//   segment 1 ddos 60 90
//   segment 2 baseline 90 180
//   event spike 60 90 link -
//
// `link -` marks an aggregate (single-stream) event; a named link scopes
// the expectation to that engine link's reports (reroute scenarios emit a
// drop on the failed link and a spike on the backup). scenario::score
// matches alerts against these events under the grace/cooldown policy.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "live/window_report.hpp"
#include "scenario/spec.hpp"

namespace fbm::scenario {

/// One expected-alert interval [start_s, end_s), optionally scoped to an
/// engine link by name (empty = the aggregate/single stream).
struct TruthEvent {
  live::AlertKind kind = live::AlertKind::spike;
  double start_s = 0.0;
  double end_s = 0.0;
  std::string link;
};

/// One segment's boundaries, for replay tooling and dashboards.
struct TruthSegment {
  SegmentKind kind = SegmentKind::baseline;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct TruthLog {
  std::string scenario;
  std::uint64_t seed = 0;
  double duration_s = 0.0;
  double grace_s = 0.0;
  double cooldown_s = 0.0;
  std::vector<TruthSegment> segments;
  std::vector<TruthEvent> events;
};

/// Derives the truth purely from the spec: segment boundaries from the
/// durations; one event per segment whose (resolved) expectation is spike
/// or drop, spanning the segment; plus per-link events from
/// expect-spike/expect-drop segment options.
[[nodiscard]] TruthLog derive_truth(const ScenarioSpec& spec);

/// Text round trip. write_truth output is byte-stable for a given log.
[[nodiscard]] std::string write_truth(const TruthLog& log);
void write_truth_file(const std::filesystem::path& path,
                      const TruthLog& log);
/// Throws std::invalid_argument on malformed input (line numbers named).
[[nodiscard]] TruthLog parse_truth(std::istream& in);
[[nodiscard]] TruthLog parse_truth_text(const std::string& text);
[[nodiscard]] TruthLog load_truth(const std::filesystem::path& path);

}  // namespace fbm::scenario
