#include "stats/autocorrelation.hpp"

#include <cmath>

#include "stats/descriptive.hpp"

namespace fbm::stats {

double autocovariance(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (n == 0 || lag >= n) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    acc += (xs[i] - mu) * (xs[i + lag] - mu);
  }
  return acc / static_cast<double>(n);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.empty()) return 0.0;
  if (lag == 0) return 1.0;
  const double c0 = autocovariance(xs, 0);
  if (c0 <= 0.0) return 0.0;
  return autocovariance(xs, lag) / c0;
}

std::vector<double> autocovariance_series(std::span<const double> xs,
                                          std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> out(max_lag + 1, 0.0);
  if (n == 0) return out;
  const double mu = mean(xs);
  for (std::size_t k = 0; k <= max_lag && k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) {
      acc += (xs[i] - mu) * (xs[i + k] - mu);
    }
    out[k] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<double> autocorrelation_series(std::span<const double> xs,
                                           std::size_t max_lag) {
  std::vector<double> cov = autocovariance_series(xs, max_lag);
  std::vector<double> out(cov.size(), 0.0);
  if (xs.empty()) return out;
  out[0] = 1.0;
  if (cov[0] <= 0.0) return out;
  for (std::size_t k = 1; k < cov.size(); ++k) out[k] = cov[k] / cov[0];
  return out;
}

double white_noise_band(std::size_t n) {
  if (n == 0) return 0.0;
  return 1.96 / std::sqrt(static_cast<double>(n));
}

}  // namespace fbm::stats
