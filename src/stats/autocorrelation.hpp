// Sample auto-correlation and auto-covariance of a sequence.
//
// Used for the paper's Figures 3-6 (correlation of inter-arrival times, flow
// sizes and durations) and for the data-driven predictor of Section VII-B.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fbm::stats {

/// Biased sample auto-covariance at `lag`:
///   c(k) = (1/n) * sum_{i=0}^{n-k-1} (x_i - mean)(x_{i+k} - mean).
/// The biased (1/n) normalisation guarantees a positive semi-definite
/// covariance sequence, which the Levinson recursion in predict/ requires.
[[nodiscard]] double autocovariance(std::span<const double> xs, std::size_t lag);

/// Auto-correlation coefficient c(k)/c(0) in [-1, 1]. Returns 0 when the
/// series is constant (c(0)==0) and k>0; lag 0 is defined as 1 for any
/// non-empty series.
[[nodiscard]] double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Auto-correlation for lags 0..max_lag inclusive (single mean pass, then one
/// pass per lag). Lags >= n yield 0.
[[nodiscard]] std::vector<double> autocorrelation_series(
    std::span<const double> xs, std::size_t max_lag);

/// Auto-covariance for lags 0..max_lag inclusive (biased normalisation).
[[nodiscard]] std::vector<double> autocovariance_series(
    std::span<const double> xs, std::size_t max_lag);

/// Large-lag 95% confidence band for the ACF of white noise: +/-1.96/sqrt(n).
/// Figures 3-6 interpret coefficients inside this band as "no correlation".
[[nodiscard]] double white_noise_band(std::size_t n);

}  // namespace fbm::stats
