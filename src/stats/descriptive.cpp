#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fbm::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
         4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
  sum_ += x;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::population_variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_stddev() const {
  return std::sqrt(population_variance());
}

double RunningStats::skewness() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::kurtosis() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double RunningStats::sum() const { return sum_; }

double RunningStats::coefficient_of_variation() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return population_stddev() / mean_;
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double population_variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.population_variance();
}

double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

double coefficient_of_variation(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.coefficient_of_variation();
}

}  // namespace fbm::stats
