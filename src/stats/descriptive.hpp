// Streaming (Welford) and batch descriptive statistics.
//
// The paper's estimation procedure (Section V-G) needs running estimates of
// flow-level quantities (arrival rate, E[S], E[S^2/D]) over 30-minute
// intervals; RunningStats provides numerically stable single-pass moments up
// to kurtosis.
#pragma once

#include <cstddef>
#include <span>

namespace fbm::stats {

/// Single-pass accumulator for mean/variance/skewness/kurtosis (Welford /
/// Pebay update formulas). All results are finite-sample; `variance()` is the
/// unbiased (n-1) estimator, `population_variance()` divides by n.
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;             ///< unbiased, n-1
  [[nodiscard]] double population_variance() const;  ///< biased, n
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double population_stddev() const;
  [[nodiscard]] double skewness() const;  ///< g1, population form
  [[nodiscard]] double kurtosis() const;  ///< excess kurtosis g2
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;

  /// Coefficient of variation: stddev/mean (population form), the paper's
  /// headline validation metric. Returns 0 for an empty or zero-mean sample.
  [[nodiscard]] double coefficient_of_variation() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch helpers over a span (two-pass, numerically stable).
[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);             ///< unbiased
[[nodiscard]] double population_variance(std::span<const double> xs);  ///< biased
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Mean of f(x) over the span without materialising the mapped vector.
template <typename F>
[[nodiscard]] double mean_of(std::span<const double> xs, F&& f) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  std::size_t n = 0;
  for (double x : xs) acc += (f(x) - acc) / static_cast<double>(++n);
  return acc;
}

}  // namespace fbm::stats
