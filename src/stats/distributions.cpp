#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/quantile.hpp"

namespace fbm::stats {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void check_p(double p, const char* who) {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument(std::string(who) + ": p outside [0,1)");
  }
}
}  // namespace

double Distribution::sample(Rng& rng) const { return quantile(rng.uniform()); }

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("Exponential: rate <= 0");
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const { return exponential_cdf(x, rate_); }

double Exponential::quantile(double p) const {
  return exponential_quantile(p, rate_);
}

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::variance() const { return 1.0 / (rate_ * rate_); }

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }

std::string Exponential::name() const {
  return "Exponential(rate=" + std::to_string(rate_) + ")";
}

Exponential Exponential::fit(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Exponential::fit: empty");
  const double mu = fbm::stats::mean(xs);
  if (!(mu > 0.0)) {
    throw std::invalid_argument("Exponential::fit: non-positive mean");
  }
  return Exponential(1.0 / mu);
}

// --------------------------------------------------------------------- Pareto

Pareto::Pareto(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  if (!(alpha > 0.0)) throw std::invalid_argument("Pareto: alpha <= 0");
  if (!(xm > 0.0)) throw std::invalid_argument("Pareto: xm <= 0");
}

double Pareto::pdf(double x) const {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const {
  if (x < xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  check_p(p, "Pareto::quantile");
  return xm_ / std::pow(1.0 - p, 1.0 / alpha_);
}

double Pareto::mean() const {
  return alpha_ <= 1.0 ? kInf : alpha_ * xm_ / (alpha_ - 1.0);
}

double Pareto::variance() const {
  if (alpha_ <= 2.0) return kInf;
  const double am1 = alpha_ - 1.0;
  return xm_ * xm_ * alpha_ / (am1 * am1 * (alpha_ - 2.0));
}

std::string Pareto::name() const {
  return "Pareto(alpha=" + std::to_string(alpha_) +
         ", xm=" + std::to_string(xm_) + ")";
}

Pareto Pareto::fit(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Pareto::fit: empty");
  const double xm = *std::min_element(xs.begin(), xs.end());
  if (!(xm > 0.0)) throw std::invalid_argument("Pareto::fit: min <= 0");
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x / xm);
  if (!(log_sum > 0.0)) {
    throw std::invalid_argument("Pareto::fit: degenerate sample");
  }
  return Pareto(static_cast<double>(xs.size()) / log_sum, xm);
}

// -------------------------------------------------------------- BoundedPareto

BoundedPareto::BoundedPareto(double alpha, double xm, double cap)
    : alpha_(alpha), xm_(xm), cap_(cap) {
  if (!(alpha > 0.0)) throw std::invalid_argument("BoundedPareto: alpha <= 0");
  if (!(xm > 0.0)) throw std::invalid_argument("BoundedPareto: xm <= 0");
  if (!(cap > xm)) throw std::invalid_argument("BoundedPareto: cap <= xm");
}

double BoundedPareto::pdf(double x) const {
  if (x < xm_ || x > cap_) return 0.0;
  const double norm = 1.0 - std::pow(xm_ / cap_, alpha_);
  return alpha_ * std::pow(xm_, alpha_) / (std::pow(x, alpha_ + 1.0) * norm);
}

double BoundedPareto::cdf(double x) const {
  if (x < xm_) return 0.0;
  if (x >= cap_) return 1.0;
  const double norm = 1.0 - std::pow(xm_ / cap_, alpha_);
  return (1.0 - std::pow(xm_ / x, alpha_)) / norm;
}

double BoundedPareto::quantile(double p) const {
  check_p(p, "BoundedPareto::quantile");
  const double hl = std::pow(xm_ / cap_, alpha_);
  return xm_ / std::pow(1.0 - p * (1.0 - hl), 1.0 / alpha_);
}

double BoundedPareto::raw_moment(int k) const {
  // E[X^k] for bounded Pareto; alpha == k needs the log limit.
  const double a = alpha_;
  const double norm = 1.0 - std::pow(xm_ / cap_, a);
  if (std::abs(a - static_cast<double>(k)) < 1e-12) {
    return std::pow(xm_, a) * a * std::log(cap_ / xm_) / norm;
  }
  const double num = a * (std::pow(cap_, static_cast<double>(k) - a) -
                          std::pow(xm_, static_cast<double>(k) - a));
  return std::pow(xm_, a) * num / ((static_cast<double>(k) - a) * norm);
}

double BoundedPareto::mean() const { return raw_moment(1); }

double BoundedPareto::variance() const {
  const double m = mean();
  return raw_moment(2) - m * m;
}

std::string BoundedPareto::name() const {
  return "BoundedPareto(alpha=" + std::to_string(alpha_) +
         ", xm=" + std::to_string(xm_) + ", cap=" + std::to_string(cap_) + ")";
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("LogNormal: sigma <= 0");
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  check_p(p, "LogNormal::quantile");
  if (p == 0.0) return 0.0;
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::mean() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

std::string LogNormal::name() const {
  return "LogNormal(mu=" + std::to_string(mu_) +
         ", sigma=" + std::to_string(sigma_) + ")";
}

LogNormal LogNormal::fit(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("LogNormal::fit: empty");
  RunningStats s;
  for (double x : xs) {
    if (!(x > 0.0)) {
      throw std::invalid_argument("LogNormal::fit: non-positive sample");
    }
    s.add(std::log(x));
  }
  const double sd = s.population_stddev();
  if (!(sd > 0.0)) {
    throw std::invalid_argument("LogNormal::fit: degenerate sample");
  }
  return LogNormal(s.mean(), sd);
}

LogNormal LogNormal::from_mean_cv(double m, double cv) {
  if (!(m > 0.0)) throw std::invalid_argument("LogNormal: mean <= 0");
  if (!(cv > 0.0)) throw std::invalid_argument("LogNormal: cv <= 0");
  const double s2 = std::log(1.0 + cv * cv);
  return LogNormal(std::log(m) - s2 / 2.0, std::sqrt(s2));
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0)) throw std::invalid_argument("Weibull: shape <= 0");
  if (!(scale > 0.0)) throw std::invalid_argument("Weibull: scale <= 0");
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double z = x / scale_;
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  check_p(p, "Weibull::quantile");
  return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::name() const {
  return "Weibull(shape=" + std::to_string(shape_) +
         ", scale=" + std::to_string(scale_) + ")";
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Uniform: hi <= lo");
}

double Uniform::pdf(double x) const {
  return (x < lo_ || x > hi_) ? 0.0 : 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  check_p(p, "Uniform::quantile");
  return lo_ + p * (hi_ - lo_);
}

double Uniform::mean() const { return (lo_ + hi_) / 2.0; }

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

std::string Uniform::name() const {
  return "Uniform(" + std::to_string(lo_) + ", " + std::to_string(hi_) + ")";
}

// ------------------------------------------------------------------- Constant

Constant::Constant(double value) : value_(value) {}

double Constant::pdf(double) const { return 0.0; }

double Constant::cdf(double x) const { return x >= value_ ? 1.0 : 0.0; }

double Constant::quantile(double p) const {
  check_p(p, "Constant::quantile");
  return value_;
}

double Constant::mean() const { return value_; }

double Constant::variance() const { return 0.0; }

double Constant::sample(Rng&) const { return value_; }

std::string Constant::name() const {
  return "Constant(" + std::to_string(value_) + ")";
}

// -------------------------------------------------------------------- Mixture

Mixture::Mixture(DistributionPtr first, DistributionPtr second, double p_first)
    : first_(std::move(first)), second_(std::move(second)), p_(p_first) {
  if (!first_ || !second_) {
    throw std::invalid_argument("Mixture: null component");
  }
  if (!(p_ >= 0.0 && p_ <= 1.0)) {
    throw std::invalid_argument("Mixture: p outside [0,1]");
  }
}

double Mixture::pdf(double x) const {
  return p_ * first_->pdf(x) + (1.0 - p_) * second_->pdf(x);
}

double Mixture::cdf(double x) const {
  return p_ * first_->cdf(x) + (1.0 - p_) * second_->cdf(x);
}

double Mixture::quantile(double p) const {
  check_p(p, "Mixture::quantile");
  // Bisection on the mixture CDF between the component quantiles.
  double lo = std::min(first_->quantile(p), second_->quantile(p));
  double hi = std::max(first_->quantile(p), second_->quantile(p));
  if (hi - lo < 1e-15) return lo;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * std::max(1.0, std::abs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double Mixture::mean() const {
  return p_ * first_->mean() + (1.0 - p_) * second_->mean();
}

double Mixture::variance() const {
  const double m1 = first_->mean();
  const double m2 = second_->mean();
  const double m = mean();
  const double ex2 = p_ * (first_->variance() + m1 * m1) +
                     (1.0 - p_) * (second_->variance() + m2 * m2);
  return ex2 - m * m;
}

double Mixture::sample(Rng& rng) const {
  return rng.bernoulli(p_) ? first_->sample(rng) : second_->sample(rng);
}

std::string Mixture::name() const {
  return "Mixture(p=" + std::to_string(p_) + ", " + first_->name() + ", " +
         second_->name() + ")";
}

// ----------------------------------------------------------------------- Zipf

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: n == 0");
  if (!(s >= 0.0)) throw std::invalid_argument("Zipf: s < 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double Zipf::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace fbm::stats
