// Parametric distributions for flow sizes, durations, and rates.
//
// The self-similarity literature the paper builds on (Section II) attributes
// traffic burstiness to heavy-tailed flow sizes/durations; the synthetic
// trace generator therefore needs Pareto/lognormal variates, and the model
// validation needs exponential fits for inter-arrival times. Each
// distribution exposes pdf/cdf/quantile/moments/sampling plus maximum-
// likelihood fitting where it is closed-form.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "stats/rng.hpp"

namespace fbm::stats {

/// Abstract continuous distribution over (part of) the real line.
class Distribution {
 public:
  virtual ~Distribution() = default;

  [[nodiscard]] virtual double pdf(double x) const = 0;
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Inverse CDF for p in [0,1); throws std::invalid_argument otherwise.
  [[nodiscard]] virtual double quantile(double p) const = 0;
  [[nodiscard]] virtual double mean() const = 0;
  /// May be +inf for heavy tails (Pareto alpha <= 2).
  [[nodiscard]] virtual double variance() const = 0;
  [[nodiscard]] virtual double sample(Rng& rng) const;
  [[nodiscard]] virtual std::string name() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Exponential(rate); mean 1/rate.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double rate() const { return rate_; }
  /// MLE: rate = 1/sample-mean. Throws on empty or non-positive-mean sample.
  [[nodiscard]] static Exponential fit(std::span<const double> xs);

 private:
  double rate_;
};

/// Pareto(alpha, xm): pdf ~ alpha*xm^alpha / x^(alpha+1), x >= xm.
/// Heavy-tailed for small alpha; infinite variance when alpha <= 2.
class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double xm);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;      ///< +inf if alpha <= 1
  [[nodiscard]] double variance() const override;  ///< +inf if alpha <= 2
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double xm() const { return xm_; }
  /// MLE with known xm = min(sample): alpha = n / sum(log(x_i/xm)).
  [[nodiscard]] static Pareto fit(std::span<const double> xs);

 private:
  double alpha_;
  double xm_;
};

/// Pareto truncated to [xm, cap]; finite moments regardless of alpha. Used
/// for flow sizes so a single elephant cannot dominate a short synthetic
/// trace.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double alpha, double xm, double cap);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double xm() const { return xm_; }
  [[nodiscard]] double cap() const { return cap_; }

 private:
  [[nodiscard]] double raw_moment(int k) const;
  double alpha_;
  double xm_;
  double cap_;
};

/// LogNormal(mu, sigma) of the underlying normal.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  /// MLE: mu/sigma of log-data. Throws on empty or non-positive samples.
  [[nodiscard]] static LogNormal fit(std::span<const double> xs);
  /// Construct from desired mean m and coefficient of variation cv.
  [[nodiscard]] static LogNormal from_mean_cv(double m, double cv);

 private:
  double mu_;
  double sigma_;
};

/// Weibull(shape k, scale lambda).
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Uniform(lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double lo_;
  double hi_;
};

/// Constant (degenerate) distribution; handy for baselines where all flows
/// have identical rate (the M/G/infinity special case of Section II).
class Constant final : public Distribution {
 public:
  explicit Constant(double value);
  [[nodiscard]] double pdf(double x) const override;  ///< 0/inf convention: 0
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double value_;
};

/// Two-component mixture: with probability `p_first` sample from `first`,
/// otherwise from `second`. Models the mice/elephants dichotomy of flow
/// sizes ([3] in the paper).
class Mixture final : public Distribution {
 public:
  Mixture(DistributionPtr first, DistributionPtr second, double p_first);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;  ///< bisection
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  DistributionPtr first_;
  DistributionPtr second_;
  double p_;
};

/// Zipf(s) sampler over ranks {0, .., n-1}: P(k) ~ 1/(k+1)^s.
/// Used to pick /24 destination prefixes with realistic popularity skew.
class Zipf {
 public:
  Zipf(std::size_t n, double s);
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] double probability(std::size_t rank) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace fbm::stats
