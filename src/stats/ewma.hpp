// Exponentially weighted moving averages.
//
// Section V-G sketches an online implementation of the model: when a flow of
// size S ends, the estimate of E[S] is updated as E <- (1-eps)*E + eps*S.
// EwmaEstimator implements exactly that update; EwmaRateEstimator adapts it
// to event *rates* (flow arrivals per second) from event timestamps.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace fbm::stats {

/// Scalar EWMA with gain eps in (0, 1]: smaller eps reacts more slowly.
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double eps) : eps_(eps) {
    if (!(eps > 0.0 && eps <= 1.0)) {
      throw std::invalid_argument("EwmaEstimator: eps outside (0,1]");
    }
  }

  /// First observation initialises the estimate directly.
  void update(double x) {
    if (n_ == 0) {
      value_ = x;
    } else {
      value_ = (1.0 - eps_) * value_ + eps_ * x;
    }
    ++n_;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool initialised() const { return n_ > 0; }
  [[nodiscard]] double gain() const { return eps_; }
  void reset() { n_ = 0; value_ = 0.0; }

 private:
  double eps_;
  double value_ = 0.0;
  std::size_t n_ = 0;
};

/// Exponentially time-discounted event-rate estimator:
///   rate(t) = sum_i (1/tau) * exp(-(t - t_i)/tau)
/// over observed events t_i <= t. Its stationary expectation equals the
/// event rate lambda, and unlike a gap EWMA it is well behaved when many
/// events share one timestamp (e.g. a classifier flush).
class DiscountedRateEstimator {
 public:
  /// tau_s: discount time constant; larger = smoother, slower to react.
  explicit DiscountedRateEstimator(double tau_s) : tau_(tau_s) {
    if (!(tau_s > 0.0)) {
      throw std::invalid_argument("DiscountedRateEstimator: tau <= 0");
    }
  }

  /// Timestamps should be non-decreasing; small regressions are clamped.
  void observe(double timestamp) {
    if (has_last_) {
      const double dt = timestamp > last_ ? timestamp - last_ : 0.0;
      rate_ *= std::exp(-dt / tau_);
      last_ = std::max(last_, timestamp);
    } else {
      last_ = timestamp;
      has_last_ = true;
    }
    rate_ += 1.0 / tau_;
    ++events_;
  }

  /// Events per second as of the last observed timestamp; 0 before any
  /// event. Biased low during the first ~tau seconds of warm-up.
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] std::size_t events() const { return events_; }

 private:
  double tau_;
  double rate_ = 0.0;
  double last_ = 0.0;
  bool has_last_ = false;
  std::size_t events_ = 0;
};

/// Rate estimator: EWMA of inter-event gaps, exposed as events/second.
/// Feed it the timestamp of every event (e.g. every flow arrival); `rate()`
/// is 1 / smoothed-gap.
class EwmaRateEstimator {
 public:
  explicit EwmaRateEstimator(double eps) : gap_(eps) {}

  void observe(double timestamp) {
    if (has_last_) {
      const double gap = timestamp - last_;
      if (gap < 0.0) {
        throw std::invalid_argument(
            "EwmaRateEstimator: timestamps must be non-decreasing");
      }
      gap_.update(gap);
    }
    last_ = timestamp;
    has_last_ = true;
  }

  /// Events per second; 0 until two events have been seen.
  [[nodiscard]] double rate() const {
    if (!gap_.initialised() || gap_.value() <= 0.0) return 0.0;
    return 1.0 / gap_.value();
  }

  [[nodiscard]] std::size_t events() const {
    return gap_.count() + (has_last_ ? 1 : 0);
  }

 private:
  EwmaEstimator gap_;
  double last_ = 0.0;
  bool has_last_ = false;
};

}  // namespace fbm::stats
