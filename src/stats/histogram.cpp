#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fbm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi <= lo");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi boundary
  ++counts_[idx];
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::density(std::size_t i) const {
  return fraction(i) / width_;
}

std::size_t Histogram::mode_bin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return it == counts_.end()
             ? 0
             : static_cast<std::size_t>(std::distance(counts_.begin(), it));
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::ostringstream os;
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << bin_center(i) << " | " << std::string(bar, '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace fbm::stats
