// Fixed-width histogram used for Figure 11 (histogram of the fitted shot
// power b) and for diagnostic output in examples and benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fbm::stats {

/// Fixed-width binning over [lo, hi); values outside the range are counted in
/// underflow/overflow. Bin i covers [lo + i*w, lo + (i+1)*w).
class Histogram {
 public:
  /// Throws std::invalid_argument if bins==0 or hi<=lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Fraction of all added samples (including under/overflow) in bin i.
  [[nodiscard]] double fraction(std::size_t i) const;

  /// Density estimate: fraction(i) / bin_width.
  [[nodiscard]] double density(std::size_t i) const;

  /// Index of the most populated bin (0 if empty).
  [[nodiscard]] std::size_t mode_bin() const;

  /// ASCII rendering (one line per bin: "center | #### count"), for benches.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace fbm::stats
