#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/quantile.hpp"

namespace fbm::stats {

double ks_statistic(std::span<const double> xs,
                    const std::function<double(double)>& cdf) {
  if (xs.empty()) throw std::invalid_argument("ks_statistic: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

double ks_pvalue(double statistic, std::size_t n) {
  if (n == 0) return 1.0;
  const double sn = std::sqrt(static_cast<double>(n));
  const double t = (sn + 0.12 + 0.11 / sn) * statistic;
  // Kolmogorov survival function: 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2).
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * p, 0.0, 1.0);
}

KsResult ks_test_exponential(std::span<const double> xs) {
  const double mu = mean(xs);
  if (!(mu > 0.0)) {
    throw std::invalid_argument("ks_test_exponential: non-positive mean");
  }
  const double rate = 1.0 / mu;
  const double d =
      ks_statistic(xs, [rate](double x) { return exponential_cdf(x, rate); });
  return {d, ks_pvalue(d, xs.size())};
}

}  // namespace fbm::stats
