// One-sample Kolmogorov-Smirnov test.
//
// The paper argues Poisson flow arrivals via qq-plots (Figures 3-4); the KS
// statistic gives our tests and benches a scalar pass/fail criterion for the
// same claim (inter-arrival times ~ exponential).
#pragma once

#include <functional>
#include <span>

namespace fbm::stats {

/// KS statistic D_n = sup_x |F_n(x) - F(x)| for the given reference CDF.
[[nodiscard]] double ks_statistic(std::span<const double> xs,
                                  const std::function<double(double)>& cdf);

/// Asymptotic p-value for the KS statistic (Kolmogorov distribution,
/// two-sided). Valid for n >~ 35; conservative for smaller n.
[[nodiscard]] double ks_pvalue(double statistic, std::size_t n);

/// Convenience: KS test of exponentiality with rate fitted by moment
/// matching. Note: fitting the rate from the same data makes the test
/// slightly anti-conservative (Lilliefors effect); callers use generous
/// thresholds.
struct KsResult {
  double statistic;
  double pvalue;
};
[[nodiscard]] KsResult ks_test_exponential(std::span<const double> xs);

}  // namespace fbm::stats
