#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace fbm::stats {

double empirical_quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("empirical_quantile: empty sample");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("empirical_quantile: p outside [0,1]");
  }
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = p * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double empirical_quantile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return empirical_quantile_sorted(copy, p);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

namespace {

// Acklam's rational approximation for the inverse normal CDF.
double acklam_inverse(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p outside (0,1)");
  }
  double x = acklam_inverse(p);
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double exponential_cdf(double x, double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential_cdf: rate <= 0");
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate * x);
}

double exponential_quantile(double p, double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("exponential_quantile: rate <= 0");
  }
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("exponential_quantile: p outside [0,1)");
  }
  return -std::log(1.0 - p) / rate;
}

std::vector<QQPoint> qq_exponential(std::span<const double> xs,
                                    std::size_t points, bool normalised) {
  if (xs.empty() || points == 0) return {};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double mu = mean(sorted);
  const double rate = mu > 0.0 ? 1.0 / mu : 1.0;
  std::vector<QQPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    out.push_back({empirical_quantile_sorted(sorted, p),
                   exponential_quantile(p, rate)});
  }
  if (normalised) {
    double smax = 0.0;
    double tmax = 0.0;
    for (const auto& pt : out) {
      smax = std::max(smax, pt.sample);
      tmax = std::max(tmax, pt.theoretical);
    }
    if (smax > 0.0 && tmax > 0.0) {
      for (auto& pt : out) {
        pt.sample /= smax;
        pt.theoretical /= tmax;
      }
    }
  }
  return out;
}

std::vector<QQPoint> qq_normal(std::span<const double> xs, std::size_t points) {
  if (xs.empty() || points == 0) return {};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double mu = mean(sorted);
  const double sd = stddev(sorted);
  std::vector<QQPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    const double q = empirical_quantile_sorted(sorted, p);
    out.push_back({sd > 0.0 ? (q - mu) / sd : 0.0, normal_quantile(p)});
  }
  return out;
}

double qq_rms_deviation(std::span<const QQPoint> pts) {
  if (pts.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& pt : pts) {
    const double d = pt.sample - pt.theoretical;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pts.size()));
}

}  // namespace fbm::stats
