// Quantile machinery: empirical quantiles, qq-plot series, and closed-form
// quantile/CDF functions for the normal and exponential distributions.
//
// The paper uses:
//  - qq-plots of flow inter-arrival times against the exponential
//    distribution (Figures 3 and 4);
//  - the normal quantile function q(epsilon) for Gaussian link dimensioning
//    (Section V-E: C = E[R] + q_{1-eps} * sigma, e.g. q(0.99) ~ 2.33... the
//    paper quotes q(0.005)->2.57-ish; we expose the standard inverse CDF).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fbm::stats {

/// Empirical p-quantile (0 <= p <= 1) with linear interpolation between order
/// statistics (type-7 / default R definition). Throws std::invalid_argument
/// for an empty sample or p outside [0,1].
[[nodiscard]] double empirical_quantile(std::span<const double> xs, double p);

/// Same but assumes `sorted` is already ascending (no copy, O(1)).
[[nodiscard]] double empirical_quantile_sorted(std::span<const double> sorted,
                                               double p);

/// Standard normal CDF Phi(x).
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile function Phi^{-1}(p), p in (0,1).
/// Acklam's rational approximation refined with one Halley step; absolute
/// error < 1e-9 over (1e-300, 1-1e-16). Throws for p outside (0,1).
[[nodiscard]] double normal_quantile(double p);

/// Exponential(rate) CDF and quantile.
[[nodiscard]] double exponential_cdf(double x, double rate);
[[nodiscard]] double exponential_quantile(double p, double rate);

/// One point of a qq-plot.
struct QQPoint {
  double sample;       ///< empirical quantile of the data
  double theoretical;  ///< matching quantile of the reference distribution
};

/// qq-plot of `xs` against the exponential distribution fitted by moment
/// matching (rate = 1/mean). Produces `points` probability levels
/// p_i = (i+0.5)/points. A straight line sample==theoretical indicates an
/// exponential fit (paper Figures 3, 4 normalise both axes to [0,1]; use
/// `normalised=true` for that form, dividing both axes by their max).
[[nodiscard]] std::vector<QQPoint> qq_exponential(std::span<const double> xs,
                                                  std::size_t points,
                                                  bool normalised = false);

/// qq-plot of `xs` against the standard normal after standardising the data
/// (x - mean)/stddev.
[[nodiscard]] std::vector<QQPoint> qq_normal(std::span<const double> xs,
                                             std::size_t points);

/// Root-mean-square deviation of a qq-series from the diagonal; a scalar
/// "straightness" score used by tests and benches (0 = perfect fit).
[[nodiscard]] double qq_rms_deviation(std::span<const QQPoint> pts);

}  // namespace fbm::stats
