// Random number engine wrapper used throughout fbm.
//
// All stochastic components (distributions, synthetic trace generation,
// model-driven traffic generation) draw from an fbm::stats::Rng so that a
// single seed makes an entire experiment reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace fbm::stats {

/// Deterministic 64-bit Mersenne-Twister engine with convenience draws.
///
/// The engine is cheap to copy; distinct subsystems should derive their own
/// engine via `fork()` so that adding draws in one subsystem does not perturb
/// another (important when comparing experiment variants).
class Rng {
 public:
  using engine_type = std::mt19937_64;
  using result_type = engine_type::result_type;

  Rng() : engine_(default_seed) {}
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  [[nodiscard]] double normal() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Exponential draw with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson draw with the given mean.
  [[nodiscard]] std::uint64_t poisson(double mean) {
    return std::poisson_distribution<std::uint64_t>(mean)(engine_);
  }

  /// Derive an independent engine; the child's stream is decorrelated from
  /// the parent's continued stream by hashing a fresh draw.
  [[nodiscard]] Rng fork() {
    const std::uint64_t s = engine_() ^ 0x9e3779b97f4a7c15ULL;
    return Rng(s * 0xbf58476d1ce4e5b9ULL + 1);
  }

  [[nodiscard]] engine_type& engine() { return engine_; }

  result_type operator()() { return engine_(); }
  static constexpr result_type min() { return engine_type::min(); }
  static constexpr result_type max() { return engine_type::max(); }

  static constexpr std::uint64_t default_seed = 0x5eed5eed5eed5eedULL;

 private:
  engine_type engine_;
};

}  // namespace fbm::stats
