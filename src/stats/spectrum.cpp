#include "stats/spectrum.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace fbm::stats {

void fft(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> xs) {
  std::size_t n = 1;
  while (n < xs.size()) n <<= 1;
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (std::size_t i = 0; i < xs.size(); ++i) data[i] = {xs[i], 0.0};
  fft(data);
  return data;
}

std::vector<SpectrumPoint> welch_periodogram(
    std::span<const double> xs, double dt,
    const PeriodogramOptions& options) {
  const std::size_t seg = options.segment;
  if (seg < 4 || (seg & (seg - 1)) != 0) {
    throw std::invalid_argument(
        "welch_periodogram: segment must be a power of two >= 4");
  }
  if (xs.size() < seg) {
    throw std::invalid_argument("welch_periodogram: series shorter than one "
                                "segment");
  }
  if (!(dt > 0.0)) throw std::invalid_argument("welch_periodogram: dt <= 0");
  if (!(options.overlap >= 0.0 && options.overlap < 1.0)) {
    throw std::invalid_argument("welch_periodogram: overlap outside [0,1)");
  }

  const double mean_x = mean(xs);
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(seg) * (1.0 - options.overlap)));

  std::vector<double> window(seg, 1.0);
  if (options.hann_window) {
    for (std::size_t i = 0; i < seg; ++i) {
      window[i] = 0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                                        static_cast<double>(seg - 1)));
    }
  }
  double window_power = 0.0;
  for (double w : window) window_power += w * w;

  std::vector<double> acc(seg / 2, 0.0);
  std::size_t segments = 0;
  std::vector<std::complex<double>> buf(seg);
  for (std::size_t start = 0; start + seg <= xs.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) {
      buf[i] = {(xs[start + i] - mean_x) * window[i], 0.0};
    }
    fft(buf);
    for (std::size_t k = 0; k < seg / 2; ++k) {
      acc[k] += std::norm(buf[k]);
    }
    ++segments;
  }

  // Two-sided density vs angular frequency:
  //   S(omega_k) = |X_k|^2 * dt / (2 pi * sum w^2).
  const double scale =
      dt / (2.0 * M_PI * window_power * static_cast<double>(segments));
  std::vector<SpectrumPoint> out;
  out.reserve(seg / 2 - 1);
  for (std::size_t k = 1; k < seg / 2; ++k) {
    const double omega =
        2.0 * M_PI * static_cast<double>(k) / (static_cast<double>(seg) * dt);
    out.push_back({omega, acc[k] * scale});
  }
  return out;
}

}  // namespace fbm::stats
