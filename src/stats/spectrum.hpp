// Spectral estimation: radix-2 FFT and Welch-style averaged periodogram.
//
// Theorem 2 gives the model's spectral density of the centered total rate,
// Gamma(omega) = lambda/(2 pi) * E|X_hat(omega)|^2. To confront it with
// data we estimate the spectrum of the measured rate series with an
// averaged, Hann-windowed periodogram. The periodogram is normalised as a
// two-sided spectral density against angular frequency, i.e.
//   integral_{-pi/dt}^{pi/dt} S(omega) d omega = Var(x),
// matching the normalisation of ShotNoiseModel::spectral_density.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace fbm::stats {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of two
/// (throws std::invalid_argument otherwise). `inverse` applies the 1/N
/// scaling.
void fft(std::span<std::complex<double>> data, bool inverse = false);

/// Convenience: forward FFT of a real sequence (zero-padded to the next
/// power of two).
[[nodiscard]] std::vector<std::complex<double>> fft_real(
    std::span<const double> xs);

/// One point of an estimated spectrum.
struct SpectrumPoint {
  double omega;    ///< angular frequency, rad/s
  double density;  ///< two-sided spectral density
};

struct PeriodogramOptions {
  std::size_t segment = 256;  ///< samples per segment (power of two)
  double overlap = 0.5;       ///< fractional segment overlap
  bool hann_window = true;
};

/// Welch averaged periodogram of a series sampled every `dt` seconds. The
/// series is centered (mean removed) first. Returns frequencies
/// omega_k = 2 pi k/(N dt) for k = 1 .. N/2-1 (DC and Nyquist dropped).
/// Throws std::invalid_argument for a series shorter than one segment or a
/// non-power-of-two segment size.
[[nodiscard]] std::vector<SpectrumPoint> welch_periodogram(
    std::span<const double> xs, double dt,
    const PeriodogramOptions& options = {});

}  // namespace fbm::stats
