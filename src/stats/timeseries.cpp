#include "stats/timeseries.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace fbm::stats {

RateSeries resample(const RateSeries& s, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("resample: factor == 0");
  if (factor == 1) return s;
  RateSeries out;
  out.start = s.start;
  out.delta = s.delta * static_cast<double>(factor);
  const std::size_t groups = s.values.size() / factor;
  out.values.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    double acc = 0.0;
    for (std::size_t j = 0; j < factor; ++j) {
      acc += s.values[g * factor + j];
    }
    out.values.push_back(acc / static_cast<double>(factor));
  }
  return out;
}

double series_mean(const RateSeries& s) { return mean(s.values); }

double series_variance(const RateSeries& s) {
  return population_variance(s.values);
}

double series_cov(const RateSeries& s) {
  return coefficient_of_variation(s.values);
}

RateBinner::RateBinner(double start, double end, double delta)
    : start_(start), end_(end), delta_(delta) {
  if (!(end > start)) throw std::invalid_argument("RateBinner: end <= start");
  if (!(delta > 0.0)) throw std::invalid_argument("RateBinner: delta <= 0");
  const auto bins =
      static_cast<std::size_t>(std::ceil((end - start) / delta - 1e-9));
  bytes_.assign(bins == 0 ? 1 : bins, 0.0);
}

RateBinner::RateBinner(double start, double end, double delta,
                       std::vector<double> bytes, std::size_t dropped,
                       double total_bytes)
    : RateBinner(start, end, delta) {
  if (bytes.size() != bytes_.size()) {
    throw std::invalid_argument("RateBinner: raw bins do not match the grid");
  }
  bytes_ = std::move(bytes);
  dropped_ = dropped;
  total_bytes_ = total_bytes;
}

void RateBinner::add(double timestamp, double bytes) {
  if (timestamp < start_ || timestamp >= end_) {
    ++dropped_;
    return;
  }
  auto idx = static_cast<std::size_t>((timestamp - start_) / delta_);
  if (idx >= bytes_.size()) idx = bytes_.size() - 1;
  bytes_[idx] += bytes;
  total_bytes_ += bytes;
}

void RateBinner::merge(const RateBinner& other) {
  if (start_ != other.start_ || end_ != other.end_ || delta_ != other.delta_ ||
      bytes_.size() != other.bytes_.size()) {
    throw std::invalid_argument("RateBinner::merge: mismatched grids");
  }
  for (std::size_t i = 0; i < bytes_.size(); ++i) bytes_[i] += other.bytes_[i];
  dropped_ += other.dropped_;
  total_bytes_ += other.total_bytes_;
}

RateSeries RateBinner::series() const {
  RateSeries out;
  out.start = start_;
  out.delta = delta_;
  out.values.reserve(bytes_.size());
  for (double b : bytes_) out.values.push_back(b * 8.0 / delta_);
  return out;
}

}  // namespace fbm::stats
