// Regularly sampled time series helpers.
//
// Section V-F: the measured rate is the byte volume in consecutive windows of
// length Delta divided by Delta (the paper uses Delta = 200 ms, one average
// round-trip time). RateSeries is that piecewise-constant measured process;
// `resample` produces the coarser processes used by the predictor (iota = 2,
// 5, 10, 30, 60 s in Table II).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fbm::stats {

/// A rate process sampled on a uniform grid: value[i] covers
/// [start + i*delta, start + (i+1)*delta).
struct RateSeries {
  double start = 0.0;  ///< seconds
  double delta = 0.0;  ///< seconds per bin
  std::vector<double> values;  ///< bits/s per bin

  [[nodiscard]] std::size_t size() const { return values.size(); }
  [[nodiscard]] bool empty() const { return values.empty(); }
  [[nodiscard]] double duration() const {
    return delta * static_cast<double>(values.size());
  }
  [[nodiscard]] double time_at(std::size_t i) const {
    return start + delta * static_cast<double>(i);
  }
};

/// Coarsen by an integer factor (mean of each group of `factor` bins; a
/// trailing partial group is dropped). Throws for factor == 0.
[[nodiscard]] RateSeries resample(const RateSeries& s, std::size_t factor);

/// Mean / population variance / coefficient of variation of the series.
[[nodiscard]] double series_mean(const RateSeries& s);
[[nodiscard]] double series_variance(const RateSeries& s);
[[nodiscard]] double series_cov(const RateSeries& s);

/// Accumulates (timestamp, bytes) events into a RateSeries of bits/s.
/// Events may arrive in any order as long as they fall in [start, end).
class RateBinner {
 public:
  /// Throws std::invalid_argument unless end > start and delta > 0.
  RateBinner(double start, double end, double delta);

  /// Rebuilds a binner from its raw state (the agg::PartialReport codec
  /// ships bins across processes as exact byte counts, never as derived
  /// bits/s — a bins/dropped/total triple read back through this constructor
  /// is indistinguishable from the binner that was serialized). Throws
  /// std::invalid_argument when `bytes` does not match the grid size.
  RateBinner(double start, double end, double delta,
             std::vector<double> bytes, std::size_t dropped,
             double total_bytes);

  /// Adds `bytes` at `timestamp`; events outside [start, end) are counted in
  /// `dropped()` and otherwise ignored.
  void add(double timestamp, double bytes);

  /// Accumulates another binner built over the identical grid (same start,
  /// end and delta; throws std::invalid_argument otherwise). Bin contents,
  /// byte totals and dropped counts add. Because every contribution is an
  /// integral byte count, the merged bins equal — bit for bit — what a
  /// single binner fed every event would hold, in any merge order.
  void merge(const RateBinner& other);

  [[nodiscard]] RateSeries series() const;
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] double total_bytes() const { return total_bytes_; }

  /// Raw grid and per-bin byte sums, for serialization.
  [[nodiscard]] double grid_start() const { return start_; }
  [[nodiscard]] double grid_end() const { return end_; }
  [[nodiscard]] double grid_delta() const { return delta_; }
  [[nodiscard]] std::span<const double> bin_bytes() const { return bytes_; }

 private:
  double start_;
  double end_;
  double delta_;
  std::vector<double> bytes_;
  std::size_t dropped_ = 0;
  double total_bytes_ = 0.0;
};

}  // namespace fbm::stats
