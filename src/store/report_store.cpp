#include "store/report_store.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/catalog.hpp"

namespace fbm::store {

namespace {

using core::ByteBuffer;
using core::ByteCursor;

constexpr std::uint32_t kFrameRecord = 1;
constexpr std::uint32_t kFlagLinkTagged = 1u << 0;

[[nodiscard]] ByteBuffer encode_record(const StoredReport& r) {
  ByteBuffer b;
  b.put(r.link_id);
  b.put(std::uint32_t{r.link_tagged ? kFlagLinkTagged : 0u});
  b.put_string(r.link_name);
  const live::WindowReport& w = r.report;
  b.put(static_cast<std::uint64_t>(w.window_index));
  b.put(w.start_s);
  b.put(w.width_s);
  b.put(w.stride_s);
  b.put(w.packets);
  b.put(w.bytes);
  b.put(w.discards);
  b.put(w.inputs.lambda);
  b.put(w.inputs.mean_size_bits);
  b.put(w.inputs.mean_s2_over_d);
  b.put(static_cast<std::uint64_t>(w.inputs.flows));
  b.put(w.flow_moments.mean_duration_s);
  b.put(w.flow_moments.stddev_size_bits);
  b.put(w.flow_moments.stddev_duration_s);
  b.put(w.flow_moments.mean_rate_bps);
  b.put(w.measured.mean_bps);
  b.put(w.measured.variance_bps2);
  b.put(w.measured.cov);
  b.put(static_cast<std::uint64_t>(w.measured.samples));
  b.put(static_cast<std::uint32_t>(w.shot_b.has_value() ? 1 : 0));
  b.put(std::uint32_t{0});  // reserved
  b.put(w.shot_b.value_or(0.0));
  b.put(w.shot_b_used);
  b.put(w.model_cov);
  b.put(w.plan.mean_bps);
  b.put(w.plan.stddev_bps);
  b.put(w.plan.cov);
  b.put(w.plan.capacity_bps);
  b.put(w.plan.headroom);
  b.put(w.plan.eps);
  b.put(static_cast<std::uint32_t>(w.forecast.available ? 1 : 0));
  b.put(std::uint32_t{0});  // reserved
  b.put(w.forecast.predicted_mean_bps);
  b.put(w.forecast.band_low_bps);
  b.put(w.forecast.band_high_bps);
  b.put(w.forecast.sigma_bps);
  b.put(static_cast<std::uint64_t>(w.forecast.order));
  b.put(static_cast<std::uint32_t>(w.anomaly.alert ? 1 : 0));
  b.put(static_cast<std::uint32_t>(w.anomaly.kind));
  b.put(w.anomaly.deviation_sigma);
  b.put(static_cast<std::uint64_t>(w.anomaly.consecutive));
  b.put(static_cast<std::uint64_t>(w.anomaly.bin_events));
  b.put(w.anomaly.bin_peak_sigma);
  return b;
}

[[nodiscard]] StoredReport decode_record(ByteCursor& c) {
  StoredReport r;
  r.link_id = c.get<std::uint32_t>();
  const auto flags = c.get<std::uint32_t>();
  r.link_tagged = (flags & kFlagLinkTagged) != 0;
  r.link_name = c.get_string();
  live::WindowReport& w = r.report;
  w.window_index = static_cast<std::size_t>(c.get<std::uint64_t>());
  w.start_s = c.get<double>();
  w.width_s = c.get<double>();
  w.stride_s = c.get<double>();
  w.packets = c.get<std::uint64_t>();
  w.bytes = c.get<std::uint64_t>();
  w.discards = c.get<std::uint64_t>();
  w.inputs.lambda = c.get<double>();
  w.inputs.mean_size_bits = c.get<double>();
  w.inputs.mean_s2_over_d = c.get<double>();
  w.inputs.flows = static_cast<std::size_t>(c.get<std::uint64_t>());
  w.flow_moments.mean_duration_s = c.get<double>();
  w.flow_moments.stddev_size_bits = c.get<double>();
  w.flow_moments.stddev_duration_s = c.get<double>();
  w.flow_moments.mean_rate_bps = c.get<double>();
  w.measured.mean_bps = c.get<double>();
  w.measured.variance_bps2 = c.get<double>();
  w.measured.cov = c.get<double>();
  w.measured.samples = static_cast<std::size_t>(c.get<std::uint64_t>());
  const bool has_b = c.get<std::uint32_t>() != 0;
  (void)c.get<std::uint32_t>();  // reserved
  const double b_val = c.get<double>();
  if (has_b) w.shot_b = b_val;
  w.shot_b_used = c.get<double>();
  w.model_cov = c.get<double>();
  w.plan.mean_bps = c.get<double>();
  w.plan.stddev_bps = c.get<double>();
  w.plan.cov = c.get<double>();
  w.plan.capacity_bps = c.get<double>();
  w.plan.headroom = c.get<double>();
  w.plan.eps = c.get<double>();
  w.forecast.available = c.get<std::uint32_t>() != 0;
  (void)c.get<std::uint32_t>();  // reserved
  w.forecast.predicted_mean_bps = c.get<double>();
  w.forecast.band_low_bps = c.get<double>();
  w.forecast.band_high_bps = c.get<double>();
  w.forecast.sigma_bps = c.get<double>();
  w.forecast.order = static_cast<std::size_t>(c.get<std::uint64_t>());
  w.anomaly.alert = c.get<std::uint32_t>() != 0;
  const auto kind = c.get<std::uint32_t>();
  if (kind > static_cast<std::uint32_t>(live::AlertKind::drop)) {
    throw std::runtime_error(c.where + ": malformed frame payload");
  }
  w.anomaly.kind = static_cast<live::AlertKind>(kind);
  w.anomaly.deviation_sigma = c.get<double>();
  w.anomaly.consecutive = static_cast<std::size_t>(c.get<std::uint64_t>());
  w.anomaly.bin_events = static_cast<std::size_t>(c.get<std::uint64_t>());
  w.anomaly.bin_peak_sigma = c.get<double>();
  c.expect_done();
  return r;
}

/// One tolerant pass over the valid prefix: decoded records, torn flag, and
/// the byte offset the valid prefix ends at (for truncation).
struct LoadResult {
  std::vector<StoredReport> records;
  bool torn = false;
  std::uint64_t torn_offset = 0;
};

[[nodiscard]] LoadResult load(const std::filesystem::path& path) {
  const std::string where = "report store " + path.string();
  core::FrameReader reader(path, {kStoreMagic, kStoreVersion,
                                  "a report store", where,
                                  /*tolerate_torn_tail=*/true});
  LoadResult out;
  while (auto frame = reader.next()) {
    if (frame->type != kFrameRecord) {
      throw std::runtime_error(where + ": unknown frame type " +
                               std::to_string(frame->type));
    }
    ByteCursor c{frame->payload.data(), frame->payload.size(), 0, where};
    out.records.push_back(decode_record(c));
  }
  out.torn = reader.torn_tail();
  out.torn_offset = reader.torn_offset();
  return out;
}

}  // namespace

StoredReport from_analysis(const api::AnalysisReport& report,
                           double interval_s) {
  StoredReport r;
  live::WindowReport& w = r.report;
  w.window_index = report.interval_index;
  w.start_s = report.start_s;
  w.width_s = report.length_s > 0.0 ? report.length_s : interval_s;
  w.stride_s = w.width_s;  // batch intervals tile
  w.inputs = report.inputs;
  w.measured = report.measured;
  w.shot_b = report.shot_b;
  w.shot_b_used = report.shot_b_used;
  w.model_cov = report.model_cov;
  w.plan = report.plan;
  return r;
}

StoreWriter::StoreWriter(const std::filesystem::path& path) {
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec) &&
                      std::filesystem::file_size(path, ec) > 0;
  if (exists) {
    // Crash recovery: find where the valid prefix ends, truncate any torn
    // final frame, then append after it. A store corrupted mid-file (not a
    // crash signature) throws here rather than being silently extended.
    const LoadResult prior = load(path);
    if (prior.torn) {
      std::filesystem::resize_file(path, prior.torn_offset, ec);
      if (ec) {
        throw std::runtime_error("report store " + path.string() +
                                 ": cannot truncate torn tail: " +
                                 ec.message());
      }
      recovered_ = true;
    }
  }
  out_.emplace(path, kStoreMagic, kStoreVersion, "report store",
               /*append=*/true);
}

void StoreWriter::append(const StoredReport& record) {
  static obs::Histogram& append_seconds =
      obs::stage_seconds(obs::kStageStoreAppend);
  obs::StageSpan span(append_seconds);  // flush-bound: the interesting span
  out_->write_frame(kFrameRecord, encode_record(record));
  out_->flush();
  ++appended_;
  if (obs::enabled()) obs::store_appends().add(1);
}

StoreReader::StoreReader(const std::filesystem::path& path) {
  LoadResult loaded = load(path);
  records_ = std::move(loaded.records);
  torn_tail_ = loaded.torn;
}

std::vector<StoredReport> StoreReader::scan(const ScanOptions& opts) const {
  if (obs::enabled()) obs::store_scanned().add(records_.size());
  // Last-wins dedup in append order, then (link, start) ordering: a store
  // holding a killed run's prefix plus the resumed run's re-appends scans
  // byte-identically to an uninterrupted run's store.
  std::vector<const StoredReport*> picked;
  if (opts.dedup) {
    std::map<std::pair<std::uint32_t, std::size_t>, const StoredReport*> last;
    for (const auto& r : records_) {
      last[{r.link_id, r.report.window_index}] = &r;
    }
    picked.reserve(last.size());
    for (const auto& [key, r] : last) picked.push_back(r);
  } else {
    picked.reserve(records_.size());
    for (const auto& r : records_) picked.push_back(&r);
  }

  std::vector<StoredReport> out;
  for (const StoredReport* r : picked) {
    if (opts.link && r->link_name != *opts.link) continue;
    if (!(r->report.start_s >= opts.from_s)) continue;
    if (!(r->report.start_s < opts.to_s)) continue;
    out.push_back(*r);
  }
  // Chronological, links in attach-id order within a timestamp — exactly
  // the order a live multi-link stream printed these windows, so a
  // whole-store scan cmp's clean against the stream's captured stdout.
  std::stable_sort(out.begin(), out.end(),
                   [](const StoredReport& a, const StoredReport& b) {
                     if (a.report.start_s != b.report.start_s) {
                       return a.report.start_s < b.report.start_s;
                     }
                     return a.link_id < b.link_id;
                   });
  return out;
}

std::uint64_t trim_store(const std::filesystem::path& path, double before_s) {
  const LoadResult loaded = load(path);
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::uint64_t dropped = 0;
  {
    core::FrameWriter out(tmp, kStoreMagic, kStoreVersion, "report store");
    for (const auto& r : loaded.records) {
      if (r.report.start_s < before_s) {
        ++dropped;
        continue;
      }
      out.write_frame(kFrameRecord, encode_record(r));
    }
    out.flush();
    out.close();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("report store: cannot rename " + tmp.string() +
                             " to " + path.string() + ": " + ec.message());
  }
  return dropped;
}

}  // namespace fbm::store
