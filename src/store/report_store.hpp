// On-disk WindowReport store (fbm::store) — the queryable operational log.
//
// An append-only file of finished reports, indexed by link and window start,
// so a long-running monitor's output survives the process and stays
// queryable (fbm_query): range scans by time and link, downsampling,
// retention trimming. Batch analysis intervals persist through the same
// format (api::AnalysisReport converted to the WindowReport carrier), so
// one query tool reads every mode's output.
//
// File layout reuses the shared framing discipline (core/framed_file.hpp):
//
//   header  : u32 magic "FBMS" | u32 version | u64 reserved
//   frames  : u32 type=1 | u32 reserved | u64 payload_len
//             | payload | u64 fnv1a64(payload)
//
// Unlike the partial/checkpoint codecs there is deliberately NO end frame:
// the store is crash-cut by design. A record is durable the moment its
// frame is flushed; a SIGKILL mid-append leaves at most one torn final
// frame, which StoreWriter truncates away on the next open (torn-tail
// recovery, core::FrameReader tolerant mode) and StoreReader skips with a
// diagnostic hook. Mid-file corruption — a flipped bit in a checksummed
// frame that is not the tail — still fails loudly.
//
// Resumed runs re-append windows they already wrote before the kill; scans
// dedup by (link, window index) keeping the *last* record, so a
// crash-resume store queries identically to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "api/report.hpp"
#include "core/framed_file.hpp"
#include "live/live_config.hpp"
#include "live/window_report.hpp"

namespace fbm::store {

inline constexpr std::uint32_t kStoreMagic = 0x534D4246;  // "FBMS"
inline constexpr std::uint32_t kStoreVersion = 1;

/// One persisted report: the WindowReport plus its producer link. Untagged
/// records (link_tagged == false) come from single-link runs and scan as
/// link id 0 with an empty name.
struct StoredReport {
  std::uint32_t link_id = 0;
  bool link_tagged = false;
  std::string link_name;
  live::WindowReport report;

  /// The exact line fbm_live would have printed for this report — tagged
  /// records render with the engine-mode "link" field. Byte-identical to
  /// the live stream's stdout, which is what the durability CI gate cmp's.
  [[nodiscard]] std::string jsonl() const {
    return link_tagged ? live::to_jsonl(report, link_name)
                       : live::to_jsonl(report);
  }
};

/// Batch analysis interval -> the store's WindowReport carrier. Live-only
/// fields (stride, packet/byte/discard counters, forecast, anomaly) stay
/// zero / unavailable; everything the batch report knows is preserved.
[[nodiscard]] StoredReport from_analysis(const api::AnalysisReport& report,
                                         double interval_s);

/// Append-only writer. Opening an existing store first truncates any torn
/// final frame (crash recovery), then appends after the valid prefix.
/// Throws std::runtime_error on I/O failure.
class StoreWriter {
 public:
  explicit StoreWriter(const std::filesystem::path& path);

  /// Appends and flushes one record — it is durable when this returns.
  void append(const StoredReport& record);

  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  /// True when opening found (and truncated) a torn final frame.
  [[nodiscard]] bool recovered_torn_tail() const { return recovered_; }

 private:
  std::optional<core::FrameWriter> out_;
  bool recovered_ = false;
  std::uint64_t appended_ = 0;
};

/// Range-scan filter. Handles a missing store (no records) gracefully only
/// via StoreReader's constructor throwing — callers check existence.
struct ScanOptions {
  /// Keep records of this link name only (matches untagged records when
  /// empty string is passed); nullopt keeps every link.
  std::optional<std::string> link;
  double from_s = -std::numeric_limits<double>::infinity();  ///< start >= from
  double to_s = std::numeric_limits<double>::infinity();     ///< start < to
  /// Last-wins dedup by (link id, window index): a crash-resume store scans
  /// identically to an uninterrupted one. Disable to audit raw appends.
  bool dedup = true;
};

/// Reads and checksum-verifies a store file. The whole valid prefix is
/// decoded at construction (one pass); scans filter in memory.
class StoreReader {
 public:
  /// Throws std::runtime_error naming the file when it is unreadable, has a
  /// bad magic / future version, or is corrupt anywhere but the tail.
  explicit StoreReader(const std::filesystem::path& path);

  /// Matching records in stream order — (window start, link id), stable —
  /// deduped unless opts.dedup is off.
  [[nodiscard]] std::vector<StoredReport> scan(const ScanOptions& opts) const;

  [[nodiscard]] const std::vector<StoredReport>& records() const {
    return records_;
  }
  /// True when the file ended in a torn frame (skipped, not an error).
  [[nodiscard]] bool torn_tail() const { return torn_tail_; }

 private:
  std::vector<StoredReport> records_;  ///< append order
  bool torn_tail_ = false;
};

/// Retention: rewrites the store keeping only records with
/// start_s >= before_s (temp file + atomic rename; a crash leaves the old
/// store intact). Returns the number of records dropped.
std::uint64_t trim_store(const std::filesystem::path& path, double before_s);

}  // namespace fbm::store
