#include "trace/pcap.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fbm::trace {

namespace {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond resolution
constexpr std::uint32_t kLinktypeEthernet = 1;
constexpr std::size_t kEthernetLen = 14;
constexpr std::size_t kIpv4Len = 20;
constexpr std::size_t kMaxVlanTags = 4;  ///< QinQ is 2; leave headroom
constexpr std::size_t kTcpLen = 20;
constexpr std::size_t kUdpLen = 8;

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u16be(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v >> 8);
  p[1] = static_cast<char>(v & 0xff);
}

void put_u32be(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v >> 24);
  p[1] = static_cast<char>((v >> 16) & 0xff);
  p[2] = static_cast<char>((v >> 8) & 0xff);
  p[3] = static_cast<char>(v & 0xff);
}

[[nodiscard]] std::uint16_t get_u16be(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] std::uint32_t get_u32be(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

void export_pcap(const std::filesystem::path& path,
                 std::span<const net::PacketRecord> recs, double epoch) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("export_pcap: cannot open " + path.string());
  }
  // Global header.
  put(out, kPcapMagic);
  put(out, std::uint16_t{2});   // version major
  put(out, std::uint16_t{4});   // version minor
  put(out, std::int32_t{0});    // thiszone
  put(out, std::uint32_t{0});   // sigfigs
  put(out, std::uint32_t{96});  // snaplen (headers only)
  put(out, kLinktypeEthernet);

  std::array<char, kEthernetLen + kIpv4Len + kTcpLen> frame{};
  for (const auto& r : recs) {
    const bool tcp = r.tuple.protocol == 6;
    const std::size_t l4 = tcp ? kTcpLen : kUdpLen;
    const std::size_t captured = kEthernetLen + kIpv4Len + l4;

    const double abs_ts = epoch + r.timestamp;
    const auto sec = static_cast<std::uint32_t>(abs_ts);
    const auto usec = static_cast<std::uint32_t>(
        std::llround((abs_ts - static_cast<double>(sec)) * 1e6) % 1000000);
    put(out, sec);
    put(out, usec);
    put(out, static_cast<std::uint32_t>(captured));  // incl_len
    // orig_len carries the true on-wire size (Ethernet + IP datagram).
    put(out, static_cast<std::uint32_t>(kEthernetLen + r.size_bytes));

    std::memset(frame.data(), 0, frame.size());
    // Ethernet: zero MACs, ethertype IPv4.
    put_u16be(frame.data() + 12, 0x0800);
    // IPv4 header.
    char* ip = frame.data() + kEthernetLen;
    ip[0] = 0x45;  // version 4, IHL 5
    put_u16be(ip + 2, static_cast<std::uint16_t>(
                          std::min<std::uint32_t>(r.size_bytes, 0xffff)));
    ip[8] = 64;  // TTL
    ip[9] = static_cast<char>(r.tuple.protocol);
    put_u32be(ip + 12, r.tuple.src.value());
    put_u32be(ip + 16, r.tuple.dst.value());
    // Transport header (ports only; checksums left zero).
    char* l4p = ip + kIpv4Len;
    put_u16be(l4p, r.tuple.src_port);
    put_u16be(l4p + 2, r.tuple.dst_port);
    if (tcp) {
      l4p[12] = 0x50;  // data offset 5
    } else {
      put_u16be(l4p + 4, static_cast<std::uint16_t>(kUdpLen));
    }
    out.write(frame.data(), static_cast<std::streamsize>(captured));
  }
  if (!out) {
    throw std::runtime_error("export_pcap: write failed for " + path.string());
  }
}

PcapReader::PcapReader(const std::filesystem::path& path, double epoch,
                       bool follow)
    : in_(path, std::ios::binary), path_(path), epoch_(epoch),
      follow_(follow) {
  if (!in_) {
    throw std::runtime_error("import_pcap: cannot open " + path.string());
  }
  std::array<unsigned char, 24> header;
  in_.read(reinterpret_cast<char*>(header.data()), header.size());
  if (!in_) {
    throw std::runtime_error("import_pcap: truncated global header in " +
                             path.string());
  }
  std::uint32_t magic;
  std::memcpy(&magic, header.data(), 4);
  if (magic != kPcapMagic) {
    throw std::runtime_error("import_pcap: unsupported pcap magic in " +
                             path.string());
  }
  std::uint32_t linktype;
  std::memcpy(&linktype, header.data() + 20, 4);
  if (linktype != kLinktypeEthernet) {
    throw std::runtime_error(
        "import_pcap: only Ethernet linktype supported in " + path.string());
  }
}

std::optional<net::PacketRecord> PcapReader::next() {
  std::array<unsigned char, 16> rec_header;
  while (true) {
    in_.clear();  // a read ending exactly at EOF leaves eofbit set
    const std::streampos rec_start = in_.tellg();
    in_.read(reinterpret_cast<char*>(rec_header.data()), rec_header.size());
    if (static_cast<std::size_t>(in_.gcount()) != rec_header.size()) {
      if (in_.gcount() != 0 && !follow_) {
        throw std::runtime_error("import_pcap: truncated record in " +
                                 path_.string());
      }
      // End of file — or, when following, a record header still being
      // written: rewind so the next call retries from the record start.
      in_.clear();
      in_.seekg(rec_start);
      return std::nullopt;
    }
    std::uint32_t sec;
    std::uint32_t usec;
    std::uint32_t incl;
    std::uint32_t orig;
    std::memcpy(&sec, rec_header.data(), 4);
    std::memcpy(&usec, rec_header.data() + 4, 4);
    std::memcpy(&incl, rec_header.data() + 8, 4);
    std::memcpy(&orig, rec_header.data() + 12, 4);
    if (incl > 1u << 20) {
      throw std::runtime_error("import_pcap: implausible record length in " +
                               path_.string());
    }
    payload_.resize(incl);
    in_.read(reinterpret_cast<char*>(payload_.data()), incl);
    if (static_cast<std::size_t>(in_.gcount()) != incl) {
      if (!follow_) {
        throw std::runtime_error("import_pcap: truncated record in " +
                                 path_.string());
      }
      in_.clear();
      in_.seekg(rec_start);
      return std::nullopt;
    }

    if (incl < kEthernetLen) {
      ++skipped_;
      continue;
    }
    // Walk 802.1Q tags: the ethertype slot holds a TPID (0x8100 single
    // tag, 0x88a8/0x9100 QinQ outer) followed by a 2-byte TCI, then the
    // next ethertype 4 bytes on. Bounded so a crafted chain cannot loop.
    std::size_t ethertype_off = 12;
    std::uint16_t ethertype = get_u16be(payload_.data() + ethertype_off);
    std::size_t vlan_tags = 0;
    while ((ethertype == 0x8100 || ethertype == 0x88a8 ||
            ethertype == 0x9100) &&
           vlan_tags < kMaxVlanTags &&
           incl >= ethertype_off + 4 + 2) {
      ethertype_off += 4;
      ethertype = get_u16be(payload_.data() + ethertype_off);
      ++vlan_tags;
    }
    const std::size_t l3_off = ethertype_off + 2;
    if (ethertype != 0x0800 || incl < l3_off + kIpv4Len) {
      ++skipped_;
      continue;
    }
    if (vlan_tags > 0) ++vlan_decapped_;
    const unsigned char* ip = payload_.data() + l3_off;
    if ((ip[0] >> 4) != 4) {
      ++skipped_;
      continue;
    }
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
    const std::uint8_t proto = ip[9];
    if ((proto != 6 && proto != 17) ||
        incl < l3_off + ihl + (proto == 6 ? kTcpLen : kUdpLen)) {
      ++skipped_;
      continue;
    }
    const unsigned char* l4 = ip + ihl;

    net::PacketRecord rec;
    rec.timestamp = static_cast<double>(sec) - epoch_ +
                    static_cast<double>(usec) * 1e-6;
    rec.tuple.src = net::Ipv4Address{get_u32be(ip + 12)};
    rec.tuple.dst = net::Ipv4Address{get_u32be(ip + 16)};
    rec.tuple.src_port = get_u16be(l4);
    rec.tuple.dst_port = get_u16be(l4 + 2);
    rec.tuple.protocol = proto;
    // size_bytes is the IP datagram length: on-wire size minus the
    // Ethernet header and any VLAN tags.
    rec.size_bytes = orig >= l3_off
                         ? orig - static_cast<std::uint32_t>(l3_off)
                         : get_u16be(ip + 2);
    ++read_;
    return rec;
  }
}

std::vector<net::PacketRecord> import_pcap(const std::filesystem::path& path,
                                           double epoch,
                                           std::size_t* skipped) {
  PcapReader reader(path, epoch);
  std::vector<net::PacketRecord> out;
  while (auto rec = reader.next()) out.push_back(*rec);
  if (skipped) *skipped = reader.skipped();
  return out;
}

}  // namespace fbm::trace
