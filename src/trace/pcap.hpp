// Classic libpcap (tcpdump) interop.
//
// The native .fbmt format stores decoded header fields; for interop with
// standard tooling (wireshark, tcpdump, tshark) these helpers write packet
// records as a pcap file with synthesized Ethernet/IPv4/TCP|UDP headers and
// parse such files back. Only the fields the model needs survive the round
// trip: timestamp, addresses, ports, protocol, and the original on-wire
// length (stored in orig_len; captured bytes are headers only, like the
// Sprint monitors' 44-byte snapshots).
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace fbm::trace {

/// Default pcap epoch: 2001-09-05 (seconds since 1970), Table I's first
/// capture day. Writers and readers must agree on it for timestamps to
/// round-trip.
inline constexpr double kPcapDefaultEpoch = 999648000.0;

/// Writes a pcap file (microsecond timestamps, LINKTYPE_ETHERNET).
/// Timestamps are offset from `epoch`.
void export_pcap(const std::filesystem::path& path,
                 std::span<const net::PacketRecord> recs,
                 double epoch = kPcapDefaultEpoch);

/// Streaming pcap reader: one record per next() call, O(1) memory no matter
/// how large the capture. Accepts anything export_pcap writes, or any
/// Ethernet/IPv4 capture whose packets carry TCP or UDP; 802.1Q VLAN tags
/// (single-tagged 0x8100 and QinQ 0x88a8/0x9100 outer) are decapsulated
/// transparently (counted in vlan_decapped(); size_bytes excludes the tag
/// overhead). Other packets are skipped and counted in skipped().
/// Timestamps are absolute pcap seconds minus `epoch`.
///
/// In `follow` mode a truncated record at end of file is treated as
/// "not written yet": the reader seeks back to the record start, clears the
/// stream state and returns nullopt, so the next call retries — tail -f
/// semantics for captures that are still being appended to. Without follow,
/// truncation throws std::runtime_error, exactly like import_pcap.
class PcapReader {
 public:
  explicit PcapReader(const std::filesystem::path& path,
                      double epoch = kPcapDefaultEpoch,
                      bool follow = false);

  /// Next IPv4/TCP|UDP packet, or nullopt at end of stream (in follow mode:
  /// none available yet — call again).
  [[nodiscard]] std::optional<net::PacketRecord> next();

  [[nodiscard]] std::size_t skipped() const { return skipped_; }
  [[nodiscard]] std::uint64_t read_so_far() const { return read_; }
  /// Delivered packets that carried 802.1Q tags (single or QinQ).
  [[nodiscard]] std::uint64_t vlan_decapped() const {
    return vlan_decapped_;
  }

 private:
  std::ifstream in_;
  std::filesystem::path path_;  ///< for diagnostics — every error names it
  std::vector<unsigned char> payload_;
  double epoch_;
  bool follow_;
  std::size_t skipped_ = 0;
  std::uint64_t read_ = 0;
  std::uint64_t vlan_decapped_ = 0;
};

/// Reads a whole pcap file through PcapReader (kept for batch call sites;
/// prefer the reader — or api::open_trace — for anything large).
[[nodiscard]] std::vector<net::PacketRecord> import_pcap(
    const std::filesystem::path& path, double epoch = kPcapDefaultEpoch,
    std::size_t* skipped = nullptr);

}  // namespace fbm::trace
