// Classic libpcap (tcpdump) interop.
//
// The native .fbmt format stores decoded header fields; for interop with
// standard tooling (wireshark, tcpdump, tshark) these helpers write packet
// records as a pcap file with synthesized Ethernet/IPv4/TCP|UDP headers and
// parse such files back. Only the fields the model needs survive the round
// trip: timestamp, addresses, ports, protocol, and the original on-wire
// length (stored in orig_len; captured bytes are headers only, like the
// Sprint monitors' 44-byte snapshots).
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace fbm::trace {

/// Writes a pcap file (microsecond timestamps, LINKTYPE_ETHERNET).
/// Timestamps are offset from `epoch` (seconds since 1970; default places
/// traces at 2001-09-05, matching Table I's first capture day).
void export_pcap(const std::filesystem::path& path,
                 std::span<const net::PacketRecord> recs,
                 double epoch = 999648000.0);

/// Reads a pcap file produced by export_pcap (or any Ethernet/IPv4 capture
/// whose packets carry TCP or UDP). Packets that are not IPv4/TCP/UDP are
/// skipped and counted in `skipped` when provided. Timestamps are rebased
/// so the first packet is at its absolute pcap time minus `epoch`.
[[nodiscard]] std::vector<net::PacketRecord> import_pcap(
    const std::filesystem::path& path, double epoch = 999648000.0,
    std::size_t* skipped = nullptr);

}  // namespace fbm::trace
