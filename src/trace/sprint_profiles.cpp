#include "trace/sprint_profiles.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbm::trace {

const std::array<SprintProfile, 7>& sprint_table1() {
  static const std::array<SprintProfile, 7> rows = {{
      {"Nov 8th, 2001", 7.0 * 3600.0, 243e6},
      {"Nov 8th, 2001", 10.0 * 3600.0, 180e6},
      {"Nov 8th, 2001", 6.0 * 3600.0, 262e6},
      {"Nov 8th, 2001", 39.5 * 3600.0, 26e6},
      {"Sep 5th, 2001", 10.0 * 3600.0, 136e6},
      {"Sep 5th, 2001", 7.0 * 3600.0, 187e6},
      {"Sep 5th, 2001", 16.0 * 3600.0, 72e6},
  }};
  return rows;
}

SyntheticConfig make_config(std::size_t index, const ScaleOptions& scale) {
  const auto& rows = sprint_table1();
  if (index >= rows.size()) {
    throw std::invalid_argument("make_config: profile index out of range");
  }
  const SprintProfile& p = rows[index];
  SyntheticConfig cfg;
  cfg.apply_defaults();
  cfg.duration_s =
      std::min(p.length_s * scale.time_scale, scale.max_length_s);
  cfg.target_utilization_bps(p.utilization_bps * scale.rate_scale);
  // Distinct but reproducible stream per profile.
  cfg.seed = scale.seed + 0x9e37 * (index + 1);
  return cfg;
}

double scaled_interval_s(const ScaleOptions& scale) {
  return 1800.0 * scale.time_scale;
}

}  // namespace fbm::trace
