// The seven Table-I trace presets.
//
// The paper's Table I lists seven OC-12 traces (Sep 5 / Nov 8 2001) with
// lengths from 6 h to 39 h 30 m and average utilizations from 26 Mbps to
// 262 Mbps. Full-scale regeneration would need ~10^9 packets, so each preset
// carries a `time_scale` and `rate_scale`: trace lengths shrink by
// time_scale and utilizations by rate_scale while the flow-level structure
// (size/RTT/rate distributions, Zipf prefixes) is untouched. The default
// scales keep every bench under a few seconds while preserving the paper's
// three utilization clusters (below 50, 50-125, above 125 "Mbps-equivalent").
#pragma once

#include <array>
#include <string>

#include "trace/synthetic.hpp"

namespace fbm::trace {

struct SprintProfile {
  std::string date;        ///< as printed in Table I
  double length_s;         ///< original trace length, seconds
  double utilization_bps;  ///< original average utilization, bits/s

  /// Utilization cluster used in Figures 9-13: 0 = <50 Mbps, 1 = 50-125,
  /// 2 = >125.
  [[nodiscard]] int cluster() const {
    if (utilization_bps < 50e6) return 0;
    if (utilization_bps <= 125e6) return 1;
    return 2;
  }
};

/// Table I rows, in paper order.
[[nodiscard]] const std::array<SprintProfile, 7>& sprint_table1();

/// Scaling knobs applied uniformly to every profile.
struct ScaleOptions {
  double time_scale = 1.0 / 120.0;  ///< 30-min interval -> 15 s
  double rate_scale = 1.0 / 10.0;   ///< 262 Mbps -> 26.2 Mbps
  double max_length_s = 120.0;      ///< cap per-trace scaled length
  std::uint64_t seed = stats::Rng::default_seed;
};

/// Builds the generator config for profile `index` (0-6). The scaled
/// interval that stands in for the paper's 30-minute analysis window is
/// 1800 * time_scale seconds.
[[nodiscard]] SyntheticConfig make_config(std::size_t index,
                                          const ScaleOptions& scale = {});

/// The scaled stand-in for the paper's 30-minute interval.
[[nodiscard]] double scaled_interval_s(const ScaleOptions& scale = {});

}  // namespace fbm::trace
