#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "trace/tcp_dynamics.hpp"
#include "trace/trace_format.hpp"

namespace fbm::trace {

namespace {

// Popular destination ports, roughly web-dominated as in 2001 backbones.
constexpr std::uint16_t kPopularPorts[] = {80,  443, 25,  110, 119,
                                           21,  53,  8080, 1755, 554};

net::Ipv4Address make_dst(std::size_t prefix_rank, std::uint8_t host) {
  return dst_address_for_rank(prefix_rank, host);
}

net::Ipv4Address make_src(std::uint64_t id) {
  const auto r = static_cast<std::uint32_t>(id);
  // 172.16.0.0/12-ish source space.
  return net::Ipv4Address{(172u << 24) | (16u << 20) | (r & 0xfffffu)};
}

/// Timestamp sort at ~1 packet per bucket: the stream is a merge of short
/// sorted per-flow runs spread uniformly over [0, duration), so a counting
/// pass into timestamp buckets followed by tiny per-bucket sorts is near
/// linear where the comparison sort pays n log n over the whole trace.
/// Buckets partition by timestamp, so concatenating them yields a globally
/// sorted sequence with exactly the std::sort result (timestamps are
/// continuous draws — ties are measure-zero, and analysis is invariant to
/// same-timestamp order anyway).
void sort_by_timestamp(std::vector<net::PacketRecord>& packets,
                       double duration) {
  const std::size_t n = packets.size();
  if (n < 2) return;
  if (!(duration > 0.0)) {
    std::sort(packets.begin(), packets.end(), net::ByTimestamp{});
    return;
  }
  const std::size_t nbuckets = n;
  const double scale = static_cast<double>(nbuckets) / duration;
  const auto bucket_of = [&](double ts) {
    const double b = ts * scale;
    const std::size_t i = b <= 0.0 ? 0 : static_cast<std::size_t>(b);
    return std::min(i, nbuckets - 1);
  };
  std::vector<std::uint32_t> heads(nbuckets + 1, 0);
  for (const auto& p : packets) ++heads[bucket_of(p.timestamp) + 1];
  for (std::size_t b = 1; b <= nbuckets; ++b) heads[b] += heads[b - 1];
  // Scatter compact {timestamp, index} keys rather than whole records: the
  // scatter is the cache-unfriendly step, so halving the payload halves the
  // random-write traffic; the records are then gathered once, in order.
  struct TsIdx {
    double ts;
    std::uint32_t idx;
  };
  std::vector<TsIdx> order(n);
  std::vector<std::uint32_t> cursor(heads.begin(), heads.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    order[cursor[bucket_of(packets[i].timestamp)]++] = {
        packets[i].timestamp, static_cast<std::uint32_t>(i)};
  }
  const auto by_ts = [](const TsIdx& a, const TsIdx& b) { return a.ts < b.ts; };
  for (std::size_t b = 0; b < nbuckets; ++b) {
    const auto first = order.begin() + heads[b];
    const auto last = order.begin() + heads[b + 1];
    if (last - first > 1) std::sort(first, last, by_ts);
  }
  std::vector<net::PacketRecord> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = packets[order[i].idx];
  packets.swap(sorted);
}

}  // namespace

net::Ipv4Address dst_address_for_rank(std::size_t prefix_rank,
                                      std::uint8_t host) {
  // Map the prefix rank into 10.x.y.0/24 space, spreading ranks across both
  // middle octets so /16 aggregation still distinguishes prefix groups:
  // rank r -> 10.(r/16).(16*(r mod 16)).host, unique per rank for r < 4096.
  const auto r = static_cast<std::uint32_t>(prefix_rank);
  const std::uint32_t octet2 = (r >> 4) & 0xffu;
  const std::uint32_t octet3 = (r & 0xfu) << 4;
  return net::Ipv4Address{(10u << 24) | (octet2 << 16) | (octet3 << 8) |
                          host};
}

net::Prefix dst_prefix_for_rank(std::size_t prefix_rank) {
  return net::Prefix(dst_address_for_rank(prefix_rank, 0), 24);
}

void SyntheticConfig::apply_defaults() {
  using stats::LogNormal;
  if (!size_bytes) {
    // Mice (~6 kB median web objects) + elephants (~300 kB transfers):
    // heavy-tailed overall, finite variance. E[S] ~ 21 kB.
    auto mice = std::make_shared<LogNormal>(LogNormal::from_mean_cv(8e3, 1.5));
    auto elephants =
        std::make_shared<LogNormal>(LogNormal::from_mean_cv(4e5, 2.0));
    size_bytes = std::make_shared<stats::Mixture>(mice, elephants, 0.967);
  }
  if (!rtt_s) {
    rtt_s = std::make_shared<LogNormal>(LogNormal::from_mean_cv(0.2, 0.4));
  }
  if (!access_rate_bps) {
    access_rate_bps =
        std::make_shared<LogNormal>(LogNormal::from_mean_cv(12e6, 0.8));
  }
  if (!udp_rate_bps) {
    udp_rate_bps =
        std::make_shared<LogNormal>(LogNormal::from_mean_cv(4e5, 0.8));
  }
}

double SyntheticConfig::expected_rate_bps() const {
  if (!size_bytes) return 0.0;
  return flow_rate * size_bytes->mean() * 8.0;
}

void SyntheticConfig::target_utilization_bps(double bps) {
  if (!size_bytes) {
    throw std::logic_error(
        "target_utilization_bps: call apply_defaults() first");
  }
  const double per_flow = size_bytes->mean() * 8.0;
  if (!(per_flow > 0.0)) {
    throw std::logic_error("target_utilization_bps: zero mean flow size");
  }
  flow_rate = bps / per_flow;
}

std::vector<net::PacketRecord> generate_packets(const SyntheticConfig& cfg,
                                                GenerationReport* report) {
  SyntheticConfig config = cfg;
  config.apply_defaults();
  if (!(config.duration_s > 0.0)) {
    throw std::invalid_argument("generate_packets: duration <= 0");
  }
  if (!(config.flow_rate > 0.0)) {
    throw std::invalid_argument("generate_packets: flow_rate <= 0");
  }
  if (config.prefix_pool == 0 || config.src_pool == 0) {
    throw std::invalid_argument("generate_packets: empty address pool");
  }

  stats::Rng rng(config.seed);
  stats::Rng packet_rng = rng.fork();
  const stats::Zipf prefix_zipf(config.prefix_pool, config.prefix_zipf_s);

  std::vector<net::PacketRecord> packets;
  // Rough reservation: E[packets/flow] = E[S]/mss-ish.
  const double mean_size = config.size_bytes->mean();
  const double expected_flows = config.flow_rate * config.duration_s;
  packets.reserve(static_cast<std::size_t>(
      std::min(2e8, expected_flows * (mean_size / config.mss + 2.0))));

  GenerationReport rep;
  double t = 0.0;
  std::uint64_t flow_id = 0;
  std::vector<PacketEmission> emissions;  // reused across flows
  while (true) {
    t += rng.exponential(config.flow_rate);
    if (t >= config.duration_s) break;
    ++flow_id;

    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, config.size_bytes->sample(rng)));
    const bool tcp = rng.bernoulli(config.tcp_fraction);

    if (tcp) {
      TcpParams params;
      params.rtt = std::max(1e-3, config.rtt_s->sample(rng));
      params.mss = config.mss;
      params.peak_rate_bps =
          std::max(16e3, config.access_rate_bps->sample(rng));
      packetize_tcp_into(size, params, packet_rng, emissions);
    } else {
      const double rate = std::max(16e3, config.udp_rate_bps->sample(rng));
      packetize_cbr_into(size, rate, config.udp_packet_bytes, 0.2,
                         packet_rng, emissions);
    }

    net::FiveTuple tuple;
    tuple.src = make_src(rng.uniform_int(0, config.src_pool - 1));
    const std::size_t rank = prefix_zipf.sample(rng);
    tuple.dst = make_dst(rank, static_cast<std::uint8_t>(
                                   rng.uniform_int(1, 254)));
    tuple.src_port =
        static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    tuple.dst_port = kPopularPorts[rng.uniform_int(
        0, std::size(kPopularPorts) - 1)];
    tuple.protocol = static_cast<std::uint8_t>(
        tcp ? net::Protocol::tcp : net::Protocol::udp);

    ++rep.flows;
    for (const auto& e : emissions) {
      const double ts = t + e.offset;
      if (ts >= config.duration_s) break;  // capture horizon
      packets.push_back({ts, tuple, e.size_bytes});
      ++rep.packets;
      rep.total_bytes += e.size_bytes;
    }
  }

  sort_by_timestamp(packets, config.duration_s);
  rep.duration_s = config.duration_s;
  if (report) *report = rep;
  return packets;
}

GenerationReport generate_to_file(const SyntheticConfig& config,
                                  const std::filesystem::path& path) {
  GenerationReport rep;
  const auto packets = generate_packets(config, &rep);
  write_trace(path, packets);
  return rep;
}

}  // namespace fbm::trace
