// Synthetic backbone-link trace generator.
//
// Substitute for the Sprint OC-12 captures (DESIGN.md, substitution table).
// Flows arrive as a homogeneous Poisson process; each flow draws a size from
// a heavy-tailed distribution, a transport flavour (TCP-like or CBR/UDP), an
// RTT and an access-rate cap, and is packetized by trace/tcp_dynamics. The
// resulting packet stream is what the paper's monitor would have seen on an
// uncongested link: many independent flows, no shared bottleneck.
//
// Destination addresses are drawn from a Zipf popularity law over a pool of
// /24 prefixes so that prefix-level aggregation (flow definition 2) merges
// several 5-tuple flows, as on the real backbone.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "net/packet.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace fbm::trace {

struct SyntheticConfig {
  double duration_s = 60.0;          ///< trace length, seconds
  double flow_rate = 200.0;          ///< flow arrivals per second (lambda)
  stats::DistributionPtr size_bytes; ///< flow size distribution (bytes)
  stats::DistributionPtr rtt_s;      ///< per-flow RTT (seconds)
  stats::DistributionPtr access_rate_bps;  ///< TCP rate cap (bits/s)
  stats::DistributionPtr udp_rate_bps;     ///< CBR/UDP stream rate (bits/s)
  double tcp_fraction = 0.9;         ///< remaining flows are CBR/UDP
  std::uint32_t mss = 1460;
  std::uint32_t udp_packet_bytes = 500;

  // Address synthesis.
  std::size_t prefix_pool = 128;    ///< number of distinct /24 dst prefixes
  double prefix_zipf_s = 1.2;        ///< popularity skew across the pool
  std::size_t src_pool = 65536;      ///< number of distinct source addresses

  std::uint64_t seed = stats::Rng::default_seed;

  /// Fills unset distributions with backbone-like defaults: lognormal sizes
  /// with heavy CV (mice/elephants mixture), RTT ~ lognormal around 200 ms,
  /// TCP rate caps ~ lognormal around 6 Mbps (rarely binding, so most flows
  /// stay in window growth — the superlinear shots of Section VI-A), and
  /// UDP stream rates ~ lognormal around 400 kbps.
  void apply_defaults();

  /// Expected aggregate utilization lambda*E[S] in bits/s.
  [[nodiscard]] double expected_rate_bps() const;

  /// Scales the flow arrival rate so that expected utilization matches the
  /// target (keeps all per-flow distributions fixed — the paper's Corollary 1
  /// argument that utilization differences across links come from lambda).
  void target_utilization_bps(double bps);
};

/// Summary of what the generator actually produced.
struct GenerationReport {
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  std::uint64_t total_bytes = 0;
  double duration_s = 0.0;

  [[nodiscard]] double mean_rate_bps() const {
    return duration_s > 0.0
               ? static_cast<double>(total_bytes) * 8.0 / duration_s
               : 0.0;
  }
};

/// Generates the full packet stream, sorted by timestamp. Flows whose
/// transmission would extend past `duration_s` are truncated at the horizon
/// (their tail packets are dropped), matching a capture that simply stops.
[[nodiscard]] std::vector<net::PacketRecord> generate_packets(
    const SyntheticConfig& config, GenerationReport* report = nullptr);

/// Generates directly into a trace file; returns the report.
GenerationReport generate_to_file(const SyntheticConfig& config,
                                  const std::filesystem::path& path);

/// The deterministic mapping from a Zipf prefix rank to the destination
/// address space (10.0.0.0/8). Exposed so benches can build forwarding
/// tables that cover exactly the generated /24s.
[[nodiscard]] net::Ipv4Address dst_address_for_rank(std::size_t prefix_rank,
                                                    std::uint8_t host);
[[nodiscard]] net::Prefix dst_prefix_for_rank(std::size_t prefix_rank);

}  // namespace fbm::trace
