#include "trace/tcp_dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fbm::trace {

namespace {

// Multiplicative jitter factor in [1-j, 1+j].
double jittered(double x, double j, stats::Rng& rng) {
  if (j <= 0.0) return x;
  return x * rng.uniform(1.0 - j, 1.0 + j);
}

}  // namespace

std::vector<PacketEmission> packetize_tcp(std::uint64_t size_bytes,
                                          const TcpParams& params,
                                          stats::Rng& rng) {
  std::vector<PacketEmission> out;
  packetize_tcp_into(size_bytes, params, rng, out);
  return out;
}

void packetize_tcp_into(std::uint64_t size_bytes, const TcpParams& params,
                        stats::Rng& rng, std::vector<PacketEmission>& out) {
  if (params.rtt <= 0.0) throw std::invalid_argument("packetize_tcp: rtt<=0");
  if (params.mss == 0) throw std::invalid_argument("packetize_tcp: mss==0");
  if (params.peak_rate_bps <= 0.0) {
    throw std::invalid_argument("packetize_tcp: peak_rate<=0");
  }
  out.clear();
  if (size_bytes == 0) size_bytes = 1;

  // Window cap from the path's bandwidth-delay product, at least 1 segment.
  const double bdp_segments =
      params.peak_rate_bps * params.rtt / (8.0 * params.mss);
  const std::uint32_t wmax = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::floor(bdp_segments)));

  std::uint64_t remaining = size_bytes;
  std::uint32_t window = std::max<std::uint32_t>(1, params.initial_window);
  double round_start = 0.0;
  while (remaining > 0) {
    const std::uint32_t w = std::min(window, wmax);
    // Segments actually sent this round.
    const std::uint64_t full =
        std::min<std::uint64_t>(w, (remaining + params.mss - 1) / params.mss);
    const double gap = params.rtt / static_cast<double>(w);
    for (std::uint64_t i = 0; i < full; ++i) {
      const std::uint32_t bytes = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(params.mss, remaining));
      const double offset =
          round_start + jittered(static_cast<double>(i) * gap, params.jitter,
                                 rng);
      out.push_back({offset, bytes});
      remaining -= bytes;
      if (remaining == 0) break;
    }
    round_start += jittered(params.rtt, params.jitter / 2.0, rng);
    if (window < params.ssthresh) {
      window = std::min(window * 2, params.ssthresh);  // slow start
    } else {
      window += 1;  // congestion avoidance: one segment per RTT
    }
    window = std::min(window, wmax);
  }
  std::sort(out.begin(), out.end(),
            [](const PacketEmission& a, const PacketEmission& b) {
              return a.offset < b.offset;
            });
  // Normalise so the first packet defines the flow start (offset 0).
  if (!out.empty() && out.front().offset > 0.0) {
    const double base = out.front().offset;
    for (auto& e : out) e.offset -= base;
  }
}

std::vector<PacketEmission> packetize_cbr(std::uint64_t size_bytes,
                                          double rate_bps,
                                          std::uint32_t packet_bytes,
                                          double jitter, stats::Rng& rng) {
  std::vector<PacketEmission> out;
  packetize_cbr_into(size_bytes, rate_bps, packet_bytes, jitter, rng, out);
  return out;
}

void packetize_cbr_into(std::uint64_t size_bytes, double rate_bps,
                        std::uint32_t packet_bytes, double jitter,
                        stats::Rng& rng, std::vector<PacketEmission>& out) {
  if (rate_bps <= 0.0) throw std::invalid_argument("packetize_cbr: rate<=0");
  if (packet_bytes == 0) {
    throw std::invalid_argument("packetize_cbr: packet_bytes==0");
  }
  out.clear();
  if (size_bytes == 0) size_bytes = 1;
  const double gap = static_cast<double>(packet_bytes) * 8.0 / rate_bps;
  std::uint64_t remaining = size_bytes;
  double t = 0.0;
  while (remaining > 0) {
    const std::uint32_t bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(packet_bytes, remaining));
    out.push_back({t, bytes});
    remaining -= bytes;
    t += jittered(gap, jitter, rng);
  }
}

double emission_duration(const std::vector<PacketEmission>& es) {
  return es.empty() ? 0.0 : es.back().offset;
}

std::uint64_t emission_bytes(const std::vector<PacketEmission>& es) {
  std::uint64_t acc = 0;
  for (const auto& e : es) acc += e.size_bytes;
  return acc;
}

}  // namespace fbm::trace
