// Within-flow packetization models.
//
// The paper motivates non-rectangular shots by TCP's rate dynamics: the
// window grows exponentially in slow start, then linearly in congestion
// avoidance (Section V-C.2, Section VI-A). The synthetic trace generator
// uses these packetizers to turn a flow (size, start time) into timestamped
// packets whose instantaneous rate has the corresponding shape, so the
// fitted shot power b of Figure 11 is an emergent property of the traces
// rather than baked in.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace fbm::trace {

/// One emitted packet, relative to the flow start.
struct PacketEmission {
  double offset;            ///< seconds since flow start
  std::uint32_t size_bytes;
};

/// TCP-like sender parameters.
struct TcpParams {
  double rtt = 0.2;             ///< round-trip time, seconds
  std::uint32_t mss = 1460;     ///< maximum segment size, bytes
  std::uint32_t initial_window = 1;   ///< segments (2001-era default)
  std::uint32_t ssthresh = 256;        ///< segments; slow start below this
  double peak_rate_bps = 10e6;  ///< receiver/access-link cap, bits/s
  double jitter = 0.15;         ///< fractional per-packet timing noise
};

/// Emit `size_bytes` with TCP window dynamics: the window doubles per RTT up
/// to ssthresh (slow start), then grows by one segment per RTT (congestion
/// avoidance), capped by peak_rate*rtt. Packets of a round are spread evenly
/// across the RTT with multiplicative jitter. Always emits at least one
/// packet. The resulting rate profile is convex-increasing for short flows
/// (superlinear shot, b>1) and nearly flat for long capped flows (b~0).
[[nodiscard]] std::vector<PacketEmission> packetize_tcp(
    std::uint64_t size_bytes, const TcpParams& params, stats::Rng& rng);

/// packetize_tcp into a caller-owned buffer (replaced, not appended): the
/// trace generator emits millions of short flows, so reusing one buffer
/// instead of allocating a vector per flow keeps packetization
/// allocation-free. Same emissions, same RNG consumption.
void packetize_tcp_into(std::uint64_t size_bytes, const TcpParams& params,
                        stats::Rng& rng, std::vector<PacketEmission>& out);

/// Constant-bit-rate (UDP-like) emission at `rate_bps` with per-packet
/// `packet_bytes`, plus jitter. Rectangular shot (b=0).
[[nodiscard]] std::vector<PacketEmission> packetize_cbr(
    std::uint64_t size_bytes, double rate_bps, std::uint32_t packet_bytes,
    double jitter, stats::Rng& rng);

/// packetize_cbr into a caller-owned buffer (see packetize_tcp_into).
void packetize_cbr_into(std::uint64_t size_bytes, double rate_bps,
                        std::uint32_t packet_bytes, double jitter,
                        stats::Rng& rng, std::vector<PacketEmission>& out);

/// Total duration of an emission schedule (offset of the last packet).
[[nodiscard]] double emission_duration(const std::vector<PacketEmission>& es);

/// Total bytes of an emission schedule.
[[nodiscard]] std::uint64_t emission_bytes(const std::vector<PacketEmission>& es);

}  // namespace fbm::trace
