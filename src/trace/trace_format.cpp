#include "trace/trace_format.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace fbm::trace {

namespace {

static_assert(std::endian::native == std::endian::little,
              "trace format assumes a little-endian host");

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
[[nodiscard]] bool get(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

void encode_record(std::array<char, kRecordSize>& buf,
                   const net::PacketRecord& rec) {
  char* p = buf.data();
  const auto put_raw = [&p](const void* src, std::size_t n) {
    std::memcpy(p, src, n);
    p += n;
  };
  const double ts = rec.timestamp;
  const std::uint32_t src = rec.tuple.src.value();
  const std::uint32_t dst = rec.tuple.dst.value();
  const std::uint16_t sport = rec.tuple.src_port;
  const std::uint16_t dport = rec.tuple.dst_port;
  const std::uint8_t proto = rec.tuple.protocol;
  const std::uint8_t pad8 = 0;
  const std::uint16_t pad16 = 0;
  const std::uint32_t size = rec.size_bytes;
  put_raw(&ts, 8);
  put_raw(&src, 4);
  put_raw(&dst, 4);
  put_raw(&sport, 2);
  put_raw(&dport, 2);
  put_raw(&proto, 1);
  put_raw(&pad8, 1);
  put_raw(&pad16, 2);
  put_raw(&size, 4);
}

[[nodiscard]] net::PacketRecord decode_record(const char* p) {
  const auto get_raw = [&p](void* dst, std::size_t n) {
    std::memcpy(dst, p, n);
    p += n;
  };
  net::PacketRecord rec;
  double ts = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t proto = 0;
  std::uint8_t pad8 = 0;
  std::uint16_t pad16 = 0;
  std::uint32_t size = 0;
  get_raw(&ts, 8);
  get_raw(&src, 4);
  get_raw(&dst, 4);
  get_raw(&sport, 2);
  get_raw(&dport, 2);
  get_raw(&proto, 1);
  get_raw(&pad8, 1);
  get_raw(&pad16, 2);
  get_raw(&size, 4);
  rec.timestamp = ts;
  rec.tuple.src = net::Ipv4Address{src};
  rec.tuple.dst = net::Ipv4Address{dst};
  rec.tuple.src_port = sport;
  rec.tuple.dst_port = dport;
  rec.tuple.protocol = proto;
  rec.size_bytes = size;
  return rec;
}

}  // namespace

TraceWriter::TraceWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw std::runtime_error("TraceWriter: cannot open " + path.string());
  }
  put(out_, kTraceMagic);
  put(out_, kTraceVersion);
  put(out_, kUnknownCount);  // patched by close()
  put(out_, std::uint64_t{0});  // reserved
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() reports errors.
  }
}

void TraceWriter::append(const net::PacketRecord& rec) {
  if (closed_) throw std::runtime_error("TraceWriter: already closed");
  if (rec.timestamp < last_ts_) {
    throw std::invalid_argument("TraceWriter: timestamps must be ordered");
  }
  last_ts_ = rec.timestamp;
  std::array<char, kRecordSize> buf;
  encode_record(buf, rec);
  out_.write(buf.data(), buf.size());
  ++count_;
}

void TraceWriter::append_all(std::span<const net::PacketRecord> recs) {
  for (const auto& r : recs) append(r);
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(8);  // magic + version
  put(out_, count_);
  out_.flush();
  if (!out_) {
    throw std::runtime_error("TraceWriter: write failed for " +
                             path_.string());
  }
  out_.close();
}

TraceReader::TraceReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    throw std::runtime_error("TraceReader: cannot open " + path.string());
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  std::uint64_t reserved = 0;
  if (!get(in_, magic) || !get(in_, version) || !get(in_, count) ||
      !get(in_, reserved)) {
    throw std::runtime_error("TraceReader: truncated header in " +
                             path.string());
  }
  if (magic != kTraceMagic) {
    throw std::runtime_error("TraceReader: bad magic in " + path.string());
  }
  if (version != kTraceVersion) {
    throw std::runtime_error("TraceReader: unsupported version in " +
                             path.string());
  }
  header_count_ = count;
}

std::optional<net::PacketRecord> TraceReader::next() {
  std::array<char, kRecordSize> buf;
  in_.read(buf.data(), buf.size());
  if (in_.gcount() == 0) return std::nullopt;
  if (static_cast<std::size_t>(in_.gcount()) != buf.size()) {
    throw std::runtime_error("TraceReader: truncated record in " +
                             path_.string());
  }
  ++read_;
  return decode_record(buf.data());
}

std::optional<net::PacketRecord> TraceReader::poll() {
  in_.clear();  // a prior next()/poll() may have left eofbit set
  const std::streampos rec_start = in_.tellg();
  std::array<char, kRecordSize> buf;
  in_.read(buf.data(), buf.size());
  if (static_cast<std::size_t>(in_.gcount()) != buf.size()) {
    // End of file, or a record the writer has not finished appending:
    // rewind so the next poll retries once more bytes have landed.
    in_.clear();
    in_.seekg(rec_start);
    return std::nullopt;
  }
  ++read_;
  return decode_record(buf.data());
}

std::size_t TraceReader::next_batch(net::PacketBatch& out, std::size_t max_n) {
  out.clear();
  if (max_n == 0) return 0;
  bulk_.resize(max_n * kRecordSize);
  in_.read(bulk_.data(), static_cast<std::streamsize>(bulk_.size()));
  const std::size_t got = static_cast<std::size_t>(in_.gcount());
  if (got == 0) return 0;
  if (got % kRecordSize != 0) {
    throw std::runtime_error("TraceReader: truncated record in " +
                             path_.string());
  }
  const std::size_t n = got / kRecordSize;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(decode_record(bulk_.data() + i * kRecordSize));
  }
  read_ += n;
  return n;
}

void write_trace(const std::filesystem::path& path,
                 std::span<const net::PacketRecord> recs) {
  TraceWriter w(path);
  w.append_all(recs);
  w.close();
}

std::vector<net::PacketRecord> read_trace(const std::filesystem::path& path) {
  TraceReader r(path);
  std::vector<net::PacketRecord> out;
  if (r.header_count() != kUnknownCount) out.reserve(r.header_count());
  while (auto rec = r.next()) out.push_back(*rec);
  return out;
}

void export_csv(const std::filesystem::path& path,
                std::span<const net::PacketRecord> recs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("export_csv: cannot open " + path.string());
  }
  out << "timestamp,src,dst,sport,dport,proto,bytes\n";
  out.precision(9);
  out.setf(std::ios::fixed);
  for (const auto& r : recs) {
    out << r.timestamp << ',' << r.tuple.src.to_string() << ','
        << r.tuple.dst.to_string() << ',' << r.tuple.src_port << ','
        << r.tuple.dst_port << ',' << static_cast<unsigned>(r.tuple.protocol)
        << ',' << r.size_bytes << '\n';
  }
  if (!out) {
    throw std::runtime_error("export_csv: write failed for " + path.string());
  }
}

std::vector<net::PacketRecord> import_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("import_csv: cannot open " + path.string());
  }
  std::vector<net::PacketRecord> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (lineno == 1 && line.rfind("timestamp", 0) == 0) continue;  // header
    std::istringstream ls(line);
    std::string field;
    net::PacketRecord rec;
    const auto bad = [&] {
      return std::runtime_error("import_csv: malformed line " +
                                std::to_string(lineno) + " in " +
                                path.string());
    };
    try {
      if (!std::getline(ls, field, ',')) throw bad();
      rec.timestamp = std::stod(field);
      if (!std::getline(ls, field, ',')) throw bad();
      auto src = net::Ipv4Address::parse(field);
      if (!src) throw bad();
      rec.tuple.src = *src;
      if (!std::getline(ls, field, ',')) throw bad();
      auto dst = net::Ipv4Address::parse(field);
      if (!dst) throw bad();
      rec.tuple.dst = *dst;
      if (!std::getline(ls, field, ',')) throw bad();
      rec.tuple.src_port = static_cast<std::uint16_t>(std::stoul(field));
      if (!std::getline(ls, field, ',')) throw bad();
      rec.tuple.dst_port = static_cast<std::uint16_t>(std::stoul(field));
      if (!std::getline(ls, field, ',')) throw bad();
      rec.tuple.protocol = static_cast<std::uint8_t>(std::stoul(field));
      if (!std::getline(ls, field, ',')) throw bad();
      rec.size_bytes = static_cast<std::uint32_t>(std::stoul(field));
    } catch (const std::runtime_error&) {
      throw;  // already our error
    } catch (const std::exception&) {
      throw bad();  // stod/stoul conversion failures
    }
    out.push_back(rec);
  }
  return out;
}

}  // namespace fbm::trace
