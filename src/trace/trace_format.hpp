// Binary packet-trace format (".fbmt").
//
// Stand-in for the Sprint monitoring infrastructure's capture files (44-byte
// header snapshots + timestamps). Fixed-size little-endian records keep the
// reader trivial and fast:
//
//   header:  magic "FBMT" | u32 version | u64 record count | u64 reserved
//   record:  f64 timestamp | u32 src | u32 dst | u16 sport | u16 dport
//            | u8 proto | u8 pad | u16 pad | u32 size_bytes      (28 bytes)
//
// The record count in the header is written on close(); a count of ~0 marks
// a truncated/unclosed file, which the reader still accepts (streaming until
// EOF) but reports via `header_count()`.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_batch.hpp"

namespace fbm::trace {

inline constexpr std::uint32_t kTraceMagic = 0x544d4246;  // "FBMT" LE
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint64_t kUnknownCount = ~std::uint64_t{0};
inline constexpr std::size_t kRecordSize = 28;
inline constexpr std::size_t kHeaderSize = 24;

/// Streaming writer. Records must be appended in non-decreasing timestamp
/// order (checked; throws std::invalid_argument on violation).
class TraceWriter {
 public:
  explicit TraceWriter(const std::filesystem::path& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const net::PacketRecord& rec);
  void append_all(std::span<const net::PacketRecord> recs);

  /// Seals the header with the final record count. Called by the destructor
  /// if not called explicitly; explicit close() surfaces IO errors.
  void close();

  [[nodiscard]] std::uint64_t written() const { return count_; }

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  std::uint64_t count_ = 0;
  double last_ts_ = -1.0;
  bool closed_ = false;
};

/// Streaming reader.
class TraceReader {
 public:
  explicit TraceReader(const std::filesystem::path& path);

  /// Next record, or nullopt at end of file. Throws std::runtime_error on a
  /// truncated record.
  [[nodiscard]] std::optional<net::PacketRecord> next();

  /// Like next(), but treats a partial trailing record as "not written yet":
  /// rewinds to the record start, clears the stream state and returns
  /// nullopt so a later call retries — tail -f semantics for traces that are
  /// still being appended to (fbm_live --follow).
  [[nodiscard]] std::optional<net::PacketRecord> poll();

  /// Reads up to `max_n` records into `out` (cleared first) with a single
  /// bulk read instead of one ifstream::read per record; returns the count,
  /// 0 at end of file. Throws std::runtime_error on a truncated record,
  /// like next().
  std::size_t next_batch(net::PacketBatch& out, std::size_t max_n);

  /// Record count from the header; kUnknownCount for unclosed files.
  [[nodiscard]] std::uint64_t header_count() const { return header_count_; }
  [[nodiscard]] std::uint64_t read_so_far() const { return read_; }

 private:
  std::ifstream in_;
  std::filesystem::path path_;  ///< for diagnostics — every error names it
  std::vector<char> bulk_;      ///< next_batch read buffer, reused
  std::uint64_t header_count_ = kUnknownCount;
  std::uint64_t read_ = 0;
};

/// Whole-file helpers.
void write_trace(const std::filesystem::path& path,
                 std::span<const net::PacketRecord> recs);
[[nodiscard]] std::vector<net::PacketRecord> read_trace(
    const std::filesystem::path& path);

/// CSV interop ("timestamp,src,dst,sport,dport,proto,bytes"), for inspecting
/// traces with external tooling. Import tolerates a header line.
void export_csv(const std::filesystem::path& path,
                std::span<const net::PacketRecord> recs);
[[nodiscard]] std::vector<net::PacketRecord> import_csv(
    const std::filesystem::path& path);

}  // namespace fbm::trace
