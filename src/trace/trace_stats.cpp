#include "trace/trace_stats.hpp"

#include <cmath>
#include <sstream>

#include "trace/trace_format.hpp"

namespace fbm::trace {

namespace {

void accumulate(TraceSummary& s, const net::PacketRecord& r) {
  if (s.packets == 0) {
    s.first_ts = r.timestamp;
    s.last_ts = r.timestamp;
  } else {
    s.last_ts = std::max(s.last_ts, r.timestamp);
    s.first_ts = std::min(s.first_ts, r.timestamp);
  }
  ++s.packets;
  s.total_bytes += r.size_bytes;
}

}  // namespace

TraceSummary summarize(std::span<const net::PacketRecord> recs) {
  TraceSummary s;
  for (const auto& r : recs) accumulate(s, r);
  return s;
}

TraceSummary summarize_file(const std::filesystem::path& path) {
  TraceReader reader(path);
  TraceSummary s;
  while (auto rec = reader.next()) accumulate(s, *rec);
  return s;
}

std::string format_duration(double seconds) {
  std::ostringstream os;
  if (seconds < 60.0) {
    os << std::llround(seconds) << "s";
    return os.str();
  }
  const auto total_m = static_cast<long>(std::llround(seconds / 60.0));
  const long h = total_m / 60;
  const long m = total_m % 60;
  if (h > 0) {
    os << h << "h";
    if (m > 0) os << " " << m << "m";
  } else {
    os << m << "m";
  }
  return os.str();
}

}  // namespace fbm::trace
