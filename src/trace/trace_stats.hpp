// Per-trace summary statistics (the content of Table I).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>

#include "net/packet.hpp"

namespace fbm::trace {

struct TraceSummary {
  std::uint64_t packets = 0;
  std::uint64_t total_bytes = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;

  [[nodiscard]] double duration_s() const {
    return packets == 0 ? 0.0 : last_ts - first_ts;
  }
  [[nodiscard]] double mean_rate_bps() const {
    const double d = duration_s();
    return d > 0.0 ? static_cast<double>(total_bytes) * 8.0 / d : 0.0;
  }
  [[nodiscard]] double mean_rate_mbps() const { return mean_rate_bps() / 1e6; }
  [[nodiscard]] double mean_packet_bytes() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(total_bytes) /
                              static_cast<double>(packets);
  }
};

[[nodiscard]] TraceSummary summarize(std::span<const net::PacketRecord> recs);
[[nodiscard]] TraceSummary summarize_file(const std::filesystem::path& path);

/// "7h 30m"-style rendering of a duration, as in Table I.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace fbm::trace
