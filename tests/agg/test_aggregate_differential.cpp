// The keystone proof behind fbm::agg (ISSUE 6 acceptance): split a trace by
// flow key into K shards, run each shard through a producer with a partial
// sink, merge the K partial files with agg::Merger — and the rendered
// output is byte-for-byte identical to a single-machine run over the whole
// trace. Pinned across split counts K ∈ {1, 2, 3, 5}, both flow
// definitions, serial and sharded (multi-threaded) producers, batch and
// live modes, and the multi-link engine; plus deferred min_flows filtering
// and rejection of corrupt inputs at the merge layer.
//
// The one documented exception: a *streaming* multi-link live run
// interleaves its JSONL lines by packet arrival, so engine-live merges pin
// byte-identical per-link subsequences and the same line multiset, emitted
// in the canonical (window index, attach order) interleave.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "agg/agg.hpp"
#include "api/api.hpp"
#include "api/shard.hpp"
#include "live/live.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> seeded_trace(std::uint64_t seed = 616) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 30.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(6e6);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

trace::TraceSummary summarize(const std::vector<net::PacketRecord>& packets) {
  trace::TraceSummary s;
  for (const auto& p : packets) {
    if (s.packets == 0) s.first_ts = p.timestamp;
    s.last_ts = p.timestamp;
    ++s.packets;
    s.total_bytes += p.size_bytes;
  }
  return s;
}

/// The shard-I-of-K packet subset, split by flow key exactly as the CLI
/// tools' --shard flag splits.
std::vector<net::PacketRecord> shard_of(
    const std::vector<net::PacketRecord>& packets, api::FlowDefinition def,
    std::size_t index, std::size_t count) {
  std::vector<net::PacketRecord> out;
  for (const auto& p : packets) {
    if (api::flow_shard_of(p, def, count) == index) out.push_back(p);
  }
  return out;
}

// Per-test-case filenames: ctest -j runs several cases of this suite as
// concurrent processes sharing one TempDir, so a fixed name races.
std::filesystem::path temp_partial(std::size_t i) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::filesystem::path(::testing::TempDir()) /
         ("diff_partial_" + std::string(info->name()) + "_" +
          std::to_string(i) + ".fbmp");
}

api::AnalysisConfig batch_config(api::FlowDefinition def,
                                 std::size_t min_flows = 0) {
  api::AnalysisConfig cfg;
  cfg.flow_definition(def).timeout_s(2.0).interval_s(10.0).min_flows(
      min_flows);
  return cfg;
}

/// Single-machine reference: the ordinary serial pipeline over the whole
/// trace, rendered exactly as `fbm_analyze --json` renders it.
std::string batch_reference(const api::AnalysisConfig& config,
                            const std::vector<net::PacketRecord>& packets) {
  api::AnalysisPipeline pipeline(config);
  std::vector<api::AnalysisReport> reports;
  pipeline.set_report_sink(
      [&](api::AnalysisReport&& r) { reports.push_back(std::move(r)); });
  for (const auto& p : packets) pipeline.push(p);
  pipeline.finish();
  return api::to_json(pipeline.summary(), reports);
}

/// One shard producer: pushes `packets` through a pipeline (serial or
/// sharded by `threads`) with a partial sink, writes one partial file.
template <typename Pipeline>
void produce_batch_partial(const api::AnalysisConfig& config,
                           const std::vector<net::PacketRecord>& packets,
                           const std::filesystem::path& path) {
  Pipeline pipeline(config);
  agg::PartialWriter writer(path, agg::PartialMeta::from_batch(config));
  pipeline.set_partial_sink([&](api::ShardInterval&& iv) {
    writer.add(0, live::WindowPartial{iv.index, 0, 0, 0, std::move(iv.flows),
                                      std::move(iv.bins)});
  });
  for (const auto& p : packets) pipeline.push(p);
  pipeline.finish();
  writer.finish({pipeline.summary(), {}});
}

std::string merge_files(std::size_t count) {
  agg::Merger merger;
  for (std::size_t i = 0; i < count; ++i) merger.add_file(temp_partial(i));
  agg::MergeResult merged = merger.finish();
  EXPECT_EQ(merged.files, count);
  return merged.document;
}

TEST(AggregateDifferential, BatchSplitsMergeByteIdentical) {
  const auto packets = seeded_trace();
  for (const auto def :
       {api::FlowDefinition::five_tuple, api::FlowDefinition::prefix24}) {
    const api::AnalysisConfig config = batch_config(def);
    const std::string reference = batch_reference(config, packets);
    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{5}}) {
      for (std::size_t i = 0; i < k; ++i) {
        produce_batch_partial<api::AnalysisPipeline>(
            config, shard_of(packets, def, i, k), temp_partial(i));
      }
      EXPECT_EQ(merge_files(k), reference)
          << "K=" << k << " def=" << static_cast<int>(def);
    }
  }
}

TEST(AggregateDifferential, ShardedProducersMergeByteIdentical) {
  // Each producer itself runs the multi-threaded pipeline — partials are
  // identical to serial producers' (threads is a throughput knob, not
  // identity), so a mixed fleet folds too.
  const auto packets = seeded_trace(77);
  const auto def = api::FlowDefinition::five_tuple;
  api::AnalysisConfig config = batch_config(def);
  const std::string reference = batch_reference(config, packets);

  config.threads(3);
  produce_batch_partial<api::ParallelAnalysisPipeline>(
      config, shard_of(packets, def, 0, 2), temp_partial(0));
  produce_batch_partial<api::AnalysisPipeline>(
      config, shard_of(packets, def, 1, 2), temp_partial(1));
  EXPECT_EQ(merge_files(2), reference);
}

TEST(AggregateDifferential, MinFlowsFilterDefersToTheMerge) {
  // A threshold that passes in the union but fails per shard: applying it
  // per producer would drop intervals the single-machine run keeps.
  const auto packets = seeded_trace(101);
  const auto def = api::FlowDefinition::five_tuple;
  const api::AnalysisConfig config = batch_config(def, 50);
  const std::string reference = batch_reference(config, packets);
  for (std::size_t i = 0; i < 5; ++i) {
    produce_batch_partial<api::AnalysisPipeline>(
        config, shard_of(packets, def, i, 5), temp_partial(i));
  }
  EXPECT_EQ(merge_files(5), reference);
}

live::LiveConfig live_config(api::FlowDefinition def) {
  live::LiveConfig cfg;
  cfg.window_s = 8.0;
  cfg.stride_s = 4.0;
  cfg.analysis.flow_definition(def).timeout_s(2.0);
  return cfg;
}

std::vector<std::string> live_reference(
    const live::LiveConfig& config,
    const std::vector<net::PacketRecord>& packets) {
  live::WindowedEstimator estimator(config);
  std::vector<std::string> lines;
  estimator.set_window_sink(
      [&](live::WindowReport&& r) { lines.push_back(live::to_jsonl(r)); });
  for (const auto& p : packets) estimator.push(p);
  estimator.finish();
  return lines;
}

void produce_live_partial(const live::LiveConfig& config,
                          const std::vector<net::PacketRecord>& packets,
                          const std::filesystem::path& path) {
  live::WindowedEstimator estimator(config);
  agg::PartialWriter writer(path, agg::PartialMeta::from_live(config));
  estimator.set_partial_sink(
      [&](live::WindowPartial&& w) { writer.add(0, w); });
  for (const auto& p : packets) estimator.push(p);
  estimator.finish();
  writer.finish({summarize(packets), {}});
}

TEST(AggregateDifferential, LiveSplitsMergeByteIdentical) {
  const auto packets = seeded_trace(202);
  for (const auto def :
       {api::FlowDefinition::five_tuple, api::FlowDefinition::prefix24}) {
    const live::LiveConfig config = live_config(def);
    const std::vector<std::string> reference =
        live_reference(config, packets);
    ASSERT_FALSE(reference.empty());
    for (const std::size_t k :
         {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
      for (std::size_t i = 0; i < k; ++i) {
        produce_live_partial(config, shard_of(packets, def, i, k),
                             temp_partial(i));
      }
      agg::Merger merger;
      for (std::size_t i = 0; i < k; ++i) merger.add_file(temp_partial(i));
      const agg::MergeResult merged = merger.finish();
      EXPECT_EQ(merged.kind, agg::PartialKind::live);
      EXPECT_EQ(merged.lines, reference)
          << "K=" << k << " def=" << static_cast<int>(def);
    }
  }
}

net::Prefix pfx(const char* addr, int len) {
  return net::Prefix(*net::Ipv4Address::parse(addr), len);
}

std::vector<engine::LinkSpec> engine_links() {
  std::vector<engine::LinkSpec> specs;
  engine::LinkSpec low;
  low.name = "low";
  low.rule = engine::MatchPrefixes{{pfx("10.0.0.0", 14)}};
  specs.push_back(low);
  engine::LinkSpec tap;
  tap.name = "tap";
  tap.rule = engine::MatchAll{};
  specs.push_back(tap);
  return specs;
}

TEST(AggregateDifferential, EngineBatchSplitsMergeByteIdentical) {
  const auto packets = seeded_trace(303);
  const auto def = api::FlowDefinition::five_tuple;
  const api::AnalysisConfig analysis = batch_config(def);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::batch;
  config.analysis = analysis;

  // Reference: one engine over the whole trace, fitted locally.
  std::string reference;
  {
    engine::Engine eng(config);
    std::map<engine::LinkId, std::vector<api::AnalysisReport>> by_link;
    eng.set_report_sink([&](engine::LinkReport&& r) {
      by_link[r.link].push_back(std::move(*r.interval));
    });
    for (auto spec : engine_links()) (void)eng.attach(std::move(spec));
    for (const auto& p : packets) eng.push(p);
    eng.finish();
    std::vector<engine::LinkBatchResult> results;
    for (auto& link : eng.links()) {
      results.push_back({std::move(link.name), link.counters,
                         std::move(by_link[link.id])});
    }
    reference = engine::to_json(eng.summary(), results);
  }

  // K producers, each an engine over one flow-key shard.
  const std::size_t k = 3;
  for (std::size_t i = 0; i < k; ++i) {
    engine::Engine eng(config);
    agg::PartialMeta meta = agg::PartialMeta::from_batch(analysis);
    meta.engine = true;
    const auto specs = engine_links();
    for (std::size_t j = 0; j < specs.size(); ++j) {
      meta.links.push_back({static_cast<std::uint32_t>(j), specs[j].name});
    }
    agg::PartialWriter writer(temp_partial(i), std::move(meta));
    eng.set_partial_sink([&](engine::LinkId link, const std::string&,
                             live::WindowPartial&& w) {
      writer.add(static_cast<std::uint32_t>(link), w);
    });
    for (auto spec : engine_links()) (void)eng.attach(std::move(spec));
    for (const auto& p : shard_of(packets, def, i, k)) eng.push(p);
    eng.finish();
    agg::PartialTotals totals;
    totals.summary = eng.summary();
    for (const auto& link : eng.links()) {
      totals.links.push_back({static_cast<std::uint32_t>(link.id),
                              link.counters.packets, link.counters.bytes});
    }
    writer.finish(totals);
  }

  agg::Merger merger;
  for (std::size_t i = 0; i < k; ++i) merger.add_file(temp_partial(i));
  agg::MergeResult merged = merger.finish();
  EXPECT_TRUE(merged.engine);
  EXPECT_EQ(merged.document, reference);
}

TEST(AggregateDifferential, EngineLiveMergePinsPerLinkSubsequences) {
  const auto packets = seeded_trace(404);
  const auto def = api::FlowDefinition::five_tuple;

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = live_config(def);

  // Reference: streaming engine, lines interleaved by packet arrival.
  std::vector<std::string> reference;
  {
    engine::Engine eng(config);
    eng.set_report_sink([&](engine::LinkReport&& r) {
      reference.push_back(engine::to_jsonl(r));
    });
    for (auto spec : engine_links()) (void)eng.attach(std::move(spec));
    for (const auto& p : packets) eng.push(p);
    eng.finish();
  }
  ASSERT_FALSE(reference.empty());

  const std::size_t k = 2;
  for (std::size_t i = 0; i < k; ++i) {
    engine::Engine eng(config);
    agg::PartialMeta meta = agg::PartialMeta::from_live(config.live);
    meta.engine = true;
    const auto specs = engine_links();
    for (std::size_t j = 0; j < specs.size(); ++j) {
      meta.links.push_back({static_cast<std::uint32_t>(j), specs[j].name});
    }
    agg::PartialWriter writer(temp_partial(i), std::move(meta));
    eng.set_partial_sink([&](engine::LinkId link, const std::string&,
                             live::WindowPartial&& w) {
      writer.add(static_cast<std::uint32_t>(link), w);
    });
    for (auto spec : engine_links()) (void)eng.attach(std::move(spec));
    for (const auto& p : shard_of(packets, def, i, k)) eng.push(p);
    eng.finish();
    agg::PartialTotals totals;
    totals.summary = eng.summary();
    for (const auto& link : eng.links()) {
      totals.links.push_back({static_cast<std::uint32_t>(link.id),
                              link.counters.packets, link.counters.bytes});
    }
    writer.finish(totals);
  }

  agg::Merger merger;
  for (std::size_t i = 0; i < k; ++i) merger.add_file(temp_partial(i));
  const agg::MergeResult merged = merger.finish();

  // Same line multiset...
  std::vector<std::string> a = reference;
  std::vector<std::string> b = merged.lines;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);

  // ...and byte-identical per-link subsequences (the interleave across
  // links is the only thing streaming order may change).
  for (const char* name : {"\"link\": \"low\"", "\"link\": \"tap\""}) {
    const auto filter = [&](const std::vector<std::string>& lines) {
      std::vector<std::string> out;
      for (const auto& line : lines) {
        if (line.find(name) != std::string::npos) out.push_back(line);
      }
      return out;
    };
    EXPECT_EQ(filter(reference), filter(merged.lines)) << name;
  }
}

TEST(AggregateDifferential, MergerRejectsCorruptAndIncompatibleInputs) {
  const auto packets = seeded_trace(505);
  const auto def = api::FlowDefinition::five_tuple;
  produce_batch_partial<api::AnalysisPipeline>(batch_config(def), packets,
                                               temp_partial(0));

  // Bit-flip one payload byte: add_file must throw, not fold garbage.
  {
    std::ifstream in(temp_partial(0), std::ios::binary);
    std::vector<char> bytes(std::istreambuf_iterator<char>(in), {});
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(temp_partial(1), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    agg::Merger merger;
    EXPECT_THROW(merger.add_file(temp_partial(1)), std::runtime_error);
  }

  // A partial produced under different knobs refuses to fold.
  produce_batch_partial<api::AnalysisPipeline>(
      batch_config(api::FlowDefinition::prefix24), packets, temp_partial(2));
  {
    agg::Merger merger;
    merger.add_file(temp_partial(0));
    EXPECT_THROW(merger.add_file(temp_partial(2)), std::runtime_error);
  }

  // No files, and all-empty merges, are errors too.
  EXPECT_THROW((void)agg::Merger().finish(), std::runtime_error);
}

}  // namespace
}  // namespace fbm
