// PartialReport codec: write → read round-trips every field bit for bit,
// and every way a file can lie — truncation, bit flips, wrong magic, a
// future version, garbage after the end frame, a spliced-out window frame —
// is rejected with a diagnostic naming the file, never silently folded.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "agg/partial_codec.hpp"

namespace fbm::agg {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

std::vector<char> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::filesystem::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A deterministic pseudo-random window: integral byte bins (the only kind
/// the pipelines produce) and a handful of flow records.
live::WindowPartial make_window(std::int64_t index, double start, double width,
                                double delta, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  stats::RateBinner bins(start, start + width, delta);
  std::uniform_real_distribution<double> ts(start, start + width);
  std::uniform_int_distribution<int> sz(40, 1500);
  for (int i = 0; i < 200; ++i) bins.add(ts(rng), sz(rng));
  std::vector<flow::FlowRecord> flows;
  std::uniform_real_distribution<double> dur(0.01, width / 2);
  for (int i = 0; i < 17; ++i) {
    flow::FlowRecord f;
    f.start = ts(rng);
    f.end = f.start + dur(rng);
    f.size_bytes = static_cast<std::uint64_t>(sz(rng)) * 10;
    f.packets = 10;
    flows.push_back(f);
  }
  return live::WindowPartial{index,           seed * 3, seed * 7, seed % 5,
                             std::move(flows), std::move(bins)};
}

PartialMeta batch_meta(api::FlowDefinition def) {
  api::AnalysisConfig cfg;
  cfg.flow_definition(def).timeout_s(2.0).interval_s(10.0).min_flows(3);
  return PartialMeta::from_batch(cfg);
}

/// Writes a small but fully-populated file: meta, two windows, totals.
std::filesystem::path write_sample(const std::string& name,
                                   api::FlowDefinition def =
                                       api::FlowDefinition::five_tuple) {
  const auto path = temp_path(name);
  PartialWriter writer(path, batch_meta(def));
  writer.add(0, make_window(0, 0.0, 10.0, 0.2, 11));
  writer.add(0, make_window(1, 10.0, 10.0, 0.2, 12));
  trace::TraceSummary s;
  s.packets = 3400;
  s.total_bytes = 1900000;
  s.first_ts = 0.004;
  s.last_ts = 19.2;
  writer.finish({s, {}});
  return path;
}

void expect_rejected(const std::filesystem::path& path,
                     const std::string& needle) {
  try {
    (void)read_partial_file(path);
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
    EXPECT_NE(std::string(e.what()).find(path.filename().string()),
              std::string::npos)
        << "diagnostic must name the file: " << e.what();
  }
}

TEST(PartialCodec, RoundTripsEveryFieldBitForBit) {
  for (const auto def :
       {api::FlowDefinition::five_tuple, api::FlowDefinition::prefix24}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
      const auto path = temp_path("roundtrip.fbmp");
      const PartialMeta meta = batch_meta(def);
      const auto w0 = make_window(0, 0.0, 10.0, 0.2, seed);
      const auto w1 = make_window(3, 30.0, 10.0, 0.2, seed + 1);
      trace::TraceSummary s;
      s.packets = 100 + seed;
      s.total_bytes = 5000 * seed;
      s.first_ts = 0.25;
      s.last_ts = 39.75;
      {
        PartialWriter writer(path, meta);
        writer.add(0, w0);
        writer.add(0, w1);
        EXPECT_EQ(writer.windows_written(), 2u);
        writer.finish({s, {}});
      }

      const PartialFile file = read_partial_file(path);
      EXPECT_EQ(file.meta.kind, PartialKind::batch);
      EXPECT_EQ(file.meta.flow_def, def);
      EXPECT_EQ(file.meta.timeout_s, 2.0);
      EXPECT_EQ(file.meta.interval_s, 10.0);
      EXPECT_EQ(file.meta.min_flows, 3u);
      EXPECT_FALSE(file.meta.engine);
      ASSERT_EQ(file.windows.size(), 2u);
      EXPECT_EQ(file.totals.summary.packets, s.packets);
      EXPECT_EQ(file.totals.summary.total_bytes, s.total_bytes);
      EXPECT_EQ(file.totals.summary.first_ts, s.first_ts);
      EXPECT_EQ(file.totals.summary.last_ts, s.last_ts);

      for (std::size_t i = 0; i < 2; ++i) {
        const auto& want = i == 0 ? w0 : w1;
        const auto& got = file.windows[i].window;
        EXPECT_EQ(file.windows[i].link_id, 0u);
        EXPECT_EQ(got.index, want.index);
        EXPECT_EQ(got.packets, want.packets);
        EXPECT_EQ(got.bytes, want.bytes);
        EXPECT_EQ(got.discards, want.discards);
        ASSERT_EQ(got.flows.size(), want.flows.size());
        for (std::size_t k = 0; k < want.flows.size(); ++k) {
          EXPECT_EQ(got.flows[k].start, want.flows[k].start);
          EXPECT_EQ(got.flows[k].end, want.flows[k].end);
          EXPECT_EQ(got.flows[k].size_bytes, want.flows[k].size_bytes);
          EXPECT_EQ(got.flows[k].packets, want.flows[k].packets);
        }
        EXPECT_EQ(got.bins.grid_start(), want.bins.grid_start());
        EXPECT_EQ(got.bins.grid_end(), want.bins.grid_end());
        EXPECT_EQ(got.bins.grid_delta(), want.bins.grid_delta());
        EXPECT_EQ(got.bins.dropped(), want.bins.dropped());
        EXPECT_EQ(got.bins.total_bytes(), want.bins.total_bytes());
        ASSERT_EQ(got.bins.bin_bytes().size(), want.bins.bin_bytes().size());
        for (std::size_t k = 0; k < want.bins.bin_bytes().size(); ++k) {
          EXPECT_EQ(got.bins.bin_bytes()[k], want.bins.bin_bytes()[k]);
        }
      }
    }
  }
}

TEST(PartialCodec, RoundTripsLiveEngineMetaAndLinkTotals) {
  const auto path = temp_path("engine_live.fbmp");
  live::LiveConfig cfg;
  cfg.window_s = 8.0;
  cfg.stride_s = 4.0;
  cfg.analysis.flow_definition(api::FlowDefinition::prefix24).timeout_s(3.0);
  PartialMeta meta = PartialMeta::from_live(cfg);
  meta.engine = true;
  meta.links = {{0, "core"}, {1, "edge"}};
  {
    PartialWriter writer(path, meta);
    writer.add(1, make_window(0, 0.0, 8.0, 0.2, 4));
    trace::TraceSummary s;
    s.packets = 12;
    s.total_bytes = 9000;
    s.first_ts = 0.5;
    s.last_ts = 7.5;
    writer.finish({s, {{0, 5, 4000}, {1, 7, 5000}}});
  }
  const PartialFile file = read_partial_file(path);
  EXPECT_EQ(file.meta.kind, PartialKind::live);
  EXPECT_EQ(file.meta.window_s, 8.0);
  EXPECT_EQ(file.meta.stride_s, 4.0);
  EXPECT_TRUE(file.meta.engine);
  ASSERT_EQ(file.meta.links.size(), 2u);
  EXPECT_EQ(file.meta.links[1].name, "edge");
  ASSERT_EQ(file.windows.size(), 1u);
  EXPECT_EQ(file.windows[0].link_id, 1u);
  ASSERT_EQ(file.totals.links.size(), 2u);
  EXPECT_EQ(file.totals.links[0].packets, 5u);
  EXPECT_EQ(file.totals.links[1].bytes, 5000u);
}

TEST(PartialCodec, RejectsMissingAndEmptyFiles) {
  expect_rejected(temp_path("nope.fbmp"), "partial file");
  const auto empty = temp_path("empty.fbmp");
  spit(empty, {});
  expect_rejected(empty, "truncated");
}

TEST(PartialCodec, RejectsWrongMagic) {
  const auto path = write_sample("magic.fbmp");
  auto bytes = slurp(path);
  bytes[0] ^= 0x01;
  spit(path, bytes);
  expect_rejected(path, "bad magic");
}

TEST(PartialCodec, RejectsFutureVersion) {
  const auto path = write_sample("version.fbmp");
  auto bytes = slurp(path);
  const std::uint32_t v = kPartialVersion + 1;
  std::memcpy(bytes.data() + 4, &v, sizeof v);
  spit(path, bytes);
  expect_rejected(path, "unsupported version");
}

TEST(PartialCodec, RejectsTruncationAtEveryBoundary) {
  const auto path = write_sample("trunc.fbmp");
  const auto bytes = slurp(path);
  // Cut inside the header, inside a frame header, inside a payload, and
  // just before the end frame — all must fail, with distinct diagnostics
  // but the same outcome.
  for (const std::size_t keep :
       {std::size_t{7}, std::size_t{20}, bytes.size() / 2,
        bytes.size() - 40, bytes.size() - 1}) {
    const auto cut = temp_path("trunc_cut.fbmp");
    spit(cut, std::vector<char>(bytes.begin(),
                                bytes.begin() + static_cast<long>(keep)));
    expect_rejected(cut, "truncated");
  }
}

TEST(PartialCodec, RejectsEveryFlippedPayloadBit) {
  const auto path = write_sample("flip.fbmp");
  const auto bytes = slurp(path);
  // Flip a byte in several payload regions (past the 16-byte file header
  // and the 16-byte frame header — inside the meta payload, and deep
  // inside window payloads).
  for (const std::size_t at : {std::size_t{40}, bytes.size() / 3,
                               2 * bytes.size() / 3, bytes.size() - 30}) {
    auto corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
    const auto cut = temp_path("flip_bit.fbmp");
    spit(cut, corrupt);
    // Depending on the byte hit, the checksum catches it, the payload
    // bounds checks catch it, or the frame walk detects truncation — but
    // a flipped bit must never read back successfully.
    EXPECT_THROW((void)read_partial_file(cut), std::runtime_error)
        << "flipping byte " << at << " was not rejected";
  }
}

TEST(PartialCodec, RejectsTrailingGarbage) {
  const auto path = write_sample("trailing.fbmp");
  auto bytes = slurp(path);
  bytes.push_back('x');
  spit(path, bytes);
  expect_rejected(path, "trailing");
}

TEST(PartialCodec, RejectsSplicedOutWindowFrame) {
  // Remove one complete, checksum-valid window frame: every remaining frame
  // still verifies, so only the end frame's window count can catch it.
  const auto path = write_sample("splice.fbmp");
  auto bytes = slurp(path);
  // Walk the frames to find the first window frame (type 2).
  std::size_t pos = 16;  // past the file header
  while (pos + 16 <= bytes.size()) {
    std::uint32_t type = 0;
    std::uint64_t len = 0;
    std::memcpy(&type, bytes.data() + pos, 4);
    std::memcpy(&len, bytes.data() + pos + 8, 8);
    const std::size_t frame = 16 + len + 8;  // header + payload + checksum
    if (type == 2) {
      bytes.erase(bytes.begin() + static_cast<long>(pos),
                  bytes.begin() + static_cast<long>(pos + frame));
      break;
    }
    pos += frame;
  }
  spit(path, bytes);
  expect_rejected(path, "window");
}

TEST(PartialCodec, CheckCompatibleNamesTheMismatch) {
  const PartialMeta a = batch_meta(api::FlowDefinition::five_tuple);
  PartialMeta b = a;
  EXPECT_NO_THROW(check_compatible(a, b));

  b.timeout_s = 9.0;
  EXPECT_THROW(check_compatible(a, b), std::runtime_error);

  b = a;
  b.flow_def = api::FlowDefinition::prefix24;
  EXPECT_THROW(check_compatible(a, b), std::runtime_error);

  b = a;
  b.kind = PartialKind::live;
  EXPECT_THROW(check_compatible(a, b), std::runtime_error);

  b = a;
  b.engine = true;
  b.links = {{0, "core"}};
  EXPECT_THROW(check_compatible(a, b), std::runtime_error);
}

}  // namespace
}  // namespace fbm::agg
