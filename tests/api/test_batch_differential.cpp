// Differential harness for the batched SoA hot path: every batched entry
// point (TraceSource::next_batch, AnalysisPipeline::push_batch,
// ParallelAnalysisPipeline::push_batch, live::WindowedEstimator::push_batch,
// engine::Engine::push_batch) must reproduce the per-packet path bit for
// bit — across sources (.fbmt / .pcap / vector / model), flow definitions,
// thread counts {1, 2, 4}, batch sizes {1, 7, 1024}, and the awkward edge
// packets (exact interval-boundary multiples, timeout gaps, equal
// timestamps, negative-free but zero-start streams).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "api/api.hpp"
#include "engine/engine.hpp"
#include "live/live.hpp"
#include "net/packet_batch.hpp"
#include "stats/distributions.hpp"
#include "trace/pcap.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_format.hpp"

namespace fbm {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 7, 1024};

std::vector<net::PacketRecord> seeded_trace(double duration_s = 45.0,
                                            double util_bps = 8e6,
                                            std::uint64_t seed = 777) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(util_bps);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

/// Edge-case stream: packets exactly on interval multiples, a timeout gap,
/// equal timestamps across distinct keys, and a lone continuation piece.
std::vector<net::PacketRecord> edge_trace() {
  std::vector<net::PacketRecord> out;
  const auto add = [&](double ts, std::uint16_t port, std::uint32_t bytes) {
    net::PacketRecord p;
    p.timestamp = ts;
    p.tuple.src = net::Ipv4Address(10, 0, 0, 1);
    p.tuple.dst = net::Ipv4Address(10, 1, 0, 1);
    p.tuple.src_port = port;
    p.tuple.dst_port = 80;
    p.tuple.protocol = 6;
    p.size_bytes = bytes;
    out.push_back(p);
  };
  add(0.0, 1000, 100);   // stream starts exactly at an interval boundary
  add(0.0, 2000, 120);   // equal timestamp, distinct key
  add(7.5, 1000, 100);
  add(14.9, 1000, 80);
  add(15.0, 1000, 60);   // exactly on the 15 s interval multiple
  add(15.0, 2000, 50);   // equal timestamp at the boundary
  add(29.9, 2000, 70);
  add(30.0, 3000, 40);   // new key born exactly on a boundary
  add(31.0, 1000, 90);   // > 1 s timeout gap for key 1000: flow restart
  add(31.2, 1000, 30);
  add(44.0, 3000, 20);   // lone continuation material near the tail
  return out;
}

api::AnalysisConfig edge_config() {
  api::AnalysisConfig config;
  config.interval_s(15.0).timeout_s(1.0).min_flows(0).keep_flows(true);
  return config;
}

void expect_flows_identical(const std::vector<flow::FlowRecord>& a,
                            const std::vector<flow::FlowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("flow " + std::to_string(i));
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].packets, b[i].packets);
    EXPECT_EQ(a[i].continued, b[i].continued);
  }
}

void expect_reports_identical(const std::vector<api::AnalysisReport>& a,
                              const std::vector<api::AnalysisReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("report " + std::to_string(i));
    EXPECT_EQ(a[i].interval_index, b[i].interval_index);
    EXPECT_EQ(a[i].start_s, b[i].start_s);
    EXPECT_EQ(a[i].inputs.flows, b[i].inputs.flows);
    EXPECT_EQ(a[i].inputs.lambda, b[i].inputs.lambda);
    EXPECT_EQ(a[i].inputs.mean_size_bits, b[i].inputs.mean_size_bits);
    EXPECT_EQ(a[i].inputs.mean_s2_over_d, b[i].inputs.mean_s2_over_d);
    EXPECT_EQ(a[i].continued_flows, b[i].continued_flows);
    EXPECT_EQ(a[i].measured.samples, b[i].measured.samples);
    EXPECT_EQ(a[i].measured.mean_bps, b[i].measured.mean_bps);
    EXPECT_EQ(a[i].measured.variance_bps2, b[i].measured.variance_bps2);
    EXPECT_EQ(a[i].measured.cov, b[i].measured.cov);
    EXPECT_EQ(a[i].shot_b_used, b[i].shot_b_used);
    EXPECT_EQ(a[i].model_cov, b[i].model_cov);
    EXPECT_EQ(a[i].plan.capacity_bps, b[i].plan.capacity_bps);
    expect_flows_identical(a[i].interval.flows, b[i].interval.flows);
  }
}

/// Per-packet push reference vs push_batch at every batch size and thread
/// count — the tentpole's core promise.
void expect_batched_matches_per_packet(
    const std::vector<net::PacketRecord>& packets,
    api::AnalysisConfig config) {
  config.threads(1);
  api::AnalysisPipeline reference(config);
  for (const auto& p : packets) reference.push(p);
  reference.finish();
  const auto expected = reference.take_reports();

  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t batch_size : kBatchSizes) {
      SCOPED_TRACE(std::to_string(threads) + " threads, batch " +
                   std::to_string(batch_size));
      net::PacketBatch batch;
      const auto feed = [&](auto& pipeline) {
        for (std::size_t i = 0; i < packets.size(); i += batch_size) {
          batch.assign(std::span(packets).subspan(
              i, std::min(batch_size, packets.size() - i)));
          pipeline.push_batch(batch);
        }
        pipeline.finish();
      };
      if (threads == 1) {
        api::AnalysisPipeline pipeline(config.threads(1));
        feed(pipeline);
        expect_reports_identical(expected, pipeline.take_reports());
      } else {
        api::ParallelAnalysisPipeline pipeline(config.threads(threads));
        feed(pipeline);
        expect_reports_identical(expected, pipeline.take_reports());
      }
    }
  }
}

TEST(BatchDifferential, FiveTupleSeededTrace) {
  api::AnalysisConfig config;
  config.interval_s(15.0).timeout_s(1.0).keep_flows(true);
  expect_batched_matches_per_packet(seeded_trace(), config);
}

TEST(BatchDifferential, Prefix24SeededTrace) {
  api::AnalysisConfig config;
  config.flow_definition(api::FlowDefinition::prefix24)
      .interval_s(20.0)
      .timeout_s(1.0)
      .keep_flows(true);
  expect_batched_matches_per_packet(seeded_trace(45.0, 6e6, 31), config);
}

TEST(BatchDifferential, BoundaryAndTimeoutEdgePackets) {
  expect_batched_matches_per_packet(edge_trace(), edge_config());
}

// ------------------------------------------------------- source batching ---

/// next_batch must yield exactly the packets next() yields, in order, for
/// every max_n — every source overrides it natively now, so each override
/// is pinned against its own scalar path.
void expect_source_batches_match(api::TraceSource& batched,
                                 api::TraceSource& scalar,
                                 std::size_t batch_size) {
  net::PacketBatch batch;
  std::uint64_t seen = 0;
  while (batched.next_batch(batch, batch_size) > 0) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto expected = scalar.next();
      ASSERT_TRUE(expected.has_value()) << "packet " << seen;
      EXPECT_EQ(batch.record(i), *expected) << "packet " << seen;
      ++seen;
    }
  }
  EXPECT_FALSE(scalar.next().has_value());
}

TEST(BatchDifferential, VectorSourceBatches) {
  const auto packets = seeded_trace(10.0);
  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch " + std::to_string(batch_size));
    api::VectorTraceSource batched(packets);
    api::VectorTraceSource scalar(packets);
    expect_source_batches_match(batched, scalar, batch_size);
  }
}

TEST(BatchDifferential, FbmtFileSourceBatches) {
  const auto packets = seeded_trace(10.0);
  const auto path = std::filesystem::temp_directory_path() /
                    "fbm_batch_differential.fbmt";
  trace::write_trace(path, packets);
  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch " + std::to_string(batch_size));
    api::FileTraceSource batched(path);
    api::FileTraceSource scalar(path);
    expect_source_batches_match(batched, scalar, batch_size);
  }
  std::filesystem::remove(path);
}

TEST(BatchDifferential, PcapSourceBatches) {
  const auto packets = seeded_trace(10.0);
  const auto path = std::filesystem::temp_directory_path() /
                    "fbm_batch_differential.pcap";
  trace::export_pcap(path, packets);
  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch " + std::to_string(batch_size));
    api::PcapTraceSource batched(path);
    api::PcapTraceSource scalar(path);
    expect_source_batches_match(batched, scalar, batch_size);
  }
  std::filesystem::remove(path);
}

// Bit-pins the native ModelTraceSource::next_batch override (shared step()
// core) against the scalar next() stream.
TEST(BatchDifferential, ModelSourceBatchesNatively) {
  api::ModelSourceConfig cfg;
  cfg.duration_s = 15.0;
  cfg.lambda = 40.0;
  cfg.shot_b = 1.0;
  cfg.size_bits = std::make_shared<stats::LogNormal>(std::log(4e4), 1.0);
  cfg.duration_s_dist =
      std::make_shared<stats::LogNormal>(std::log(0.5), 0.8);
  cfg.seed = 21;
  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch " + std::to_string(batch_size));
    api::ModelTraceSource batched(cfg);
    api::ModelTraceSource scalar(cfg);
    expect_source_batches_match(batched, scalar, batch_size);
  }
}

// --------------------------------------------------------- live batching ---

void expect_window_reports_identical(
    const std::vector<live::WindowReport>& a,
    const std::vector<live::WindowReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a[i].window_index, b[i].window_index);
    EXPECT_EQ(a[i].packets, b[i].packets);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].discards, b[i].discards);
    EXPECT_EQ(a[i].inputs.flows, b[i].inputs.flows);
    EXPECT_EQ(a[i].inputs.lambda, b[i].inputs.lambda);
    EXPECT_EQ(a[i].measured.mean_bps, b[i].measured.mean_bps);
    EXPECT_EQ(a[i].measured.variance_bps2, b[i].measured.variance_bps2);
    EXPECT_EQ(a[i].shot_b_used, b[i].shot_b_used);
    EXPECT_EQ(a[i].plan.capacity_bps, b[i].plan.capacity_bps);
    EXPECT_EQ(a[i].anomaly.alert, b[i].anomaly.alert);
    EXPECT_EQ(a[i].anomaly.deviation_sigma, b[i].anomaly.deviation_sigma);
  }
}

TEST(BatchDifferential, LiveWindowedEstimatorTiled) {
  const auto packets = seeded_trace(45.0, 8e6, 55);
  live::LiveConfig config;
  config.window_s = 10.0;  // stride defaults to the width: tiling
  config.analysis.timeout_s(1.0).min_flows(0);

  live::WindowedEstimator reference(config);
  for (const auto& p : packets) reference.push(p);
  reference.finish();
  const auto expected = reference.take_reports();
  ASSERT_FALSE(expected.empty());

  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch " + std::to_string(batch_size));
    live::WindowedEstimator batched(config);
    net::PacketBatch batch;
    for (std::size_t i = 0; i < packets.size(); i += batch_size) {
      batch.assign(std::span(packets).subspan(
          i, std::min(batch_size, packets.size() - i)));
      batched.push_batch(batch);
    }
    batched.finish();
    expect_window_reports_identical(expected, batched.take_reports());
  }
}

TEST(BatchDifferential, LiveWindowedEstimatorOverlapping) {
  // Overlapping windows take the per-packet fallback inside push_batch;
  // the contract is the same.
  const auto packets = seeded_trace(30.0, 6e6, 56);
  live::LiveConfig config;
  config.window_s = 10.0;
  config.stride_s = 5.0;
  config.analysis.timeout_s(1.0).min_flows(0);

  live::WindowedEstimator reference(config);
  for (const auto& p : packets) reference.push(p);
  reference.finish();
  const auto expected = reference.take_reports();
  ASSERT_FALSE(expected.empty());

  live::WindowedEstimator batched(config);
  net::PacketBatch batch;
  constexpr std::size_t kBatch = 256;
  for (std::size_t i = 0; i < packets.size(); i += kBatch) {
    batch.assign(
        std::span(packets).subspan(i, std::min(kBatch, packets.size() - i)));
    batched.push_batch(batch);
  }
  batched.finish();
  expect_window_reports_identical(expected, batched.take_reports());
}

// ------------------------------------------------------- engine batching ---

TEST(BatchDifferential, EngineMultiLinkAcrossThreadsAndBatchSizes) {
  const auto packets = seeded_trace(30.0, 8e6, 57);

  engine::EngineConfig base;
  base.mode = engine::EngineMode::batch;
  base.analysis.interval_s(10.0).timeout_s(1.0).min_flows(0);

  const auto attach_links = [](engine::Engine& eng) {
    (void)eng.attach(engine::parse_link_spec("agg=all"));
    (void)eng.attach(engine::parse_link_spec("left=10.0.0.0/16"));
    (void)eng.attach(engine::parse_link_spec("right=10.1.0.0/16"));
    engine::LinkSpec tuple;
    tuple.name = "web";
    engine::MatchTuple rule;
    rule.dst_port = 80;
    tuple.rule = rule;
    (void)eng.attach(std::move(tuple));
  };

  /// Per-link report sequences, keyed by link id (cross-link interleaving
  /// is explicitly unpinned — batching changes it).
  using PerLink = std::vector<std::vector<api::AnalysisReport>>;
  const auto collect_into = [](engine::Engine& eng, PerLink& out) {
    out.clear();
    out.resize(4);
    eng.set_report_sink([&out](engine::LinkReport&& r) {
      ASSERT_TRUE(r.interval.has_value());
      out[r.link].push_back(std::move(*r.interval));
    });
  };

  engine::Engine reference(base);
  PerLink expected;
  collect_into(reference, expected);
  attach_links(reference);
  for (const auto& p : packets) reference.push(p);
  reference.finish();
  for (const auto& link : expected) ASSERT_FALSE(link.empty());

  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t batch_size : kBatchSizes) {
      SCOPED_TRACE(std::to_string(threads) + " threads, batch " +
                   std::to_string(batch_size));
      engine::EngineConfig cfg = base;
      cfg.threads = threads;
      engine::Engine eng(cfg);
      PerLink got;
      collect_into(eng, got);
      attach_links(eng);
      net::PacketBatch batch;
      for (std::size_t i = 0; i < packets.size(); i += batch_size) {
        batch.assign(std::span(packets).subspan(
            i, std::min(batch_size, packets.size() - i)));
        eng.push_batch(batch);
      }
      eng.finish();
      for (std::size_t link = 0; link < expected.size(); ++link) {
        SCOPED_TRACE("link " + std::to_string(link));
        expect_reports_identical(expected[link], got[link]);
      }
    }
  }
}

}  // namespace
}  // namespace fbm
