// Golden-report regression: a checked-in seeded trace plus the fbm_analyze
// --json output it produced when this test was written. The pipeline is
// re-run here with the same configuration and compared field by field, so a
// refactor that silently drifts any number — an input estimate, a rate
// moment, the fitted shot, the capacity plan — fails loudly. The sharded
// pipeline must additionally reproduce the serial JSON byte for byte.
//
// Regenerate (only when an intentional change alters the numbers):
//   fbm_trace_gen tests/data/golden_small.fbmt --duration 10 --mbps 2
//       --seed 777
//   fbm_analyze tests/data/golden_small.fbmt --interval 4 --timeout 1
//       --min-flows 0 --json > tests/data/golden_small.json
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../support/json_fields.hpp"
#include "api/api.hpp"

#ifndef FBM_TEST_DATA_DIR
#error "FBM_TEST_DATA_DIR must point at tests/data"
#endif

namespace fbm {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

using testsupport::parse_fields;

/// The exact analysis fbm_analyze ran to produce the golden file.
std::string analyze_golden_trace(std::size_t threads) {
  auto source =
      api::open_trace(std::string(FBM_TEST_DATA_DIR) + "/golden_small.fbmt");
  api::AnalysisConfig config;
  config.interval_s(4.0).timeout_s(1.0).min_flows(0).threads(threads);
  api::ParallelAnalysisPipeline pipeline(config);
  pipeline.consume(*source);
  const auto reports = pipeline.take_reports();
  return api::to_json(pipeline.summary(), reports) + "\n";
}

TEST(GoldenReport, FieldByFieldAgainstCheckedInJson) {
  const std::string golden =
      read_file(std::string(FBM_TEST_DATA_DIR) + "/golden_small.json");
  ASSERT_FALSE(golden.empty());
  const std::string fresh = analyze_golden_trace(1);

  const auto want = parse_fields(golden);
  const auto got = parse_fields(fresh);
  ASSERT_GT(want.size(), 20u);  // sanity: the parser found the document
  ASSERT_EQ(want.size(), got.size()) << fresh;
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("field " + std::to_string(i) + " '" + want[i].key + "'");
    EXPECT_EQ(want[i].key, got[i].key);
    if (want[i].value == got[i].value) continue;  // bitwise match (or null)
    // Numbers may legitimately differ in the last ulp across libm versions;
    // anything beyond that is drift.
    char* end_w = nullptr;
    char* end_g = nullptr;
    const double w = std::strtod(want[i].value.c_str(), &end_w);
    const double g = std::strtod(got[i].value.c_str(), &end_g);
    ASSERT_TRUE(end_w != want[i].value.c_str() &&
                end_g != got[i].value.c_str())
        << "non-numeric mismatch: '" << want[i].value << "' vs '"
        << got[i].value << "'";
    EXPECT_NEAR(g, w, std::abs(w) * 1e-12)
        << "'" << want[i].value << "' vs '" << got[i].value << "'";
  }
}

TEST(GoldenReport, ShardedJsonIsByteIdenticalToSerial) {
  EXPECT_EQ(analyze_golden_trace(1), analyze_golden_trace(4));
  EXPECT_EQ(analyze_golden_trace(1), analyze_golden_trace(7));
}

}  // namespace
}  // namespace fbm
