// Differential determinism harness: ParallelAnalysisPipeline must reproduce
// the serial AnalysisPipeline bit for bit — every report field, for every
// thread count, both flow definitions, any packet batching, and across the
// awkward cases (interval-boundary splits, timeout expiry, equal
// timestamps, single-packet discards, empty leading intervals).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/api.hpp"
#include "api/shard.hpp"
#include "flow/classifier.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> seeded_trace(double duration_s = 60.0,
                                            double util_bps = 8e6,
                                            std::uint64_t seed = 4242) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(util_bps);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

void expect_flows_identical(const std::vector<flow::FlowRecord>& a,
                            const std::vector<flow::FlowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("flow " + std::to_string(i));
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].packets, b[i].packets);
    EXPECT_EQ(a[i].continued, b[i].continued);
  }
}

/// Every field of every report, compared with exact (bitwise for doubles)
/// equality — the parallel pipeline promises identity, not closeness.
void expect_reports_identical(const std::vector<api::AnalysisReport>& serial,
                              const std::vector<api::AnalysisReport>& par) {
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("report " + std::to_string(i));
    const auto& s = serial[i];
    const auto& p = par[i];
    EXPECT_EQ(s.interval_index, p.interval_index);
    EXPECT_EQ(s.start_s, p.start_s);
    EXPECT_EQ(s.length_s, p.length_s);

    EXPECT_EQ(s.inputs.flows, p.inputs.flows);
    EXPECT_EQ(s.inputs.lambda, p.inputs.lambda);
    EXPECT_EQ(s.inputs.mean_size_bits, p.inputs.mean_size_bits);
    EXPECT_EQ(s.inputs.mean_s2_over_d, p.inputs.mean_s2_over_d);
    EXPECT_EQ(s.continued_flows, p.continued_flows);

    EXPECT_EQ(s.measured.samples, p.measured.samples);
    EXPECT_EQ(s.measured.mean_bps, p.measured.mean_bps);
    EXPECT_EQ(s.measured.variance_bps2, p.measured.variance_bps2);
    EXPECT_EQ(s.measured.cov, p.measured.cov);

    ASSERT_EQ(s.shot_b.has_value(), p.shot_b.has_value());
    if (s.shot_b) {
      EXPECT_EQ(*s.shot_b, *p.shot_b);
    }
    EXPECT_EQ(s.shot_b_used, p.shot_b_used);
    EXPECT_EQ(s.model_cov, p.model_cov);

    EXPECT_EQ(s.plan.mean_bps, p.plan.mean_bps);
    EXPECT_EQ(s.plan.stddev_bps, p.plan.stddev_bps);
    EXPECT_EQ(s.plan.cov, p.plan.cov);
    EXPECT_EQ(s.plan.capacity_bps, p.plan.capacity_bps);
    EXPECT_EQ(s.plan.headroom, p.plan.headroom);
    EXPECT_EQ(s.plan.eps, p.plan.eps);

    expect_flows_identical(s.interval.flows, p.interval.flows);
  }
}

void expect_differential(const std::vector<net::PacketRecord>& packets,
                         api::AnalysisConfig config) {
  config.threads(1);
  const auto serial = api::analyze(packets, config);
  ASSERT_FALSE(serial.empty());
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    api::ParallelAnalysisPipeline pipeline(config.threads(threads));
    for (const auto& p : packets) pipeline.push(p);
    pipeline.finish();
    expect_reports_identical(serial, pipeline.take_reports());
  }
}

TEST(ParallelDifferential, FiveTupleAcrossThreadCounts) {
  api::AnalysisConfig config;
  config.interval_s(15.0).timeout_s(1.0).keep_flows(true);
  expect_differential(seeded_trace(), config);
}

TEST(ParallelDifferential, Prefix24AcrossThreadCounts) {
  api::AnalysisConfig config;
  config.flow_definition(api::FlowDefinition::prefix24)
      .interval_s(20.0)
      .timeout_s(1.0)
      .keep_flows(true);
  expect_differential(seeded_trace(60.0, 6e6, 99), config);
}

TEST(ParallelDifferential, PaperTimeoutWholeTraceInterval) {
  // The quickstart setting: one interval spanning the capture, 60 s paper
  // timeout — nothing expires before the final flush, so the merge happens
  // entirely at finish().
  api::AnalysisConfig config;
  config.interval_s(40.0).timeout_s(60.0).keep_flows(true);
  expect_differential(seeded_trace(40.0, 10e6, 7), config);
}

TEST(ParallelDifferential, BatchSizeDoesNotChangeResults) {
  const auto packets = seeded_trace(30.0, 6e6, 11);
  api::AnalysisConfig config;
  config.interval_s(10.0).timeout_s(1.0).keep_flows(true).threads(1);
  const auto serial = api::analyze(packets, config);
  ASSERT_FALSE(serial.empty());
  for (const std::size_t batch : {1u, 3u, 64u, 4096u}) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    config.threads(4).batch_packets(batch);
    expect_reports_identical(serial, api::analyze(packets, config));
  }
}

TEST(ParallelDifferential, HandCraftedBoundaryAndTimeoutEdges) {
  // Flow A straddles the interval boundary (split, continuation piece);
  // flow B goes idle past the timeout mid-interval and restarts (two
  // flows); flow C is a single packet (discarded, bytes subtracted from the
  // rate bins); flows D/E share one timestamp (tie-broken sort); nothing
  // arrives in interval 2 (empty interval between populated ones).
  const auto tup = [](std::uint32_t host, std::uint16_t port) {
    net::FiveTuple t;
    t.src = net::Ipv4Address(10, 0, 0, 1);
    t.dst = net::Ipv4Address{host};
    t.src_port = port;
    t.dst_port = 80;
    t.protocol = 6;
    return t;
  };
  const auto A = tup(0x0a000002, 1000);
  const auto B = tup(0x0a000003, 2000);
  const auto C = tup(0x0a000004, 3000);
  const auto D = tup(0x0a000005, 4000);
  const auto E = tup(0x0a000006, 5000);

  std::vector<net::PacketRecord> packets{
      {0.10, D, 500},  {0.10, E, 500},   // equal timestamps
      {0.20, A, 1000}, {0.50, B, 700},
      {0.90, D, 500},  {0.90, E, 500},
      {1.20, B, 700},                     // B continues before timeout
      {3.00, C, 400},                     // single packet -> discard
      {4.50, B, 700},                     // B idle 3.3 s > 2 s: new flow
      {9.80, A, 1000},                    // A idle but same interval? no:
      {10.3, A, 1000},                    // A crosses the t=10 boundary
      {30.5, A, 1000}, {30.9, A, 1000},   // interval 3 after empty interval 2
  };

  for (const auto def :
       {api::FlowDefinition::five_tuple, api::FlowDefinition::prefix24}) {
    SCOPED_TRACE(def == api::FlowDefinition::five_tuple ? "5-tuple" : "/24");
    api::AnalysisConfig config;
    config.flow_definition(def)
        .interval_s(10.0)
        .timeout_s(2.0)
        .delta_s(0.5)
        .keep_flows(true);
    expect_differential(packets, config);
  }
}

TEST(ParallelDifferential, MinFlowsFilterMatchesSerial) {
  const auto packets = seeded_trace(30.0, 6e6, 13);
  api::AnalysisConfig config;
  config.interval_s(5.0).timeout_s(1.0).min_flows(25);
  config.threads(1);
  const auto serial = api::analyze(packets, config);
  config.threads(4);
  const auto par = api::analyze(packets, config);
  expect_reports_identical(serial, par);
}

TEST(ParallelDifferential, FixedShotMatchesSerial) {
  const auto packets = seeded_trace(30.0, 6e6, 17);
  api::AnalysisConfig config;
  config.interval_s(10.0).timeout_s(1.0).fixed_shot_b(0.0);
  config.threads(1);
  const auto serial = api::analyze(packets, config);
  config.threads(3);
  expect_reports_identical(serial, api::analyze(packets, config));
}

TEST(ParallelStreaming, MidStreamPopsPreserveTheSerialSequence) {
  const auto packets = seeded_trace();
  api::AnalysisConfig config;
  config.interval_s(10.0).timeout_s(1.0);
  const auto serial = api::analyze(packets, config);

  api::ParallelAnalysisPipeline pipeline(config.threads(4));
  std::vector<api::AnalysisReport> streamed;
  for (const auto& p : packets) {
    pipeline.push(p);
    while (pipeline.has_report()) streamed.push_back(pipeline.pop_report());
  }
  pipeline.finish();
  for (auto& r : pipeline.take_reports()) streamed.push_back(std::move(r));
  expect_reports_identical(serial, streamed);
}

TEST(ParallelSummary, MatchesSerialAndTraceTotals) {
  const auto packets = seeded_trace(30.0, 6e6, 19);
  api::AnalysisConfig config;
  config.interval_s(10.0).timeout_s(1.0);

  api::AnalysisPipeline serial(config);
  for (const auto& p : packets) serial.push(p);
  serial.finish();

  api::ParallelAnalysisPipeline par(config.threads(4));
  for (const auto& p : packets) par.push(p);
  par.finish();

  EXPECT_EQ(par.summary().packets, serial.summary().packets);
  EXPECT_EQ(par.summary().total_bytes, serial.summary().total_bytes);
  EXPECT_EQ(par.summary().first_ts, serial.summary().first_ts);
  EXPECT_EQ(par.summary().last_ts, serial.summary().last_ts);

  const auto pc = par.counters();
  const auto& sc = serial.counters();
  EXPECT_EQ(pc.packets, sc.packets);
  EXPECT_EQ(pc.flows_emitted, sc.flows_emitted);
  EXPECT_EQ(pc.single_packet_discards, sc.single_packet_discards);
  EXPECT_EQ(pc.boundary_splits, sc.boundary_splits);
  EXPECT_EQ(par.active_flows(), 0u);
}

TEST(ParallelConfig, RejectsBadParameters) {
  EXPECT_THROW(
      api::ParallelAnalysisPipeline(api::AnalysisConfig{}.timeout_s(0.0)),
      std::invalid_argument);
  // threads(0) is not bad — it auto-detects the core count (see
  // test_threads_auto.cpp).
  EXPECT_NO_THROW(
      api::ParallelAnalysisPipeline(api::AnalysisConfig{}.threads(0)));
  EXPECT_THROW(
      api::ParallelAnalysisPipeline(api::AnalysisConfig{}.batch_packets(0)),
      std::invalid_argument);
}

TEST(ParallelConfig, OutOfOrderPacketThrows) {
  api::ParallelAnalysisPipeline pipeline(
      api::AnalysisConfig{}.threads(2));
  pipeline.push({1.0, {}, 100});
  EXPECT_THROW(pipeline.push({0.5, {}, 100}), std::invalid_argument);
}

TEST(ParallelConfig, PushAfterFinishThrows) {
  api::ParallelAnalysisPipeline pipeline(
      api::AnalysisConfig{}.threads(2));
  pipeline.push({0.0, {}, 100});
  pipeline.finish();
  EXPECT_THROW(pipeline.push({1.0, {}, 100}), std::logic_error);
}

TEST(ParallelConfig, EmptyStreamFinishesCleanly) {
  api::ParallelAnalysisPipeline pipeline(
      api::AnalysisConfig{}.threads(4));
  pipeline.finish();
  EXPECT_FALSE(pipeline.has_report());
  EXPECT_TRUE(pipeline.take_reports().empty());
  EXPECT_EQ(pipeline.summary().packets, 0u);
}

TEST(ParallelShardRouting, StablePerKeyAndCoversAllShards) {
  const auto packets = seeded_trace(20.0, 6e6, 23);
  std::vector<std::size_t> hits(7, 0);
  for (const auto& p : packets) {
    const std::size_t s =
        api::flow_shard_of(p, api::FlowDefinition::five_tuple, 7);
    ASSERT_LT(s, 7u);
    EXPECT_EQ(s, api::flow_shard_of(p, api::FlowDefinition::five_tuple, 7));
    ++hits[s];
  }
  for (std::size_t s = 0; s < hits.size(); ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " never hit";
  }
  // One shard: everything maps to 0.
  EXPECT_EQ(api::flow_shard_of(packets.front(),
                               api::FlowDefinition::prefix24, 1),
            0u);
}

}  // namespace
}  // namespace fbm
