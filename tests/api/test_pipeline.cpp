// The streaming AnalysisPipeline must reproduce the batch path bit-for-bit
// and hold only a bounded window of state while doing so.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "api/api.hpp"
#include "core/fitting.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> seeded_trace(double duration_s = 60.0,
                                            double util_bps = 8e6,
                                            std::uint64_t seed = 4242) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(util_bps);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

/// The pre-api batch pipeline, verbatim: classify everything, sort, group,
/// estimate, measure, fit.
struct BatchInterval {
  flow::ModelInputs inputs;
  measure::RateMoments measured;
  std::optional<double> shot_b;
};

template <typename Key>
std::vector<BatchInterval> batch_path(
    const std::vector<net::PacketRecord>& packets, double interval_s,
    double horizon_s, double timeout_s, double delta_s) {
  flow::ClassifierOptions opt;
  opt.timeout = timeout_s;
  opt.interval = interval_s;
  opt.record_discards = true;
  flow::FlowClassifier<Key> classifier(opt);
  for (const auto& p : packets) classifier.add(p);
  classifier.flush();
  const auto& discards = classifier.discards();
  auto flows = classifier.take_flows();
  std::sort(flows.begin(), flows.end(), flow::ByStart{});

  std::vector<BatchInterval> out;
  for (auto& iv : flow::group_by_interval(flows, interval_s, horizon_s)) {
    BatchInterval r;
    r.inputs = flow::estimate_inputs(iv);
    const auto series =
        measure::measure_rate(packets, iv.start, iv.end(), delta_s, discards);
    r.measured = measure::rate_moments(series);
    r.shot_b = core::fit_power_b(r.measured.variance_bps2, r.inputs);
    out.push_back(r);
  }
  return out;
}

void expect_identical(const std::vector<BatchInterval>& batch,
                      const std::vector<api::AnalysisReport>& streamed) {
  ASSERT_EQ(batch.size(), streamed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    const auto& b = batch[i];
    const auto& s = streamed[i];
    EXPECT_EQ(s.interval_index, i);
    // ModelInputs, bit-for-bit.
    EXPECT_EQ(b.inputs.flows, s.inputs.flows);
    EXPECT_EQ(b.inputs.lambda, s.inputs.lambda);
    EXPECT_EQ(b.inputs.mean_size_bits, s.inputs.mean_size_bits);
    EXPECT_EQ(b.inputs.mean_s2_over_d, s.inputs.mean_s2_over_d);
    // RateMoments, bit-for-bit.
    EXPECT_EQ(b.measured.samples, s.measured.samples);
    EXPECT_EQ(b.measured.mean_bps, s.measured.mean_bps);
    EXPECT_EQ(b.measured.variance_bps2, s.measured.variance_bps2);
    EXPECT_EQ(b.measured.cov, s.measured.cov);
    // Fitted shot power, bit-for-bit.
    ASSERT_EQ(b.shot_b.has_value(), s.shot_b.has_value());
    if (b.shot_b) {
      EXPECT_EQ(*b.shot_b, *s.shot_b);
    }
  }
}

TEST(PipelineEquality, FiveTupleMultiInterval) {
  const auto packets = seeded_trace();
  const double interval_s = 15.0;
  // Scaled timeout (60 s : 30 min in the paper), so flows complete and
  // intervals close while the stream is still running.
  const double timeout_s = 1.0;

  api::AnalysisConfig config;
  config.interval_s(interval_s).timeout_s(timeout_s);
  const auto streamed = api::analyze(packets, config);

  const auto batch = batch_path<flow::FiveTupleKey>(
      packets, interval_s, 60.0, timeout_s, config.delta_s());
  expect_identical(batch, streamed);
}

TEST(PipelineEquality, Prefix24MultiInterval) {
  const auto packets = seeded_trace(60.0, 6e6, 99);
  const double interval_s = 20.0;
  const double timeout_s = 1.0;

  api::AnalysisConfig config;
  config.flow_definition(api::FlowDefinition::prefix24)
      .interval_s(interval_s)
      .timeout_s(timeout_s);
  const auto streamed = api::analyze(packets, config);

  const auto batch = batch_path<flow::PrefixKey<24>>(
      packets, interval_s, 60.0, timeout_s, config.delta_s());
  expect_identical(batch, streamed);
}

TEST(PipelineEquality, LongTimeoutSingleInterval) {
  // Whole-trace analysis (the quickstart setting): one interval, paper
  // 60 s timeout, nothing ever expires before the flush.
  const auto packets = seeded_trace(40.0, 10e6, 7);
  api::AnalysisConfig config;
  config.interval_s(40.0).timeout_s(60.0);
  const auto streamed = api::analyze(packets, config);
  const auto batch = batch_path<flow::FiveTupleKey>(packets, 40.0, 40.0, 60.0,
                                                    config.delta_s());
  expect_identical(batch, streamed);
}

TEST(PipelineStreaming, ReportsEmittedIncrementally) {
  const auto packets = seeded_trace();
  api::AnalysisPipeline pipeline(
      api::AnalysisConfig{}.interval_s(10.0).timeout_s(1.0));

  std::size_t emitted_mid_stream = 0;
  for (const auto& p : packets) {
    pipeline.push(p);
    while (pipeline.has_report()) {
      const auto r = pipeline.pop_report();
      EXPECT_EQ(r.interval_index, emitted_mid_stream);
      // Never early: interval k closes only after the clock passes its end
      // by more than the flow timeout.
      EXPECT_GT(p.timestamp, r.start_s + r.length_s + 1.0);
      ++emitted_mid_stream;
    }
  }
  // A 60 s trace with 10 s intervals: at least the first four intervals
  // must have been reported before end of stream.
  EXPECT_GE(emitted_mid_stream, 4u);
  pipeline.finish();
  const auto rest = pipeline.take_reports();
  EXPECT_EQ(emitted_mid_stream + rest.size(), 6u);
}

TEST(PipelineStreaming, MemoryBoundedByWindow) {
  const auto packets = seeded_trace();
  api::AnalysisPipeline pipeline(
      api::AnalysisConfig{}.interval_s(5.0).timeout_s(1.0));

  std::size_t max_open = 0;
  for (const auto& p : packets) {
    pipeline.push(p);
    max_open = std::max(max_open, pipeline.open_intervals());
    (void)pipeline.take_reports();  // a consumer drains as it goes
  }
  // Closing lags the clock by timeout + expire cadence, so at most the
  // current interval plus ~ceil((timeout + cadence) / interval) stay open —
  // never all 12 of a 60 s trace.
  EXPECT_LE(max_open, 3u);
}

TEST(PipelineConfig, MinFlowsFiltersThinIntervals) {
  const auto packets = seeded_trace();
  api::AnalysisConfig config;
  config.interval_s(15.0).timeout_s(1.0).min_flows(1u << 30);
  EXPECT_TRUE(api::analyze(packets, config).empty());
}

TEST(PipelineConfig, FixedShotSkipsFit) {
  const auto packets = seeded_trace();
  api::AnalysisConfig config;
  config.interval_s(60.0).fixed_shot_b(0.0);
  const auto reports = api::analyze(packets, config);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].shot_b.has_value());
  EXPECT_EQ(reports[0].shot_b_used, 0.0);
}

TEST(PipelineConfig, RejectsBadParameters) {
  EXPECT_THROW(api::AnalysisPipeline(api::AnalysisConfig{}.timeout_s(0.0)),
               std::invalid_argument);
  EXPECT_THROW(api::AnalysisPipeline(api::AnalysisConfig{}.interval_s(-1.0)),
               std::invalid_argument);
  EXPECT_THROW(api::AnalysisPipeline(api::AnalysisConfig{}.epsilon(1.5)),
               std::invalid_argument);
}

TEST(PipelineConfig, PushAfterFinishThrows) {
  api::AnalysisPipeline pipeline(api::AnalysisConfig{});
  pipeline.push({0.0, {}, 100});
  pipeline.finish();
  EXPECT_THROW(pipeline.push({1.0, {}, 100}), std::logic_error);
}

TEST(PipelineReport, KeepFlowsPopulatesInterval) {
  const auto packets = seeded_trace(30.0, 6e6, 3);
  api::AnalysisConfig config;
  config.interval_s(30.0).keep_flows(true);
  const auto reports = api::analyze(packets, config);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].interval.flows.size(), reports[0].inputs.flows);
  EXPECT_TRUE(std::is_sorted(reports[0].interval.flows.begin(),
                             reports[0].interval.flows.end(),
                             flow::ByStart{}));
}

TEST(PipelineReport, JsonContainsTheHeadlineNumbers) {
  const auto packets = seeded_trace(30.0, 6e6, 3);
  api::AnalysisConfig config;
  config.interval_s(30.0);
  const auto reports = api::analyze(packets, config);
  ASSERT_EQ(reports.size(), 1u);

  const std::string json = api::to_json(reports[0]);
  for (const char* key :
       {"interval_index", "lambda_per_s", "mean_size_bits",
        "mean_s2_over_d_bits2_per_s", "variance_bps2", "shot_b_fitted",
        "capacity_bps", "headroom"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(PipelineSummary, MatchesTraceTotals) {
  const auto packets = seeded_trace();
  api::AnalysisPipeline pipeline(api::AnalysisConfig{});
  for (const auto& p : packets) pipeline.push(p);
  pipeline.finish();
  std::uint64_t total_bytes = 0;
  for (const auto& p : packets) total_bytes += p.size_bytes;
  EXPECT_EQ(pipeline.summary().packets, packets.size());
  EXPECT_EQ(pipeline.summary().total_bytes, total_bytes);
  EXPECT_EQ(pipeline.summary().last_ts, packets.back().timestamp);
}

}  // namespace
}  // namespace fbm
