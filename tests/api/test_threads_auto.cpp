// threads == 0 means "use every core": resolve_threads() turns it into
// std::thread::hardware_concurrency() (floor 1), and both the parallel
// pipeline and the engine accept it — with output bit-identical to any
// other thread count, since threads is a throughput knob, never identity.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/shard.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> small_trace() {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 10.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(4e6);
  cfg.seed = 828;
  return trace::generate_packets(cfg);
}

api::AnalysisConfig base_config() {
  api::AnalysisConfig cfg;
  cfg.timeout_s(2.0).interval_s(5.0);
  return cfg;
}

TEST(ThreadsAuto, ResolveThreadsMapsZeroToHardwareConcurrency) {
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(api::resolve_threads(0), hw == 0 ? 1u : hw);
  EXPECT_GE(api::resolve_threads(0), 1u);  // floor even on unknown hardware
  EXPECT_EQ(api::resolve_threads(1), 1u);
  EXPECT_EQ(api::resolve_threads(7), 7u);  // explicit values pass through
}

TEST(ThreadsAuto, AutoDetectedPipelineMatchesSerialBitForBit) {
  const auto packets = small_trace();

  const auto run = [&](auto&& pipeline) {
    std::vector<api::AnalysisReport> reports;
    pipeline.set_report_sink(
        [&](api::AnalysisReport&& r) { reports.push_back(std::move(r)); });
    for (const auto& p : packets) pipeline.push(p);
    pipeline.finish();
    return api::to_json(pipeline.summary(), reports);
  };

  api::AnalysisConfig serial = base_config();
  api::AnalysisConfig autodetect = base_config();
  autodetect.threads(0);
  EXPECT_EQ(run(api::ParallelAnalysisPipeline(autodetect)),
            run(api::AnalysisPipeline(serial)));
}

TEST(ThreadsAuto, EngineAcceptsThreadsZero) {
  engine::EngineConfig config;
  config.mode = engine::EngineMode::batch;
  config.analysis = base_config();
  config.threads = 0;  // auto — previously rejected with invalid_argument

  engine::Engine eng(config);
  std::vector<api::AnalysisReport> reports;
  eng.set_report_sink([&](engine::LinkReport&& r) {
    reports.push_back(std::move(*r.interval));
  });
  engine::LinkSpec tap;
  tap.name = "tap";
  tap.rule = engine::MatchAll{};
  (void)eng.attach(std::move(tap));
  for (const auto& p : small_trace()) eng.push(p);
  eng.finish();
  EXPECT_GT(reports.size(), 0u);
  EXPECT_EQ(eng.summary().packets > 0, true);
}

}  // namespace
}  // namespace fbm
