#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "api/trace_source.hpp"
#include "stats/distributions.hpp"
#include "trace/trace_format.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> tiny_trace() {
  std::vector<net::PacketRecord> out;
  net::FiveTuple t;
  t.src = net::Ipv4Address(10, 0, 0, 1);
  t.dst = net::Ipv4Address(10, 0, 1, 1);
  t.src_port = 1234;
  t.dst_port = 80;
  t.protocol = 6;
  for (int i = 0; i < 5; ++i) {
    out.push_back({0.1 * i, t, static_cast<std::uint32_t>(100 + i)});
  }
  return out;
}

TEST(VectorTraceSource, StreamsInOrder) {
  const auto packets = tiny_trace();
  api::VectorTraceSource source(packets);
  EXPECT_EQ(source.count_hint(), packets.size());
  for (const auto& expected : packets) {
    const auto p = source.next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, expected);
  }
  EXPECT_FALSE(source.next().has_value());
  EXPECT_FALSE(source.next().has_value());  // stays exhausted
}

TEST(FileTraceSource, StreamsAnFbmtFileWithoutMaterializing) {
  const auto packets = tiny_trace();
  const auto path =
      std::filesystem::temp_directory_path() / "fbm_api_source_test.fbmt";
  trace::write_trace(path, packets);

  api::FileTraceSource source(path);
  EXPECT_EQ(source.count_hint(), packets.size());
  std::size_t n = 0;
  source.for_each([&](const net::PacketRecord& p) {
    EXPECT_EQ(p, packets[n]);
    ++n;
  });
  EXPECT_EQ(n, packets.size());
  std::filesystem::remove(path);
}

TEST(OpenTrace, DispatchesOnExtension) {
  const auto packets = tiny_trace();
  const auto dir = std::filesystem::temp_directory_path();
  const auto fbmt = dir / "fbm_api_open_test.fbmt";
  const auto csv = dir / "fbm_api_open_test.csv";
  trace::write_trace(fbmt, packets);
  trace::export_csv(csv, packets);

  for (const auto& path : {fbmt, csv}) {
    SCOPED_TRACE(path.string());
    auto source = api::open_trace(path);
    std::size_t n = 0;
    source->for_each([&](const net::PacketRecord&) { ++n; });
    EXPECT_EQ(n, packets.size());
  }
  std::filesystem::remove(fbmt);
  std::filesystem::remove(csv);
}

TEST(SyntheticTraceSource, MatchesTheGenerator) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 10.0;
  cfg.apply_defaults();
  cfg.seed = 11;
  const auto direct = trace::generate_packets(cfg);

  api::SyntheticTraceSource source(cfg);
  EXPECT_EQ(source.count_hint(), direct.size());
  EXPECT_EQ(source.report().packets, direct.size());
  std::size_t n = 0;
  source.for_each([&](const net::PacketRecord& p) {
    ASSERT_LT(n, direct.size());
    EXPECT_EQ(p, direct[n]);
    ++n;
  });
  EXPECT_EQ(n, direct.size());
}

api::ModelSourceConfig model_config() {
  api::ModelSourceConfig cfg;
  cfg.duration_s = 20.0;
  cfg.lambda = 50.0;
  cfg.shot_b = 1.0;
  cfg.size_bits = std::make_shared<stats::LogNormal>(
      std::log(4e4), 1.0);
  cfg.duration_s_dist =
      std::make_shared<stats::LogNormal>(std::log(0.5), 0.8);
  cfg.seed = 21;
  return cfg;
}

TEST(ModelTraceSource, EmitsTimestampOrderedPacketsInsideTheHorizon) {
  api::ModelTraceSource source(model_config());
  double last = -1.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  source.for_each([&](const net::PacketRecord& p) {
    EXPECT_GE(p.timestamp, last);
    EXPECT_LT(p.timestamp, 20.0);
    EXPECT_GT(p.size_bytes, 0u);
    last = p.timestamp;
    ++packets;
    bytes += p.size_bytes;
  });
  EXPECT_GT(source.flows_started(), 500u);  // ~lambda * duration
  EXPECT_LT(source.flows_started(), 1500u);
  EXPECT_GT(packets, source.flows_started());  // multi-packet flows exist
  // Offered load ~ lambda * E[S]; generous band (horizon truncation).
  const double rate_bps = static_cast<double>(bytes) * 8.0 / 20.0;
  const double expected = 50.0 * 4e4 * std::exp(0.5);  // lognormal mean
  EXPECT_GT(rate_bps, 0.3 * expected);
  EXPECT_LT(rate_bps, 1.5 * expected);
}

TEST(ModelTraceSource, IsDeterministicPerSeed) {
  api::ModelTraceSource a(model_config());
  api::ModelTraceSource b(model_config());
  while (true) {
    const auto pa = a.next();
    const auto pb = b.next();
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    EXPECT_EQ(*pa, *pb);
  }
}

TEST(ModelTraceSource, RejectsBadConfig) {
  auto cfg = model_config();
  cfg.lambda = 0.0;
  EXPECT_THROW(api::ModelTraceSource{cfg}, std::invalid_argument);
  cfg = model_config();
  cfg.size_bits = nullptr;
  cfg.resample_pool.clear();
  EXPECT_THROW(api::ModelTraceSource{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace fbm
