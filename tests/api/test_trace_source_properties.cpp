// Property tests over every TraceSource implementation: timestamps never
// decrease, byte counts are conserved from source to pipeline summary to
// rate bins, and the model-driven source is exactly reproducible per seed.
// These are the invariants the analysis pipelines (serial and sharded)
// lean on; a source that violated them would poison everything downstream.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <vector>

#include "api/api.hpp"
#include "stats/distributions.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_format.hpp"

namespace fbm {
namespace {

api::ModelSourceConfig model_config(std::uint64_t seed = 31) {
  api::ModelSourceConfig cfg;
  cfg.duration_s = 15.0;
  cfg.lambda = 40.0;
  cfg.shot_b = 1.0;
  cfg.size_bits = std::make_shared<stats::LogNormal>(std::log(3e4), 1.0);
  cfg.duration_s_dist = std::make_shared<stats::LogNormal>(std::log(0.4), 0.8);
  cfg.seed = seed;
  return cfg;
}

struct SourceTotals {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
};

/// Drains the source, asserting the ordering property as it goes.
SourceTotals drain_checking_order(api::TraceSource& source) {
  SourceTotals t;
  double last = -std::numeric_limits<double>::infinity();
  while (auto p = source.next()) {
    EXPECT_GE(p->timestamp, last) << "timestamps must be non-decreasing";
    last = p->timestamp;
    if (t.packets == 0) t.first_ts = p->timestamp;
    t.last_ts = p->timestamp;
    ++t.packets;
    t.bytes += p->size_bytes;
  }
  return t;
}

TEST(TraceSourceProperties, ModelSourceTimestampsNeverDecrease) {
  api::ModelTraceSource source(model_config());
  const auto totals = drain_checking_order(source);
  EXPECT_GT(totals.packets, 0u);
}

TEST(TraceSourceProperties, SyntheticSourceTimestampsNeverDecrease) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 20.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(4e6);
  cfg.seed = 5;
  api::SyntheticTraceSource source(cfg);
  const auto totals = drain_checking_order(source);
  EXPECT_GT(totals.packets, 0u);
}

TEST(TraceSourceProperties, BytesConservedFromSourceThroughPipelines) {
  // The same packets, counted three ways: straight off the source, by the
  // serial pipeline's summary, and by the sharded pipeline's summary. All
  // must agree exactly — bytes are integers, nothing may leak.
  const auto count = [](api::TraceSource& s) {
    SourceTotals t;
    s.for_each([&](const net::PacketRecord& p) {
      ++t.packets;
      t.bytes += p.size_bytes;
    });
    return t;
  };

  api::ModelTraceSource direct(model_config());
  const auto totals = count(direct);
  ASSERT_GT(totals.packets, 0u);

  api::AnalysisConfig config;
  config.interval_s(5.0).timeout_s(1.0);

  api::ModelTraceSource for_serial(model_config());
  api::AnalysisPipeline serial(config);
  serial.consume(for_serial);
  EXPECT_EQ(serial.summary().packets, totals.packets);
  EXPECT_EQ(serial.summary().total_bytes, totals.bytes);

  api::ModelTraceSource for_parallel(model_config());
  api::ParallelAnalysisPipeline parallel(config.threads(4));
  parallel.consume(for_parallel);
  EXPECT_EQ(parallel.summary().packets, totals.packets);
  EXPECT_EQ(parallel.summary().total_bytes, totals.bytes);
}

TEST(TraceSourceProperties, SyntheticReportMatchesStreamedTotals) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 15.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(3e6);
  cfg.seed = 9;
  api::SyntheticTraceSource source(cfg);
  const auto& report = source.report();
  const auto totals = drain_checking_order(source);
  EXPECT_EQ(totals.packets, report.packets);
  EXPECT_EQ(totals.bytes, report.total_bytes);
}

TEST(TraceSourceProperties, FileRoundTripConservesEverything) {
  const auto path =
      std::filesystem::temp_directory_path() / "fbm_props_roundtrip.fbmt";
  api::ModelTraceSource source(model_config(77));
  std::vector<net::PacketRecord> original;
  source.for_each(
      [&](const net::PacketRecord& p) { original.push_back(p); });
  trace::write_trace(path, original);

  api::FileTraceSource file(path);
  EXPECT_EQ(file.count_hint(), original.size());
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  while (auto p = file.next()) {
    ASSERT_LT(i, original.size());
    EXPECT_EQ(*p, original[i]);
    bytes += p->size_bytes;
    ++i;
  }
  EXPECT_EQ(i, original.size());
  std::uint64_t expected_bytes = 0;
  for (const auto& p : original) expected_bytes += p.size_bytes;
  EXPECT_EQ(bytes, expected_bytes);
  std::filesystem::remove(path);
}

TEST(TraceSourceProperties, ModelSourceSeedReproducibility) {
  // Same seed: identical packet streams. Different seed: the streams must
  // diverge (same length by coincidence is possible, identical content is
  // not).
  api::ModelTraceSource a(model_config(123));
  api::ModelTraceSource b(model_config(123));
  api::ModelTraceSource c(model_config(124));
  std::vector<net::PacketRecord> pa;
  std::vector<net::PacketRecord> pb;
  std::vector<net::PacketRecord> pc;
  a.for_each([&](const net::PacketRecord& p) { pa.push_back(p); });
  b.for_each([&](const net::PacketRecord& p) { pb.push_back(p); });
  c.for_each([&](const net::PacketRecord& p) { pc.push_back(p); });
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "packet " << i;
  }
  EXPECT_NE(pa, pc);
}

TEST(TraceSourceProperties, SeedReproducibilitySurvivesThePipeline) {
  // End to end: two pipelines fed from two same-seed sources produce
  // byte-identical JSON (the golden test's premise, proven here from the
  // source side).
  api::AnalysisConfig config;
  config.interval_s(5.0).timeout_s(1.0);
  const auto run = [&config](std::uint64_t seed) {
    api::ModelTraceSource source(model_config(seed));
    api::AnalysisPipeline pipeline(config);
    pipeline.consume(source);
    const auto reports = pipeline.take_reports();
    return api::to_json(pipeline.summary(), reports);
  };
  EXPECT_EQ(run(55), run(55));
  EXPECT_NE(run(55), run(56));
}

}  // namespace
}  // namespace fbm
