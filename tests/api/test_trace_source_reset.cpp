// TraceSource::reset() (windowed replay and the differential harnesses
// rewind sources instead of silently reading an exhausted one) and the
// streaming pcap path (open_trace on .pcap no longer materializes the whole
// capture; records stream out identical to the batch importer's).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "api/api.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "trace/pcap.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_format.hpp"

namespace fbm {
namespace {

namespace fs = std::filesystem;

class TraceSourceResetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case directory: gtest_discover_tests runs each case as its
    // own process under ctest -j, and a shared directory would race with
    // TearDown's remove_all in a sibling case.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("fbm_source_reset_test_" + std::string(info->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }
  fs::path dir_;
};

std::vector<net::PacketRecord> sample_packets(int n, std::uint64_t seed = 7) {
  stats::Rng rng(seed);
  std::vector<net::PacketRecord> out;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(200.0);
    net::PacketRecord r;
    r.timestamp = t;
    r.tuple.src = net::Ipv4Address(10, 1, 0, 1);
    r.tuple.dst = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, ~0u)));
    r.tuple.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    r.tuple.dst_port = 443;
    r.tuple.protocol = rng.bernoulli(0.7) ? 6 : 17;
    r.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(40, 1500));
    out.push_back(r);
  }
  return out;
}

std::vector<net::PacketRecord> drain(api::TraceSource& source) {
  std::vector<net::PacketRecord> out;
  while (auto p = source.next()) out.push_back(*p);
  return out;
}

void expect_same(const std::vector<net::PacketRecord>& a,
                 const std::vector<net::PacketRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << i;
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes) << i;
    EXPECT_EQ(a[i].tuple.src_port, b[i].tuple.src_port) << i;
  }
}

void expect_replays(api::TraceSource& source) {
  const auto first = drain(source);
  EXPECT_FALSE(first.empty());
  EXPECT_FALSE(source.next().has_value());  // exhausted
  ASSERT_TRUE(source.reset());
  const auto second = drain(source);
  expect_same(first, second);
}

TEST_F(TraceSourceResetTest, VectorSourceReplays) {
  api::VectorTraceSource source(sample_packets(50));
  expect_replays(source);
}

TEST_F(TraceSourceResetTest, FileSourceReplays) {
  const auto path = file("t.fbmt");
  trace::write_trace(path, sample_packets(50));
  api::FileTraceSource source(path);
  expect_replays(source);
}

TEST_F(TraceSourceResetTest, PcapSourceReplays) {
  const auto path = file("t.pcap");
  trace::export_pcap(path, sample_packets(50));
  api::PcapTraceSource source(path);
  expect_replays(source);
}

TEST_F(TraceSourceResetTest, SyntheticSourceReplays) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 5.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(2e6);
  cfg.seed = 11;
  api::SyntheticTraceSource source(cfg);
  expect_replays(source);
}

TEST_F(TraceSourceResetTest, ModelSourceReplays) {
  api::ModelSourceConfig cfg;
  cfg.duration_s = 5.0;
  cfg.lambda = 30.0;
  cfg.size_bits = std::make_shared<stats::LogNormal>(std::log(3e4), 1.0);
  cfg.duration_s_dist =
      std::make_shared<stats::LogNormal>(std::log(0.4), 0.8);
  cfg.seed = 13;
  api::ModelTraceSource source(cfg);
  expect_replays(source);
}

TEST_F(TraceSourceResetTest, BaseContractIsSinglePass) {
  // A TraceSource that does not override reset() stays single-pass and says
  // so, instead of silently replaying garbage.
  struct OnceSource final : api::TraceSource {
    int left = 3;
    std::optional<net::PacketRecord> next() override {
      if (left == 0) return std::nullopt;
      --left;
      net::PacketRecord p;
      p.timestamp = static_cast<double>(3 - left);
      return p;
    }
  } source;
  (void)drain(source);
  EXPECT_FALSE(source.reset());
}

// ------------------------------------------------------ streaming pcap ---

TEST_F(TraceSourceResetTest, PcapStreamsIdenticalToBatchImport) {
  const auto path = file("stream.pcap");
  const auto packets = sample_packets(200);
  trace::export_pcap(path, packets);

  const auto batch = trace::import_pcap(path);
  auto source = api::open_trace(path);
  const auto streamed = drain(*source);
  ASSERT_EQ(batch.size(), streamed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].timestamp, streamed[i].timestamp) << i;
    EXPECT_EQ(batch[i].size_bytes, streamed[i].size_bytes) << i;
    EXPECT_EQ(batch[i].tuple.src.value(), streamed[i].tuple.src.value()) << i;
    EXPECT_EQ(batch[i].tuple.dst.value(), streamed[i].tuple.dst.value()) << i;
  }
}

TEST_F(TraceSourceResetTest, OpenTraceServesPcapWithoutMaterializing) {
  const auto path = file("typed.pcap");
  trace::export_pcap(path, sample_packets(10));
  auto source = api::open_trace(path);
  // The streaming reader reports no up-front count — the file is not read
  // ahead (VectorTraceSource would know its size).
  EXPECT_EQ(source->count_hint(), api::TraceSource::kUnknownCount);
  EXPECT_NE(dynamic_cast<api::PcapTraceSource*>(source.get()), nullptr);
}

TEST_F(TraceSourceResetTest, FollowPollsAppendedRecords) {
  // tail -f semantics on a growing .fbmt: EOF means "no data yet", and
  // records appended later stream out on subsequent next() calls.
  const auto path = file("follow.fbmt");
  const auto packets = sample_packets(20);
  {
    trace::TraceWriter writer(path);
    for (std::size_t i = 0; i < 10; ++i) writer.append(packets[i]);
    writer.close();

    api::FileTraceSource source(path, /*follow=*/true);
    std::size_t n = 0;
    while (source.next()) ++n;
    EXPECT_EQ(n, 10u);
    EXPECT_FALSE(source.next().has_value());  // nothing yet — no throw

    // Append the rest (a fresh writer truncates, so re-write everything;
    // the reader keeps its own offset and must pick up records 10..19).
    trace::TraceWriter writer2(path);
    // Re-writing would clobber the reader's offset; append via raw stream
    // is what a live capture does, so emulate it: write a longer file.
    writer2.append_all(packets);
    writer2.close();

    // The reader sits at record offset 10 of the (now longer) file.
    std::vector<net::PacketRecord> tail;
    while (auto p = source.next()) tail.push_back(*p);
    ASSERT_EQ(tail.size(), 10u);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(tail[i].timestamp, packets[10 + i].timestamp) << i;
    }
  }
}

TEST_F(TraceSourceResetTest, FollowRejectsCsv) {
  const auto path = file("x.csv");
  std::ofstream(path) << "timestamp,src,dst,sport,dport,proto,bytes\n";
  EXPECT_THROW((void)api::open_trace(path, /*follow=*/true),
               std::invalid_argument);
}

}  // namespace
}  // namespace fbm
