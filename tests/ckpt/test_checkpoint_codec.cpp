// Checkpoint codec under hostile input (mirrors tests/agg/
// test_partial_codec.cpp): truncation at every byte boundary, flipped bits,
// wrong magic, future versions, trailing garbage, a missing end frame, a
// mismatched frame count — every defect is rejected with a one-line
// diagnostic naming the file, never silently restored. A checkpoint is
// end-framed (unlike the report store): a torn tail is a hard error, the
// previous checkpoint file is the recovery path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "live/live.hpp"
#include "trace/synthetic.hpp"

namespace fbm::ckpt {
namespace {

std::filesystem::path temp_path(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::filesystem::path(::testing::TempDir()) /
         ("ckpt_codec_" + std::string(info->name()) + "_" + tag + ".fbmc");
}

std::vector<char> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::filesystem::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

live::LiveConfig sample_config() {
  live::LiveConfig config;
  config.window_s = 4.0;
  config.stride_s = 2.0;
  config.analysis.timeout_s(3.0);
  return config;
}

/// A checkpoint with real mid-stream state: open windows, active flows,
/// forecast history.
std::filesystem::path write_sample(const std::string& tag) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 30.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(6e6);
  cfg.seed = 99;
  const auto packets = trace::generate_packets(cfg);

  const live::LiveConfig config = sample_config();
  live::WindowedEstimator est(config);
  est.set_window_sink([](live::WindowReport&&) {});
  for (std::size_t i = 0; i < packets.size() / 2; ++i) est.push(packets[i]);

  const auto path = temp_path(tag);
  write_checkpoint(path, agg::PartialMeta::from_live(config),
                   est.save_state());
  return path;
}

void expect_rejected(const std::filesystem::path& path,
                     const std::string& needle) {
  try {
    (void)read_checkpoint(path);
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
    EXPECT_NE(std::string(e.what()).find(path.filename().string()),
              std::string::npos)
        << "diagnostic must name the file: " << e.what();
  }
}

TEST(CheckpointCodec, RoundTripsState) {
  const auto path = write_sample("rt");
  const Checkpoint ck = read_checkpoint(path);
  EXPECT_EQ(ck.kind, CheckpointKind::estimator);
  EXPECT_GT(ck.estimator.counters.packets, 0u);
  EXPECT_FALSE(ck.estimator.open.empty());
  // Restoring and resuming must work (the differential test proves the
  // output; here we just prove the codec hands back usable state).
  live::WindowedEstimator est(sample_config());
  EXPECT_NO_THROW(est.restore_state(ck.estimator));
  EXPECT_EQ(est.counters().packets, ck.estimator.counters.packets);
}

TEST(CheckpointCodec, AtomicRename_NoTmpLeftBehind) {
  const auto path = write_sample("atomic");
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(CheckpointCodec, RejectsMissingFile) {
  expect_rejected(temp_path("nonexistent"), "cannot open");
}

TEST(CheckpointCodec, RejectsBadMagic) {
  const auto path = write_sample("magic");
  auto bytes = slurp(path);
  bytes[0] ^= 0x01;
  spit(path, bytes);
  expect_rejected(path, "not a checkpoint (bad magic)");
}

TEST(CheckpointCodec, RejectsFutureVersion) {
  const auto path = write_sample("ver");
  auto bytes = slurp(path);
  bytes[4] = 0x7f;
  spit(path, bytes);
  expect_rejected(path, "unsupported version");
}

TEST(CheckpointCodec, RejectsTruncationAtEveryBoundary) {
  const auto path = write_sample("trunc");
  const auto bytes = slurp(path);
  // A dense sweep near the header plus coarse cuts through the body keeps
  // runtime reasonable while still hitting frame-header, payload and
  // checksum cuts.
  const auto probe = temp_path("trunc_probe");
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 64 ? 1 : 97)) {
    spit(probe, std::vector<char>(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut)));
    EXPECT_THROW((void)read_checkpoint(probe), std::runtime_error)
        << "cut at byte " << cut << " must not parse";
  }
}

/// Byte ranges the checksums deliberately do not cover: the file header's
/// u64 reserved and each frame header's u32 reserved. Everything else must
/// be flip-detected.
std::vector<std::pair<std::size_t, std::size_t>> reserved_ranges(
    const std::vector<char>& bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.emplace_back(8, 16);
  std::size_t pos = 16;
  while (pos + 16 <= bytes.size()) {
    out.emplace_back(pos + 4, pos + 8);
    std::uint64_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 8, sizeof(len));
    pos += 16 + len + 8;
  }
  return out;
}

TEST(CheckpointCodec, RejectsFlippedBitAnywhere) {
  const auto path = write_sample("flip");
  const auto bytes = slurp(path);
  const auto reserved = reserved_ranges(bytes);
  const auto probe = temp_path("flip_probe");
  // Flip one bit in every 53rd byte (coprime stride covers all regions:
  // frame headers, payloads, checksums), skipping unchecksummed reserved
  // padding.
  for (std::size_t at = 16; at < bytes.size(); at += 53) {
    bool is_reserved = false;
    for (const auto& [lo, hi] : reserved) {
      if (at >= lo && at < hi) is_reserved = true;
    }
    if (is_reserved) continue;
    auto corrupt = bytes;
    corrupt[at] ^= 0x10;
    spit(probe, corrupt);
    EXPECT_THROW((void)read_checkpoint(probe), std::runtime_error)
        << "flipped bit at byte " << at << " must not parse";
  }
}

TEST(CheckpointCodec, RejectsTrailingGarbage) {
  const auto path = write_sample("trail");
  auto bytes = slurp(path);
  for (int i = 0; i < 24; ++i) bytes.push_back(static_cast<char>(i));
  spit(path, bytes);
  expect_rejected(path, "trailing data");
}

TEST(CheckpointCodec, RejectsMissingEndFrame) {
  const auto path = write_sample("noend");
  auto bytes = slurp(path);
  // The end frame is the last 40 bytes: 16-byte frame header + 16-byte
  // payload (frame count + packet total) + 8-byte checksum.
  bytes.resize(bytes.size() - 40);
  spit(path, bytes);
  expect_rejected(path, "truncated");
}

TEST(CheckpointCodec, EngineCheckpointRoundTrips) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 20.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(6e6);
  cfg.seed = 7;
  const auto packets = trace::generate_packets(cfg);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = sample_config();
  engine::Engine eng(config);
  (void)eng.attach(engine::parse_link_spec("a=10.0.0.0/8"));
  (void)eng.attach(engine::parse_link_spec("tap=all"));
  eng.set_report_sink([](engine::LinkReport&&) {});
  for (std::size_t i = 0; i < packets.size() / 2; ++i) eng.push(packets[i]);

  agg::PartialMeta meta = agg::PartialMeta::from_live(config.live);
  meta.engine = true;
  meta.links = {{0, "a"}, {1, "tap"}};
  const auto path = temp_path("engine");
  write_checkpoint(path, meta, eng.save_state());

  const Checkpoint ck = read_checkpoint(path);
  EXPECT_EQ(ck.kind, CheckpointKind::engine);
  ASSERT_EQ(ck.engine.sessions.size(), 2u);
  EXPECT_EQ(ck.engine.sessions[0].name, "a");
  EXPECT_EQ(ck.engine.sessions[1].name, "tap");
  EXPECT_TRUE(ck.engine.sessions[0].has_live);
  EXPECT_GT(ck.packets_consumed(), 0u);
}

TEST(CheckpointCodec, EngineRejectsSpliceDroppedSessionFrame) {
  // Remove the final session frame: the reader must notice the engine
  // frame declared more sessions than arrived.
  trace::SyntheticConfig cfg;
  cfg.duration_s = 12.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(4e6);
  cfg.seed = 3;
  const auto packets = trace::generate_packets(cfg);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = sample_config();
  engine::Engine eng(config);
  (void)eng.attach(engine::parse_link_spec("a=10.0.0.0/8"));
  (void)eng.attach(engine::parse_link_spec("tap=all"));
  eng.set_report_sink([](engine::LinkReport&&) {});
  for (std::size_t i = 0; i < packets.size() / 2; ++i) eng.push(packets[i]);

  agg::PartialMeta meta = agg::PartialMeta::from_live(config.live);
  meta.engine = true;
  meta.links = {{0, "a"}, {1, "tap"}};
  const auto path = temp_path("splice");
  write_checkpoint(path, meta, eng.save_state());

  // Splice the last session frame out wholesale (checksum intact, end
  // frame intact): the end frame's frame-count cross-check must notice.
  const auto bytes = slurp(path);
  std::size_t pos = 16;
  std::size_t frame_start = 0;
  std::size_t frame_end = 0;
  while (pos + 16 <= bytes.size()) {
    std::uint32_t type = 0;
    std::uint64_t len = 0;
    std::memcpy(&type, bytes.data() + pos, sizeof(type));
    std::memcpy(&len, bytes.data() + pos + 8, sizeof(len));
    const std::size_t next = pos + 16 + len + 8;
    if (type == 4) {  // session frame
      frame_start = pos;
      frame_end = next;
    }
    pos = next;
  }
  ASSERT_GT(frame_end, frame_start);
  std::vector<char> spliced(bytes.begin(),
                            bytes.begin() + static_cast<long>(frame_start));
  spliced.insert(spliced.end(),
                 bytes.begin() + static_cast<long>(frame_end), bytes.end());
  spit(path, spliced);
  expect_rejected(path, "mismatch");
}

}  // namespace
}  // namespace fbm::ckpt
