// The durability acceptance proof (ISSUE 8): checkpoint → serialize →
// restore → resume reproduces the uninterrupted run's remaining reports
// BYTE-identically (the rendered JSONL lines, not just close values), for
// the single live::WindowedEstimator and the multi-link engine::Engine,
// across window shapes (tiling, overlapping, gapped), both flow
// definitions, and several cut points — including cuts that land mid-window
// with open classifier tables, the case that forces exact-slot-layout
// restoration (FP accumulation order in drain()).
//
// Every snapshot goes through the on-disk codec (write_checkpoint →
// read_checkpoint on a real file), so the differential also proves the
// serialization loses nothing.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "agg/partial_codec.hpp"
#include "ckpt/checkpoint.hpp"
#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "live/live.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> seeded_trace(double duration_s = 40.0,
                                            std::uint64_t seed = 4242) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(8e6);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

// Per-test-case filenames: ctest -j runs suite cases as concurrent
// processes sharing one TempDir, so a fixed name would race.
std::filesystem::path temp_ckpt(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::filesystem::path(::testing::TempDir()) /
         ("ckpt_" + std::string(info->name()) + "_" + tag + ".fbmc");
}

live::LiveConfig live_config(api::FlowDefinition def, double width,
                             double stride) {
  live::LiveConfig config;
  config.window_s = width;
  config.stride_s = stride;
  config.analysis.flow_definition(def).timeout_s(3.0);
  return config;
}

/// Uninterrupted reference: every report line of the whole trace.
std::vector<std::string> reference_lines(
    const std::vector<net::PacketRecord>& packets,
    const live::LiveConfig& config) {
  live::WindowedEstimator est(config);
  std::vector<std::string> lines;
  est.set_window_sink([&](live::WindowReport&& r) {
    lines.push_back(live::to_jsonl(r));
  });
  for (const auto& p : packets) est.push(p);
  est.finish();
  return lines;
}

/// Killed-and-resumed run: push `cut` packets, checkpoint through the real
/// file codec, restore into a fresh estimator, push the rest. Returns the
/// concatenation of both processes' lines.
std::vector<std::string> resumed_lines(
    const std::vector<net::PacketRecord>& packets,
    const live::LiveConfig& config, std::size_t cut,
    const std::filesystem::path& path) {
  std::vector<std::string> lines;

  live::WindowedEstimator first(config);
  first.set_window_sink([&](live::WindowReport&& r) {
    lines.push_back(live::to_jsonl(r));
  });
  for (std::size_t i = 0; i < cut; ++i) first.push(packets[i]);
  ckpt::write_checkpoint(path, agg::PartialMeta::from_live(config),
                         first.save_state());
  // `first` is abandoned here — the simulated SIGKILL.

  const ckpt::Checkpoint ck = ckpt::read_checkpoint(path);
  EXPECT_EQ(ck.kind, ckpt::CheckpointKind::estimator);
  agg::check_compatible(ck.meta, agg::PartialMeta::from_live(config));
  EXPECT_EQ(ck.packets_consumed(), cut);

  live::WindowedEstimator second(config);
  second.restore_state(ck.estimator);
  second.set_window_sink([&](live::WindowReport&& r) {
    lines.push_back(live::to_jsonl(r));
  });
  for (std::size_t i = cut; i < packets.size(); ++i) second.push(packets[i]);
  second.finish();
  return lines;
}

void run_estimator_differential(api::FlowDefinition def, double width,
                                double stride) {
  const auto packets = seeded_trace();
  const live::LiveConfig config = live_config(def, width, stride);
  const auto ref = reference_lines(packets, config);
  ASSERT_GT(ref.size(), 4u);

  // Cut early (tables still filling), mid-stream, and late; the exact
  // packet indices land at arbitrary points inside windows.
  for (const std::size_t cut :
       {packets.size() / 5, packets.size() / 2, packets.size() - 3}) {
    const auto got = resumed_lines(packets, config, cut,
                                   temp_ckpt(std::to_string(cut)));
    ASSERT_EQ(ref.size(), got.size()) << "cut at packet " << cut;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "report " << i << ", cut " << cut;
    }
  }
}

TEST(CheckpointDifferential, TilingFiveTuple) {
  run_estimator_differential(api::FlowDefinition::five_tuple, 4.0, 4.0);
}

TEST(CheckpointDifferential, TilingPrefix24) {
  run_estimator_differential(api::FlowDefinition::prefix24, 4.0, 4.0);
}

TEST(CheckpointDifferential, OverlappingFiveTuple) {
  run_estimator_differential(api::FlowDefinition::five_tuple, 6.0, 2.0);
}

TEST(CheckpointDifferential, OverlappingPrefix24) {
  run_estimator_differential(api::FlowDefinition::prefix24, 6.0, 2.0);
}

TEST(CheckpointDifferential, GappedFiveTuple) {
  run_estimator_differential(api::FlowDefinition::five_tuple, 2.0, 3.0);
}

TEST(CheckpointDifferential, CutExactlyOnWindowBoundary) {
  const auto packets = seeded_trace();
  const auto config =
      live_config(api::FlowDefinition::five_tuple, 4.0, 4.0);
  const auto ref = reference_lines(packets, config);
  // First packet index at/after t = 12.0: the checkpoint lands right after
  // a close cascade, with the freshest window nearly empty.
  std::size_t cut = 0;
  while (cut < packets.size() && packets[cut].timestamp < 12.0) ++cut;
  ASSERT_GT(cut, 0u);
  const auto got = resumed_lines(packets, config, cut + 1, temp_ckpt("b"));
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], got[i]);
}

TEST(CheckpointDifferential, SaveStateRefusesUndrainedReports) {
  const auto packets = seeded_trace(20.0);
  live::WindowedEstimator est(
      live_config(api::FlowDefinition::five_tuple, 4.0, 4.0));
  for (const auto& p : packets) est.push(p);  // no sink: reports queue up
  ASSERT_TRUE(est.has_report());
  EXPECT_THROW((void)est.save_state(), std::logic_error);
  (void)est.take_reports();
  EXPECT_NO_THROW((void)est.save_state());
}

TEST(CheckpointDifferential, RestoreRefusesUsedEstimator) {
  const auto packets = seeded_trace(20.0);
  const auto config =
      live_config(api::FlowDefinition::five_tuple, 4.0, 4.0);
  live::WindowedEstimator est(config);
  est.set_window_sink([](live::WindowReport&&) {});
  for (std::size_t i = 0; i < 100; ++i) est.push(packets[i]);
  const auto state = est.save_state();
  EXPECT_THROW(est.restore_state(state), std::logic_error);
}

TEST(CheckpointDifferential, RestoreRefusesMismatchedConfig) {
  const auto packets = seeded_trace(20.0);
  const auto config =
      live_config(api::FlowDefinition::five_tuple, 4.0, 4.0);
  live::WindowedEstimator est(config);
  est.set_window_sink([](live::WindowReport&&) {});
  for (std::size_t i = 0; i < 1000; ++i) est.push(packets[i]);
  const auto path = temp_ckpt("cfg");
  ckpt::write_checkpoint(path, agg::PartialMeta::from_live(config),
                         est.save_state());
  const auto ck = ckpt::read_checkpoint(path);
  const auto other =
      live_config(api::FlowDefinition::prefix24, 4.0, 4.0);
  EXPECT_THROW(
      agg::check_compatible(ck.meta, agg::PartialMeta::from_live(other)),
      std::runtime_error);
}

// ---------------------------------------------------------------- engine ---

std::vector<engine::LinkSpec> test_links() {
  std::vector<engine::LinkSpec> specs;
  specs.push_back(engine::parse_link_spec("wide=10.0.0.0/8"));
  specs.push_back(engine::parse_link_spec("narrow=10.1.0.0/16"));
  specs.push_back(engine::parse_link_spec("tap=all"));
  return specs;
}

engine::EngineConfig engine_config(std::size_t threads) {
  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = live_config(api::FlowDefinition::five_tuple, 4.0, 4.0);
  config.threads = threads;
  return config;
}

agg::PartialMeta engine_meta(const engine::EngineConfig& config) {
  agg::PartialMeta meta = agg::PartialMeta::from_live(config.live);
  meta.engine = true;
  const auto specs = test_links();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    meta.links.push_back({static_cast<std::uint32_t>(i), specs[i].name});
  }
  return meta;
}

/// Tagged line stream of an uninterrupted engine run.
std::vector<std::string> engine_reference(
    const std::vector<net::PacketRecord>& packets, std::size_t threads) {
  engine::Engine eng(engine_config(threads));
  for (auto& spec : test_links()) (void)eng.attach(std::move(spec));
  std::vector<std::string> lines;
  eng.set_report_sink([&](engine::LinkReport&& r) {
    lines.push_back(engine::to_jsonl(r));
  });
  for (const auto& p : packets) eng.push(p);
  eng.finish();
  return lines;
}

std::vector<std::string> engine_resumed(
    const std::vector<net::PacketRecord>& packets, std::size_t threads,
    std::size_t cut, const std::filesystem::path& path) {
  std::vector<std::string> lines;
  const engine::EngineConfig config = engine_config(threads);
  {
    engine::Engine first(config);
    for (auto& spec : test_links()) (void)first.attach(std::move(spec));
    first.set_report_sink([&](engine::LinkReport&& r) {
      lines.push_back(engine::to_jsonl(r));
    });
    for (std::size_t i = 0; i < cut; ++i) first.push(packets[i]);
    ckpt::write_checkpoint(path, engine_meta(config), first.save_state());
    // Abandoned unfinished — ~Engine joins the pool like a dying process.
  }

  const ckpt::Checkpoint ck = ckpt::read_checkpoint(path);
  EXPECT_EQ(ck.kind, ckpt::CheckpointKind::engine);
  agg::check_compatible(ck.meta, engine_meta(config));
  EXPECT_EQ(ck.packets_consumed(), cut);

  engine::Engine second(config);
  for (auto& spec : test_links()) (void)second.attach(std::move(spec));
  second.restore_state(ck.engine);
  second.set_report_sink([&](engine::LinkReport&& r) {
    lines.push_back(engine::to_jsonl(r));
  });
  for (std::size_t i = cut; i < packets.size(); ++i) second.push(packets[i]);
  second.finish();
  return lines;
}

/// The per-link subsequence of a tagged line stream: pool scheduling may
/// interleave different links' reports differently, but each link's own
/// stream is pinned.
std::vector<std::string> link_lines(const std::vector<std::string>& lines,
                                    const std::string& name) {
  const std::string tag = "\"link\": \"" + name + "\"";
  std::vector<std::string> out;
  for (const auto& l : lines) {
    if (l.find(tag) != std::string::npos) out.push_back(l);
  }
  return out;
}

TEST(CheckpointDifferential, EngineInlineSessions) {
  const auto packets = seeded_trace();
  const auto ref = engine_reference(packets, 1);
  ASSERT_GT(ref.size(), 10u);
  for (const std::size_t cut : {packets.size() / 3, packets.size() / 2}) {
    const auto got =
        engine_resumed(packets, 1, cut, temp_ckpt(std::to_string(cut)));
    // threads == 1: report order is fully deterministic — whole-stream
    // byte identity.
    ASSERT_EQ(ref.size(), got.size()) << "cut at packet " << cut;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "report " << i << ", cut " << cut;
    }
  }
}

TEST(CheckpointDifferential, EngineWorkerPool) {
  const auto packets = seeded_trace();
  const auto ref = engine_reference(packets, 1);
  const auto got = engine_resumed(packets, 3, packets.size() / 2,
                                  temp_ckpt("pool"));
  // Pool mode pins per-link streams, not the interleaving.
  ASSERT_EQ(ref.size(), got.size());
  for (const char* name : {"wide", "narrow", "tap"}) {
    const auto want = link_lines(ref, name);
    const auto have = link_lines(got, name);
    ASSERT_EQ(want.size(), have.size()) << "link " << name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], have[i]) << "link " << name << ", report " << i;
    }
  }
}

TEST(CheckpointDifferential, EngineRestoreRefusesWrongLinks) {
  const auto packets = seeded_trace(20.0);
  const engine::EngineConfig config = engine_config(1);
  const auto path = temp_ckpt("links");
  {
    engine::Engine eng(config);
    for (auto& spec : test_links()) (void)eng.attach(std::move(spec));
    eng.set_report_sink([](engine::LinkReport&&) {});
    for (std::size_t i = 0; i < 2000; ++i) eng.push(packets[i]);
    ckpt::write_checkpoint(path, engine_meta(config), eng.save_state());
  }
  const auto ck = ckpt::read_checkpoint(path);

  {  // missing link
    engine::Engine eng(config);
    (void)eng.attach(engine::parse_link_spec("wide=10.0.0.0/8"));
    EXPECT_THROW(eng.restore_state(ck.engine), std::runtime_error);
  }
  {  // renamed link
    engine::Engine eng(config);
    (void)eng.attach(engine::parse_link_spec("wide=10.0.0.0/8"));
    (void)eng.attach(engine::parse_link_spec("other=10.1.0.0/16"));
    (void)eng.attach(engine::parse_link_spec("tap=all"));
    EXPECT_THROW(eng.restore_state(ck.engine), std::runtime_error);
  }
}

TEST(CheckpointDifferential, EngineSaveStateRefusesBatchMode) {
  engine::EngineConfig config;
  config.mode = engine::EngineMode::batch;
  engine::Engine eng(config);
  EXPECT_THROW((void)eng.save_state(), std::logic_error);
}

}  // namespace
}  // namespace fbm
