#include "core/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace fbm::core {
namespace {

std::vector<FlowSample> population(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<FlowSample> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({8.0 * (500.0 + rng.exponential(1.0 / 2e4)),
                   0.1 + rng.exponential(1.0)});
  }
  return out;
}

ShotNoiseModel dense_model() {
  // High lambda: many concurrent flows, nearly Gaussian total rate.
  return ShotNoiseModel(2000.0, population(2000, 11), triangular_shot());
}

ShotNoiseModel sparse_model() {
  // Low lambda: few concurrent flows, visibly skewed total rate.
  return ShotNoiseModel(20.0, population(2000, 12), triangular_shot());
}

TEST(CharacteristicFunction, AtZeroIsOne) {
  const auto phi = characteristic_function(dense_model(), 0.0);
  EXPECT_NEAR(phi.real(), 1.0, 1e-12);
  EXPECT_NEAR(phi.imag(), 0.0, 1e-12);
}

TEST(CharacteristicFunction, ModulusAtMostOne) {
  const auto m = sparse_model();
  for (double omega : {1e-9, 1e-8, 1e-7, 1e-6}) {
    EXPECT_LE(std::abs(characteristic_function(m, omega)), 1.0 + 1e-9);
  }
}

TEST(CharacteristicFunction, DerivativeGivesMean) {
  // phi'(0) = i E[R]: finite difference on the imaginary part.
  const auto m = sparse_model();
  const double h = 1e-10;
  const auto phi = characteristic_function(m, h);
  EXPECT_NEAR(phi.imag() / h, m.mean_rate(), 0.01 * m.mean_rate());
}

TEST(RateDistribution, IntegratesToOne) {
  const auto pdf = rate_distribution(sparse_model());
  double mass = 0.0;
  for (std::size_t i = 1; i < pdf.x.size(); ++i) {
    mass += 0.5 * (pdf.density[i] + pdf.density[i - 1]) *
            (pdf.x[i] - pdf.x[i - 1]);
  }
  EXPECT_NEAR(mass, 1.0, 0.03);
}

TEST(RateDistribution, MomentsMatchModel) {
  const auto m = sparse_model();
  const auto pdf = rate_distribution(m);
  EXPECT_NEAR(pdf.mean(), m.mean_rate(), 0.05 * m.mean_rate());
  EXPECT_NEAR(pdf.stddev(), m.stddev(), 0.1 * m.stddev());
}

TEST(RateDistribution, DenseModelIsNearGaussian) {
  const auto m = dense_model();
  const auto pdf = rate_distribution(m);
  const auto g = m.gaussian();
  // Compare exceedance at mean + 2 sigma.
  const double level = g.mean() + 2.0 * g.stddev();
  EXPECT_NEAR(pdf.exceedance(level), g.exceedance(level), 0.01);
}

TEST(RateDistribution, SparseModelIsRightSkewed) {
  // Positive shots + few flows => heavier upper tail than Gaussian
  // (Section V-E: large-deviations refinement needed in the tail).
  const auto m = sparse_model();
  const auto pdf = rate_distribution(m);
  const auto g = m.gaussian();
  const double level = g.mean() + 3.0 * g.stddev();
  EXPECT_GT(pdf.exceedance(level), g.exceedance(level));
}

TEST(RateDistribution, ExceedanceIsMonotone) {
  const auto pdf = rate_distribution(sparse_model());
  double prev = 1.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double level = pdf.x.front() + q * (pdf.x.back() - pdf.x.front());
    const double e = pdf.exceedance(level);
    EXPECT_LE(e, prev + 1e-9);
    prev = e;
  }
}

TEST(RateDistribution, Validation) {
  InversionOptions opt;
  opt.grid = 4;
  EXPECT_THROW((void)rate_distribution(sparse_model(), opt),
               std::invalid_argument);
}

TEST(RateDistribution, SubsamplingCapRespectsAccuracy) {
  // Halving the subsample cap should not change the distribution much.
  const auto m = sparse_model();
  InversionOptions small;
  small.max_samples = 128;
  const auto a = rate_distribution(m, small);
  const auto b = rate_distribution(m);
  EXPECT_NEAR(a.mean(), b.mean(), 0.1 * b.mean());
}

}  // namespace
}  // namespace fbm::core
