#include "core/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/moments.hpp"
#include "stats/rng.hpp"

namespace fbm::core {
namespace {

flow::ModelInputs inputs() {
  flow::ModelInputs in;
  in.lambda = 150.0;
  in.mean_size_bits = 2e5;
  in.mean_s2_over_d = 5e9;
  in.flows = 5000;
  return in;
}

TEST(GammaOfB, KnownFactors) {
  EXPECT_DOUBLE_EQ(gamma_of_b(0.0), 1.0);
  EXPECT_NEAR(gamma_of_b(1.0), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(gamma_of_b(2.0), 9.0 / 5.0, 1e-12);
}

TEST(FitPowerB, RoundTripsThroughGamma) {
  // Variance produced with power b must fit back to the same b.
  const auto in = inputs();
  for (double b : {0.0, 0.5, 1.0, 2.0, 3.5, 7.0}) {
    const double var = power_shot_variance(in, b);
    const auto fitted = fit_power_b(var, in);
    ASSERT_TRUE(fitted.has_value()) << b;
    EXPECT_NEAR(*fitted, b, 1e-9) << b;
  }
}

TEST(FitPowerB, PaperFormula) {
  // b_hat = (gamma-1) + sqrt(gamma(gamma-1)) for gamma = 2.
  const auto in = inputs();
  const double var = 2.0 * in.lambda * in.mean_s2_over_d;
  const auto fitted = fit_power_b(var, in);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_NEAR(*fitted, 1.0 + std::sqrt(2.0), 1e-9);
}

TEST(FitPowerB, BelowLowerBoundClampsToZero) {
  // Theorem 3: measured variance below the rectangular bound (averaging
  // artefact) maps to b = 0.
  const auto in = inputs();
  const double var = 0.5 * in.lambda * in.mean_s2_over_d;
  const auto fitted = fit_power_b(var, in);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_DOUBLE_EQ(*fitted, 0.0);
}

TEST(FitPowerB, DegenerateInputsGiveNullopt) {
  flow::ModelInputs zero;
  EXPECT_FALSE(fit_power_b(1.0, zero).has_value());
  EXPECT_FALSE(fit_power_b(-1.0, inputs()).has_value());
}

TEST(FitPowerB, MonotoneInMeasuredVariance) {
  const auto in = inputs();
  double prev = -1.0;
  for (double factor : {1.0, 1.2, 1.5, 2.0, 3.0}) {
    const double var = factor * in.lambda * in.mean_s2_over_d;
    const double b = *fit_power_b(var, in);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(OnlineEstimator, ConvergesToPopulationValues) {
  stats::Rng rng(55);
  OnlineEstimator est(0.01);
  const double lambda = 80.0;
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t += rng.exponential(lambda);
    flow::FlowRecord f;
    f.start = t;
    f.end = t + 0.5;              // constant duration
    f.size_bytes = 1000;               // constant size: S = 8000 bits
    f.packets = 3;
    est.observe(f);
  }
  const auto in = est.inputs();
  EXPECT_EQ(in.flows, 30000u);
  EXPECT_NEAR(in.lambda, lambda, 0.15 * lambda);
  EXPECT_NEAR(in.mean_size_bits, 8000.0, 1e-6);
  EXPECT_NEAR(in.mean_s2_over_d, 8000.0 * 8000.0 / 0.5, 1e-3);
}

TEST(OnlineEstimator, TracksRegimeChange) {
  OnlineEstimator est(0.1);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += 0.01;
    flow::FlowRecord f;
    f.start = t;
    f.end = t + 1.0;
    f.size_bytes = 1000;
    est.observe(f);
  }
  const double before = est.inputs().mean_size_bits;
  for (int i = 0; i < 200; ++i) {
    t += 0.01;
    flow::FlowRecord f;
    f.start = t;
    f.end = t + 1.0;
    f.size_bytes = 5000;  // regime change
    est.observe(f);
  }
  const double after = est.inputs().mean_size_bits;
  EXPECT_NEAR(before, 8000.0, 1.0);
  EXPECT_NEAR(after, 40000.0, 100.0);
}

TEST(OnlineEstimator, ToleratesOutOfOrderCompletionTimes) {
  // Flows are observed when they complete; a long-lived flow reports an
  // early start after later flows were already seen.
  OnlineEstimator est(0.1);
  flow::FlowRecord f;
  f.size_bytes = 1000;
  for (double start : {1.0, 2.0, 0.5, 3.0, 2.5, 4.0}) {
    f.start = start;
    f.end = start + 1.0;
    EXPECT_NO_THROW(est.observe(f)) << start;
  }
  EXPECT_GT(est.inputs().lambda, 0.0);
}

TEST(OnlineEstimator, MinDurationGuard) {
  OnlineEstimator est(0.5, 1e-3);
  flow::FlowRecord f;
  f.start = 1.0;
  f.end = 1.0;  // zero duration
  f.size_bytes = 125;
  est.observe(f);
  EXPECT_NEAR(est.inputs().mean_s2_over_d, 1000.0 * 1000.0 / 1e-3, 1e-6);
}

}  // namespace
}  // namespace fbm::core
