// core::FlatHashMap — the open-addressing robin-hood table under the flow
// classifier. Covers insert/find/erase/rehash, erased-slot reuse without
// growth (the no-tombstone-accumulation property), wrap-around probe
// chains, erase-during-sweep semantics, and the real flow keys (5-tuple,
// /24 prefix) against a std::unordered_map oracle.
#include "core/flat_hash_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/five_tuple.hpp"
#include "net/ip.hpp"

namespace fbm::core {
namespace {

using IntMap = FlatHashMap<int, int>;

TEST(FlatHashMap, StartsEmpty) {
  IntMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), 0u);  // no allocation before the first insert
  EXPECT_EQ(map.find(42), map.end());
  EXPECT_FALSE(map.contains(42));
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatHashMap, InsertFindRoundTrip) {
  IntMap map;
  const auto [it, inserted] = map.try_emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 7);
  EXPECT_EQ(it->second, 70);
  EXPECT_EQ(map.size(), 1u);

  const auto [again, inserted_again] = map.try_emplace(7, 700);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(again->second, 70);  // try_emplace does not overwrite
  EXPECT_EQ(map.size(), 1u);

  const auto found = map.find(7);
  ASSERT_NE(found, map.end());
  EXPECT_EQ(found->second, 70);
  found->second = 71;
  EXPECT_EQ(map.find(7)->second, 71);
}

TEST(FlatHashMap, TryEmplaceDefaultConstructsValue) {
  FlatHashMap<int, std::string> map;
  const auto [it, inserted] = map.try_emplace(1);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(it->second.empty());
  map.try_emplace(2, "two");
  EXPECT_EQ(map.find(2)->second, "two");
}

TEST(FlatHashMap, GrowsThroughManyRehashes) {
  IntMap map;
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(map.try_emplace(i, i * 3).second);
  }
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    const auto it = map.find(i);
    ASSERT_NE(it, map.end()) << "lost key " << i;
    EXPECT_EQ(it->second, i * 3);
  }
  EXPECT_EQ(map.find(kCount), map.end());
  EXPECT_EQ(map.find(-1), map.end());
}

TEST(FlatHashMap, EraseByKey) {
  IntMap map;
  for (int i = 0; i < 100; ++i) map.try_emplace(i, i);
  EXPECT_EQ(map.erase(50), 1u);
  EXPECT_EQ(map.erase(50), 0u);
  EXPECT_EQ(map.size(), 99u);
  EXPECT_EQ(map.find(50), map.end());
  // Neighbours of the erased key survive backward shifting.
  for (int i = 0; i < 100; ++i) {
    if (i == 50) continue;
    ASSERT_NE(map.find(i), map.end()) << "lost key " << i;
  }
}

TEST(FlatHashMap, ErasedSlotsAreReusedWithoutGrowth) {
  // Robin-hood backward shift leaves no tombstones, so churning
  // insert/erase at a steady population must never grow the table.
  IntMap map;
  for (int i = 0; i < 1000; ++i) map.try_emplace(i, i);
  const std::size_t capacity_before = map.capacity();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_EQ(map.erase(round * 1000 + i), 1u);
      EXPECT_TRUE(map.try_emplace((round + 1) * 1000 + i, i).second);
    }
  }
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.capacity(), capacity_before);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(map.find(50 * 1000 + i), map.end());
  }
}

TEST(FlatHashMap, ReservePreallocatesForLoadFactor) {
  IntMap map;
  map.reserve(1000);
  const std::size_t capacity = map.capacity();
  EXPECT_GE(capacity, 1024u);  // 1000 at 7/8 load needs >= 1143 slots... pow2
  for (int i = 0; i < 1000; ++i) map.try_emplace(i, i);
  EXPECT_EQ(map.capacity(), capacity);  // no rehash during fill
}

struct CollidingHash {
  std::size_t operator()(int v) const noexcept {
    // Everything lands in one of two home buckets: long probe chains and
    // heavy robin-hood displacement.
    return static_cast<std::size_t>(v % 2);
  }
};

TEST(FlatHashMap, SurvivesPathologicalCollisions) {
  FlatHashMap<int, int, CollidingHash> map;
  for (int i = 0; i < 500; ++i) map.try_emplace(i, i * 7);
  EXPECT_EQ(map.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const auto it = map.find(i);
    ASSERT_NE(it, map.end()) << i;
    EXPECT_EQ(it->second, i * 7);
  }
  for (int i = 0; i < 500; i += 2) EXPECT_EQ(map.erase(i), 1u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(map.contains(i), i % 2 == 1) << i;
  }
}

struct IdentityHash {
  std::size_t operator()(std::size_t v) const noexcept { return v; }
};

TEST(FlatHashMap, WrapAroundChainsStayFindable) {
  // Pin keys to the last slots of the table so their probe chains wrap
  // around to index 0, then erase in the middle of the wrapped chain.
  FlatHashMap<std::size_t, int, IdentityHash> map;
  map.reserve(10);  // capacity 16, mask 15
  const std::size_t cap = map.capacity();
  ASSERT_EQ(cap, 16u);
  // Five keys with home slot cap-2: occupy cap-2, cap-1, 0, 1, 2.
  std::vector<std::size_t> keys;
  for (std::size_t i = 0; i < 5; ++i) keys.push_back(cap - 2 + i * cap);
  for (const auto k : keys) ASSERT_TRUE(map.try_emplace(k, 1).second);
  for (const auto k : keys) EXPECT_TRUE(map.contains(k)) << k;
  // Erase the element sitting right at the wrap point.
  EXPECT_EQ(map.erase(keys[1]), 1u);
  for (const auto k : keys) {
    EXPECT_EQ(map.contains(k), k != keys[1]) << k;
  }
  // Reinsert and drain the whole chain.
  EXPECT_TRUE(map.try_emplace(keys[1], 2).second);
  for (const auto k : keys) EXPECT_EQ(map.erase(k), 1u);
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashMap, IterationVisitsEveryElementOnce) {
  IntMap map;
  for (int i = 0; i < 777; ++i) map.try_emplace(i, i);
  std::set<int> seen;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(key, value);
    EXPECT_TRUE(seen.insert(key).second) << "visited twice: " << key;
  }
  EXPECT_EQ(seen.size(), 777u);
}

TEST(FlatHashMap, EraseDuringSweepVisitsEverySurvivor) {
  // The classifier's expire_idle pattern: sweep, erase matching elements,
  // re-examine the slot erase() returns. Every element present at sweep
  // start must be seen at least once; survivors stay findable.
  IntMap map;
  for (int i = 0; i < 2000; ++i) map.try_emplace(i, i);
  std::set<int> visited;
  for (auto it = map.begin(); it != map.end();) {
    visited.insert(it->first);
    if (it->first % 3 == 0) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(visited.size(), 2000u);  // nothing skipped
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(map.contains(i), i % 3 != 0) << i;
  }
}

TEST(FlatHashMap, ClearReleasesEverything) {
  IntMap map;
  for (int i = 0; i < 100; ++i) map.try_emplace(i, i);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_EQ(map.find(1), map.end());
  // Reusable after clear.
  EXPECT_TRUE(map.try_emplace(1, 10).second);
  EXPECT_EQ(map.find(1)->second, 10);
}

TEST(FlatHashMap, MatchesUnorderedMapUnderRandomChurn) {
  std::mt19937 rng(20020);
  std::uniform_int_distribution<int> key_dist(0, 499);
  FlatHashMap<int, int> map;
  std::unordered_map<int, int> oracle;
  for (int step = 0; step < 20000; ++step) {
    const int key = key_dist(rng);
    switch (rng() % 3) {
      case 0: {
        const auto a = map.try_emplace(key, step);
        const auto b = oracle.try_emplace(key, step);
        ASSERT_EQ(a.second, b.second);
        break;
      }
      case 1:
        ASSERT_EQ(map.erase(key), oracle.erase(key));
        break;
      default: {
        const auto it = map.find(key);
        const auto oit = oracle.find(key);
        ASSERT_EQ(it == map.end(), oit == oracle.end());
        if (oit != oracle.end()) {
          ASSERT_EQ(it->second, oit->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
}

TEST(FlatHashMap, FiveTupleKeys) {
  FlatHashMap<net::FiveTuple, std::uint64_t, net::FiveTupleHash> map;
  std::vector<net::FiveTuple> tuples;
  for (std::uint32_t i = 0; i < 300; ++i) {
    net::FiveTuple t;
    t.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i));
    t.dst = net::Ipv4Address(20, 1, 2, static_cast<std::uint8_t>(i));
    t.src_port = static_cast<std::uint16_t>(1024 + i);
    t.dst_port = 443;
    t.protocol = 6;
    tuples.push_back(t);
    EXPECT_TRUE(map.try_emplace(t, i).second);
  }
  EXPECT_EQ(map.size(), 300u);
  for (std::uint32_t i = 0; i < 300; ++i) {
    const auto it = map.find(tuples[i]);
    ASSERT_NE(it, map.end()) << tuples[i].to_string();
    EXPECT_EQ(it->second, i);
  }
  // A near-miss tuple (different port) is a different key.
  auto other = tuples[0];
  other.dst_port = 80;
  EXPECT_EQ(map.find(other), map.end());
}

TEST(FlatHashMap, Slash24PrefixKeys) {
  FlatHashMap<net::Prefix, int, net::PrefixHash> map;
  for (std::uint8_t a = 1; a <= 200; ++a) {
    const net::Prefix p(net::Ipv4Address(a, 2, 3, 99), 24);
    EXPECT_TRUE(map.try_emplace(p, a).second);
  }
  EXPECT_EQ(map.size(), 200u);
  // Addresses in the same /24 canonicalise to the same key...
  const net::Prefix same(net::Ipv4Address(7, 2, 3, 250), 24);
  ASSERT_NE(map.find(same), map.end());
  EXPECT_EQ(map.find(same)->second, 7);
  // ...the same network at a different length is a distinct key.
  const net::Prefix shorter(net::Ipv4Address(7, 2, 3, 0), 16);
  EXPECT_EQ(map.find(shorter), map.end());
}

}  // namespace
}  // namespace fbm::core
