#include "core/gaussian.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbm::core {
namespace {

TEST(Gaussian, CdfAtMeanIsHalf) {
  GaussianApproximation g(100e6, 1e12);
  EXPECT_NEAR(g.cdf(100e6), 0.5, 1e-12);
}

TEST(Gaussian, ExceedanceComplementsCdf) {
  GaussianApproximation g(100e6, 1e12);
  EXPECT_NEAR(g.exceedance(101e6) + g.cdf(101e6), 1.0, 1e-12);
}

TEST(Gaussian, CapacityInvertsExceedance) {
  GaussianApproximation g(100e6, 4e12);  // sigma = 2 Mbps
  for (double eps : {0.001, 0.01, 0.05, 0.2}) {
    const double c = g.capacity_for_exceedance(eps);
    EXPECT_NEAR(g.exceedance(c), eps, 1e-9) << eps;
    EXPECT_GT(c, g.mean());
  }
}

TEST(Gaussian, PaperSeventyPercentWithinOneSigma) {
  // Section V-E: "during 70% of time, the total rate is between mean-sigma
  // and mean+sigma" (the 68-95 rule, rounded by the paper).
  GaussianApproximation g(0.0, 1.0);
  EXPECT_NEAR(g.fraction_within(1.0), 0.6827, 1e-3);
  EXPECT_NEAR(g.fraction_within(2.0), 0.9545, 1e-3);
}

TEST(Gaussian, DegenerateZeroVariance) {
  GaussianApproximation g(5e6, 0.0);
  EXPECT_DOUBLE_EQ(g.cdf(4e6), 0.0);
  EXPECT_DOUBLE_EQ(g.cdf(5e6), 1.0);
  EXPECT_DOUBLE_EQ(g.capacity_for_exceedance(0.01), 5e6);
  EXPECT_DOUBLE_EQ(g.pdf(5e6), 0.0);
}

TEST(Gaussian, PdfPeaksAtMean) {
  GaussianApproximation g(10.0, 4.0);
  EXPECT_GT(g.pdf(10.0), g.pdf(12.0));
  EXPECT_NEAR(g.pdf(8.0), g.pdf(12.0), 1e-12);
}

TEST(Gaussian, Validation) {
  EXPECT_THROW(GaussianApproximation(0.0, -1.0), std::invalid_argument);
  GaussianApproximation g(0.0, 1.0);
  EXPECT_THROW((void)g.capacity_for_exceedance(0.0), std::invalid_argument);
  EXPECT_THROW((void)g.capacity_for_exceedance(1.0), std::invalid_argument);
  EXPECT_THROW((void)g.fraction_within(-1.0), std::invalid_argument);
}

TEST(Gaussian, HigherVarianceNeedsMoreCapacity) {
  GaussianApproximation lo(100e6, 1e12);
  GaussianApproximation hi(100e6, 9e12);
  EXPECT_LT(lo.capacity_for_exceedance(0.01),
            hi.capacity_for_exceedance(0.01));
}

}  // namespace
}  // namespace fbm::core
