// core::JsonWriter — the one JSON emitter every writer in the tree shares.
// Escaping (the bug class this consolidation fixed: control characters and
// backslashes passed through unescaped), number round-tripping, and the two
// output styles.
#include "core/json_writer.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace fbm::core {
namespace {

TEST(JsonQuote, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a \"quoted\" token"), "\"a \\\"quoted\\\" token\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote("cr\rbs\bff\f"), "\"cr\\rbs\\bff\\f\"");
  EXPECT_EQ(json_quote(std::string("nul\x01" "byte")), "\"nul\\u0001byte\"");
  EXPECT_EQ(json_quote(std::string(1, '\x1f')), "\"\\u001f\"");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(json_quote("naïve"), "\"naïve\"");
}

TEST(JsonNumber, ShortestRoundTripForm) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.25), "1.25");
  EXPECT_EQ(json_number(5e6), "5e+06");
  EXPECT_EQ(json_number(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonWriter, CompactStyle) {
  JsonWriter w(JsonWriter::Style::compact);
  w.begin_object();
  w.field("a", std::uint64_t{1});
  w.field("b", 2.5);
  w.begin_object("nested");
  w.field("c", true);
  w.field("d", "tri\"cky");
  w.end_object();
  w.null_field("e");
  w.begin_array("f");
  w.raw_element("1");
  w.raw_element("2");
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"a\": 1, \"b\": 2.5, \"nested\": {\"c\": true, "
            "\"d\": \"tri\\\"cky\"}, \"e\": null, \"f\": [1, 2]}");
}

TEST(JsonWriter, PrettyStyle) {
  JsonWriter w(JsonWriter::Style::pretty, 2);
  w.begin_object();
  w.field("a", std::uint64_t{1});
  w.begin_object("nested");
  w.field("b", 2.0);
  w.end_object();
  w.begin_object("empty");
  w.end_object();
  w.begin_array("list");
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "  {\n"
            "    \"a\": 1,\n"
            "    \"nested\": {\n"
            "      \"b\": 2\n"
            "    },\n"
            "    \"empty\": {},\n"
            "    \"list\": []\n"
            "  }");
}

TEST(JsonWriter, PrettyRawElementsComposeNestedDocuments) {
  JsonWriter inner(JsonWriter::Style::pretty, 4);
  inner.begin_object();
  inner.field("x", std::uint64_t{1});
  inner.end_object();
  const std::string nested = std::move(inner).str();

  JsonWriter w(JsonWriter::Style::pretty, 0);
  w.begin_object();
  w.begin_array("items");
  w.raw_element(nested);
  w.raw_element(nested);
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\n"
            "  \"items\": [\n"
            "    {\n"
            "      \"x\": 1\n"
            "    },\n"
            "    {\n"
            "      \"x\": 1\n"
            "    }\n"
            "  ]\n"
            "}");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  JsonWriter w(JsonWriter::Style::compact);
  w.begin_object();
  w.field("we\"ird", std::uint64_t{1});
  w.end_object();
  EXPECT_EQ(std::move(w).str(), "{\"we\\\"ird\": 1}");
}

}  // namespace
}  // namespace fbm::core
