#include "core/mg_infinity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fbm::core {
namespace {

TEST(MGInfinity, LoadIsLambdaTimesDuration) {
  MGInfinity q(100.0, 0.5);
  EXPECT_DOUBLE_EQ(q.load(), 50.0);
  EXPECT_DOUBLE_EQ(q.mean_active(), 50.0);
  EXPECT_DOUBLE_EQ(q.variance_active(), 50.0);
}

TEST(MGInfinity, PmfIsPoisson) {
  MGInfinity q(10.0, 0.3);  // rho = 3
  EXPECT_NEAR(q.pmf(0), std::exp(-3.0), 1e-12);
  EXPECT_NEAR(q.pmf(3), std::exp(-3.0) * 27.0 / 6.0, 1e-12);
}

TEST(MGInfinity, PmfSumsToOne) {
  MGInfinity q(20.0, 0.5);  // rho = 10
  double acc = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) acc += q.pmf(k);
  EXPECT_NEAR(acc, 1.0, 1e-10);
}

TEST(MGInfinity, CdfMonotone) {
  MGInfinity q(10.0, 1.0);
  double prev = 0.0;
  for (std::uint64_t k = 0; k < 40; k += 5) {
    const double c = q.cdf(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(q.cdf(60), 1.0, 1e-9);
}

TEST(MGInfinity, LargeLoadPmfDoesNotOverflow) {
  MGInfinity q(10000.0, 1.0);  // rho = 1e4
  EXPECT_GT(q.pmf(10000), 0.0);
  EXPECT_LT(q.pmf(10000), 1.0);
}

TEST(MGInfinity, PgfTheorem1Form) {
  MGInfinity q(10.0, 0.2);  // rho = 2
  EXPECT_NEAR(q.pgf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(q.pgf(0.0), std::exp(-2.0), 1e-12);
  EXPECT_THROW((void)q.pgf(1.5), std::invalid_argument);
}

TEST(MGInfinity, Validation) {
  EXPECT_THROW(MGInfinity(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MGInfinity(1.0, 0.0), std::invalid_argument);
}

TEST(ConstantRateBaseline, MomentsOfScaledPoisson) {
  // R = r N, N ~ Poisson(rho): E[R] = r rho, Var = r^2 rho.
  ConstantRateBaseline b(1e6, 50.0, 2.0);  // rho = 100
  EXPECT_DOUBLE_EQ(b.mean_rate(), 1e8);
  EXPECT_DOUBLE_EQ(b.variance(), 1e12 * 100.0);
  EXPECT_NEAR(b.cov(), 1.0 / std::sqrt(100.0), 1e-12);
}

TEST(ConstantRateBaseline, CovShrinksWithLoad) {
  ConstantRateBaseline small(1e6, 10.0, 1.0);
  ConstantRateBaseline large(1e6, 1000.0, 1.0);
  EXPECT_GT(small.cov(), large.cov());
}

TEST(ConstantRateBaseline, Validation) {
  EXPECT_THROW(ConstantRateBaseline(0.0, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace fbm::core
