#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/moments.hpp"
#include "stats/rng.hpp"

namespace fbm::core {
namespace {

// Population with lognormal-ish sizes and exponential durations.
std::vector<FlowSample> population(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<FlowSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 8.0 * (100.0 + rng.exponential(1.0 / 2e4));
    const double d = 0.05 + rng.exponential(2.0);
    out.push_back({s, d});
  }
  return out;
}

ShotNoiseModel model(double b = 1.0) {
  return ShotNoiseModel(120.0, population(5000, 42), power_shot(b));
}

TEST(Model, ConstructorValidation) {
  EXPECT_THROW(ShotNoiseModel(0.0, population(10, 1), triangular_shot()),
               std::invalid_argument);
  EXPECT_THROW(ShotNoiseModel(1.0, {}, triangular_shot()),
               std::invalid_argument);
  EXPECT_THROW(ShotNoiseModel(1.0, population(10, 1), nullptr),
               std::invalid_argument);
  EXPECT_THROW(ShotNoiseModel(1.0, {{100.0, 0.0}}, triangular_shot()),
               std::invalid_argument);
  EXPECT_THROW(ShotNoiseModel(1.0, {{-1.0, 1.0}}, triangular_shot()),
               std::invalid_argument);
}

TEST(Model, Corollary1MatchesClosedForm) {
  const auto m = model();
  EXPECT_NEAR(m.mean_rate(), mean_rate(m.inputs()), 1e-6 * m.mean_rate());
}

TEST(Model, Corollary2MatchesClosedFormForPowerShots) {
  for (double b : {0.0, 1.0, 2.0}) {
    const auto m = model(b);
    EXPECT_NEAR(m.variance(), power_shot_variance(m.inputs(), b),
                1e-9 * m.variance())
        << b;
  }
}

TEST(Model, CovConsistency) {
  const auto m = model();
  EXPECT_NEAR(m.cov(), m.stddev() / m.mean_rate(), 1e-12);
}

TEST(Model, AutocovarianceAtZeroIsVariance) {
  const auto m = model();
  EXPECT_NEAR(m.autocovariance(0.0), m.variance(), 1e-9 * m.variance());
}

TEST(Model, AutocovarianceDecreases) {
  const auto m = model();
  double prev = m.autocovariance(0.0);
  for (double tau : {0.05, 0.2, 0.5, 1.0, 3.0}) {
    const double r = m.autocovariance(tau);
    EXPECT_LE(r, prev + 1e-9) << tau;
    EXPECT_GE(r, 0.0) << tau;  // power shots are non-negative kernels
    prev = r;
  }
}

TEST(Model, AutocorrelationSeriesStartsAtOne) {
  const auto m = model();
  const std::vector<double> taus = {0.0, 0.1, 0.2};
  const auto rho = m.autocorrelation(taus);
  ASSERT_EQ(rho.size(), 3u);
  EXPECT_NEAR(rho[0], 1.0, 1e-9);
  EXPECT_LT(rho[2], rho[0]);
  EXPECT_GT(rho[2], 0.0);
}

TEST(Model, Figure8Shape_LongerFlowsDecaySlower) {
  // /24 aggregates have longer durations -> slower ACF decay. Emulate by
  // scaling durations.
  auto pop_short = population(3000, 7);
  auto pop_long = pop_short;
  for (auto& s : pop_long) s.duration_s *= 5.0;
  const ShotNoiseModel short_m(100.0, pop_short, triangular_shot());
  const ShotNoiseModel long_m(100.0, pop_long, triangular_shot());
  const std::vector<double> taus = {0.4};
  EXPECT_LT(short_m.autocorrelation(taus)[0], long_m.autocorrelation(taus)[0]);
}

TEST(Model, SpectralDensityAtZeroRelatesToKernelMass) {
  // Gamma(0) = lambda/(2pi) E[S^2] (Fourier at 0 is the full integral S).
  const auto m = model();
  double es2 = 0.0;
  for (const auto& s : m.samples()) es2 += s.size_bits * s.size_bits;
  es2 /= static_cast<double>(m.samples().size());
  EXPECT_NEAR(m.spectral_density(0.0), m.lambda() / (2.0 * M_PI) * es2,
              0.01 * m.spectral_density(0.0));
}

TEST(Model, SpectralDensityDecays) {
  const auto m = model();
  EXPECT_GT(m.spectral_density(0.1), m.spectral_density(100.0));
}

TEST(Model, AveragedVarianceBelowInstantaneous) {
  // Eq. (7): averaging over Delta can only reduce the variance.
  const auto m = model();
  const double inst = m.variance();
  double prev = inst;
  for (double delta : {0.05, 0.2, 1.0, 5.0}) {
    const double av = m.averaged_variance(delta);
    EXPECT_LE(av, inst * (1.0 + 1e-9)) << delta;
    EXPECT_LE(av, prev * (1.0 + 1e-9)) << delta;  // monotone in Delta
    prev = av;
  }
}

TEST(Model, AveragedVarianceSmallDeltaApproachesVariance) {
  const auto m = model();
  EXPECT_NEAR(m.averaged_variance(1e-3), m.variance(), 0.02 * m.variance());
}

TEST(Model, AveragedVarianceValidation) {
  EXPECT_THROW((void)model().averaged_variance(0.0), std::invalid_argument);
}

TEST(Model, CumulantsMatchMeanAndVariance) {
  const auto m = model();
  EXPECT_NEAR(m.cumulant(1), m.mean_rate(), 1e-9 * m.mean_rate());
  EXPECT_NEAR(m.cumulant(2), m.variance(), 1e-9 * m.variance());
  EXPECT_GT(m.cumulant(3), 0.0);  // shot noise with positive shots
  EXPECT_THROW((void)m.cumulant(0), std::invalid_argument);
}

TEST(Model, SkewnessPositiveForPositiveShots) {
  EXPECT_GT(model().skewness(), 0.0);
}

TEST(Model, LstBoundsAndMoments) {
  const auto m = model();
  EXPECT_DOUBLE_EQ(m.lst(0.0), 1.0);
  const double s = 1e-9;
  const double l = m.lst(s);
  EXPECT_GT(l, 0.0);
  EXPECT_LT(l, 1.0);
  // -d/ds log LST at 0 = E[R]: finite-difference check.
  const double h = 1e-12;
  const double deriv = -(std::log(m.lst(h)) - 0.0) / h;
  EXPECT_NEAR(deriv, m.mean_rate(), 0.01 * m.mean_rate());
  EXPECT_THROW((void)m.lst(-1.0), std::invalid_argument);
}

TEST(Model, LstSecondDerivativeGivesVariance) {
  const auto m = model();
  // log LST(s) = -mu s + sigma^2 s^2/2 - ... : central second difference.
  const double h = 2e-10;
  const double l0 = std::log(m.lst(0.0));
  const double l1 = std::log(m.lst(h));
  const double l2 = std::log(m.lst(2.0 * h));
  const double second = (l2 - 2.0 * l1 + l0) / (h * h);
  EXPECT_NEAR(second, m.variance(), 0.05 * m.variance());
}

TEST(Model, GaussianUsesModelMoments) {
  const auto m = model();
  const auto g = m.gaussian();
  EXPECT_DOUBLE_EQ(g.mean(), m.mean_rate());
  EXPECT_NEAR(g.stddev(), m.stddev(), 1e-9);
}

TEST(Model, WithShotSwapsShotOnly) {
  const auto m = model(0.0);
  const auto m2 = m.with_shot(parabolic_shot());
  EXPECT_DOUBLE_EQ(m2.mean_rate(), m.mean_rate());
  EXPECT_NEAR(m2.variance(), 9.0 / 5.0 * m.variance(), 1e-6 * m.variance());
}

TEST(Model, FromIntervalUsesIntervalLambda) {
  flow::IntervalData iv;
  iv.start = 0.0;
  iv.length = 10.0;
  for (int i = 0; i < 50; ++i) {
    flow::FlowRecord f;
    f.start = 0.2 * i;
    f.end = f.start + 1.0;
    f.size_bytes = 1000;
    f.packets = 2;
    iv.flows.push_back(f);
  }
  const auto m = ShotNoiseModel::from_interval(iv, triangular_shot());
  EXPECT_DOUBLE_EQ(m.lambda(), 5.0);
  EXPECT_EQ(m.samples().size(), 50u);
  flow::IntervalData empty;
  empty.length = 10.0;
  EXPECT_THROW((void)ShotNoiseModel::from_interval(empty, triangular_shot()),
               std::invalid_argument);
}

TEST(Model, ToSamplesClampsDurations) {
  std::vector<flow::FlowRecord> flows(1);
  flows[0].start = 1.0;
  flows[0].end = 1.0;
  flows[0].size_bytes = 100;
  const auto samples = to_samples(flows, 1e-3);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].duration_s, 1e-3);
  EXPECT_DOUBLE_EQ(samples[0].size_bits, 800.0);
}

TEST(Model, TheoremThreeOverPopulation) {
  // Rectangular variance is the smallest across shot choices for the same
  // population.
  const auto rect = model(0.0);
  for (double b : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_GT(model(b).variance(), rect.variance()) << b;
  }
}

}  // namespace
}  // namespace fbm::core
