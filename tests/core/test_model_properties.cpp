// Property sweeps over the shot-noise model: every invariant the paper's
// analysis guarantees must hold for any population and any power shot.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/fitting.hpp"
#include "core/model.hpp"
#include "core/moments.hpp"
#include "stats/rng.hpp"

namespace fbm::core {
namespace {

// (population seed, lambda, shot power b)
using Param = std::tuple<std::uint64_t, double, double>;

class ModelInvariants : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] static std::vector<FlowSample> population(std::uint64_t seed) {
    stats::Rng rng(seed);
    std::vector<FlowSample> out;
    const std::size_t n = 500 + seed % 1500;
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of light and heavy sizes, short and long durations.
      const double s = rng.bernoulli(0.1) ? rng.exponential(1.0 / 3e6)
                                          : rng.exponential(1.0 / 5e4);
      const double d = 0.02 + rng.exponential(1.0 / (0.2 + rng.uniform()));
      out.push_back({std::max(8.0, s), d});
    }
    return out;
  }

  [[nodiscard]] ShotNoiseModel model() const {
    const auto [seed, lambda, b] = GetParam();
    return ShotNoiseModel(lambda, population(seed), power_shot(b));
  }
};

TEST_P(ModelInvariants, MeanMatchesCorollary1) {
  const auto m = model();
  EXPECT_NEAR(m.mean_rate(), mean_rate(m.inputs()), 1e-9 * m.mean_rate());
}

TEST_P(ModelInvariants, VarianceMatchesCorollary2ClosedForm) {
  const auto m = model();
  const auto [seed, lambda, b] = GetParam();
  EXPECT_NEAR(m.variance(), power_shot_variance(m.inputs(), b),
              1e-9 * m.variance());
}

TEST_P(ModelInvariants, VarianceAboveTheorem3Bound) {
  const auto m = model();
  EXPECT_GE(m.variance(),
            variance_lower_bound(m.inputs()) * (1.0 - 1e-12));
}

TEST_P(ModelInvariants, AutocovarianceBoundedByVariance) {
  const auto m = model();
  const double v = m.variance();
  for (double tau : {0.01, 0.1, 0.5, 2.0, 10.0}) {
    const double r = m.autocovariance(tau);
    EXPECT_GE(r, 0.0) << tau;          // non-negative shots
    EXPECT_LE(r, v * (1.0 + 1e-9)) << tau;  // Cauchy-Schwarz
  }
}

TEST_P(ModelInvariants, AutocovarianceDecreasing) {
  const auto m = model();
  double prev = m.autocovariance(0.0);
  for (double tau : {0.05, 0.2, 1.0, 5.0}) {
    const double r = m.autocovariance(tau);
    EXPECT_LE(r, prev * (1.0 + 1e-9)) << tau;
    prev = r;
  }
}

TEST_P(ModelInvariants, AveragedVarianceBelowInstantaneous) {
  const auto m = model();
  const double v = m.variance();
  double prev = v;
  for (double delta : {0.05, 0.2, 1.0}) {
    const double av = m.averaged_variance(delta);
    EXPECT_LE(av, v * (1.0 + 1e-9)) << delta;
    EXPECT_LE(av, prev * (1.0 + 1e-9)) << delta;
    EXPECT_GE(av, 0.0) << delta;
    prev = av;
  }
}

TEST_P(ModelInvariants, CumulantsAreConsistent) {
  const auto m = model();
  EXPECT_NEAR(m.cumulant(1), m.mean_rate(), 1e-9 * m.mean_rate());
  EXPECT_NEAR(m.cumulant(2), m.variance(), 1e-9 * m.variance());
  EXPECT_GT(m.cumulant(3), 0.0);
  EXPECT_GT(m.cumulant(4), 0.0);
}

TEST_P(ModelInvariants, LstIsCompletelyMonotoneAtSmallS) {
  const auto m = model();
  // LST decreasing in s, bounded by (0, 1].
  double prev = 1.0;
  for (double s : {0.0, 1e-10, 1e-9, 1e-8}) {
    const double l = m.lst(s);
    EXPECT_GT(l, 0.0) << s;
    EXPECT_LE(l, prev + 1e-12) << s;
    prev = l;
  }
}

TEST_P(ModelInvariants, FitRecoversOwnB) {
  const auto m = model();
  const auto [seed, lambda, b] = GetParam();
  const auto fitted = fit_power_b(m.variance(), m.inputs());
  ASSERT_TRUE(fitted.has_value());
  EXPECT_NEAR(*fitted, b, 1e-6 + 1e-6 * b);
}

TEST_P(ModelInvariants, ScalingLambdaScalesMoments) {
  const auto m = model();
  const auto [seed, lambda, b] = GetParam();
  const ShotNoiseModel doubled(2.0 * lambda, m.samples(), m.shot_ptr());
  EXPECT_NEAR(doubled.mean_rate(), 2.0 * m.mean_rate(),
              1e-9 * m.mean_rate());
  EXPECT_NEAR(doubled.variance(), 2.0 * m.variance(), 1e-9 * m.variance());
  EXPECT_NEAR(doubled.cov(), m.cov() / std::sqrt(2.0), 1e-9);
}

TEST_P(ModelInvariants, GaussianQuantileBracketsMean) {
  const auto m = model();
  const auto g = m.gaussian();
  EXPECT_GT(g.capacity_for_exceedance(0.01), m.mean_rate());
  EXPECT_LT(g.capacity_for_exceedance(0.99), m.mean_rate());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelInvariants,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(5.0, 100.0, 2000.0),
                       ::testing::Values(0.0, 1.0, 2.0, 3.5)),
    [](const auto& info) {
      // std::get instead of structured bindings: a comma inside [] would be
      // parsed as a macro-argument separator by INSTANTIATE_TEST_SUITE_P.
      return "seed" + std::to_string(std::get<0>(info.param)) + "_lambda" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_b" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

}  // namespace
}  // namespace fbm::core
